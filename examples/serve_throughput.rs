//! Serve a compiled model at throughput: bind once, batch dynamically,
//! shard across replicas — and verify the served outputs are bit-identical
//! to direct execution.
//!
//! ```sh
//! cargo run --release --example serve_throughput
//! ```

use fpsa::core::experiments::serving;
use fpsa::core::Compiler;
use fpsa::nn::{zoo, GraphParameters};
use fpsa::serve::ServeConfig;
use fpsa::sim::Precision;
use fpsa_bench::save_json;

fn main() {
    // --- Quickstart: one model behind a serving engine. ---------------
    let graph = zoo::mlp_500_100();
    let params = GraphParameters::seeded(&graph, 42);
    let compiled = Compiler::fpsa().compile(&graph).expect("MLP compiles");
    let engine = compiled
        .serve(
            &graph,
            &params,
            &Precision::Float,
            ServeConfig::default().with_replicas(4).with_max_batch(8),
        )
        .expect("compiled model binds and serves");

    let request = vec![0.5f32; 784];
    let logits = engine.infer(request.clone()).expect("request is served");
    println!(
        "MLP-500-100 served: {} logits, argmax {}",
        logits.len(),
        fpsa::nn::mlp::argmax(&logits)
    );

    // Served outputs are bit-identical to direct execution.
    let direct = compiled
        .executor(&graph, &params, &Precision::Float)
        .expect("binds")
        .run(&request)
        .expect("runs");
    assert_eq!(logits, direct, "serving must not change the numbers");
    let stats = engine.shutdown();
    println!(
        "engine stats: {} submitted, {} completed, {} batches",
        stats.submitted, stats.completed, stats.batches
    );

    // --- The full sweep the BENCH_serving.json artifact records. ------
    println!();
    let reports = serving::run();
    println!("{}", serving::to_table(&reports));
    save_json("BENCH_serving", &reports);
    for report in &reports {
        let best = report
            .points
            .iter()
            .max_by(|a, b| a.requests_per_s.total_cmp(&b.requests_per_s))
            .expect("sweep has points");
        println!(
            "{}: direct {:.0} req/s -> best engine point {:.0} req/s ({}x{} window {}us, {:.1}x)",
            report.model,
            report.direct_requests_per_s,
            best.requests_per_s,
            best.replicas,
            best.max_batch,
            best.window_us,
            best.speedup_vs_direct
        );
    }
}
