//! Quickstart: compile a network for FPSA and look at what the stack produced.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The example compiles LeNet through the full software stack (neural
//! synthesizer → spatial-to-temporal mapper → placement & routing), prints the
//! intermediate artifact sizes, the device-level Table 1 parameters, and the
//! estimated performance of the compiled design.

use fpsa::core::compiler::Compiler;
use fpsa::core::experiments::table1;
use fpsa::nn::zoo;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== FPSA quickstart ==\n");

    println!("Function-block parameters (Table 1, regenerated from device models):");
    println!("{}", table1::to_table(&table1::run()));

    let model = zoo::lenet();
    let stats = model.statistics();
    println!(
        "Compiling {} ({} weights, {} ops/sample) for the FPSA fabric...",
        stats.model, stats.total_weights, stats.total_ops
    );

    let compiled = Compiler::fpsa().with_duplication(4).compile(&model)?;

    println!(
        "  core-op graph : {} groups / {} core-ops (max reuse degree {})",
        compiled.core_graph.len(),
        compiled.core_graph.total_core_ops(),
        compiled.core_graph.max_reuse_degree()
    );
    let netlist = compiled.mapping.netlist.stats();
    println!(
        "  netlist       : {} PEs, {} SMBs, {} CLBs, {} nets",
        netlist.pe_count, netlist.smb_count, netlist.clb_count, netlist.net_count
    );
    if let Some(physical) = &compiled.physical {
        println!(
            "  placed & routed: critical path {:.2} ns over {} hops (channel width needed: {})",
            physical.timing.critical_delay_ns,
            physical.timing.critical_hops,
            physical.routing.required_channel_width()
        );
        println!(
            "                   HPWL {:.0} ({:.0}% anneal improvement), avg delay {:.2} ns, {} PathFinder iteration(s)",
            physical.placement.wirelength(),
            physical.placement.quality().improvement() * 100.0,
            physical.timing.average_delay_ns,
            physical.routing.iterations
        );
    }
    let bitstream = compiled.bitstream();
    println!(
        "  configuration : {} sections, {} payload bytes",
        bitstream.sections().len(),
        bitstream.payload_bytes()
    );

    let perf = compiled.performance();
    println!("\nEstimated performance on FPSA:");
    println!(
        "  throughput : {:.1} samples/s",
        perf.throughput_samples_per_s
    );
    println!("  latency    : {:.2} us", perf.latency_us);
    println!(
        "  area       : {:.2} mm^2 ({} PEs)",
        perf.area_mm2, perf.pe_count
    );
    println!(
        "  per-PE time: {:.1} ns compute + {:.1} ns communication",
        perf.compute_ns_per_vmm, perf.communication_ns_per_vmm
    );
    Ok(())
}
