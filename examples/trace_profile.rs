//! One traced run end to end: compile a zoo model and serve a batch with
//! the global tracer in full mode, export the span chain as Chrome
//! trace-event JSON (open `target/experiment-data/traces/trace-profile.json`
//! in <https://ui.perfetto.dev> or `chrome://tracing`), tabulate the
//! process-wide metrics registry as markdown, and — when the profiling
//! hooks are compiled in — break the executor's work down per opcode.
//!
//! ```sh
//! cargo run --release --example trace_profile
//! # with the per-opcode executor profile:
//! cargo run --release --example trace_profile --features fpsa-sim/obs-profile
//! ```

use fpsa::core::Compiler;
use fpsa::nn::{zoo, GraphParameters};
use fpsa::obs::{export, Mode, Phase, Registry, Tracer};
use fpsa::serve::{ServeConfig, ServeEngine};
use fpsa::sim::{profile, Precision};

fn main() {
    // --- 1. Turn tracing on. Everything below records into the same ----
    // global tracer: the compile pipeline stages, the serving engine's
    // request→queue→execute→respond chain, and the queue-depth counter.
    let tracer = Tracer::global();
    tracer.set_mode(Mode::Full);

    // --- 2. Compile and bind under tracing (spans: synthesize, map, -----
    // place&route, estimate — one per pipeline stage).
    let graph = zoo::tiny_mlp();
    let params = GraphParameters::seeded(&graph, 7);
    let compiled = Compiler::fpsa().compile(&graph).expect("tiny_mlp compiles");
    let executor = compiled
        .executor(&graph, &params, &Precision::Float)
        .expect("tiny_mlp binds");

    // --- 3. Serve a small batch; sample the executor profile while the --
    // requests run. Without `--features fpsa-sim/obs-profile` the hooks
    // are compiled out and the snapshot stays empty.
    profile::reset();
    profile::set_sampling(true);
    let engine = ServeEngine::start(executor, ServeConfig::default().with_replicas(2));
    let inputs: Vec<Vec<f32>> = (0..8)
        .map(|i| (0..16).map(|j| ((i + j) % 10) as f32 * 0.1).collect())
        .collect();
    let outputs = engine.serve_batch(&inputs).expect("batch is served");
    engine.shutdown();
    profile::set_sampling(false);
    println!(
        "served {} requests, {} outputs each",
        outputs.len(),
        outputs[0].len()
    );

    // --- 4. Export the trace. The same exporter renders virtual-clock ---
    // traces from `fpsa::workload`'s deterministic replay byte-identically
    // across runs; this one carries live wall-clock timestamps.
    let events = tracer.events();
    tracer.set_mode(Mode::Off);
    tracer.clear();
    let spans = events
        .iter()
        .filter(|e| e.phase == Phase::SpanBegin)
        .count();
    let trace_path = export::write_chrome_trace("trace-profile", &events).expect("trace writes");
    println!(
        "wrote {} events ({spans} spans) to {}",
        events.len(),
        trace_path.display()
    );
    println!("  open it in https://ui.perfetto.dev or chrome://tracing");

    // --- 5. The metrics registry accumulated alongside the spans. -------
    let snapshot = Registry::global().snapshot();
    let summary_path = export::write_markdown_summary("trace-profile", "Traced run", &snapshot)
        .expect("summary writes");
    println!("wrote metrics summary to {}", summary_path.display());
    for (name, value) in &snapshot.counters {
        println!("  {name}: {value}");
    }

    // --- 6. Per-opcode executor profile (needs `fpsa-sim/obs-profile`). -
    let prof = profile::snapshot();
    if profile::compiled_in() {
        println!(
            "executor profile: {} retired, {} sparsity-skipped rows",
            prof.total_retired(),
            prof.total_skipped()
        );
        for (name, retired, skipped) in prof.rows() {
            println!("  {name:10} retired {retired:6}  skipped {skipped:6}");
        }
    } else {
        println!(
            "executor profile: hooks compiled out (rebuild with --features fpsa-sim/obs-profile)"
        );
    }
}
