//! The content-addressed compile cache and warm-started annealing.
//!
//! ```text
//! cargo run --release --example compile_cache
//! ```
//!
//! Walks the three tiers of compile reuse:
//!
//! 1. **exact hit** — recompiling an identical (graph, compiler config)
//!    returns the shared artifact in microseconds;
//! 2. **warm start** — compiling a one-layer-resized model through a
//!    warm-start-enabled cache seeds the annealer from the nearest donor's
//!    placement, cutting the move budget while matching the cold HPWL;
//! 3. **sweep dedup** — a repeated-config evaluation sweep compiles each
//!    distinct point once and stamps every report's trace with its cache
//!    outcome.

use fpsa::core::{CompileCache, Compiler, Evaluator};
use fpsa::nn::params::mlp_graph;
use fpsa::nn::zoo::{self, Benchmark};
use std::time::Instant;

fn main() {
    // 1. Exact hit: the second compile of MLP-500-100 is a lookup.
    let cache = CompileCache::new(8);
    let compiler = Compiler::fpsa();
    let graph = zoo::mlp_500_100();
    let start = Instant::now();
    let (_, info) = cache.compile_with_info(&compiler, &graph).unwrap();
    println!(
        "cold compile:    {:?} ({}, key {})",
        start.elapsed(),
        info.outcome.name(),
        info.key
    );
    let start = Instant::now();
    let (_, info) = cache.compile_with_info(&compiler, &graph).unwrap();
    println!(
        "cached recompile: {:?} ({}, saved {:.1} ms)",
        start.elapsed(),
        info.outcome.name(),
        info.saved_wall_ns / 1e6
    );

    // 2. Warm start: resize one hidden layer and recompile through a
    //    warm-start-enabled cache — the donor's placement seeds the anneal.
    let warm_cache = CompileCache::new(8).with_warm_start();
    let donor = mlp_graph("edited-mlp", &[512, 384, 256, 10]);
    let edited = mlp_graph("edited-mlp", &[512, 384, 288, 10]);
    warm_cache.compile(&compiler, &donor).unwrap();
    let (model, info) = warm_cache.compile_with_info(&compiler, &edited).unwrap();
    let quality = model
        .physical
        .as_ref()
        .expect("example models get full P&R")
        .placement
        .quality();
    println!(
        "\nresized-model compile: {} ({} of {} blocks seeded, {} anneal moves)",
        info.outcome.name(),
        quality.seeded_blocks,
        model.mapping.netlist.len(),
        quality.moves_evaluated,
    );

    // 3. Sweep dedup: six points, two distinct configs, two compiles.
    let sweep_cache = CompileCache::new(8);
    let evaluator = Evaluator::fpsa();
    for (benchmark, duplication) in [
        (Benchmark::Mlp500x100, 1),
        (Benchmark::LeNet, 4),
        (Benchmark::Mlp500x100, 1),
        (Benchmark::LeNet, 4),
        (Benchmark::Mlp500x100, 1),
        (Benchmark::LeNet, 4),
    ] {
        let eval = evaluator.evaluate_with_cache(benchmark, duplication, Some(&sweep_cache));
        let outcome = eval
            .performance
            .compile
            .as_ref()
            .and_then(|t| t.cache())
            .map(|c| c.outcome.name())
            .unwrap_or("-");
        println!(
            "{:>12} x{duplication}: {outcome:>5}  ({:.0} samples/s)",
            eval.model, eval.performance.throughput_samples_per_s
        );
    }
    println!("\n{}", sweep_cache.stats().summary());
}
