//! The headline experiment: how much faster is FPSA than PRIME on VGG16?
//!
//! ```text
//! cargo run --release --example vgg16_speedup
//! ```
//!
//! Reproduces Figures 2, 6 and 7: the PRIME performance bounds, the
//! three-architecture comparison (PRIME / FP-PRIME / FPSA) across chip areas,
//! and the per-PE latency breakdown that explains where the speedup comes
//! from.

use fpsa::core::experiments::{fig2, fig6, fig7};

fn main() {
    println!("== VGG16: PRIME vs FP-PRIME vs FPSA ==\n");

    println!("Figure 2 — PRIME bounds (peak / ideal / real) vs chip area:");
    println!("{}", fig2::to_table(&fig2::run()));

    let fig6_data = fig6::run();
    println!("Figure 6 — real performance of the three architectures vs area:");
    println!("{}", fig6::to_table(&fig6_data));
    println!(
        "FPSA / PRIME speedup at the largest evaluated area: {:.0}x\n",
        fig6_data.speedup_at_max_area
    );

    println!("Figure 7 — average per-PE latency breakdown:");
    let fig7_data = fig7::run();
    println!("{}", fig7::to_table(&fig7_data));
    let bars = &fig7_data.bars;
    println!(
        "Replacing the bus with the reconfigurable routing removes {:.1}% of PRIME's per-PE latency;",
        100.0 * (bars[0].total_ns() - bars[1].total_ns()) / bars[0].total_ns()
    );
    println!(
        "the spiking PE then cuts the remaining computation time by {:.1}x.",
        bars[1].compute_ns / bars[2].compute_ns
    );
    println!("\nWhere the shared VGG16 compile spent its time:");
    println!("{}", fig7_data.compile.to_table());
}
