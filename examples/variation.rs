//! Device-variation study: the splice vs add weight representations.
//!
//! ```text
//! cargo run --release --example variation
//! ```
//!
//! Reproduces Figure 9: a trained network is quantized to 8-bit weights,
//! programmed onto simulated ReRAM cells whose conductance carries the
//! measured Gaussian variation, and evaluated with both the conventional
//! splice representation and the paper's add representation for 1–16 cells
//! per weight.

use fpsa::core::experiments::fig9;
use fpsa::device::variation::{CellVariation, WeightScheme};

fn main() {
    println!("== Figure 9: weight representation under ReRAM variation ==\n");

    println!("Analytic normalized deviation (Section 7.2):");
    let variation = CellVariation::measured();
    for cells in [1usize, 2, 4, 8, 16] {
        let splice = WeightScheme::Splice {
            cells,
            bits_per_cell: 4,
        }
        .normalized_deviation(variation);
        let add = WeightScheme::Add {
            cells,
            bits_per_cell: 4,
        }
        .normalized_deviation(variation);
        println!("  {cells:>2} cells:  splice {splice:.4}   add {add:.4}");
    }

    println!("\nMonte-Carlo accuracy study on a trained network:");
    let fig = fig9::run();
    println!("{}", fig9::to_table(&fig));
    println!(
        "full-precision accuracy of the reference network: {:.3}",
        fig.full_precision_accuracy
    );
    println!(
        "\nThe splice curve stays flat regardless of how many cells are spent, while the add\n\
         method's deviation falls with the square root of the cell count — the same shape as\n\
         the paper's Figure 9 (measured there on VGG16/ImageNet; see DESIGN.md for the\n\
         substitution rationale)."
    );
}
