//! Scalability study across the full benchmark zoo.
//!
//! ```text
//! cargo run --release --example scalability
//! ```
//!
//! Reproduces Figure 8 and Table 3: every benchmark model is compiled at
//! duplication degrees 1x / 4x / 16x / 64x and the resulting performance,
//! area and utilization bounds are reported, followed by the Table 3 summary
//! at 64x duplication.

use fpsa::core::experiments::{fig8, table3};

fn main() {
    println!("== Figure 8: scalability with the duplication degree ==\n");
    let fig = fig8::run();
    println!("{}", fig8::to_table(&fig));
    for dup in [4u64, 16, 64] {
        let (speedup, area) = fig.geomean_scaling(dup);
        println!(
            "geometric mean at {dup:>2}x duplication: {speedup:.2}x performance for {area:.2}x area"
        );
    }

    println!("\n== Table 3: overall FPSA performance (64x duplication) ==\n");
    let cols = table3::run();
    println!("{}", table3::to_table(&cols));
    println!(
        "(The published throughput/area columns are included for side-by-side comparison; see EXPERIMENTS.md.)"
    );
}
