//! Serve a mixed model zoo to several tenants through one co-located
//! fleet: register models (compile-once through the shared cache), pack
//! them onto fabrics by measured block demand, run the weighted-fair
//! multi-tenant engine, and compare the co-located layout against
//! dedicated single-model engines on the deterministic virtual clock.
//!
//! ```sh
//! cargo run --release --example fleet_serving
//! ```

use fpsa::core::Compiler;
use fpsa::fleet::experiments::fleet::{fabric_capacity, zoo_graph};
use fpsa::fleet::{FleetConfig, FleetEngine, FleetPlacement, ModelRegistry, SloBudget};
use fpsa::nn::GraphParameters;
use fpsa::serve::ServeError;
use fpsa::sim::Precision;
use fpsa::workload::{
    simulate, simulate_fleet, ArrivalProcess, FleetPolicy, MixEntry, Scenario, ServiceModel,
    TraceRecorder, TraceReplayer,
};

fn main() {
    // --- 1. Register the zoo: compile once per model, measure demand. --
    let mut registry = ModelRegistry::new(Compiler::fpsa());
    for (index, name) in ["tiny_mlp", "tiny_cnn", "tiny_resnet"].iter().enumerate() {
        let graph = zoo_graph(name).expect("zoo model");
        let params = GraphParameters::seeded(&graph, 7 + index as u64);
        let id = registry
            .register(*name, graph, params, Precision::Float)
            .expect("tiny zoo models compile");
        let spec = registry.get(id).unwrap();
        println!(
            "registered {:12} as model {} — key {}, demand {} PEs / {} SMBs ({})",
            spec.name,
            id,
            &spec.key.hex()[..12],
            spec.demand.pes,
            spec.demand.smbs,
            spec.cache_outcome.name()
        );
    }

    // --- 2. Pack the zoo onto two fabrics. -----------------------------
    let placement = FleetPlacement::pack(&registry, 2, fabric_capacity())
        .expect("the tiny zoo fits two fabrics");
    for (fabric, hosted) in placement.hosted.iter().enumerate() {
        println!(
            "fabric {fabric}: hosts {:?}, residual {} PEs",
            hosted, placement.residual[fabric].pes
        );
    }

    // --- 3. Serve two tenant classes with a 3:1 weight split and an ----
    // SLO budget on the paid tier.
    let engine = FleetEngine::start(
        registry.clone(),
        placement.clone(),
        FleetConfig::default()
            .with_replicas(2)
            .with_batching(8, 200)
            .with_tenant_weight(0, 1) // free tier
            .with_tenant_weight(1, 3) // pro tier
            .with_slo(
                1,
                SloBudget {
                    p99_budget_us: 50_000,
                    shed_depth: 64,
                },
            ),
    );
    let input_lens: Vec<usize> = (0..registry.len() as u16)
        .map(|m| registry.get(m).unwrap().input_len().unwrap())
        .collect();
    for model in 0..registry.len() as u16 {
        for tenant in 0..2u16 {
            let out = engine
                .infer(tenant, model, vec![0.5; input_lens[usize::from(model)]])
                .expect("request is served");
            println!("tenant {tenant} x model {model}: {} outputs", out.len());
        }
    }
    // Unknown models are a typed rejection, not a panic or a hang.
    match engine.infer(0, 99, vec![0.0; 16]) {
        Err(ServeError::UnknownModel { model }) => println!("model {model}: typed rejection"),
        other => panic!("expected UnknownModel, got {other:?}"),
    }

    // --- 4. Replay a recorded multi-tenant trace through the fleet. ----
    // The arrival rate saturates the hot model's share of one fabric
    // (~34k req/s at this service model) but not the two-fabric fleet —
    // the regime where co-location pays.
    let mut scenario = Scenario::steady("fleet-demo", "tiny_mlp", 0xF1EE7, 2_000).with_arrival(
        ArrivalProcess::Poisson {
            rate_per_s: 60_000.0,
        },
    );
    scenario.service = ServiceModel {
        base_us: 150,
        per_request_us: 40,
    };
    scenario.models = vec![
        MixEntry {
            name: "tiny_mlp".into(),
            weight: 3.0,
        },
        MixEntry {
            name: "tiny_cnn".into(),
            weight: 1.0,
        },
        MixEntry {
            name: "tiny_resnet".into(),
            weight: 1.0,
        },
    ];
    scenario.tenants = vec![
        MixEntry {
            name: "free".into(),
            weight: 1.0,
        },
        MixEntry {
            name: "pro".into(),
            weight: 3.0,
        },
    ];
    let trace = TraceRecorder::new(&scenario)
        .record()
        .expect("scenario is valid");
    let outcome = TraceReplayer::new(&trace, 0).replay_routed(&engine, &input_lens);
    let stats = engine.shutdown();
    println!(
        "replayed {} requests: {:.0} req/s wall, bind cache {} hits / {} misses",
        trace.len(),
        outcome.throughput_rps(),
        stats.bind_cache.hits,
        stats.bind_cache.misses
    );
    for status in stats.slo_status() {
        println!(
            "tenant {}: p99 {} us (budget {:?}), shed {}",
            status.tenant, status.p99_latency_us, status.budget_us, status.shed
        );
    }

    // --- 5. Virtual clock: co-located fleet vs dedicated fabrics. ------
    let fleet_policy = FleetPolicy {
        per_fabric: scenario.policy,
        hosted: placement.hosted.clone(),
        tenant_weights: vec![(0, 1), (1, 3)],
    };
    let fleet = simulate_fleet(&trace, &fleet_policy, scenario.service);
    let mut dedicated_first = u64::MAX;
    let mut dedicated_last = 0u64;
    for model in 0..registry.len() as u16 {
        let events: Vec<_> = trace
            .events
            .iter()
            .filter(|e| e.model == model)
            .copied()
            .collect();
        if events.is_empty() {
            continue;
        }
        let first = events[0].at_us;
        let sub = fpsa::workload::Trace {
            scenario: trace.scenario.clone(),
            seed: trace.seed,
            events,
        };
        let replay = simulate(&sub, scenario.policy, scenario.service);
        dedicated_first = dedicated_first.min(first);
        dedicated_last = dedicated_last.max(first + replay.makespan_us);
    }
    let dedicated_makespan = dedicated_last - dedicated_first;
    println!(
        "virtual makespan: fleet {:.1} ms vs dedicated {:.1} ms ({:.2}x)",
        fleet.aggregate.makespan_us as f64 / 1e3,
        dedicated_makespan as f64 / 1e3,
        dedicated_makespan as f64 / fleet.aggregate.makespan_us.max(1) as f64
    );
}
