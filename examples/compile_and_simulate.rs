//! Functional end-to-end demo: train a small network, run it through the
//! cycle-accurate spiking PEs, and compare architectures for deploying it.
//!
//! ```text
//! cargo run --release --example compile_and_simulate
//! ```
//!
//! This example exercises the parts of the stack the performance figures do
//! not: the tiny training engine, the spike-level functional simulation of
//! the PE (Equations 1–6 of the paper), and compilation of the same model for
//! the FPSA, FP-PRIME and PRIME targets.

use fpsa::arch::ArchitectureConfig;
use fpsa::core::compiler::Compiler;
use fpsa::nn::dataset::Dataset;
use fpsa::nn::mlp::{Mlp, TrainConfig};
use fpsa::nn::zoo;
use fpsa::sim::SpikingMlpRunner;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Train a small network and run it on spiking PEs ==\n");
    let data = Dataset::gaussian_blobs(4, 80, 8, 0.3, 7);
    let (train, test) = data.split(0.8);
    let mut mlp = Mlp::new(&[8, 24, 4], 1);
    mlp.train(&train, TrainConfig::default());
    let float_accuracy = mlp.accuracy(&test);
    let spiking_accuracy = SpikingMlpRunner::new(64).accuracy(&mlp, &test);
    println!("  float accuracy           : {float_accuracy:.3}");
    println!("  spiking (64-cycle) window: {spiking_accuracy:.3}");
    println!("  (the spiking PE computes ReLU(Wx) with 6-bit rate-coded precision)\n");

    println!("== Compile CIFAR-VGG17 for the three architectures ==\n");
    let model = zoo::cifar_vgg17();
    for arch in [
        ArchitectureConfig::prime(),
        ArchitectureConfig::fp_prime(),
        ArchitectureConfig::fpsa(),
    ] {
        let name = arch.kind.name();
        let compiled = Compiler::for_architecture(arch)
            .with_duplication(16)
            .without_place_and_route()
            .compile(&model)?;
        let perf = compiled.performance();
        println!(
            "  {name:<9}: {:>12.0} samples/s, latency {:>10.1} us, area {:>8.2} mm^2",
            perf.throughput_samples_per_s, perf.latency_us, perf.area_mm2
        );
    }
    println!("\nFPSA wins on every axis: the routed fabric removes the bus bottleneck and the\nspiking PE shrinks both the area and the per-VMM latency.");
    Ok(())
}
