//! Shard a model across multiple fabrics and pipeline-serve it: partition
//! under a per-chip PE budget, compile every stage through the ordinary
//! pipeline, chain the stage executors (bit-identical to the unsharded
//! run), and stream batches through the chips.
//!
//! ```sh
//! cargo run --release --example shard_pipeline
//! ```

use fpsa::core::Compiler;
use fpsa::nn::params::mlp_graph;
use fpsa::nn::GraphParameters;
use fpsa::serve::ServeConfig;
use fpsa::shard::experiments::sharding;
use fpsa::shard::{FabricBudget, ShardCompiler};
use fpsa::sim::Precision;
use fpsa_bench::save_json;

fn main() {
    // --- A model too big for one (small) fabric. ----------------------
    let graph = mlp_graph("MLP-300-280-260-10", &[300, 280, 260, 10]);
    let params = GraphParameters::seeded(&graph, 42);

    // Pretend each chip offers 8 PEs: the whole model needs 17, so the
    // auto-sharder must spill across chips.
    let sharded = ShardCompiler::fpsa(FabricBudget::with_pes(8))
        .compile_auto(&graph)
        .expect("the model partitions under the budget");
    println!(
        "{} auto-partitioned onto {} fabrics:",
        sharded.model,
        sharded.stage_count()
    );
    for (i, stage) in sharded.stages.iter().enumerate() {
        println!(
            "  chip {i}: nodes {:?}, {} ({} boundary values out)",
            stage.nodes, stage.demand, stage.boundary_elements
        );
    }

    // --- Bit-identity: sharded execution == unsharded execution. ------
    let unsharded = Compiler::fpsa().compile(&graph).expect("compiles whole");
    let direct = unsharded
        .executor(&graph, &params, &Precision::Float)
        .expect("binds whole");
    let chained = sharded
        .executor(&params, &Precision::Float)
        .expect("binds sharded");
    let request = vec![0.25f32; 300];
    let want = direct.run(&request).expect("unsharded run");
    let got = chained.run(&request).expect("sharded run");
    assert_eq!(got, want, "sharding must never change the numbers");
    println!("sharded logits match the single-fabric run bit for bit");

    // --- Modeled pipeline performance with chip-to-chip transport. ----
    let perf = sharded.performance();
    println!(
        "modeled: {:.0} samples/s over {} chips (period {:.1} ns, latency {:.2} us)",
        perf.throughput_samples_per_s,
        perf.stages.len(),
        perf.pipeline_period_ns,
        perf.latency_us
    );
    for (i, t) in perf.transports.iter().enumerate() {
        println!(
            "  link {i}: {} bytes/sample, {:.1} ns",
            t.bytes, t.transfer_ns
        );
    }

    // --- Pipeline-parallel serving across the chips. -------------------
    let engine = sharded
        .serve(
            &params,
            &Precision::Float,
            ServeConfig::default()
                .with_max_batch(8)
                .with_batch_window_us(200),
        )
        .expect("sharded model serves");
    let served = engine.infer(request).expect("request is served");
    assert_eq!(served, want);
    let stats = engine.shutdown();
    println!(
        "served {} request(s) through the pipeline, p99 latency <= {} us",
        stats.completed,
        stats.p99_latency_us()
    );

    // --- The full sweep (also the `sharding_pipeline` bench target). ---
    let reports = sharding::run();
    println!("\n{}", sharding::to_table(&reports));
    save_json("BENCH_sharding", &reports);
}
