//! Compile a network, execute it on the simulated fabric, and diff it
//! against the golden-model reference — the end-to-end numeric proof that
//! compilation preserves semantics. Also peeks inside the bind-time
//! bytecode: the lowering statistics (structural sparsity, slab sizes) and a
//! disassembly of the instruction stream the dispatch loop executes.
//!
//! ```sh
//! cargo run --release --example compile_execute
//! ```

use fpsa::core::experiments::fig9_compiled;
use fpsa::core::validate::{validate, ValidationConfig};
use fpsa::core::Compiler;
use fpsa::nn::{zoo, GraphParameters};
use fpsa::sim::Precision;

fn main() {
    let compiler = Compiler::fpsa();
    let config = ValidationConfig::default();

    // What `Executor::bind` compiled: every scheduled tile program is
    // lowered once into flat bytecode with preresolved slab offsets; the
    // stats record how much structural sparsity the lowering skipped.
    let graph = zoo::mlp_500_100();
    let params = GraphParameters::seeded(&graph, 0xD1FF);
    let compiled = compiler.compile(&graph).expect("compiles");
    let exec = compiled
        .executor(&graph, &params, &Precision::Float)
        .expect("binds");
    let stats = exec.lowering_stats();
    println!("bytecode lowering of {}:", graph.name);
    println!(
        "  {} instructions, {} row runs covering {} MAC rows",
        stats.instructions, stats.row_runs, stats.mac_rows
    );
    println!(
        "  skipped {} all-zero rows and {} all-zero tiles at lowering",
        stats.skipped_zero_rows, stats.skipped_zero_tiles
    );
    println!(
        "  value slab {} elems, partial slab {} elems, weight slab {} elems",
        stats.value_slab, stats.partial_slab, stats.weight_slab
    );
    println!("disassembly (first 8 instructions):");
    print!("{}", exec.disassemble(8));
    println!();

    println!("differential validation (compiled execution vs golden reference)");
    println!("model            float max|Δ|   integer   verdict");
    for graph in zoo::differential_suite() {
        let params = GraphParameters::seeded(&graph, 0xD1FF);
        let report = validate(&compiler, &graph, &params, &config).expect("validation runs");
        println!(
            "{:<16} {:>12.3e}   {}   {}",
            report.model,
            report.float_max_abs,
            if report.integer_bit_exact {
                "bit-exact"
            } else {
                "DIVERGED "
            },
            if report.passed() { "ok" } else { "FAIL" },
        );
    }

    println!();
    println!("Figure 9 on a compiled model (accuracy under per-PE programming noise):");
    let fig = fig9_compiled::run_with(
        fpsa::device::variation::CellVariation::measured(),
        &[1, 2, 8],
        2,
    );
    println!(
        "compiled accuracy {:.3} (reference {:.3})",
        fig.compiled_accuracy, fig.reference_accuracy
    );
    println!("{}", fig9_compiled::to_table(&fig));
}
