//! Compile a network, execute it on the simulated fabric, and diff it
//! against the golden-model reference — the end-to-end numeric proof that
//! compilation preserves semantics.
//!
//! ```sh
//! cargo run --release --example compile_execute
//! ```

use fpsa::core::experiments::fig9_compiled;
use fpsa::core::validate::{validate, ValidationConfig};
use fpsa::core::Compiler;
use fpsa::nn::{zoo, GraphParameters};

fn main() {
    let compiler = Compiler::fpsa();
    let config = ValidationConfig::default();

    println!("differential validation (compiled execution vs golden reference)");
    println!("model            float max|Δ|   integer   verdict");
    for graph in zoo::differential_suite() {
        let params = GraphParameters::seeded(&graph, 0xD1FF);
        let report = validate(&compiler, &graph, &params, &config).expect("validation runs");
        println!(
            "{:<16} {:>12.3e}   {}   {}",
            report.model,
            report.float_max_abs,
            if report.integer_bit_exact {
                "bit-exact"
            } else {
                "DIVERGED "
            },
            if report.passed() { "ok" } else { "FAIL" },
        );
    }

    println!();
    println!("Figure 9 on a compiled model (accuracy under per-PE programming noise):");
    let fig = fig9_compiled::run_with(
        fpsa::device::variation::CellVariation::measured(),
        &[1, 2, 8],
        2,
    );
    println!(
        "compiled accuracy {:.3} (reference {:.3})",
        fig.compiled_accuracy, fig.reference_accuracy
    );
    println!("{}", fig9_compiled::to_table(&fig));
}
