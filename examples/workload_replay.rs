//! Record a declarative workload scenario into a deterministic trace,
//! replay it two ways — against a real `ServeEngine` (bit-identical
//! outputs) and under the deterministic virtual clock (identical
//! `ServeStats`) — then phase-sample the trace SimPoint-style and show the
//! sampled estimate tracking the full replay.
//!
//! ```sh
//! cargo run --release --example workload_replay
//! ```

use fpsa::core::Compiler;
use fpsa::nn::{zoo, GraphParameters};
use fpsa::serve::{ServeConfig, ServeEngine};
use fpsa::sim::Precision;
use fpsa::workload::{
    check_tolerance, plan, simulate, simulate_phased, ArrivalProcess, PhaseConfig, Scenario,
    TraceRecorder, TraceReplayer,
};

fn main() {
    // --- 1. Describe the workload and record it into a trace. ---------
    let scenario = Scenario::steady("example-diurnal", "MLP-500-100", 42, 30_000)
        .with_arrival(ArrivalProcess::Diurnal {
            base_rate_per_s: 600.0,
            peak_rate_per_s: 8_000.0,
            period_us: 1_000_000,
        })
        .with_batch_mix(vec![(1, 0.7), (4, 0.3)]);
    let trace = TraceRecorder::new(&scenario)
        .record()
        .expect("scenario is valid");
    println!(
        "recorded `{}`: {} events over {:.2} virtual s, fingerprint {:016x}",
        scenario.name,
        trace.len(),
        trace.duration_us() as f64 / 1e6,
        trace.fingerprint()
    );

    // --- 2. Virtual replay: deterministic engine-contract stats. ------
    let full = simulate(&trace, scenario.policy, scenario.service);
    println!(
        "full virtual replay: {:.0} req/s, p50 {} us, p99 {} us ({} batches)",
        full.throughput_rps,
        full.stats.latency_percentile_us(0.5),
        full.stats.latency_percentile_us(0.99),
        full.stats.batches
    );
    // Same trace in, bit-identical stats out — every time.
    assert_eq!(full, simulate(&trace, scenario.policy, scenario.service));

    // --- 3. Phase-sample: replay representatives only. ----------------
    let phase_plan = plan(&trace, PhaseConfig::default());
    let phased = simulate_phased(&trace, &phase_plan, scenario.policy, scenario.service);
    println!(
        "phase-sampled ({} phases, {:.1}% of events): {:.0} req/s, p99 {} us",
        phase_plan.phases.len(),
        phase_plan.sampled_fraction() * 100.0,
        phased.throughput_rps,
        phased.latency_percentile_us(0.99)
    );
    check_tolerance(&full, &phased).expect("sampled estimate tracks the full replay");

    // --- 4. Real-engine replay: bit-identical outputs. ----------------
    let graph = zoo::mlp_500_100();
    let params = GraphParameters::seeded(&graph, 42);
    let compiled = Compiler::fpsa().compile(&graph).expect("MLP compiles");
    let mut short = scenario.clone();
    short.requests = 64;
    let short_trace = TraceRecorder::new(&short)
        .record()
        .expect("scenario is valid");
    let replayer = TraceReplayer::new(&short_trace, graph.input_elements());

    let engine = ServeEngine::start(
        compiled
            .executor(&graph, &params, &Precision::Float)
            .expect("MLP binds"),
        ServeConfig::default().with_replicas(2).with_max_batch(8),
    );
    let once = replayer.replay(&engine);
    let again = replayer.replay_concurrent(&engine, 4);
    assert_eq!(
        once.outputs, again.outputs,
        "same trace, same outputs — whatever the client threading"
    );
    let stats = engine.shutdown();
    println!(
        "real-engine replay: {} requests twice, {:.0} req/s wall, outputs bit-identical",
        once.outputs.len(),
        once.throughput_rps()
    );
    assert_eq!(stats.completed, 2 * short_trace.len() as u64);
}
