//! The observability acceptance test: a fleet-zoo run with the global
//! tracer in [`Mode::Full`] (a) keeps every output bit-identical to
//! direct execution — tracing only observes — and (b) exports a
//! well-formed Chrome trace-event JSON in which every tenant has at
//! least one request whose compile→queue→execute→respond chain nests
//! under one correlation id. One test, its own binary: the global
//! tracer is process-wide state.

use fpsa::core::Compiler;
use fpsa::fleet::{FleetConfig, FleetEngine, FleetPlacement, ModelRegistry};
use fpsa::nn::{zoo, GraphParameters};
use fpsa::obs::{export, Event, Mode, Phase, Tracer};
use fpsa::sim::Precision;

const TENANTS: u16 = 2;

fn sample(len: usize, seed: u64) -> Vec<f32> {
    (0..len)
        .map(|i| ((seed + i as u64) % 10) as f32 * 0.1)
        .collect()
}

/// The exported document is structurally valid JSON: balanced braces and
/// brackets outside string literals, no trailing comma before a closer.
/// (A full parser is overkill; CI additionally loads the exported file
/// with Python's `json` module.)
fn assert_balanced_json(doc: &str) {
    let mut depth: i64 = 0;
    let mut in_string = false;
    let mut escaped = false;
    let mut last_significant = ' ';
    for c in doc.chars() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                assert_ne!(last_significant, ',', "trailing comma before {c}");
                depth -= 1;
                assert!(depth >= 0, "unbalanced closer");
            }
            _ => {}
        }
        if !c.is_whitespace() {
            last_significant = c;
        }
    }
    assert_eq!(depth, 0, "unbalanced trace JSON");
    assert!(!in_string, "unterminated string in trace JSON");
}

#[test]
fn a_traced_fleet_zoo_run_exports_nested_chrome_spans_per_tenant() {
    let tracer = Tracer::global();
    tracer.clear();
    tracer.set_mode(Mode::Full);

    // The fleet-zoo model mix, compiled with tracing on: every pipeline
    // stage records a span into the global tracer.
    let mut registry = ModelRegistry::new(Compiler::fpsa());
    for (name, graph, seed) in [
        ("tiny_mlp", zoo::tiny_mlp(), 11),
        ("tiny_cnn", zoo::tiny_cnn(), 13),
    ] {
        let params = GraphParameters::seeded(&graph, seed);
        registry
            .register(name, graph, params, Precision::Float)
            .expect("zoo models compile");
    }

    // Ground truth, per request: direct single-threaded execution.
    let requests: Vec<(u16, u16)> = (0..8u64)
        .map(|i| ((i % u64::from(TENANTS)) as u16, (i % 2) as u16))
        .collect();
    let direct: Vec<Vec<f32>> = requests
        .iter()
        .enumerate()
        .map(|(i, &(_, model))| {
            let spec = registry.get(model).expect("registered");
            spec.compiled
                .executor(&spec.graph, &spec.params, &spec.precision)
                .expect("models bind")
                .run(&sample(spec.input_len().unwrap(), i as u64))
                .expect("direct run")
        })
        .collect();

    let capacity = fpsa::arch::FabricCapacity::new(100_000, 20_000, 20_000);
    let placement = FleetPlacement::pack(&registry, 2, capacity).expect("the zoo fits");
    let engine = FleetEngine::start(
        registry,
        placement,
        FleetConfig::default()
            .with_replicas(2)
            .with_tenant_weight(0, 1)
            .with_tenant_weight(1, 3),
    );
    let tickets: Vec<_> = requests
        .iter()
        .enumerate()
        .map(|(i, &(tenant, model))| {
            let len = engine.registry().get(model).unwrap().input_len().unwrap();
            engine.submit(tenant, model, sample(len, i as u64))
        })
        .collect();
    let served: Vec<Vec<f32>> = tickets
        .into_iter()
        .map(|t| t.wait().expect("request served"))
        .collect();
    assert_eq!(served, direct, "tracing perturbed fleet outputs");
    engine.shutdown();

    let events = tracer.events();
    tracer.set_mode(Mode::Off);
    tracer.clear();

    // The compile pipeline traced each stage of each model.
    for stage in ["synthesize", "map", "estimate"] {
        assert!(
            events
                .iter()
                .filter(|e| e.cat == "compile" && e.phase == Phase::SpanBegin && e.name == stage)
                .count()
                >= 2,
            "both zoo models record a '{stage}' compile span"
        );
    }

    // Per tenant: at least one request whose queue → execute → respond
    // children all nest under the root's correlation id.
    for tenant in 0..TENANTS {
        let full_chain = |root: &&Event| {
            ["queue", "execute", "respond"].iter().all(|&child| {
                events
                    .iter()
                    .any(|e| e.phase == Phase::SpanBegin && e.name == child && e.id == root.id)
                    && events
                        .iter()
                        .any(|e| e.phase == Phase::SpanEnd && e.name == child && e.id == root.id)
            })
        };
        let root = events
            .iter()
            .filter(|e| {
                e.cat == "fleet"
                    && e.phase == Phase::SpanBegin
                    && e.name == "request"
                    && e.args().contains(&("tenant", i64::from(tenant)))
            })
            .find(full_chain);
        assert!(
            root.is_some(),
            "tenant {tenant} has a request with a full queue/execute/respond chain"
        );
    }

    // Export lands under target/experiment-data/traces/ and is a valid
    // Chrome trace-event document.
    let path =
        export::write_chrome_trace("fleet-zoo-acceptance", &events).expect("trace export writes");
    assert!(path.ends_with("fleet-zoo-acceptance.json"));
    let doc = std::fs::read_to_string(&path).expect("trace readable");
    assert!(doc.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
    assert!(doc.contains("\"ph\":\"b\"") && doc.contains("\"ph\":\"e\""));
    assert_eq!(
        doc.matches("\"ph\":\"b\"").count(),
        doc.matches("\"ph\":\"e\"").count(),
        "every span begin has an end"
    );
    assert_balanced_json(&doc);
}
