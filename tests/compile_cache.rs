//! Acceptance pins for the content-addressed compile cache and warm-started
//! annealing (the "compile-at-scale" PR).
//!
//! The wall-clock pins run in `--release` only (`cargo test --release`, the
//! `compile-perf` CI job): debug-build compile times are dominated by
//! unoptimized hashing and would make the ratios meaningless. The structural
//! smoke test runs in every profile.

use fpsa::core::{CompileCache, Compiler};
use fpsa::nn::params::mlp_graph;
use fpsa::sim::CacheOutcome;
use std::sync::Arc;

#[cfg(not(debug_assertions))]
use {
    fpsa::core::compiler::PlaceRouteConfig,
    fpsa::core::evaluator::Evaluator,
    fpsa::nn::zoo::{self, Benchmark},
    fpsa::placeroute::WarmStart,
    std::time::Instant,
};

/// Debug-friendly smoke test: the second identical compile is a hit that
/// shares the artifact, and the trace carries the outcome.
#[test]
fn identical_compiles_share_one_artifact() {
    let cache = CompileCache::new(4);
    let graph = mlp_graph("cache-smoke", &[32, 24, 8]);
    let compiler = Compiler::fpsa();
    let (cold, info) = cache.compile_with_info(&compiler, &graph).unwrap();
    assert_eq!(info.outcome, CacheOutcome::Miss);
    let (hit, info) = cache.compile_with_info(&compiler, &graph).unwrap();
    assert_eq!(info.outcome, CacheOutcome::Hit);
    assert!(info.saved_wall_ns > 0.0);
    assert!(Arc::ptr_eq(&cold, &hit));
    assert_eq!(cache.stats().misses, 1);
    assert_eq!(cache.stats().hits, 1);
}

/// Pin: a cached recompile of MLP-500-100 is at least 10x faster than the
/// cold compile.
#[cfg(not(debug_assertions))]
#[test]
fn cached_recompile_is_ten_times_faster_than_cold() {
    let cache = CompileCache::new(4);
    let graph = zoo::mlp_500_100();
    let compiler = Compiler::fpsa();

    let start = Instant::now();
    let (cold, info) = cache.compile_with_info(&compiler, &graph).unwrap();
    let cold_wall = start.elapsed();
    assert_eq!(info.outcome, CacheOutcome::Miss);

    // Best of a few lookups (a hit is a hash + map probe; the first may
    // still pay allocator noise).
    let mut hit_wall = std::time::Duration::MAX;
    for _ in 0..5 {
        let start = Instant::now();
        let (hit, info) = cache.compile_with_info(&compiler, &graph).unwrap();
        hit_wall = hit_wall.min(start.elapsed());
        assert_eq!(info.outcome, CacheOutcome::Hit);
        assert!(Arc::ptr_eq(&cold, &hit));
    }
    assert!(
        hit_wall * 10 <= cold_wall,
        "cached recompile {hit_wall:?} not 10x faster than cold {cold_wall:?}"
    );
}

/// Pin: a repeated-config evaluation sweep through the cache takes at most
/// half the uncached wall-clock. Both sides run sequentially so the ratio is
/// independent of the host's core count.
#[cfg(not(debug_assertions))]
#[test]
fn cached_sweep_halves_the_uncached_wall_clock() {
    // VGG16's synthesis dominates the evaluation, so the ratio measures the
    // cache, not the fixed per-point overhead (graph build, estimation).
    let evaluator = Evaluator::fpsa();
    let points = [(Benchmark::Vgg16, 1u64); 6];

    let start = Instant::now();
    let uncached: Vec<_> = points
        .iter()
        .map(|&(b, d)| evaluator.evaluate(b, d))
        .collect();
    let uncached_wall = start.elapsed();

    let cache = CompileCache::new(4);
    let start = Instant::now();
    let cached: Vec<_> = points
        .iter()
        .map(|&(b, d)| evaluator.evaluate_with_cache(b, d, Some(&cache)))
        .collect();
    let cached_wall = start.elapsed();

    assert_eq!(cache.stats().misses, 1, "one compile for six points");
    assert_eq!(cache.stats().hits, 5);
    // Results are identical to the uncached sweep (trace equality ignores
    // cache provenance, like wall-clock).
    assert_eq!(uncached, cached);
    assert!(
        cached_wall * 2 <= uncached_wall,
        "cached sweep {cached_wall:?} not half of uncached {uncached_wall:?}"
    );
}

/// Pin: warm-starting the annealer from a one-layer-resized donor reaches
/// equal-or-better HPWL than the cold anneal in at most half the move
/// evaluations.
#[cfg(not(debug_assertions))]
#[test]
fn warm_started_anneal_beats_cold_on_a_resized_model() {
    // The donor and the edited model differ in one hidden-layer width; the
    // other layers' netlist blocks keep their identity, so the donor seeds
    // them directly.
    let donor_graph = mlp_graph("warm-mlp", &[512, 384, 256, 10]);
    let edited_graph = mlp_graph("warm-mlp", &[512, 384, 288, 10]);
    let compiler = Compiler::fpsa().with_place_route(PlaceRouteConfig::quality());

    let donor = compiler.compile(&donor_graph).unwrap();
    let donor_physical = donor.physical.as_ref().expect("donor gets full P&R");
    let cold = compiler.compile(&edited_graph).unwrap();
    let cold_physical = cold.physical.as_ref().expect("edited model gets full P&R");

    let seed = WarmStart::from_placement(&donor.mapping.netlist, &donor_physical.placement);
    let warm = compiler.compile_warm(&edited_graph, Some(seed)).unwrap();
    let warm_physical = warm.physical.as_ref().expect("warm compile gets full P&R");

    let cold_q = cold_physical.placement.quality();
    let warm_q = warm_physical.placement.quality();
    assert!(warm_q.warm_started);
    assert!(warm_q.seeded_blocks > 0, "surviving blocks must seed");
    assert!(
        warm_q.moves_evaluated <= cold_q.moves_evaluated / 2,
        "warm anneal spent {} moves, cold {}",
        warm_q.moves_evaluated,
        cold_q.moves_evaluated
    );
    assert!(
        warm_physical.placement.wirelength() <= cold_physical.placement.wirelength(),
        "warm HPWL {} regressed past cold {}",
        warm_physical.placement.wirelength(),
        cold_physical.placement.wirelength()
    );
    // The warm-started design still routes.
    assert!(warm_physical.timing.routable);
}
