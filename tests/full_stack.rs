//! Cross-crate integration tests: the whole flow from a framework-level
//! computational graph down to a placed, routed, configured fabric and its
//! performance report.

use fpsa::arch::ArchitectureConfig;
use fpsa::core::compiler::Compiler;
use fpsa::core::evaluator::Evaluator;
use fpsa::nn::zoo::{self, Benchmark};
use fpsa::sim::CommunicationEstimate;

#[test]
fn lenet_compiles_places_routes_and_reports_performance() {
    let compiled = Compiler::fpsa()
        .with_duplication(2)
        .compile(&zoo::lenet())
        .unwrap();

    // Synthesis produced only crossbar-sized tiles.
    assert!(compiled
        .core_graph
        .groups()
        .iter()
        .all(|g| g.rows <= 256 && g.cols <= 256));

    // Mapping produced a netlist whose PE count matches the allocation.
    let stats = compiled.mapping.netlist.stats();
    assert_eq!(stats.pe_count, compiled.mapping.allocation.total_pes());

    // Physical design ran and fits the FPSA channel width.
    let physical = compiled.physical.as_ref().expect("LeNet gets full P&R");
    assert!(physical.timing.routable);
    assert!(physical.timing.critical_delay_ns < 50.0);

    // The performance report is self-consistent.
    let perf = compiled.performance();
    assert!(perf.throughput_samples_per_s > 0.0);
    assert!(perf.latency_us > 0.0);
    assert!(perf.area_mm2 > 0.0);
    assert!(
        (perf.ops_per_mm2 - perf.ops_per_second / perf.area_mm2).abs() / perf.ops_per_mm2 < 1e-6
    );
}

#[test]
fn the_three_architectures_rank_as_the_paper_reports() {
    // PRIME < FP-PRIME < FPSA in throughput on the same CNN at the same
    // duplication degree.
    let model = zoo::cifar_vgg17();
    let mut throughput = Vec::new();
    for arch in [
        ArchitectureConfig::prime(),
        ArchitectureConfig::fp_prime(),
        ArchitectureConfig::fpsa(),
    ] {
        let compiled = Compiler::for_architecture(arch)
            .with_duplication(16)
            .without_place_and_route()
            .compile(&model)
            .unwrap();
        throughput.push(compiled.performance().throughput_samples_per_s);
    }
    assert!(throughput[1] > throughput[0], "FP-PRIME should beat PRIME");
    assert!(throughput[2] > throughput[1], "FPSA should beat FP-PRIME");
    assert!(
        throughput[2] > throughput[0] * 10.0,
        "FPSA should beat PRIME by a wide margin"
    );
}

#[test]
fn routed_delay_profile_feeds_the_performance_model() {
    let compiled = Compiler::fpsa().compile(&zoo::mlp_500_100()).unwrap();
    match compiled.communication_estimate() {
        CommunicationEstimate::Routed {
            critical_path_ns,
            average_path_ns,
        } => {
            let timing = &compiled.physical.as_ref().unwrap().timing;
            assert!((critical_path_ns - timing.critical_delay_ns).abs() < 1e-9);
            assert!((average_path_ns - timing.average_delay_ns).abs() < 1e-9);
            assert!(average_path_ns <= critical_path_ns);
        }
        other => panic!("expected a routed estimate, got {other:?}"),
    }
}

#[test]
fn evaluator_matches_a_manual_compile() {
    let eval = Evaluator::fpsa().evaluate(Benchmark::LeNet, 4);
    let manual = Compiler::fpsa()
        .with_duplication(4)
        .without_place_and_route()
        .compile(&zoo::lenet())
        .unwrap()
        .performance();
    assert!(
        (eval.performance.throughput_samples_per_s - manual.throughput_samples_per_s).abs()
            / manual.throughput_samples_per_s
            < 1e-9
    );
}

#[test]
fn duplication_sweep_is_superlinear_for_cnns_and_flat_for_mlps() {
    let evaluator = Evaluator::fpsa();
    let lenet_1 = evaluator.evaluate(Benchmark::LeNet, 1);
    let lenet_64 = evaluator.evaluate(Benchmark::LeNet, 64);
    let speedup = lenet_64.performance.ops_per_second / lenet_1.performance.ops_per_second;
    let area_growth = lenet_64.performance.area_mm2 / lenet_1.performance.area_mm2;
    assert!(speedup > 8.0);
    assert!(area_growth < speedup);

    let mlp_1 = evaluator.evaluate(Benchmark::Mlp500x100, 1);
    let mlp_64 = evaluator.evaluate(Benchmark::Mlp500x100, 64);
    let mlp_speedup = mlp_64.performance.ops_per_second / mlp_1.performance.ops_per_second;
    assert!(mlp_speedup < 1.5);
}

#[test]
fn bitstreams_round_trip_for_every_small_model() {
    for model in [zoo::mlp_500_100(), zoo::lenet()] {
        let compiled = Compiler::fpsa().compile(&model).unwrap();
        let bitstream = compiled.bitstream();
        let bytes = bitstream.to_bytes();
        let parsed = fpsa::arch::Bitstream::from_bytes(bytes).expect("bitstream parses back");
        assert_eq!(parsed.sections().len(), bitstream.sections().len());
    }
}
