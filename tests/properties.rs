//! Property-based tests over the core data structures and invariants of the
//! stack, spanning multiple crates.

use fpsa::device::spiking::{SpikeTrain, SpikingPe};
use fpsa::device::variation::{CellVariation, WeightScheme};
use fpsa::mapper::{AllocationPolicy, Mapper};
use fpsa::nn::quant::Quantizer;
use fpsa::nn::{ComputationalGraph, Operator, TensorShape};
use fpsa::synthesis::{CoreOpGraph, CoreOpGroup, CoreOpKind, NeuralSynthesizer, SynthesisConfig};
use proptest::prelude::*;

fn arbitrary_mlp(sizes: Vec<usize>) -> ComputationalGraph {
    let mut g = ComputationalGraph::new("prop-mlp");
    let mut prev = g.add_input("input", TensorShape::Features(sizes[0]));
    for (i, pair) in sizes.windows(2).enumerate() {
        let fc = g.add_node(
            format!("fc{i}"),
            Operator::Linear {
                in_features: pair[0],
                out_features: pair[1],
            },
            vec![prev],
        );
        prev = g.add_node(format!("relu{i}"), Operator::Relu, vec![fc]);
    }
    g
}

fn chain_graph(reuses: &[u64]) -> CoreOpGraph {
    let mut g = CoreOpGraph::new("prop-chain", 256, 256);
    let mut prev = None;
    for (i, &r) in reuses.iter().enumerate() {
        let id = g.add_group(CoreOpGroup {
            id: 0,
            name: format!("g{i}"),
            source_node: i,
            kind: CoreOpKind::Vmm,
            rows: 256,
            cols: 256,
            row_offset: 0,
            col_offset: 0,
            reuse_degree: r,
            relu: true,
            layer_depth: i,
        });
        if let Some(p) = prev {
            g.add_edge(p, id);
        }
        prev = Some(id);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Spike-train encoding never loses more than one spike of precision.
    #[test]
    fn spike_encoding_error_is_bounded(value in 0.0f64..1.0, window in 8usize..256) {
        let train = SpikeTrain::encode(value, window);
        let err = (train.decode() - value).abs();
        prop_assert!(err <= 1.0 / window as f64 + 1e-12);
        prop_assert!(train.count() <= window);
    }

    /// The spiking PE never produces more spikes than the sampling window and
    /// never produces a negative-looking result (ReLU semantics).
    #[test]
    fn spiking_pe_output_is_bounded(
        weights in proptest::collection::vec(
            proptest::collection::vec(-1.0f64..1.0, 4), 3),
        inputs in proptest::collection::vec(0.0f64..1.0, 4),
    ) {
        let pe = SpikingPe::new(weights, 64);
        let trains: Vec<SpikeTrain> = inputs.iter().map(|&v| SpikeTrain::encode(v, 64)).collect();
        for out in pe.run(&trains) {
            prop_assert!(out.count() <= 64);
        }
    }

    /// Weight quantization round trips stay within half a step of the input.
    #[test]
    fn quantizer_round_trip_is_tight(value in -2.0f32..2.0, bits in 2u32..10) {
        let q = Quantizer::new(bits, 2.0);
        let rt = q.round_trip(value);
        prop_assert!((rt - value).abs() <= q.max_error() + 1e-6);
    }

    /// Both weight-representation schemes decode exactly what they encoded in
    /// the absence of variation, for any magnitude.
    #[test]
    fn weight_schemes_round_trip(magnitude in 0.0f64..1.0, cells in 1usize..16) {
        for scheme in [
            WeightScheme::Splice { cells, bits_per_cell: 4 },
            WeightScheme::Add { cells, bits_per_cell: 4 },
        ] {
            let levels = scheme.encode(magnitude);
            prop_assert_eq!(levels.len(), cells);
            let decoded = scheme.decode(&levels);
            prop_assert!((decoded - magnitude).abs() <= 1.0 / scheme.max_value() as f64 + 1e-12);
        }
    }

    /// The add method's analytic deviation is never worse than splice's for
    /// the same cell budget.
    #[test]
    fn add_never_loses_to_splice(cells in 1usize..16, sigma in 0.01f64..2.0) {
        let v = CellVariation { sigma_levels: sigma };
        let add = WeightScheme::Add { cells, bits_per_cell: 4 }.normalized_deviation(v);
        let splice = WeightScheme::Splice { cells, bits_per_cell: 4 }.normalized_deviation(v);
        prop_assert!(add <= splice + 1e-12);
    }

    /// Synthesizing an arbitrary MLP preserves the operation count in the VMM
    /// tiles and keeps every tile within the crossbar.
    #[test]
    fn synthesis_preserves_ops_for_mlps(
        hidden in 1usize..600,
        output in 1usize..300,
        input in 1usize..600,
    ) {
        let graph = arbitrary_mlp(vec![input, hidden, output]);
        let stats = graph.statistics();
        let core = NeuralSynthesizer::new(SynthesisConfig::fpsa_default())
            .synthesize(&graph)
            .unwrap();
        prop_assert!(core.groups().iter().all(|g| g.rows <= 256 && g.cols <= 256));
        let vmm_ops: u64 = core
            .groups()
            .iter()
            .filter(|g| g.kind == CoreOpKind::Vmm)
            .map(|g| g.ops())
            .sum();
        prop_assert_eq!(vmm_ops, stats.total_ops);
    }

    /// The scheduler always respects the sampling-window constraint and the
    /// buffered-dependency ordering, for arbitrary reuse chains.
    #[test]
    fn scheduler_invariants_hold(reuses in proptest::collection::vec(1u64..200, 1..12)) {
        let graph = chain_graph(&reuses);
        let mapping = Mapper::new(64, AllocationPolicy::DuplicationDegree(1)).map(&graph);
        let schedule = &mapping.schedule;
        for entry in &schedule.entries {
            prop_assert!(entry.duration() >= 64);
        }
        for &(u, v) in &schedule.buffered_edges {
            let pu = schedule.entry(u).unwrap();
            let pv = schedule.entry(v).unwrap();
            prop_assert!(pv.start_cycle > pu.end_cycle, "BD violated for ({u},{v})");
        }
        // Every PE the allocation granted appears exactly once in the netlist.
        prop_assert_eq!(
            mapping.netlist.stats().pe_count,
            mapping.allocation.total_pes()
        );
    }

    /// Allocation never wastes duplicates (no duplicate beyond the reuse
    /// degree) and never starves a group (at least one PE each).
    #[test]
    fn allocation_is_sane(
        reuses in proptest::collection::vec(1u64..5000, 1..20),
        duplication in 1u64..128,
    ) {
        let graph = chain_graph(&reuses);
        let mapping = Mapper::new(64, AllocationPolicy::DuplicationDegree(duplication)).map(&graph);
        for (i, (&dup, &reuse)) in mapping
            .allocation
            .per_group
            .iter()
            .zip(&reuses)
            .enumerate()
        {
            prop_assert!(dup >= 1, "group {i} starved");
            prop_assert!(dup <= reuse, "group {i} over-allocated: {dup} > {reuse}");
        }
    }
}
