//! Integration tests that check the paper's headline quantitative claims at
//! the level the reproduction supports (shape and factors, not third-decimal
//! agreement — see EXPERIMENTS.md).

use fpsa::core::experiments::{fig2, fig6, fig7, table2};
use fpsa::device::pe::ProcessingElementSpec;
use fpsa::device::variation::{CellVariation, WeightScheme};
use fpsa::nn::zoo::Benchmark;

#[test]
fn claim_computational_density_improves_by_about_31x() {
    let table = table2::run();
    assert!(
        table.density_improvement > 28.0 && table.density_improvement < 34.0,
        "Table 2 density improvement {}x should be close to the published 30.92x",
        table.density_improvement
    );
}

#[test]
fn claim_pe_latency_drops_by_about_95_percent() {
    let table = table2::run();
    assert!(
        table.latency_change < -0.90,
        "latency change {} should be around -94.9%",
        table.latency_change
    );
    assert!(
        table.area_change < -0.30 && table.area_change > -0.45,
        "area change {} should be around -36.6%",
        table.area_change
    );
}

#[test]
fn claim_prime_is_communication_bound() {
    let fig = fig2::run();
    let last = fig.points.last().unwrap();
    assert!(
        last.ideal_ops / last.real_ops > 30.0,
        "PRIME's real performance should sit orders of magnitude below ideal at scale"
    );
}

#[test]
fn claim_fpsa_speedup_over_prime_reaches_hundreds_to_a_thousand_x() {
    let fig = fig6::run();
    assert!(
        fig.speedup_at_max_area > 100.0,
        "end-to-end FPSA/PRIME speedup {}x should be in the hundreds-to-1000x band",
        fig.speedup_at_max_area
    );
}

#[test]
fn claim_spiking_pe_cuts_latency_by_about_20x() {
    // §1: "The latency is decreased by 19.6x" (PE compute path).
    let fig = fig7::run();
    let ratio = fig.bars[1].compute_ns / fig.bars[2].compute_ns;
    assert!(
        ratio > 15.0 && ratio < 25.0,
        "compute latency ratio {ratio}"
    );
}

#[test]
fn claim_fpsa_pe_density_is_about_38_tops_per_mm2() {
    let pe = ProcessingElementSpec::fpsa_default();
    let d = pe.computational_density_tops_per_mm2();
    assert!((d - 38.0).abs() < 2.0, "density {d} TOPS/mm^2");
}

#[test]
fn claim_add_method_reduces_deviation_by_sqrt_n() {
    let v = CellVariation::measured();
    let one = WeightScheme::Add {
        cells: 1,
        bits_per_cell: 4,
    }
    .normalized_deviation(v);
    let sixteen = WeightScheme::Add {
        cells: 16,
        bits_per_cell: 4,
    }
    .normalized_deviation(v);
    assert!((one / sixteen - 4.0).abs() < 1e-9);
    // And splicing barely helps.
    let splice2 = WeightScheme::Splice {
        cells: 2,
        bits_per_cell: 4,
    }
    .normalized_deviation(v);
    let splice1 = WeightScheme::Splice {
        cells: 1,
        bits_per_cell: 4,
    }
    .normalized_deviation(v);
    assert!((splice2 - splice1).abs() / splice1 < 0.1);
}

#[test]
fn claim_table3_weight_and_op_counts_match() {
    for benchmark in Benchmark::all() {
        let stats = benchmark.build().statistics();
        let w_err = (stats.total_weights as f64 - benchmark.published_weights()).abs()
            / benchmark.published_weights();
        let o_err =
            (stats.total_ops as f64 - benchmark.published_ops()).abs() / benchmark.published_ops();
        assert!(
            w_err < 0.10,
            "{}: weights off by {:.1}%",
            benchmark.name(),
            w_err * 100.0
        );
        assert!(
            o_err < 0.12,
            "{}: ops off by {:.1}%",
            benchmark.name(),
            o_err * 100.0
        );
    }
}

#[test]
fn claim_vgg16_motivation_numbers_hold() {
    // §3: first two conv layers: 0.028% of weights, 12.5% of compute;
    // fully connected layers: 89.3% of weights, 0.8% of compute.
    let stats = fpsa::nn::zoo::vgg16().statistics();
    let (w_front, o_front) = stats.front_layer_imbalance(2);
    assert!(w_front < 0.0005);
    assert!((o_front - 0.125).abs() < 0.02);
    assert!((stats.weight_share_of("fc") - 0.893).abs() < 0.01);
    assert!(stats.ops_share_of("fc") < 0.01);
}
