//! The differential golden-model suite.
//!
//! Every small model-zoo benchmark is compiled through the full
//! `Synthesize → Map → PlaceRoute` pipeline and *executed* on the simulated
//! fabric (`fpsa_sim::exec`), then diffed against the layer-granularity
//! golden reference (`fpsa_nn::reference`) in three regimes:
//!
//! * **float, noise disabled** — must match within the documented tolerance
//!   (`ValidationConfig::default().tolerance = 1e-4`: both sides accumulate
//!   in f64 and round to f32 at node boundaries, so only summation order
//!   inside tiled layers may differ);
//! * **exact quantization, noise disabled** — integer-code execution must
//!   match the quantized reference **bit for bit** (integer accumulation is
//!   associative; any divergence is a compilation bug);
//! * **noise enabled** — per-PE programming noise at the paper's measured
//!   variation must stay within a loose envelope of the float reference
//!   (the 8-cell add representation keeps the normalized weight deviation
//!   under 2%, so logits on these O(1)-scaled networks stay within ±0.5).
//!
//! Debug builds shrink the batch and skip CIFAR-VGG17 (333M MACs per
//! forward pass); the dedicated `differential` CI job runs the full suite
//! in `--release`.

use fpsa::core::validate::{sample_inputs, validate, ValidationConfig};
use fpsa::core::Compiler;
use fpsa::device::variation::{CellVariation, WeightScheme};
use fpsa::nn::reference::Reference;
use fpsa::nn::zoo::Benchmark;
use fpsa::nn::{zoo, ComputationalGraph, GraphParameters};
use fpsa::serve::{ServeConfig, ServeEngine};
use fpsa::sim::exec::{ExecError, Precision};

fn config() -> ValidationConfig {
    ValidationConfig {
        batch: if cfg!(debug_assertions) { 2 } else { 4 },
        ..ValidationConfig::default()
    }
}

/// Every model the suite executes: the six tiny differential variants plus
/// the paper's two small MNIST benchmarks (and CIFAR-VGG17 in release).
fn suite() -> Vec<ComputationalGraph> {
    let mut models = zoo::differential_suite();
    models.push(zoo::mlp_500_100());
    models.push(zoo::lenet());
    if !cfg!(debug_assertions) {
        models.push(zoo::cifar_vgg17());
    }
    models
}

#[test]
fn compiled_execution_matches_the_golden_reference_on_every_small_model() {
    let compiler = Compiler::fpsa();
    let config = config();
    let mut validated = 0;
    for graph in suite() {
        let params = GraphParameters::seeded(&graph, 0xD1FF);
        let report = validate(&compiler, &graph, &params, &config)
            .unwrap_or_else(|e| panic!("{}: {e}", graph.name));
        assert!(
            report.float_max_abs <= report.tolerance,
            "{}: float divergence {} exceeds tolerance {} (worst node: {:?})",
            report.model,
            report.float_max_abs,
            report.tolerance,
            report.worst_node()
        );
        assert!(
            report.integer_bit_exact,
            "{}: exact-quantization execution diverged from the quantizer's reference",
            report.model
        );
        assert!(report.passed());
        validated += 1;
    }
    assert!(validated >= 5, "the suite must cover at least 5 benchmarks");
}

#[test]
fn noisy_execution_stays_within_the_device_envelope() {
    let compiler = Compiler::fpsa();
    for graph in zoo::differential_suite() {
        let params = GraphParameters::seeded(&graph, 0xD1FF);
        let compiled = compiler.compile(&graph).unwrap();
        let reference = Reference::new(&graph, &params).unwrap();
        let exec = compiled
            .executor(
                &graph,
                &params,
                &Precision::Noisy {
                    scheme: WeightScheme::fpsa_add(),
                    variation: CellVariation::measured(),
                    seed: 0xA11CE,
                },
            )
            .unwrap_or_else(|e| panic!("{}: {e}", graph.name));
        for x in sample_inputs(&graph, 2, 3) {
            let noisy = exec.run(&x).unwrap();
            let clean = reference.logits(&x).unwrap();
            for (n, c) in noisy.iter().zip(&clean) {
                assert!(n.is_finite());
                assert!(
                    (n - c).abs() < 0.5,
                    "{}: noisy logit {n} too far from reference {c}",
                    graph.name
                );
            }
        }
    }
}

#[test]
fn batched_execution_is_bit_identical_across_chunkings() {
    // The executor realizes all randomness at bind time and runs samples
    // pure, so rayon scheduling (thread count, chunk boundaries) cannot
    // perturb results: a full batch, two half batches and one-at-a-time
    // execution must agree bit for bit.
    let graph = zoo::tiny_cnn();
    let params = GraphParameters::seeded(&graph, 9);
    let compiled = Compiler::fpsa().compile(&graph).unwrap();
    let exec = compiled
        .executor(
            &graph,
            &params,
            &Precision::Noisy {
                scheme: WeightScheme::fpsa_add(),
                variation: CellVariation::measured(),
                seed: 7,
            },
        )
        .unwrap();
    let inputs = sample_inputs(&graph, 8, 1);
    let full = exec.run_batch(&inputs).unwrap();
    let (a, b) = inputs.split_at(5);
    let mut halves = exec.run_batch(a).unwrap();
    halves.extend(exec.run_batch(b).unwrap());
    let singles: Vec<Vec<f32>> = inputs.iter().map(|x| exec.run(x).unwrap()).collect();
    assert_eq!(full, halves);
    assert_eq!(full, singles);
}

#[test]
fn every_zoo_benchmark_compiles_and_serves_one_batch() {
    // The serving smoke: each `Benchmark::all()` entry goes through the full
    // compile pipeline and one dynamic batch on the serving engine, with the
    // served outputs checked bit-for-bit against direct execution. Debug
    // builds cover the MNIST-scale models; the release differential CI job
    // serves the whole zoo (the ImageNet models on one sample each — VGG16
    // alone is ~31G MACs per forward pass).
    let benchmarks: Vec<Benchmark> = if cfg!(debug_assertions) {
        vec![Benchmark::Mlp500x100, Benchmark::LeNet]
    } else {
        Benchmark::all().to_vec()
    };
    for benchmark in benchmarks {
        let graph = benchmark.build();
        let params = GraphParameters::seeded(&graph, 0x5E4E);
        // The ImageNet-scale netlists exceed the physical-design block
        // limit; the smoke opts in to the analytic fallback because it is
        // about execution, not physical design (the typed CapacityExceeded
        // default has its own regression tests).
        let compiled = Compiler::fpsa()
            .with_analytic_fallback()
            .compile(&graph)
            .unwrap_or_else(|e| panic!("{}: compilation failed: {e}", benchmark.name()));
        let batch = if benchmark.published_ops() < 1e9 {
            2
        } else {
            1
        };
        let inputs = sample_inputs(&graph, batch, 11);
        match compiled.executor(&graph, &params, &Precision::Float) {
            Ok(exec) => {
                let direct: Vec<Vec<f32>> = inputs
                    .iter()
                    .map(|x| exec.run(x).expect("direct execution succeeds"))
                    .collect();
                let engine = ServeEngine::start(
                    exec,
                    ServeConfig {
                        replicas: 2,
                        max_batch: inputs.len(),
                        batch_window_us: 2_000,
                    },
                );
                let served = engine
                    .serve_batch(&inputs)
                    .unwrap_or_else(|e| panic!("{}: serving failed: {e}", benchmark.name()));
                assert_eq!(
                    served,
                    direct,
                    "{}: served batch diverged from direct execution",
                    benchmark.name()
                );
                let stats = engine.shutdown();
                assert_eq!(stats.completed, inputs.len() as u64);
            }
            Err(ExecError::Unsupported { reason }) => {
                // AlexNet's grouped convolutions are the one zoo construct
                // the execution engine documents as having no numeric
                // semantics; everything else must bind.
                assert_eq!(
                    benchmark,
                    Benchmark::AlexNet,
                    "only AlexNet may be unsupported, got: {reason}"
                );
                assert!(reason.contains("grouped convolution"), "{reason}");
            }
            Err(e) => panic!("{}: binding failed: {e}", benchmark.name()),
        }
    }
}

#[test]
fn per_layer_report_documents_where_divergence_lives() {
    let compiler = Compiler::fpsa();
    let graph = zoo::lenet();
    let params = GraphParameters::seeded(&graph, 0xD1FF);
    let report = validate(&compiler, &graph, &params, &config()).unwrap();
    // Every compute node of LeNet shows up in the per-layer table, and all
    // of them sit inside the tolerance individually.
    let names: Vec<&str> = report.per_node.iter().map(|n| n.name.as_str()).collect();
    for expected in ["conv1", "pool1", "conv2", "pool2", "fc1", "fc2"] {
        assert!(
            names.contains(&expected),
            "missing per-layer row {expected}"
        );
    }
    assert!(report
        .per_node
        .iter()
        .all(|n| n.max_abs <= report.tolerance));
}
