//! FPSA reproduction — umbrella crate.
//!
//! This crate re-exports the whole reproduction stack of *FPSA: A Full System
//! Stack Solution for Reconfigurable ReRAM-based NN Accelerator Architecture*
//! (ASPLOS 2019) so that examples and downstream users can depend on a single
//! crate:
//!
//! * [`device`] — ReRAM crossbars, spiking circuits, SRAM blocks, variation
//! * [`nn`] — computational graphs, the benchmark model zoo, a tiny trainer
//! * [`synthesis`] — the neural synthesizer (graph → core-ops)
//! * [`arch`] — the FPSA fabric and its routing architecture
//! * [`mapper`] — the spatial-to-temporal mapper
//! * [`placeroute`] — simulated-annealing placement and Dijkstra routing
//! * [`sim`] — performance and functional simulators
//! * [`prime`] — the PRIME baseline and the performance-bound model
//! * [`core`] — the compiler, evaluator and per-figure experiment drivers
//! * [`serve`] — the high-throughput serving engine (dynamic batching +
//!   replica sharding over pre-bound executors, plus the pipeline-parallel
//!   sharded engine)
//! * [`shard`] — multi-fabric model parallelism: partition, compile and
//!   pipeline-serve models across chips
//! * [`workload`] — declarative workload scenarios, deterministic trace
//!   record/replay and SimPoint-style phase-sampled benchmarking
//! * [`fleet`] — multi-tenant model-fleet serving: compile-once registry,
//!   co-location packing, weighted-fair tenant queues, per-tenant SLOs
//! * [`obs`] — unified telemetry: structured spans over wall or virtual
//!   clocks, the process-wide metrics registry, executor profiling hooks,
//!   Chrome-trace/flight-recorder export
//!
//! # Quick start
//!
//! ```
//! use fpsa::core::compiler::Compiler;
//! use fpsa::nn::zoo;
//!
//! let compiled = Compiler::fpsa().with_duplication(4).compile(&zoo::lenet())?;
//! let perf = compiled.performance();
//! println!("LeNet on FPSA: {:.0} samples/s on {:.2} mm^2",
//!          perf.throughput_samples_per_s, perf.area_mm2);
//! # Ok::<(), fpsa::core::CompileError>(())
//! ```

pub use fpsa_arch as arch;
pub use fpsa_core as core;
pub use fpsa_device as device;
pub use fpsa_fleet as fleet;
pub use fpsa_mapper as mapper;
pub use fpsa_nn as nn;
pub use fpsa_obs as obs;
pub use fpsa_placeroute as placeroute;
pub use fpsa_prime as prime;
pub use fpsa_serve as serve;
pub use fpsa_shard as shard;
pub use fpsa_sim as sim;
pub use fpsa_synthesis as synthesis;
pub use fpsa_workload as workload;
