//! Offline stand-in for the `proptest` crate (see DESIGN.md).
//!
//! Supports the subset the property tests use: the [`proptest!`] macro over
//! functions with `arg in strategy` parameters, range strategies over the
//! numeric primitives, [`collection::vec`] (fixed or ranged length, nestable)
//! and the `prop_assert*` macros. Cases are generated from a deterministic
//! per-case seed, so failures reproduce; there is no shrinking — a failing
//! case panics with the regular assertion message.

use core::ops::Range;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// How many random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),+) => {
        $(impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        })+
    };
}

range_strategy!(f64, f32, usize, u64, u32, u16, i64, i32);

/// The deterministic RNG for one test case (used by the [`proptest!`]
/// expansion; public so the macro can reach it, hidden from docs).
#[doc(hidden)]
pub fn __case_rng(name: &str, case: u32) -> StdRng {
    // Mix the property name into the stream so sibling properties do not see
    // identical inputs.
    let mut seed = 0xA076_1D64_78BD_642Fu64 ^ case as u64;
    for byte in name.bytes() {
        seed = seed.wrapping_mul(0x100_0000_01B3).wrapping_add(byte as u64);
    }
    StdRng::seed_from_u64(seed)
}

pub mod collection {
    //! Collection strategies.

    use super::{StdRng, Strategy};
    use core::ops::Range;
    use rand::Rng;

    /// A length specification: fixed or uniformly drawn from a range.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange {
                lo: len,
                hi: len + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(
                range.start < range.end,
                "vec strategy size range {}..{} is empty",
                range.start,
                range.end
            );
            SizeRange {
                lo: range.start,
                hi: range.end,
            }
        }
    }

    /// Generate `Vec`s whose elements come from `element` and whose length
    /// comes from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.size.hi - self.size.lo <= 1 {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything a `proptest!` test module needs in scope.
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// Assert inside a property; failures panic with the assertion message.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Define property tests: each function runs its body over `cases` randomly
/// generated argument sets.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:pat in $strategy:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            for __case in 0..__config.cases {
                let mut __rng = $crate::__case_rng(stringify!($name), __case);
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies stay in range.
        #[test]
        fn ranges_are_respected(x in 1.5f64..2.5, n in 3usize..7) {
            prop_assert!((1.5..2.5).contains(&x));
            prop_assert!((3..7).contains(&n));
        }

        /// Vec strategies honour fixed and ranged sizes, including nesting.
        #[test]
        fn vecs_have_requested_shapes(
            fixed in collection::vec(0.0f64..1.0, 4),
            ranged in collection::vec(collection::vec(0u32..10, 2), 1..5),
        ) {
            prop_assert_eq!(fixed.len(), 4);
            prop_assert!((1..5).contains(&ranged.len()));
            for inner in &ranged {
                prop_assert_eq!(inner.len(), 2);
            }
        }
    }

    #[test]
    #[should_panic(expected = "is empty")]
    fn empty_vec_size_range_is_rejected() {
        // Built from variables so the reversed-range typo this guards
        // against is not itself a compile-time lint here.
        let (lo, hi) = (5usize, 3usize);
        let _ = collection::vec(0u32..10, lo..hi);
    }

    #[test]
    fn cases_are_deterministic() {
        let a: f64 = Strategy::sample(&(0.0f64..1.0), &mut crate::__case_rng("p", 3));
        let b: f64 = Strategy::sample(&(0.0f64..1.0), &mut crate::__case_rng("p", 3));
        assert_eq!(a, b);
    }
}
