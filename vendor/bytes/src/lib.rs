//! Offline stand-in for the `bytes` crate (see DESIGN.md).
//!
//! Covers the surface the bitstream packer uses: [`BytesMut`] as an
//! append-only builder, [`Bytes`] as a cheaply cloneable immutable view with
//! zero-copy [`Bytes::slice`], and the [`Buf`]/[`BufMut`] cursor traits with
//! big-endian integer access (the upstream default).

use std::sync::Arc;

/// An immutable, reference-counted byte buffer view.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Bytes remaining in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A zero-copy sub-view over `range` (relative to this view).
    pub fn slice(&self, range: core::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && self.start + range.end <= self.end);
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copy the view into an owned `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: data.into(),
            start: 0,
            end,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl core::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

/// Read cursor over a byte source; integers are big-endian.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Borrow the unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Drop `count` bytes from the front.
    fn advance(&mut self, count: usize);

    /// Consume one byte.
    fn get_u8(&mut self) -> u8 {
        assert!(self.remaining() >= 1, "buffer underflow");
        let value = self.chunk()[0];
        self.advance(1);
        value
    }

    /// Consume a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        assert!(self.remaining() >= 4, "buffer underflow");
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(raw)
    }

    /// Consume `len` bytes as an owned view.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "buffer underflow");
        let out = Bytes::from(self.chunk()[..len].to_vec());
        self.advance(len);
        out
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_ref()
    }

    fn advance(&mut self, count: usize) {
        assert!(count <= self.len(), "advance past end");
        self.start += count;
    }
}

/// Write cursor appending to a byte sink; integers are big-endian.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, bytes: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, value: u8) {
        self.put_slice(&[value]);
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, value: u32) {
        self.put_slice(&value.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_round_trip_big_endian() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u8(7);
        buf.put_slice(&[1, 2, 3]);
        let mut bytes = buf.freeze();
        assert_eq!(bytes.len(), 8);
        assert_eq!(bytes.as_ref()[0], 0xDE);
        assert_eq!(bytes.get_u32(), 0xDEAD_BEEF);
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.copy_to_bytes(3).to_vec(), vec![1, 2, 3]);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn slices_are_views_into_the_same_allocation() {
        let bytes = Bytes::from((0u8..32).collect::<Vec<_>>());
        let slice = bytes.slice(4..12);
        assert_eq!(slice.len(), 8);
        assert_eq!(slice.as_ref()[0], 4);
        // Slicing a slice stays relative.
        let inner = slice.slice(2..4);
        assert_eq!(inner.to_vec(), vec![6, 7]);
    }
}
