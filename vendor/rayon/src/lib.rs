//! Offline stand-in for the `rayon` crate (see DESIGN.md).
//!
//! Implements the `par_iter().map(..).collect()` shape the sweep engine
//! uses, executing on `std::thread::scope` with one contiguous chunk per
//! hardware thread. Results come back in input order, exactly like rayon's
//! indexed parallel iterators, so swapping in real rayon changes scheduling
//! granularity but never results.

pub mod iter {
    //! Parallel iterator types.

    /// Number of worker threads to fan out over for `n` items.
    fn worker_count(n: usize) -> usize {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
            .min(n)
            .max(1)
    }

    /// Order-preserving parallel map over a slice: the execution engine
    /// beneath every iterator in this facade.
    pub(crate) fn par_map_slice<'data, T, R, F>(items: &'data [T], f: &F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&'data T) -> R + Sync,
    {
        let n = items.len();
        if n <= 1 {
            return items.iter().map(f).collect();
        }
        let chunk = n.div_ceil(worker_count(n));
        let mut out: Vec<Option<R>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        std::thread::scope(|scope| {
            for (chunk_in, chunk_out) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
                scope.spawn(move || {
                    for (slot, item) in chunk_out.iter_mut().zip(chunk_in) {
                        *slot = Some(f(item));
                    }
                });
            }
        });
        out.into_iter()
            .map(|r| r.expect("scoped workers fill every slot"))
            .collect()
    }

    /// Borrowing conversion into a parallel iterator (`.par_iter()`).
    pub trait IntoParallelRefIterator<'data> {
        /// The borrowed item type.
        type Item: Sync + 'data;
        /// Start a parallel pipeline over `&self`.
        fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = T;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = T;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    impl<'data, T: Sync + 'data, const N: usize> IntoParallelRefIterator<'data> for [T; N] {
        type Item = T;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    /// A parallel iterator over borrowed slice elements.
    pub struct ParIter<'data, T> {
        items: &'data [T],
    }

    impl<'data, T: Sync> ParIter<'data, T> {
        /// Map every element through `f` in parallel.
        pub fn map<R, F>(self, f: F) -> Map<'data, T, F>
        where
            R: Send,
            F: Fn(&'data T) -> R + Sync,
        {
            Map {
                items: self.items,
                f,
            }
        }
    }

    /// The result of [`ParIter::map`], awaiting collection.
    pub struct Map<'data, T, F> {
        items: &'data [T],
        f: F,
    }

    impl<'data, T: Sync, F> Map<'data, T, F> {
        /// Execute the pipeline and gather results in input order.
        pub fn collect<C, R>(self) -> C
        where
            F: Fn(&'data T) -> R + Sync,
            R: Send,
            C: FromParallelResults<R>,
        {
            C::from_results(par_map_slice(self.items, &self.f))
        }
    }

    /// Containers a parallel pipeline can collect into.
    pub trait FromParallelResults<R> {
        /// Build the container from in-order results.
        fn from_results(results: Vec<R>) -> Self;
    }

    impl<R> FromParallelResults<R> for Vec<R> {
        fn from_results(results: Vec<R>) -> Self {
            results
        }
    }
}

pub mod prelude {
    //! Import everything needed for `par_iter().map(..).collect()`.
    pub use crate::iter::{FromParallelResults, IntoParallelRefIterator, Map, ParIter};
}

/// The number of threads the facade will fan out over.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = items.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton_inputs_work() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [7u32];
        let out: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn closures_may_capture_environment() {
        let offset = 100u64;
        let items = vec![1u64, 2, 3];
        let out: Vec<u64> = items.par_iter().map(|&x| x + offset).collect();
        assert_eq!(out, vec![101, 102, 103]);
    }
}
