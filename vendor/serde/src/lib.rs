//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors a minimal facade (documented in DESIGN.md): the
//! [`Serialize`] and [`Deserialize`] traits exist and satisfy every
//! `#[derive(Serialize, Deserialize)]` and trait bound in the stack, and
//! serialization renders through the type's `Debug` representation instead of
//! a full serde data model. Swapping this crate for real serde requires no
//! source changes outside `vendor/`.

/// A value that can be rendered for persistence.
///
/// Blanket-implemented for every `Debug` type; the facade renders the pretty
/// `Debug` representation, which `serde_json` then wraps into a valid JSON
/// string.
pub trait Serialize {
    /// Render the value as its pretty `Debug` representation.
    fn to_debug_repr(&self) -> String;
}

impl<T: core::fmt::Debug + ?Sized> Serialize for T {
    fn to_debug_repr(&self) -> String {
        format!("{self:#?}")
    }
}

/// A value that can (nominally) be reconstructed from persisted form.
///
/// The facade keeps only the trait bound; nothing in the repository
/// deserializes through serde (binary artifacts such as bitstreams have their
/// own parsers).
pub trait Deserialize<'de>: Sized {}

impl<'de, T: Sized> Deserialize<'de> for T {}

/// Owned-deserialization marker, mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: Sized {}

impl<T: Sized> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    use super::Serialize;

    #[test]
    fn debug_types_serialize() {
        assert_eq!(vec![1, 2].to_debug_repr(), "[\n    1,\n    2,\n]");
    }
}
