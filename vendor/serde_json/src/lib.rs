//! Offline stand-in for `serde_json` (see DESIGN.md).
//!
//! Serializes any `serde::Serialize` value — i.e. any `Debug` type under the
//! vendored facade — into a *valid JSON document*: a single JSON string whose
//! content is the value's pretty `Debug` rendering. That keeps
//! `target/experiment-data/*.json` machine-loadable while staying honest
//! about the facade's fidelity.

use serde::Serialize;

/// A serialization error.
///
/// The facade's serializer is infallible, but the type exists so call sites
/// written against real `serde_json` compile unchanged.
#[derive(Debug)]
pub struct Error(String);

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "serde_json facade: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as a compact JSON document.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(escape_json_string(&value.to_debug_repr()))
}

/// Serialize `value` as a human-readable JSON document.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    to_string(value)
}

/// Escape arbitrary text into a JSON string literal.
fn escape_json_string(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_is_a_valid_json_string_literal() {
        let json = to_string_pretty(&vec![1, 2, 3]).unwrap();
        assert!(json.starts_with('"') && json.ends_with('"'));
        assert!(json.contains("\\n"), "newlines must be escaped: {json}");
        assert!(!json[1..json.len() - 1].contains('\n'));
    }

    #[test]
    fn quotes_and_backslashes_are_escaped() {
        let json = to_string(&"a \"b\"").unwrap();
        // Inside the outer quotes every quote character must be preceded by a
        // backslash, so the literal never terminates early.
        let inner = &json[1..json.len() - 1];
        let bytes = inner.as_bytes();
        for (i, &b) in bytes.iter().enumerate() {
            if b == b'"' {
                assert!(i > 0 && bytes[i - 1] == b'\\', "unescaped quote in {json}");
            }
        }
    }
}
