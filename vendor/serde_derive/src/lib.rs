//! No-op derive macros for the vendored `serde` facade.
//!
//! The facade's `Serialize` trait is blanket-implemented over `Debug` and its
//! `Deserialize` trait over all sized types, so the derives have nothing to
//! generate; they exist so that the `#[derive(Serialize, Deserialize)]`
//! attributes across the stack resolve exactly as they would with real serde.

use proc_macro::TokenStream;

/// Accepted on any item; the blanket impl in `serde` already covers it.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepted on any item; the blanket impl in `serde` already covers it.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
