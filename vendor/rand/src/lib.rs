//! Offline stand-in for the `rand` crate (see DESIGN.md).
//!
//! Implements exactly the API surface the repository uses — `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`] and [`Rng::gen_range`] over
//! half-open ranges — on top of xoshiro256++, a small, well-tested generator
//! with excellent statistical quality for simulation workloads. Streams
//! differ from upstream rand's ChaCha12-based `StdRng`, which only matters to
//! code asserting on exact draws (nothing in this repository does).

use core::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// An RNG that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed, expanding it with SplitMix64 as
    /// the xoshiro reference implementation recommends.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their full natural range (`rng.gen()`).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types samplable uniformly from a half-open `low..high` range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Draw one value uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! uniform_float {
    ($t:ty) => {
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                low + (high - low) * unit
            }
        }
    };
}

uniform_float!(f64);
uniform_float!(f32);

macro_rules! uniform_int {
    ($t:ty) => {
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let span = (high as i128 - low as i128) as u128;
                // Multiply-shift rejection-free mapping; the bias is < 2^-64
                // per draw, far below what any simulation here can observe.
                let word = rng.next_u64() as u128;
                low + ((word * span) >> 64) as $t
            }
        }
    };
}

uniform_int!(usize);
uniform_int!(u64);
uniform_int!(u32);
uniform_int!(u16);
uniform_int!(i64);
uniform_int!(i32);

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value over the type's natural range (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draw a value uniformly from the half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn float_ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.1, "mean {mean} far from 0.5");
    }

    #[test]
    fn integer_ranges_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "cannot sample empty range")]
    fn empty_integer_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.gen_range(5usize..5);
    }

    #[test]
    #[should_panic(expected = "cannot sample empty range")]
    fn inverted_float_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.gen_range(1.0f64..0.5);
    }

    #[test]
    fn gen_unit_floats_live_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
