//! Offline stand-in for the `criterion` crate (see DESIGN.md).
//!
//! Provides the macro and builder surface the `fpsa-bench` targets use —
//! [`criterion_group!`], [`criterion_main!`], benchmark groups, parametrized
//! ids and `Bencher::iter` — backed by a simple wall-clock loop: a warm-up
//! pass followed by `sample_size` timed samples, reporting min / mean. No
//! statistics engine, plots or CLI filtering; the point is that
//! `cargo bench` runs the same experiment code end to end.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard optimization barrier under criterion's name.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The benchmark context handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Run a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), 20, &mut routine);
        self
    }
}

/// A named, parametrized benchmark id (`BenchmarkId::new("route", width)`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combine a function name and a parameter into one id.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { id: name.into() }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark records.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Benchmark a routine.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut routine,
        );
        self
    }

    /// Benchmark a routine against an explicit input.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_benchmark(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b| routine(b, input),
        );
        self
    }

    /// Finish the group (report separator).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, routine: &mut F) {
    // Warm-up pass.
    let mut bencher = Bencher {
        samples: Vec::new(),
    };
    routine(&mut bencher);

    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
    };
    for _ in 0..sample_size {
        routine(&mut bencher);
    }
    let samples = &bencher.samples;
    if samples.is_empty() {
        println!("{label}: no samples recorded");
        return;
    }
    let min = samples.iter().min().copied().unwrap_or_default();
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    println!(
        "{label}: min {} / mean {} over {} samples",
        format_duration(min),
        format_duration(mean),
        samples.len()
    );
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Times one sample per [`Bencher::iter`] call.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time one execution of `routine` and record it as a sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        let output = routine();
        self.samples.push(start.elapsed());
        drop(black_box(output));
    }
}

/// Bundle benchmark functions into a runnable group, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_their_benchmarks() {
        let mut c = Criterion::default();
        let mut calls = 0usize;
        {
            let mut group = c.benchmark_group("selftest");
            group.sample_size(3);
            group.bench_function("count", |b| b.iter(|| std::hint::black_box(1 + 1)));
            group.bench_with_input(BenchmarkId::new("with_input", 7), &7, |b, &x| {
                b.iter(|| x * 2)
            });
            group.finish();
        }
        calls += 1;
        assert_eq!(calls, 1);
    }
}
