//! Property-based stability of the compile-cache content address.
//!
//! The cache's correctness rests on two sides of the same coin:
//!
//! * **stability** — rebuilding the same (graph, parameters, compiler
//!   configuration) from scratch derives the identical key, so the cache
//!   can be consulted across independently constructed inputs;
//! * **sensitivity** — perturbing any field that affects the compiled
//!   artifact (a layer width, the duplication degree, the placer seed, the
//!   P&R skip policy, a single weight bit) derives a different key, so a
//!   stale artifact can never be returned for changed inputs.

use fpsa_core::compiler::PlaceRouteConfig;
use fpsa_core::{CompileKey, Compiler};
use fpsa_nn::params::mlp_graph;
use fpsa_nn::GraphParameters;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bit_identical_rebuilds_hash_identically(
        sizes in proptest::collection::vec(2usize..64, 2..5),
        duplication in 1u64..8,
        seed in 0u64..u64::MAX,
    ) {
        let graph_a = mlp_graph("prop", &sizes);
        let graph_b = mlp_graph("prop", &sizes);
        let compiler_a = Compiler::fpsa().with_duplication(duplication);
        let compiler_b = Compiler::fpsa().with_duplication(duplication);
        prop_assert_eq!(
            CompileKey::for_compile(&compiler_a, &graph_a),
            CompileKey::for_compile(&compiler_b, &graph_b)
        );
        let params_a = GraphParameters::seeded(&graph_a, seed);
        let params_b = GraphParameters::seeded(&graph_b, seed);
        prop_assert_eq!(
            CompileKey::for_bind(&compiler_a, &graph_a, &params_a),
            CompileKey::for_bind(&compiler_b, &graph_b, &params_b)
        );
    }

    #[test]
    fn perturbing_a_layer_width_changes_the_key(
        sizes in proptest::collection::vec(2usize..64, 2..5),
        which in 0usize..1024,
    ) {
        let graph = mlp_graph("prop", &sizes);
        let mut wider = sizes.clone();
        let i = which % wider.len();
        wider[i] += 1;
        let graph_b = mlp_graph("prop", &wider);
        let compiler = Compiler::fpsa();
        prop_assert_ne!(
            CompileKey::for_compile(&compiler, &graph),
            CompileKey::for_compile(&compiler, &graph_b)
        );
    }

    #[test]
    fn perturbing_the_compiler_config_changes_the_key(
        sizes in proptest::collection::vec(2usize..64, 2..4),
        duplication in 1u64..8,
        placer_seed in 1u64..u64::MAX,
    ) {
        let graph = mlp_graph("prop", &sizes);
        let base = Compiler::fpsa().with_duplication(duplication);
        let key = CompileKey::for_compile(&base, &graph);

        // A different duplication degree keys apart.
        let dup = Compiler::fpsa().with_duplication(duplication + 1);
        prop_assert_ne!(key, CompileKey::for_compile(&dup, &graph));

        // A different placer seed keys apart.
        let mut pr = PlaceRouteConfig::fast();
        pr.placer.seed = pr.placer.seed.wrapping_add(placer_seed);
        let seeded = Compiler::fpsa()
            .with_duplication(duplication)
            .with_place_route(pr);
        prop_assert_ne!(key, CompileKey::for_compile(&seeded, &graph));

        // Skipping physical design keys apart.
        let skipped = Compiler::fpsa()
            .with_duplication(duplication)
            .without_place_and_route();
        prop_assert_ne!(key, CompileKey::for_compile(&skipped, &graph));
    }

    #[test]
    fn perturbing_one_weight_bit_changes_the_bind_key(
        sizes in proptest::collection::vec(2usize..16, 2..4),
        seed in 0u64..u64::MAX,
        which in 0usize..1024,
    ) {
        let graph = mlp_graph("prop", &sizes);
        let compiler = Compiler::fpsa();
        let params = GraphParameters::seeded(&graph, seed);
        let key = CompileKey::for_bind(&compiler, &graph, &params);

        // Flip the low mantissa bit of one weight of one parameterized node.
        let mut tensors: Vec<Option<Vec<f32>>> = (0..params.len())
            .map(|n| params.weights(n).map(|w| w.to_vec()))
            .collect();
        let holders: Vec<usize> = (0..tensors.len())
            .filter(|&n| tensors[n].as_ref().is_some_and(|w| !w.is_empty()))
            .collect();
        prop_assert!(!holders.is_empty(), "MLPs always carry weights");
        let node = holders[which % holders.len()];
        let tensor = tensors[node].as_mut().unwrap();
        let j = which % tensor.len();
        tensor[j] = f32::from_bits(tensor[j].to_bits() ^ 1);
        let perturbed = GraphParameters::from_parts(tensors);
        prop_assert_ne!(key, CompileKey::for_bind(&compiler, &graph, &perturbed));
    }
}
