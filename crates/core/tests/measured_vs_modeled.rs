//! Release-only probe: the performance model's per-sample cost must stay
//! within a (generous) band of the bytecode executor's measured wall-clock
//! cost on two deterministic paper models.
//!
//! The modeled number describes the FPSA fabric, the measured number a host
//! CPU simulating it, so the ratio is a *simulation slowdown* — what the
//! band pins is its order of magnitude. A bytecode regression (interpreter
//! slowness creeping back) or a performance-model blow-up both walk the
//! ratio out of the band. Debug builds skip this: unoptimized measurement
//! says nothing about either side.

#![cfg(not(debug_assertions))]

use fpsa_core::validate::probe_execution_cost;
use fpsa_core::Compiler;
use fpsa_nn::{zoo, GraphParameters};

#[test]
fn modeled_per_sample_cost_tracks_the_measured_bytecode_cost() {
    let compiler = Compiler::fpsa();
    let mut slowdowns = Vec::new();
    for graph in [zoo::mlp_500_100(), zoo::lenet()] {
        let params = GraphParameters::seeded(&graph, 0xC057);
        let probe = probe_execution_cost(&compiler, &graph, &params, 8, 5)
            .unwrap_or_else(|e| panic!("{}: probe failed: {e}", graph.name));
        assert!(
            probe.measured_ns_per_sample.is_finite() && probe.measured_ns_per_sample > 0.0,
            "{}: bad measurement {probe:?}",
            probe.model
        );
        assert!(
            probe.modeled_ns_per_sample.is_finite() && probe.modeled_ns_per_sample > 0.0,
            "{}: bad model cost {probe:?}",
            probe.model
        );
        let slowdown = probe.slowdown();
        // A host core simulating hundreds of thousands of MACs sits a few
        // orders of magnitude above the modeled pipelined fabric; leaving
        // [1e-2, 1e6] means one of the two sides broke by orders of
        // magnitude, which no machine-speed wobble explains.
        assert!(
            (1e-2..1e6).contains(&slowdown),
            "{}: simulation slowdown {slowdown:.1}x left the sanity band \
             (measured {:.0} ns/sample, modeled {:.0} ns/sample)",
            probe.model,
            probe.measured_ns_per_sample,
            probe.modeled_ns_per_sample
        );
        slowdowns.push((probe.model.clone(), slowdown));
    }
    // The two models run on the same host against the same performance
    // model, so their slowdowns must agree within three orders of
    // magnitude — a per-model drift wider than that is a modeling bug.
    let (a, b) = (&slowdowns[0], &slowdowns[1]);
    let spread = if a.1 > b.1 { a.1 / b.1 } else { b.1 / a.1 };
    assert!(
        spread < 1e3,
        "slowdowns diverged across models: {a:?} vs {b:?}"
    );
}
