//! The content-addressed compile cache.
//!
//! Compilation dominates every experiment now that execution is cheap
//! (ROADMAP item 5): P&R annealing is the long pole of sweeps, and identical
//! (model, config) points used to be recompiled once per driver. This module
//! makes compiled artifacts content-addressed and reusable:
//!
//! * [`CompileKey`] — a stable 128-bit structural hash of (graph +
//!   `Compiler` configuration), optionally extended with every raw weight
//!   bit ([`CompileKey::for_bind`]). Two bit-identical rebuilds of a model
//!   hash equal; perturbing any weight, shape or config field hashes
//!   different.
//! * [`CompileCache`] — a bounded, thread-safe, single-flight store of
//!   `CompileKey → Arc<CompiledModel>`. Concurrent requests for the same key
//!   run exactly one compile (the rest block and share the artifact), which
//!   is what lets the sweep-dedupe regression test count compiler
//!   invocations exactly.
//! * **Warm starts** (opt-in, [`CompileCache::with_warm_start`]) — on a
//!   miss, a completed entry for the *same architecture and P&R config* but
//!   a different (incrementally edited) graph donates its placement: blocks
//!   shared with the donor keep their slots and the annealer runs a short
//!   polish schedule instead of a cold anneal. Opt-in because the warm
//!   result is legal but not bit-identical to a cold anneal.
//! * **Disk seeds** (opt-in, [`CompileCache::with_disk_store`]) — misses
//!   with a recorded placement-seed file under the store directory re-run
//!   the cheap deterministic front half of the pipeline and skip annealing
//!   entirely (the seed *is* the final placement; routing re-derives
//!   deterministically). The vendored serde facade cannot deserialize full
//!   artifacts, so the on-disk tier stores exactly what is expensive to
//!   recompute: the final block positions (see DESIGN.md).
//!
//! Every outcome is recorded in [`CacheStats`] and stamped on the artifact's
//! [`StageTrace`](fpsa_sim::StageTrace) as a [`CacheInfo`], so performance
//! reports show amortized compile cost honestly.

use crate::compiler::{CompileError, CompiledModel, Compiler};
use fpsa_nn::{ComputationalGraph, GraphParameters};
use fpsa_placeroute::WarmStart;
use fpsa_sim::{CacheInfo, CacheOutcome, StageKind};
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

/// Version tag mixed into every key: bump to invalidate all cached
/// artifacts when the compile pipeline's semantics change.
const KEY_SCHEMA: &[u8] = b"fpsa-compile-key-v1";

/// Two-lane FNV-1a-style streaming hasher. Not cryptographic — the cache
/// key only has to be stable across processes and overwhelmingly unlikely
/// to collide within one workspace's model zoo.
#[derive(Debug, Clone)]
struct StableHasher {
    a: u64,
    b: u64,
}

impl StableHasher {
    fn new() -> Self {
        StableHasher {
            a: 0xcbf2_9ce4_8422_2325,
            b: 0x9e37_79b9_7f4a_7c15,
        }
    }

    fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
            self.b = (self.b.rotate_left(23) ^ u64::from(byte)).wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }
}

/// A stable 128-bit content address for one compilation.
///
/// The hash covers the `Debug` rendering of the [`Compiler`] (architecture,
/// duplication degree and the full [`PlaceRouteConfig`]
/// (crate::PlaceRouteConfig), including placer seed and effort) and of the
/// [`ComputationalGraph`] (name, operators, shapes, wiring). `Debug` is the
/// same canonical encoding the vendored serde facade serializes through, and
/// Rust renders floats shortest-roundtrip, so distinct values always render
/// — and hash — distinct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CompileKey {
    hi: u64,
    lo: u64,
}

impl CompileKey {
    /// The key of a structural compilation (no weights involved).
    pub fn for_compile(compiler: &Compiler, graph: &ComputationalGraph) -> Self {
        let mut h = StableHasher::new();
        h.write(KEY_SCHEMA);
        h.write(format!("{compiler:?}").as_bytes());
        h.write(b"/graph/");
        h.write(format!("{graph:?}").as_bytes());
        CompileKey { hi: h.a, lo: h.b }
    }

    /// The key of a bind-level compilation: [`CompileKey::for_compile`]
    /// extended with the raw bit pattern of every weight tensor, so
    /// perturbing a single weight changes the key.
    pub fn for_bind(
        compiler: &Compiler,
        graph: &ComputationalGraph,
        params: &GraphParameters,
    ) -> Self {
        let base = Self::for_compile(compiler, graph);
        let mut h = StableHasher::new();
        h.write_u64(base.hi);
        h.write_u64(base.lo);
        h.write(b"/params/");
        h.write_u64(params.len() as u64);
        for node in 0..params.len() {
            match params.weights(node) {
                None => h.write(&[0u8]),
                Some(weights) => {
                    h.write(&[1u8]);
                    h.write_u64(weights.len() as u64);
                    for &w in weights {
                        h.write(&w.to_bits().to_le_bytes());
                    }
                }
            }
        }
        CompileKey { hi: h.a, lo: h.b }
    }

    /// A fingerprint of the compiler configuration alone (architecture,
    /// duplication, P&R config) — the compatibility class for warm-start
    /// donors: only entries compiled under the same fingerprint may donate
    /// a placement.
    pub fn arch_fingerprint(compiler: &Compiler) -> u64 {
        let mut h = StableHasher::new();
        h.write(KEY_SCHEMA);
        h.write(format!("{compiler:?}").as_bytes());
        h.a
    }

    /// Lowercase-hex rendering (32 digits), used as the on-disk file stem.
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }
}

impl fmt::Display for CompileKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.hex())
    }
}

/// The cache's running counters. One of the four outcome counters is bumped
/// per [`CompileCache::compile`] request; `saved_wall_ns` accumulates the
/// wall-clock the cache avoided versus cold compiles.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CacheStats {
    /// Requests satisfied by an existing in-memory artifact (no stage ran).
    pub hits: u64,
    /// Requests that ran a full cold compile.
    pub misses: u64,
    /// Requests that ran the pipeline with a donor-seeded short anneal.
    pub warm_starts: u64,
    /// Requests that ran the pipeline with annealing skipped via an on-disk
    /// placement seed.
    pub disk_seeds: u64,
    /// Completed entries dropped by LRU eviction.
    pub evictions: u64,
    /// Total wall-clock saved versus cold compiles, in nanoseconds.
    pub saved_wall_ns: f64,
}

impl CacheStats {
    /// Total requests served.
    pub fn requests(&self) -> u64 {
        self.hits + self.misses + self.warm_starts + self.disk_seeds
    }

    /// Compiles that actually executed pipeline stages (everything but
    /// in-memory hits).
    pub fn compiles_executed(&self) -> u64 {
        self.misses + self.warm_starts + self.disk_seeds
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{} requests: {} hits, {} misses, {} warm-starts, {} disk-seeds ({:.1} ms saved)",
            self.requests(),
            self.hits,
            self.misses,
            self.warm_starts,
            self.disk_seeds,
            self.saved_wall_ns * 1e-6
        )
    }
}

type Slot = Arc<OnceLock<Result<Arc<CompiledModel>, CompileError>>>;

struct Entry {
    slot: Slot,
    arch_fp: u64,
    last_used: u64,
}

#[derive(Default)]
struct State {
    entries: HashMap<CompileKey, Entry>,
    stats: CacheStats,
    clock: u64,
}

/// A bounded, thread-safe, single-flight store of compiled models.
///
/// Shareable by reference across sweep workers (or as an `Arc` across
/// drivers via [`CompileCache::global`]). See the module docs for the
/// hit / warm-start / disk-seed semantics.
pub struct CompileCache {
    state: Mutex<State>,
    capacity: usize,
    warm_start: bool,
    disk_dir: Option<PathBuf>,
}

impl fmt::Debug for CompileCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompileCache")
            .field("capacity", &self.capacity)
            .field("warm_start", &self.warm_start)
            .field("disk_dir", &self.disk_dir)
            .field("stats", &self.stats())
            .finish()
    }
}

impl CompileCache {
    /// A cache retaining up to `capacity` completed artifacts (LRU beyond
    /// that). Warm starts and the disk tier are off by default.
    pub fn new(capacity: usize) -> Self {
        CompileCache {
            state: Mutex::default(),
            capacity: capacity.max(1),
            warm_start: false,
            disk_dir: None,
        }
    }

    /// Opt in to near-miss warm starts. The warm-started placement is legal
    /// and routed deterministically, but it is *not* bit-identical to a cold
    /// anneal of the same netlist — determinism suites comparing against
    /// cold compiles must leave this off.
    pub fn with_warm_start(mut self) -> Self {
        self.warm_start = true;
        self
    }

    /// Opt in to the on-disk placement-seed tier under `dir` (conventionally
    /// `target/compile-cache/`). Misses whose key has a recorded seed file
    /// skip annealing entirely; cold compiles with physical design record
    /// their seed for future processes.
    pub fn with_disk_store(mut self, dir: impl Into<PathBuf>) -> Self {
        self.disk_dir = Some(dir.into());
        self
    }

    /// The process-wide shared cache used by the experiment drivers, so
    /// repeated drivers (and repeated tests in one binary) stop recompiling
    /// the same models. Exact-key reuse only: no warm starts, no disk tier.
    pub fn global() -> Arc<CompileCache> {
        static GLOBAL: OnceLock<Arc<CompileCache>> = OnceLock::new();
        GLOBAL
            .get_or_init(|| Arc::new(CompileCache::new(16)))
            .clone()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.state.lock().expect("cache lock").entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The running counters.
    pub fn stats(&self) -> CacheStats {
        self.state.lock().expect("cache lock").stats
    }

    /// Compile `graph` under `compiler`, reusing or seeding from cached
    /// artifacts where possible.
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] from the underlying compile; errors are
    /// cached too (negative caching), so a failing key fails fast on reuse.
    pub fn compile(
        &self,
        compiler: &Compiler,
        graph: &ComputationalGraph,
    ) -> Result<Arc<CompiledModel>, CompileError> {
        self.compile_with_info(compiler, graph).map(|(m, _)| m)
    }

    /// [`CompileCache::compile`], additionally reporting how the cache
    /// satisfied this particular request (callers stamp it onto the trace
    /// of their performance report).
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] from the underlying compile.
    pub fn compile_with_info(
        &self,
        compiler: &Compiler,
        graph: &ComputationalGraph,
    ) -> Result<(Arc<CompiledModel>, CacheInfo), CompileError> {
        let key = CompileKey::for_compile(compiler, graph);
        let arch_fp = CompileKey::arch_fingerprint(compiler);

        let (slot, donor) = {
            let mut state = self.state.lock().expect("cache lock");
            state.clock += 1;
            let clock = state.clock;
            if let Some(entry) = state.entries.get_mut(&key) {
                entry.last_used = clock;
                (entry.slot.clone(), None)
            } else {
                let donor = if self.warm_start {
                    Self::find_donor(&state, arch_fp)
                } else {
                    None
                };
                let slot: Slot = Arc::new(OnceLock::new());
                state.entries.insert(
                    key,
                    Entry {
                        slot: slot.clone(),
                        arch_fp,
                        last_used: clock,
                    },
                );
                self.evict_excess(&mut state);
                (slot, donor)
            }
        };

        // Single flight: exactly one thread initializes the slot; racers
        // block inside `get_or_init` and share the artifact.
        let mut ran: Option<CacheOutcome> = None;
        let result = slot.get_or_init(|| {
            let (model, outcome) = self.compile_slot(compiler, graph, &key, donor);
            ran = Some(outcome);
            model.map(Arc::new)
        });

        let info = match ran {
            Some(outcome) => CacheInfo {
                outcome,
                key: key.hex(),
                saved_wall_ns: result
                    .as_ref()
                    .ok()
                    .map_or(0.0, |m| m.trace.cache_saved_wall_ns()),
            },
            None => CacheInfo {
                outcome: CacheOutcome::Hit,
                key: key.hex(),
                // A hit saves this artifact's whole recorded compile time.
                saved_wall_ns: result
                    .as_ref()
                    .ok()
                    .map_or(0.0, |m| m.trace.total_wall_ns()),
            },
        };

        {
            let mut state = self.state.lock().expect("cache lock");
            match info.outcome {
                CacheOutcome::Hit => state.stats.hits += 1,
                CacheOutcome::Miss => state.stats.misses += 1,
                CacheOutcome::WarmStart => state.stats.warm_starts += 1,
                CacheOutcome::DiskSeed => state.stats.disk_seeds += 1,
            }
            state.stats.saved_wall_ns += info.saved_wall_ns;
        }
        // Mirror the outcome into the process-wide metrics registry so a
        // run summary shows cache effectiveness next to the serving
        // counters. Compiles are rare events; the name lookup is fine here.
        let registry = fpsa_obs::Registry::global();
        let metric = registry.counter(match info.outcome {
            CacheOutcome::Hit => "compile.cache.hits",
            CacheOutcome::Miss => "compile.cache.misses",
            CacheOutcome::WarmStart => "compile.cache.warm_starts",
            CacheOutcome::DiskSeed => "compile.cache.disk_seeds",
        });
        registry.inc(metric);

        match result {
            Ok(model) => Ok((model.clone(), info)),
            Err(e) => Err(e.clone()),
        }
    }

    /// The compile that fills one slot: disk seed if recorded, else donor
    /// warm start, else cold. Stamps the outcome on the artifact's trace and
    /// records the disk seed of fresh physical designs.
    fn compile_slot(
        &self,
        compiler: &Compiler,
        graph: &ComputationalGraph,
        key: &CompileKey,
        donor: Option<Arc<CompiledModel>>,
    ) -> (Result<CompiledModel, CompileError>, CacheOutcome) {
        let physical_design_possible = !compiler.place_route.skip;
        let disk_seed = if physical_design_possible {
            self.load_disk_seed(key)
        } else {
            None
        };

        let (result, outcome, donor_pr_ns) = if let Some((positions, cold_pr_ns)) = disk_seed {
            let warm = WarmStart::exact_positions(positions);
            (
                compiler.compile_warm(graph, Some(warm)),
                CacheOutcome::DiskSeed,
                cold_pr_ns,
            )
        } else if let Some(donor) = donor.filter(|_| physical_design_possible) {
            let physical = donor
                .physical
                .as_ref()
                .expect("donors are selected with physical designs");
            let warm = WarmStart::from_placement(&donor.mapping.netlist, &physical.placement);
            (
                compiler.compile_warm(graph, Some(warm)),
                CacheOutcome::WarmStart,
                donor.trace.wall_ns(StageKind::PlaceRoute).unwrap_or(0.0),
            )
        } else {
            (compiler.compile(graph), CacheOutcome::Miss, 0.0)
        };

        let result = result.map(|mut model| {
            let saved_wall_ns = match outcome {
                CacheOutcome::Miss => 0.0,
                // Seeded compiles save the donor's anneal-dominated P&R time
                // minus the (short) P&R time they still paid.
                _ => (donor_pr_ns - model.trace.wall_ns(StageKind::PlaceRoute).unwrap_or(0.0))
                    .max(0.0),
            };
            model.trace.set_cache(CacheInfo {
                outcome,
                key: key.hex(),
                saved_wall_ns,
            });
            if outcome != CacheOutcome::DiskSeed {
                self.store_disk_seed(key, &model);
            }
            model
        });
        (result, outcome)
    }

    /// Most-recently-used completed entry compiled under the same compiler
    /// fingerprint with a physical design — the best available donor.
    fn find_donor(state: &State, arch_fp: u64) -> Option<Arc<CompiledModel>> {
        state
            .entries
            .values()
            .filter(|e| e.arch_fp == arch_fp)
            .filter_map(|e| {
                e.slot
                    .get()
                    .and_then(|r| r.as_ref().ok())
                    .filter(|m| m.physical.is_some())
                    .map(|m| (e.last_used, m.clone()))
            })
            .max_by_key(|(last_used, _)| *last_used)
            .map(|(_, m)| m)
    }

    /// Drop least-recently-used *completed* entries beyond capacity.
    /// In-flight entries are never dropped (a racer holds their slot).
    fn evict_excess(&self, state: &mut State) {
        while state.entries.len() > self.capacity {
            let victim = state
                .entries
                .iter()
                .filter(|(_, e)| e.slot.get().is_some())
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    state.entries.remove(&k);
                    state.stats.evictions += 1;
                }
                None => break,
            }
        }
    }

    // --- on-disk placement-seed tier -----------------------------------

    fn seed_path(&self, key: &CompileKey) -> Option<PathBuf> {
        self.disk_dir
            .as_ref()
            .map(|d| d.join(format!("{}.seed", key.hex())))
    }

    /// Parse a recorded placement seed: `(positions, recorded cold P&R ns)`.
    fn load_disk_seed(&self, key: &CompileKey) -> Option<(Vec<(usize, usize)>, f64)> {
        let path = self.seed_path(key)?;
        parse_seed_file(&std::fs::read_to_string(path).ok()?, &key.hex())
    }

    /// Record the final placement of a freshly compiled physical design.
    /// Best-effort: IO failures only cost future processes the seed.
    fn store_disk_seed(&self, key: &CompileKey, model: &CompiledModel) {
        let (Some(path), Some(physical)) = (self.seed_path(key), model.physical.as_ref()) else {
            return;
        };
        let Some(dir) = path.parent() else { return };
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let mut out = String::from("fpsa-compile-cache v1\n");
        out.push_str(&format!("key {}\n", key.hex()));
        out.push_str(&format!("model {}\n", model.core_graph.model));
        out.push_str(&format!(
            "pr_wall_ns {:.1}\n",
            model.trace.wall_ns(StageKind::PlaceRoute).unwrap_or(0.0)
        ));
        let positions = physical.placement.positions();
        out.push_str(&format!("blocks {}\n", positions.len()));
        for &(r, c) in positions {
            out.push_str(&format!("pos {r} {c}\n"));
        }
        let _ = std::fs::write(path, out);
    }
}

/// Parse the line-based seed format written by `store_disk_seed`. Returns
/// `None` on any malformed or mismatched content (the cache treats a bad
/// seed as a plain miss).
fn parse_seed_file(contents: &str, expected_key: &str) -> Option<(Vec<(usize, usize)>, f64)> {
    let mut lines = contents.lines();
    if lines.next()? != "fpsa-compile-cache v1" {
        return None;
    }
    let key = lines.next()?.strip_prefix("key ")?;
    if key != expected_key {
        return None;
    }
    let _model = lines.next()?.strip_prefix("model ")?;
    let pr_wall_ns: f64 = lines.next()?.strip_prefix("pr_wall_ns ")?.parse().ok()?;
    let blocks: usize = lines.next()?.strip_prefix("blocks ")?.parse().ok()?;
    let mut positions = Vec::with_capacity(blocks);
    for _ in 0..blocks {
        let mut parts = lines.next()?.strip_prefix("pos ")?.split(' ');
        let r: usize = parts.next()?.parse().ok()?;
        let c: usize = parts.next()?.parse().ok()?;
        positions.push((r, c));
    }
    Some((positions, pr_wall_ns))
}

/// The conventional on-disk seed directory for a workspace: `<root>/target/
/// compile-cache/`, discovered by walking up from `start` to the directory
/// holding `Cargo.lock`. Falls back to `<start>/target/compile-cache`.
pub fn default_disk_dir(start: impl AsRef<Path>) -> PathBuf {
    let start = start.as_ref();
    let mut dir = Some(start);
    while let Some(d) = dir {
        if d.join("Cargo.lock").is_file() {
            return d.join("target").join("compile-cache");
        }
        dir = d.parent();
    }
    start.join("target").join("compile-cache")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpsa_nn::zoo;

    #[test]
    fn identical_requests_hit_and_share_the_artifact() {
        let cache = CompileCache::new(4);
        let compiler = Compiler::fpsa();
        let graph = zoo::lenet();
        let (a, ia) = cache.compile_with_info(&compiler, &graph).unwrap();
        let (b, ib) = cache.compile_with_info(&compiler, &graph).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "hits share the artifact");
        assert_eq!(ia.outcome, CacheOutcome::Miss);
        assert_eq!(ib.outcome, CacheOutcome::Hit);
        assert_eq!(ia.key, ib.key);
        assert!(ib.saved_wall_ns > 0.0, "a hit saves the compile wall-clock");
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.hits), (1, 1));
    }

    #[test]
    fn different_configs_key_apart() {
        let cache = CompileCache::new(8);
        let graph = zoo::lenet();
        cache.compile(&Compiler::fpsa(), &graph).unwrap();
        cache
            .compile(&Compiler::fpsa().with_duplication(4), &graph)
            .unwrap();
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.hits), (2, 0));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let cache = CompileCache::new(1);
        let compiler = Compiler::fpsa().without_place_and_route();
        cache.compile(&compiler, &zoo::lenet()).unwrap();
        cache.compile(&compiler, &zoo::mlp_500_100()).unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().evictions, 1);
        // The evicted model recompiles as a miss.
        cache.compile(&compiler, &zoo::lenet()).unwrap();
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn errors_are_cached_and_fail_fast() {
        let cache = CompileCache::new(4);
        let compiler = Compiler::fpsa();
        // AlexNet exceeds the block limit -> CapacityExceeded, twice, but
        // only one compile executes.
        let a = cache.compile(&compiler, &zoo::alexnet()).unwrap_err();
        let b = cache.compile(&compiler, &zoo::alexnet()).unwrap_err();
        assert_eq!(a, b);
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.hits), (1, 1));
    }

    #[test]
    fn warm_start_seeds_a_near_miss_from_a_donor() {
        let cache = CompileCache::new(4).with_warm_start();
        let compiler = Compiler::fpsa();
        let (donor, _) = cache.compile_with_info(&compiler, &zoo::lenet()).unwrap();
        assert!(donor.physical.is_some());
        // A different model under the same compiler warm-starts.
        let (warmed, info) = cache
            .compile_with_info(&compiler, &zoo::mlp_500_100())
            .unwrap();
        assert_eq!(info.outcome, CacheOutcome::WarmStart);
        let physical = warmed.physical.as_ref().unwrap();
        assert!(physical.placement.quality().warm_started);
        assert_eq!(cache.stats().warm_starts, 1);
        assert_eq!(
            warmed.trace.cache().unwrap().outcome,
            CacheOutcome::WarmStart
        );
    }

    #[test]
    fn seed_files_round_trip_through_the_parser() {
        let key = CompileKey::for_compile(&Compiler::fpsa(), &zoo::lenet());
        let contents = format!(
            "fpsa-compile-cache v1\nkey {}\nmodel lenet\npr_wall_ns 1234.5\nblocks 2\npos 1 2\npos 3 4\n",
            key.hex()
        );
        let (positions, ns) = parse_seed_file(&contents, &key.hex()).unwrap();
        assert_eq!(positions, vec![(1, 2), (3, 4)]);
        assert_eq!(ns, 1234.5);
        // Wrong key, truncated body, bad header -> rejected.
        assert!(parse_seed_file(&contents, "0000").is_none());
        assert!(parse_seed_file("fpsa-compile-cache v1\n", &key.hex()).is_none());
        assert!(parse_seed_file("junk", &key.hex()).is_none());
    }
}
