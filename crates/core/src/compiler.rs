//! The end-to-end compilation pipeline.
//!
//! `Compiler` drives the instrumented stage pipeline of [`crate::pipeline`]
//! through the three software-stack steps of the paper — neural synthesis
//! (computational graph → core-op graph), spatial-to-temporal mapping
//! (core-op graph → function-block netlist) and, when the netlist is small
//! enough for full physical design, placement & routing on the fabric —
//! followed by communication estimation. The result carries every
//! intermediate artifact plus a [`StageTrace`] of per-stage wall-clock time
//! and artifact sizes, so tools, tests and experiments can inspect any stage
//! and see where compile time went.

use crate::pipeline::{
    EstimateStage, InstrumentedPipeline, MapStage, PlaceRouteStage, SynthesizeStage,
};
use fpsa_arch::{ArchitectureConfig, Bitstream, FabricCapacity, SectionKind};
use fpsa_mapper::Mapping;
use fpsa_nn::{ComputationalGraph, NnError};
use fpsa_serve::{ServeConfig, ServeEngine};
use fpsa_sim::{
    CommunicationEstimate, ExecError, Executor, PerformanceReport, PerformanceSimulator, Precision,
    StageTrace,
};
use fpsa_synthesis::CoreOpGraph;
use serde::{Deserialize, Serialize};
use std::fmt;

pub use crate::pipeline::{ChannelWidthMode, OverLimitPolicy, PhysicalDesign, PlaceRouteConfig};

/// Why compilation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The source model is malformed (graph or shape errors from synthesis).
    Model(NnError),
    /// The mapped netlist does not fit the physical-design capacity the
    /// compiler targets. This is the signal the auto-sharder in `fpsa_shard`
    /// consumes: the carried PE/SMB demand tells it how many fabrics the
    /// model needs. The pre-PR-5 behavior — silently falling back to the
    /// analytic wire model — is available as the explicit
    /// [`OverLimitPolicy::AnalyticFallback`] opt-in
    /// ([`Compiler::with_analytic_fallback`]).
    CapacityExceeded {
        /// Function blocks the mapped netlist demands.
        required: FabricCapacity,
        /// Function blocks a fabric at the block limit offers.
        available: FabricCapacity,
        /// Total netlist blocks.
        blocks: usize,
        /// The configured block limit that was exceeded.
        block_limit: usize,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Model(e) => write!(f, "model error: {e}"),
            CompileError::CapacityExceeded {
                required,
                available,
                blocks,
                block_limit,
            } => write!(
                f,
                "netlist needs {required} ({blocks} blocks) but physical design caps at \
                 {available} ({block_limit} blocks); shard the model (fpsa_shard) or opt in \
                 to the analytic fallback"
            ),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<NnError> for CompileError {
    fn from(e: NnError) -> Self {
        CompileError::Model(e)
    }
}

impl CompileError {
    /// Adapt into the executor's error space (for callers like
    /// `fpsa_core::validate` whose public error type is [`ExecError`]).
    pub fn into_exec(self) -> ExecError {
        match self {
            CompileError::Model(e) => ExecError::Graph(e),
            other @ CompileError::CapacityExceeded { .. } => ExecError::Unsupported {
                reason: other.to_string(),
            },
        }
    }
}

/// Above this many netlist blocks the compiler skips full placement &
/// routing and uses the analytic wire model instead (documented in
/// DESIGN.md); the paper's mrVPR flow has the same practical limit.
pub const PLACE_AND_ROUTE_BLOCK_LIMIT: usize = 4_000;

/// The compiler configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Compiler {
    /// Target architecture.
    pub arch: ArchitectureConfig,
    /// Model-level duplication degree (Section 5.2).
    pub duplication: u64,
    /// Physical-design configuration (placer effort, router negotiation,
    /// channel-width mode, block limit, skip policy).
    pub place_route: PlaceRouteConfig,
}

impl Compiler {
    /// A compiler targeting the default FPSA architecture.
    pub fn fpsa() -> Self {
        Compiler {
            arch: ArchitectureConfig::fpsa(),
            duplication: 1,
            place_route: PlaceRouteConfig::fast(),
        }
    }

    /// A compiler targeting an arbitrary architecture.
    pub fn for_architecture(arch: ArchitectureConfig) -> Self {
        Compiler {
            arch,
            duplication: 1,
            place_route: PlaceRouteConfig::fast(),
        }
    }

    /// Set the duplication degree.
    pub fn with_duplication(mut self, duplication: u64) -> Self {
        self.duplication = duplication.max(1);
        self
    }

    /// Use an explicit physical-design configuration.
    pub fn with_place_route(mut self, config: PlaceRouteConfig) -> Self {
        self.place_route = config;
        self
    }

    /// Skip physical design and always use the analytic communication model.
    pub fn without_place_and_route(mut self) -> Self {
        self.place_route.skip = true;
        self
    }

    /// Opt in to the pre-sharding behavior for over-limit netlists: instead
    /// of the typed [`CompileError::CapacityExceeded`], silently skip
    /// physical design and fall back to the analytic wire model.
    pub fn with_analytic_fallback(mut self) -> Self {
        self.place_route.over_limit = OverLimitPolicy::AnalyticFallback;
        self
    }

    /// Compile a computational graph through the instrumented stage pipeline
    /// `Synthesize → Map → PlaceRoute → Estimate`.
    ///
    /// # Errors
    ///
    /// * [`CompileError::Model`] — graph and shape errors from synthesis;
    /// * [`CompileError::CapacityExceeded`] — the mapped netlist exceeds the
    ///   physical-design block limit and the compiler was not told to fall
    ///   back ([`Compiler::with_analytic_fallback`]) or to skip physical
    ///   design ([`Compiler::without_place_and_route`]).
    pub fn compile(&self, graph: &ComputationalGraph) -> Result<CompiledModel, CompileError> {
        self.compile_warm(graph, None)
    }

    /// [`Compiler::compile`] with an optional warm start for the annealer:
    /// a prior placement (a compile-cache near-miss donor, or an exact
    /// on-disk seed) handed to the PlaceRoute stage, which seeds matching
    /// blocks and runs a cut anneal schedule instead of a cold anneal. See
    /// [`fpsa_placeroute::WarmStart`] and `crate::cache::CompileCache`.
    ///
    /// # Errors
    ///
    /// Exactly as [`Compiler::compile`]; a warm start never introduces new
    /// failure modes (an inapplicable seed degrades to a cold start).
    pub fn compile_warm(
        &self,
        graph: &ComputationalGraph,
        warm: Option<fpsa_placeroute::WarmStart>,
    ) -> Result<CompiledModel, CompileError> {
        let mut pipeline = InstrumentedPipeline::new();
        let core_graph =
            pipeline.run_stage(&SynthesizeStage::for_architecture(&self.arch), graph)?;
        let mapping =
            pipeline.run_stage(&MapStage::new(&self.arch, self.duplication), &core_graph)?;
        let mut place_route_stage = PlaceRouteStage::new(self.arch.clone(), self.place_route);
        if let Some(warm) = warm {
            place_route_stage = place_route_stage.with_warm_start(warm);
        }
        let physical = pipeline.run_stage(&place_route_stage, &mapping)?;
        let communication = pipeline.run_stage(
            &EstimateStage::new(self.arch.clone()),
            (&mapping, physical.as_ref()),
        )?;
        Ok(CompiledModel {
            arch: self.arch.clone(),
            core_graph,
            mapping,
            physical,
            communication,
            trace: pipeline.finish(),
        })
    }
}

/// Everything the compiler produced for one model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledModel {
    /// The architecture this model was compiled for.
    pub arch: ArchitectureConfig,
    /// The synthesized core-op graph.
    pub core_graph: CoreOpGraph,
    /// Allocation, schedule and netlist.
    pub mapping: Mapping,
    /// Placement/routing/timing, when physical design ran.
    pub physical: Option<PhysicalDesign>,
    /// The communication estimate picked by the pipeline's Estimate stage.
    pub communication: CommunicationEstimate,
    /// Per-stage wall-clock and artifact-size instrumentation.
    pub trace: StageTrace,
}

impl CompiledModel {
    /// The communication estimate to use for performance evaluation: the
    /// routed critical path when available, the analytic model otherwise
    /// (picked once by the pipeline's Estimate stage).
    pub fn communication_estimate(&self) -> CommunicationEstimate {
        self.communication
    }

    /// Bind this compiled model to numeric parameters, producing an
    /// [`Executor`] that computes the network's outputs on the simulated
    /// fabric (see `fpsa_sim::exec`). `graph` and `params` must be the
    /// computational graph this model was compiled from and its weights.
    ///
    /// # Errors
    ///
    /// Propagates binding errors (mismatched artifacts, unsupported
    /// constructs, invalid schedule or netlist transport).
    pub fn executor(
        &self,
        graph: &ComputationalGraph,
        params: &fpsa_nn::GraphParameters,
        precision: &Precision,
    ) -> Result<Executor, ExecError> {
        Executor::bind(graph, params, &self.core_graph, &self.mapping, precision)
    }

    /// Bind this compiled model once and put it behind a throughput engine:
    /// `config.replicas` worker threads share the pre-bound executor and
    /// coalesce queued requests into dynamic batches (see `fpsa_serve`).
    /// Engine outputs are bit-identical to [`CompiledModel::executor`] +
    /// `run` per request.
    ///
    /// # Errors
    ///
    /// Propagates binding errors, exactly like [`CompiledModel::executor`].
    pub fn serve(
        &self,
        graph: &ComputationalGraph,
        params: &fpsa_nn::GraphParameters,
        precision: &Precision,
        config: ServeConfig,
    ) -> Result<ServeEngine, ExecError> {
        let executor = self.executor(graph, params, precision)?;
        Ok(ServeEngine::start(executor, config))
    }

    /// Evaluate the performance of the compiled model. The report carries
    /// this compilation's [`StageTrace`].
    pub fn performance(&self) -> PerformanceReport {
        PerformanceSimulator::new(self.arch.clone())
            .evaluate(
                &self.core_graph,
                &self.mapping,
                self.communication_estimate(),
            )
            .with_compile_trace(self.trace.clone())
    }

    /// Emit the configuration bitstream: one weight section per PE, one LUT
    /// section per CLB and one routing section per placed block (switch
    /// settings are only known when physical design ran; otherwise the
    /// routing sections are omitted).
    pub fn bitstream(&self) -> Bitstream {
        let mut bitstream = Bitstream::new();
        let stats = self.mapping.netlist.stats();
        for (slot, block) in self.mapping.netlist.blocks().iter().enumerate() {
            match block {
                fpsa_mapper::NetlistBlock::Pe { group, .. } => {
                    let g = &self.core_graph.groups()[*group];
                    // One 4-bit level per cell; the weights themselves are
                    // trained values not carried through this flow, so the
                    // section records the tile geometry as placeholder levels.
                    // Odd cell counts round up — the trailing cell still
                    // needs its half-byte.
                    let levels = vec![0u8; (g.rows * g.cols).div_ceil(2)];
                    bitstream.push(
                        SectionKind::PeWeights,
                        slot as u32,
                        Bitstream::pack_levels(&levels),
                    );
                }
                fpsa_mapper::NetlistBlock::Clb { .. } => {
                    bitstream.push(SectionKind::ClbLuts, slot as u32, vec![0; 128 * 8]);
                }
                fpsa_mapper::NetlistBlock::Smb { .. } => {
                    bitstream.push(SectionKind::SmbConfig, slot as u32, vec![0; 8]);
                }
            }
        }
        if self.physical.is_some() {
            for slot in 0..stats.pe_count + stats.smb_count + stats.clb_count {
                bitstream.push(SectionKind::RoutingSwitches, slot as u32, vec![0; 64]);
            }
        }
        bitstream
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpsa_nn::zoo;
    use fpsa_sim::StageKind;

    #[test]
    fn compiling_lenet_runs_the_whole_flow() {
        let compiled = Compiler::fpsa().compile(&zoo::lenet()).unwrap();
        assert!(!compiled.core_graph.is_empty());
        assert!(compiled.mapping.netlist.stats().pe_count > 0);
        assert!(compiled.physical.is_some(), "LeNet is small enough for P&R");
        let report = compiled.performance();
        assert!(report.throughput_samples_per_s > 0.0);
        assert!(report.area_mm2 > 0.0);
    }

    #[test]
    fn compilation_records_a_full_stage_trace() {
        let compiled = Compiler::fpsa().compile(&zoo::lenet()).unwrap();
        let kinds: Vec<StageKind> = compiled.trace.records().iter().map(|r| r.stage).collect();
        assert_eq!(kinds, StageKind::ALL.to_vec());
        // Synthesis consumed the graph's nodes and produced the core groups.
        let synth = &compiled.trace.records()[0];
        assert_eq!(synth.items_out, compiled.core_graph.len());
        // Mapping produced the netlist.
        let map = &compiled.trace.records()[1];
        assert_eq!(map.items_out, compiled.mapping.netlist.len());
        // The trace rides on the performance report.
        let report = compiled.performance();
        let trace = report.compile.expect("compiled models report their trace");
        assert_eq!(trace, compiled.trace);
    }

    #[test]
    fn duplication_is_clamped_to_at_least_one() {
        let c = Compiler::fpsa().with_duplication(0);
        assert_eq!(c.duplication, 1);
    }

    #[test]
    fn over_limit_models_raise_the_typed_capacity_error_by_default() {
        let err = Compiler::fpsa()
            .with_duplication(1)
            .compile(&zoo::alexnet())
            .unwrap_err();
        match err {
            CompileError::CapacityExceeded {
                required,
                available,
                blocks,
                block_limit,
            } => {
                assert_eq!(block_limit, PLACE_AND_ROUTE_BLOCK_LIMIT);
                assert!(blocks > block_limit);
                assert_eq!(required.total_blocks(), blocks);
                assert!(!available.fits(&required), "{required} vs {available}");
                assert!(available.total_blocks() <= block_limit);
            }
            other => panic!("expected CapacityExceeded, got {other:?}"),
        }
        // The error renders the actionable guidance.
        assert!(err.to_string().contains("shard the model"));
    }

    #[test]
    fn large_models_skip_physical_design_behind_the_explicit_fallback() {
        let compiled = Compiler::fpsa()
            .with_duplication(1)
            .with_analytic_fallback()
            .compile(&zoo::alexnet())
            .unwrap();
        assert!(compiled.physical.is_none());
        // The analytic communication estimate still applies.
        assert!(matches!(
            compiled.communication_estimate(),
            CommunicationEstimate::Routed { .. }
        ));
        assert!(compiled.performance().throughput_samples_per_s > 0.0);
        // The PlaceRoute stage still appears in the trace, with no output.
        let pr = &compiled.trace.records()[2];
        assert_eq!(pr.stage, StageKind::PlaceRoute);
        assert_eq!(pr.items_out, 0);
    }

    #[test]
    fn without_place_and_route_flag_is_respected() {
        let compiled = Compiler::fpsa()
            .without_place_and_route()
            .compile(&zoo::mlp_500_100())
            .unwrap();
        assert!(compiled.physical.is_none());
    }

    #[test]
    fn bitstream_has_a_section_per_block() {
        let compiled = Compiler::fpsa().compile(&zoo::mlp_500_100()).unwrap();
        let bitstream = compiled.bitstream();
        assert!(bitstream.sections().len() >= compiled.mapping.netlist.len());
        // And it survives a serialization round trip.
        let parsed = Bitstream::from_bytes(bitstream.to_bytes()).unwrap();
        assert_eq!(parsed.sections().len(), bitstream.sections().len());
    }

    #[test]
    fn odd_sized_tiles_keep_their_last_half_byte() {
        use fpsa_mapper::{AllocationPolicy, Mapper};
        use fpsa_synthesis::{CoreOpGraph, CoreOpGroup, CoreOpKind};

        // A single 3x3 weight tile: 9 cells is odd, so the weight section
        // must round the level count up instead of dropping the ninth cell.
        let mut graph = CoreOpGraph::new("odd-tile", 256, 256);
        graph.add_group(CoreOpGroup {
            id: 0,
            name: "odd".into(),
            source_node: 0,
            kind: CoreOpKind::Vmm,
            rows: 3,
            cols: 3,
            row_offset: 0,
            col_offset: 0,
            reuse_degree: 1,
            relu: false,
            layer_depth: 0,
        });
        let arch = ArchitectureConfig::fpsa();
        let mapping = Mapper::new(
            arch.sampling_window(),
            AllocationPolicy::DuplicationDegree(1),
        )
        .map(&graph);
        let compiled = CompiledModel {
            communication: CommunicationEstimate::analytic(&arch, mapping.netlist.len()),
            arch,
            core_graph: graph,
            mapping,
            physical: None,
            trace: StageTrace::new(),
        };

        let bitstream = compiled.bitstream();
        let weights = bitstream
            .sections()
            .iter()
            .find(|s| s.kind == SectionKind::PeWeights)
            .expect("the tile produced a weight section");
        // ceil(9 / 2) = 5 levels, packed two per byte -> 3 payload bytes.
        // The old `9 / 2` truncation produced 4 levels -> 2 bytes, losing
        // the last cell.
        let expected_levels = (3usize * 3).div_ceil(2);
        assert_eq!(weights.payload.len(), expected_levels.div_ceil(2));
        assert_eq!(weights.payload.len(), 3);
    }

    #[test]
    fn prime_target_compiles_too() {
        let compiled = Compiler::for_architecture(fpsa_arch::ArchitectureConfig::prime())
            .without_place_and_route()
            .compile(&zoo::lenet())
            .unwrap();
        assert!(matches!(
            compiled.communication_estimate(),
            CommunicationEstimate::Bus { .. }
        ));
    }
}
