//! The end-to-end compilation pipeline.
//!
//! `Compiler` runs the three software-stack steps of the paper in order:
//! neural synthesis (computational graph → core-op graph), spatial-to-
//! temporal mapping (core-op graph → function-block netlist), and — when the
//! netlist is small enough for full physical design — placement & routing on
//! the fabric. The result carries every intermediate artifact so that tools,
//! tests and experiments can inspect any stage.

use fpsa_arch::{ArchitectureConfig, Bitstream, SectionKind};
use fpsa_mapper::{AllocationPolicy, Mapper, Mapping};
use fpsa_nn::{ComputationalGraph, NnError};
use fpsa_placeroute::{place_and_route, PlacerConfig, Placement, RoutingResult, TimingReport};
use fpsa_sim::{CommunicationEstimate, PerformanceReport, PerformanceSimulator};
use fpsa_synthesis::{CoreOpGraph, NeuralSynthesizer, SynthesisConfig};
use serde::{Deserialize, Serialize};

/// Above this many netlist blocks the compiler skips full placement &
/// routing and uses the analytic wire model instead (documented in
/// DESIGN.md); the paper's mrVPR flow has the same practical limit.
pub const PLACE_AND_ROUTE_BLOCK_LIMIT: usize = 4_000;

/// The compiler configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Compiler {
    /// Target architecture.
    pub arch: ArchitectureConfig,
    /// Model-level duplication degree (Section 5.2).
    pub duplication: u64,
    /// Placer effort used when physical design runs.
    pub placer: PlacerConfig,
    /// Force-skip physical design even for small netlists.
    pub skip_place_and_route: bool,
}

impl Compiler {
    /// A compiler targeting the default FPSA architecture.
    pub fn fpsa() -> Self {
        Compiler {
            arch: ArchitectureConfig::fpsa(),
            duplication: 1,
            placer: PlacerConfig::fast(),
            skip_place_and_route: false,
        }
    }

    /// A compiler targeting an arbitrary architecture.
    pub fn for_architecture(arch: ArchitectureConfig) -> Self {
        Compiler {
            arch,
            duplication: 1,
            placer: PlacerConfig::fast(),
            skip_place_and_route: false,
        }
    }

    /// Set the duplication degree.
    pub fn with_duplication(mut self, duplication: u64) -> Self {
        self.duplication = duplication.max(1);
        self
    }

    /// Skip physical design and always use the analytic communication model.
    pub fn without_place_and_route(mut self) -> Self {
        self.skip_place_and_route = true;
        self
    }

    /// Compile a computational graph.
    ///
    /// # Errors
    ///
    /// Propagates graph and shape errors from the synthesis step.
    pub fn compile(&self, graph: &ComputationalGraph) -> Result<CompiledModel, NnError> {
        let synthesizer = NeuralSynthesizer::new(SynthesisConfig {
            crossbar_rows: self.arch.pe.rows,
            crossbar_cols: self.arch.pe.cols,
        });
        let core_graph = synthesizer.synthesize(graph)?;
        let mapper = Mapper::new(
            self.arch.sampling_window(),
            AllocationPolicy::DuplicationDegree(self.duplication),
        );
        let mapping = mapper.map(&core_graph);

        let physical = if !self.skip_place_and_route
            && mapping.netlist.len() <= PLACE_AND_ROUTE_BLOCK_LIMIT
        {
            let (placement, routing, timing) =
                place_and_route(&mapping.netlist, &self.arch, self.placer);
            Some(PhysicalDesign {
                placement,
                routing,
                timing,
            })
        } else {
            None
        };

        Ok(CompiledModel {
            arch: self.arch.clone(),
            core_graph,
            mapping,
            physical,
        })
    }
}

/// The physical-design artifacts (present when P&R ran).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhysicalDesign {
    /// Block placement on the fabric.
    pub placement: Placement,
    /// Routed nets.
    pub routing: RoutingResult,
    /// Timing analysis of the routed design.
    pub timing: TimingReport,
}

/// Everything the compiler produced for one model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledModel {
    /// The architecture this model was compiled for.
    pub arch: ArchitectureConfig,
    /// The synthesized core-op graph.
    pub core_graph: CoreOpGraph,
    /// Allocation, schedule and netlist.
    pub mapping: Mapping,
    /// Placement/routing/timing, when physical design ran.
    pub physical: Option<PhysicalDesign>,
}

impl CompiledModel {
    /// The communication estimate to use for performance evaluation: the
    /// routed critical path when available, the analytic model otherwise.
    pub fn communication_estimate(&self) -> CommunicationEstimate {
        match (&self.physical, &self.arch.communication) {
            (Some(p), fpsa_arch::CommunicationStyle::Routed { .. }) => {
                CommunicationEstimate::from_timing(&p.timing)
            }
            _ => CommunicationEstimate::analytic(&self.arch, self.mapping.netlist.len()),
        }
    }

    /// Evaluate the performance of the compiled model.
    pub fn performance(&self) -> PerformanceReport {
        PerformanceSimulator::new(self.arch.clone()).evaluate(
            &self.core_graph,
            &self.mapping,
            self.communication_estimate(),
        )
    }

    /// Emit the configuration bitstream: one weight section per PE, one LUT
    /// section per CLB and one routing section per placed block (switch
    /// settings are only known when physical design ran; otherwise the
    /// routing sections are omitted).
    pub fn bitstream(&self) -> Bitstream {
        let mut bitstream = Bitstream::new();
        let stats = self.mapping.netlist.stats();
        for (slot, block) in self.mapping.netlist.blocks().iter().enumerate() {
            match block {
                fpsa_mapper::NetlistBlock::Pe { group, .. } => {
                    let g = &self.core_graph.groups()[*group];
                    // One 4-bit level per cell; the weights themselves are
                    // trained values not carried through this flow, so the
                    // section records the tile geometry as placeholder levels.
                    let levels = vec![0u8; g.rows * g.cols / 2];
                    bitstream.push(
                        SectionKind::PeWeights,
                        slot as u32,
                        Bitstream::pack_levels(&levels),
                    );
                }
                fpsa_mapper::NetlistBlock::Clb { .. } => {
                    bitstream.push(SectionKind::ClbLuts, slot as u32, vec![0; 128 * 8]);
                }
                fpsa_mapper::NetlistBlock::Smb { .. } => {
                    bitstream.push(SectionKind::SmbConfig, slot as u32, vec![0; 8]);
                }
            }
        }
        if self.physical.is_some() {
            for slot in 0..stats.pe_count + stats.smb_count + stats.clb_count {
                bitstream.push(SectionKind::RoutingSwitches, slot as u32, vec![0; 64]);
            }
        }
        bitstream
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpsa_nn::zoo;

    #[test]
    fn compiling_lenet_runs_the_whole_flow() {
        let compiled = Compiler::fpsa().compile(&zoo::lenet()).unwrap();
        assert!(!compiled.core_graph.is_empty());
        assert!(compiled.mapping.netlist.stats().pe_count > 0);
        assert!(compiled.physical.is_some(), "LeNet is small enough for P&R");
        let report = compiled.performance();
        assert!(report.throughput_samples_per_s > 0.0);
        assert!(report.area_mm2 > 0.0);
    }

    #[test]
    fn duplication_is_clamped_to_at_least_one() {
        let c = Compiler::fpsa().with_duplication(0);
        assert_eq!(c.duplication, 1);
    }

    #[test]
    fn large_models_skip_physical_design() {
        let compiled = Compiler::fpsa()
            .with_duplication(1)
            .compile(&zoo::alexnet())
            .unwrap();
        assert!(compiled.physical.is_none());
        // The analytic communication estimate still applies.
        assert!(matches!(
            compiled.communication_estimate(),
            CommunicationEstimate::Routed { .. }
        ));
        assert!(compiled.performance().throughput_samples_per_s > 0.0);
    }

    #[test]
    fn without_place_and_route_flag_is_respected() {
        let compiled = Compiler::fpsa()
            .without_place_and_route()
            .compile(&zoo::mlp_500_100())
            .unwrap();
        assert!(compiled.physical.is_none());
    }

    #[test]
    fn bitstream_has_a_section_per_block() {
        let compiled = Compiler::fpsa().compile(&zoo::mlp_500_100()).unwrap();
        let bitstream = compiled.bitstream();
        assert!(bitstream.sections().len() >= compiled.mapping.netlist.len());
        // And it survives a serialization round trip.
        let parsed = Bitstream::from_bytes(bitstream.to_bytes()).unwrap();
        assert_eq!(parsed.sections().len(), bitstream.sections().len());
    }

    #[test]
    fn prime_target_compiles_too() {
        let compiled = Compiler::for_architecture(fpsa_arch::ArchitectureConfig::prime())
            .without_place_and_route()
            .compile(&zoo::lenet())
            .unwrap();
        assert!(matches!(
            compiled.communication_estimate(),
            CommunicationEstimate::Bus { .. }
        ));
    }
}
