//! Differential validation of compiled models.
//!
//! `validate` runs a compiled model through the execution engine
//! (`fpsa_sim::exec`) and the golden-model reference
//! (`fpsa_nn::reference`) side by side and reports how far they diverge —
//! per node and at the logits — in two numeric domains:
//!
//! * **float** — both sides accumulate in f64 and round to f32 at node
//!   boundaries, so the only legal divergence is summation order inside
//!   tiled layers; the documented tolerance (see DESIGN.md) is a small
//!   multiple of f32 epsilon per layer.
//! * **integer** — a [`QuantizationPlan`] is calibrated on the validation
//!   batch, and executor output codes must equal the quantized reference
//!   **bit for bit** (integer accumulation is associative, so any
//!   divergence is a compilation bug, not numerics).
//!
//! This is the `Compiler`/`Evaluator` "validate path": tests and the
//! differential CI suite call it per zoo model.

use crate::compiler::{CompileError, Compiler};
use fpsa_nn::reference::{QuantizationPlan, Reference};
use fpsa_nn::{seeds, ComputationalGraph, GraphParameters, NodeId};
use fpsa_sim::exec::{ExecError, Precision};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How to drive one validation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ValidationConfig {
    /// Number of input samples to execute.
    pub batch: usize,
    /// Maximum tolerated absolute logit difference in the float domain.
    pub tolerance: f64,
    /// Base seed for input-sample generation (`STREAM_SAMPLES`).
    pub seed: u64,
}

impl Default for ValidationConfig {
    fn default() -> Self {
        ValidationConfig {
            batch: 4,
            // Both sides accumulate in f64 and store f32 at node
            // boundaries; summation order contributes ~eps per element, so
            // 1e-4 absolute on O(1)-scaled activations is generous but far
            // below any real compilation bug.
            tolerance: 1e-4,
            seed: 0xD1FF,
        }
    }
}

/// Divergence observed at one node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeDiff {
    /// Node id in the computational graph.
    pub node: NodeId,
    /// Node name.
    pub name: String,
    /// Maximum absolute float difference over the batch.
    pub max_abs: f64,
}

/// The outcome of one differential validation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// Model name.
    pub model: String,
    /// Samples executed.
    pub samples: usize,
    /// Maximum absolute logit difference in the float domain.
    pub float_max_abs: f64,
    /// Per-node float divergence, executor vs reference.
    pub per_node: Vec<NodeDiff>,
    /// Whether integer-domain outputs were bit-identical on every sample.
    pub integer_bit_exact: bool,
    /// The tolerance the float comparison was judged against.
    pub tolerance: f64,
}

impl ValidationReport {
    /// Whether the compiled model preserved semantics: float within
    /// tolerance and integer bit-exact.
    pub fn passed(&self) -> bool {
        self.float_max_abs <= self.tolerance && self.integer_bit_exact
    }

    /// The node with the worst float divergence, if any diverged at all.
    pub fn worst_node(&self) -> Option<&NodeDiff> {
        self.per_node
            .iter()
            .max_by(|a, b| a.max_abs.total_cmp(&b.max_abs))
    }
}

/// Deterministic validation inputs for a graph: uniform `[0, 1)` features,
/// sample `i` drawn from `StdRng(seeds::derive(seed, STREAM_SAMPLES, i))`.
pub fn sample_inputs(graph: &ComputationalGraph, n: usize, seed: u64) -> Vec<Vec<f32>> {
    let len = graph.input_elements();
    (0..n)
        .map(|i| {
            let mut rng =
                StdRng::seed_from_u64(seeds::derive(seed, seeds::STREAM_SAMPLES, i as u64));
            (0..len).map(|_| rng.gen_range(0.0f32..1.0)).collect()
        })
        .collect()
}

/// Compile `graph` with `compiler` and differentially validate the result
/// against the golden-model reference in both numeric domains.
///
/// # Errors
///
/// Propagates compilation and executor-binding errors.
pub fn validate(
    compiler: &Compiler,
    graph: &ComputationalGraph,
    params: &GraphParameters,
    config: &ValidationConfig,
) -> Result<ValidationReport, ExecError> {
    let compiled = compiler.compile(graph).map_err(CompileError::into_exec)?;
    let inputs = sample_inputs(graph, config.batch.max(1), config.seed);
    let reference = Reference::new(graph, params)?;

    // Float domain: per-node and logit divergence.
    let float_exec = compiled.executor(graph, params, &Precision::Float)?;
    let mut per_node_max: Vec<Option<f64>> = vec![None; graph.len()];
    let mut float_max_abs = 0.0f64;
    for x in &inputs {
        let got_nodes = float_exec.run_nodes(x)?;
        let want_nodes = reference.forward(x)?;
        for (node, (got, want)) in got_nodes.iter().zip(&want_nodes).enumerate() {
            if let (Some(got), Some(want)) = (got.as_deref(), want.as_deref()) {
                let diff = max_abs_diff(got, want);
                let entry = per_node_max[node].get_or_insert(0.0);
                *entry = entry.max(diff);
            }
        }
        // `run_checked` shadows the bytecode stream with the retired
        // interpreter and asserts bit-identical node activations — the
        // cross-check that keeps exactly one production executor honest.
        let got = float_exec.run_checked(x)?;
        let want = reference.logits(x)?;
        float_max_abs = float_max_abs.max(max_abs_diff(&got, &want));
    }

    // Integer domain: calibrate on the same batch, compare codes exactly.
    let plan = QuantizationPlan::calibrate(graph, params, &inputs)?;
    let int_exec = compiled.executor(graph, params, &Precision::Integer(plan.clone()))?;
    let mut integer_bit_exact = true;
    for x in &inputs {
        int_exec.run_checked(x)?;
        let got = int_exec.run_codes(x)?;
        let want = reference.quantized_logits(&plan, x)?;
        if got != want {
            integer_bit_exact = false;
            break;
        }
    }

    let per_node = graph
        .nodes()
        .iter()
        .filter_map(|n| {
            per_node_max[n.id].map(|max_abs| NodeDiff {
                node: n.id,
                name: n.name.clone(),
                max_abs,
            })
        })
        .collect();

    Ok(ValidationReport {
        model: graph.name.clone(),
        samples: inputs.len(),
        float_max_abs,
        per_node,
        integer_bit_exact,
        tolerance: config.tolerance,
    })
}

/// One measured-vs-modeled execution-cost observation: the wall-clock cost
/// of pushing a sample through the bytecode executor next to the
/// performance model's steady-state per-sample cost for the same compiled
/// model.
///
/// The two numbers describe different machines — a host CPU interpreting
/// the fabric versus the modeled fabric itself — so their ratio
/// ([`CostProbe::slowdown`]) is a *simulation slowdown*, not an error. The
/// release suite pins it to a generous band: a slowdown that leaves the
/// band means either the bytecode executor regressed by orders of
/// magnitude or the performance model's per-sample cost came unmoored.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostProbe {
    /// Model name.
    pub model: String,
    /// Measured bytecode cost per sample, bind-amortized with a reused
    /// arena: minimum over repetitions of (batch wall time / batch size).
    pub measured_ns_per_sample: f64,
    /// The performance model's per-sample cost, `1e9 /`
    /// [`throughput_samples_per_s`](fpsa_sim::PerformanceReport::throughput_samples_per_s).
    pub modeled_ns_per_sample: f64,
}

impl CostProbe {
    /// How much slower the host-side functional simulation is than the
    /// modeled fabric (measured / modeled).
    pub fn slowdown(&self) -> f64 {
        self.measured_ns_per_sample / self.modeled_ns_per_sample
    }
}

/// Compile `graph`, bind the float bytecode executor and measure its
/// per-sample forward cost against the performance model's.
///
/// Measurement protocol: one warm-up batch grows the arena and output
/// buffers, then `reps` timed batches of `samples` inputs run with zero
/// steady-state allocation; the fastest batch is reported.
///
/// # Errors
///
/// Propagates compilation and executor-binding errors.
pub fn probe_execution_cost(
    compiler: &Compiler,
    graph: &ComputationalGraph,
    params: &GraphParameters,
    samples: usize,
    reps: usize,
) -> Result<CostProbe, ExecError> {
    let compiled = compiler.compile(graph).map_err(CompileError::into_exec)?;
    let modeled_ns_per_sample = 1e9 / compiled.performance().throughput_samples_per_s;
    let exec = compiled.executor(graph, params, &Precision::Float)?;
    let inputs = sample_inputs(graph, samples.max(1), 0xC057);

    let mut arena = fpsa_sim::ExecArena::default();
    let mut outputs = Vec::new();
    exec.run_batch_into(&inputs, &mut arena, &mut outputs)?;

    let mut best_ns = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = std::time::Instant::now();
        exec.run_batch_into(&inputs, &mut arena, &mut outputs)?;
        let ns = start.elapsed().as_nanos() as f64 / inputs.len() as f64;
        best_ns = best_ns.min(ns);
    }

    Ok(CostProbe {
        model: graph.name.clone(),
        measured_ns_per_sample: best_ns,
        modeled_ns_per_sample,
    })
}

fn max_abs_diff(a: &[f32], b: &[f32]) -> f64 {
    // A length mismatch means the executor computed a differently-shaped
    // function — the worst possible divergence, not a prefix to compare.
    if a.len() != b.len() {
        return f64::INFINITY;
    }
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (f64::from(x) - f64::from(y)).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpsa_nn::zoo;

    #[test]
    fn tiny_models_validate_through_the_full_compiler() {
        let compiler = Compiler::fpsa();
        for graph in [zoo::tiny_mlp(), zoo::tiny_resnet()] {
            let params = GraphParameters::seeded(&graph, 21);
            let report = validate(&compiler, &graph, &params, &ValidationConfig::default())
                .unwrap_or_else(|e| panic!("{}: {e}", graph.name));
            assert!(
                report.passed(),
                "{}: float diff {} (tolerance {}), integer exact: {}",
                report.model,
                report.float_max_abs,
                report.tolerance,
                report.integer_bit_exact
            );
            assert!(report.samples >= 4);
        }
    }

    #[test]
    fn report_surfaces_per_node_divergence() {
        let compiler = Compiler::fpsa();
        let graph = zoo::tiny_wide_mlp();
        let params = GraphParameters::seeded(&graph, 2);
        let report = validate(&compiler, &graph, &params, &ValidationConfig::default()).unwrap();
        // Every executed node has a row (the wide MLP executes its input,
        // both dense layers — and nothing else), and the worst node is
        // consistent with the table.
        assert_eq!(report.per_node.len(), 3, "{:?}", report.per_node);
        let worst = report.worst_node().unwrap();
        assert!(report.per_node.iter().all(|n| n.max_abs <= worst.max_abs));
        assert!(report.passed(), "float diff {}", report.float_max_abs);
    }

    #[test]
    fn sample_inputs_are_deterministic_per_seed() {
        let graph = zoo::tiny_mlp();
        assert_eq!(sample_inputs(&graph, 3, 1), sample_inputs(&graph, 3, 1));
        assert_ne!(sample_inputs(&graph, 3, 1), sample_inputs(&graph, 3, 2));
        assert_eq!(sample_inputs(&graph, 2, 1)[0].len(), 16);
    }
}
