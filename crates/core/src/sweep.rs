//! The unified parallel sweep engine.
//!
//! Every experiment driver used to hand-roll its own loop, and
//! `Evaluator::evaluate_many` hand-rolled `crossbeam::scope` threading. This
//! module replaces all of that with one rayon-backed engine:
//!
//! * [`Sweep`] — the typed grid of (model × architecture × duplication)
//!   points behind Figure 8, Table 3 and `Evaluator::evaluate_many`;
//! * [`parallel_map`] — the order-preserving parallel primitive under
//!   [`Sweep::run`], shared by drivers whose grids are not model-shaped
//!   (area sweeps, per-architecture bars, variation trials);
//! * [`log_space`] — the log-spaced axis used by the area sweeps of
//!   Figures 2 and 6.
//!
//! Points are embarrassingly parallel: every evaluation compiles its own
//! model and shares nothing, so the engine guarantees output order matches
//! input order and nothing else.

use crate::cache::CompileCache;
use crate::evaluator::{Evaluator, ModelEvaluation};
use fpsa_arch::ArchitectureConfig;
use fpsa_nn::zoo::Benchmark;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Map `f` over `items` in parallel, preserving input order.
///
/// This is the single parallel primitive of the repository: the sweep grid,
/// the experiment drivers and the benches all fan out through it.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    items.par_iter().map(f).collect()
}

/// `points` log-spaced values over `[min, max]`, inclusive of both ends.
///
/// Matches the axis the paper's area sweeps use (and the spacing the old
/// `PerformanceBounds::sweep` produced): clamped below at `1e-3`.
pub fn log_space(min: f64, max: f64, points: usize) -> Vec<f64> {
    assert!(points >= 2, "a sweep needs at least two points");
    let log_min = min.max(1e-3).ln();
    let log_max = max.max(min).ln();
    (0..points)
        .map(|i| {
            let t = i as f64 / (points - 1) as f64;
            (log_min + t * (log_max - log_min)).exp()
        })
        .collect()
}

/// One (model, architecture, duplication) evaluation point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Which benchmark to compile.
    pub benchmark: Benchmark,
    /// Target architecture.
    pub architecture: ArchitectureConfig,
    /// Model-level duplication degree.
    pub duplication: u64,
}

/// A grid of evaluation points, executed in parallel by [`Sweep::run`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Sweep {
    points: Vec<SweepPoint>,
}

impl Sweep {
    /// An empty sweep.
    pub fn new() -> Self {
        Self::default()
    }

    /// The full cartesian grid models × architectures × duplications.
    pub fn cartesian(
        benchmarks: &[Benchmark],
        architectures: &[ArchitectureConfig],
        duplications: &[u64],
    ) -> Self {
        let mut sweep = Sweep::new();
        for &benchmark in benchmarks {
            for architecture in architectures {
                for &duplication in duplications {
                    sweep = sweep.point(benchmark, architecture.clone(), duplication);
                }
            }
        }
        sweep
    }

    /// Explicit (model, duplication) pairs on one architecture — the shape
    /// `Evaluator::evaluate_many` asks for.
    pub fn over_points(architecture: &ArchitectureConfig, pairs: &[(Benchmark, u64)]) -> Self {
        let mut sweep = Sweep::new();
        for &(benchmark, duplication) in pairs {
            sweep = sweep.point(benchmark, architecture.clone(), duplication);
        }
        sweep
    }

    /// Append one point.
    pub fn point(
        mut self,
        benchmark: Benchmark,
        architecture: ArchitectureConfig,
        duplication: u64,
    ) -> Self {
        self.points.push(SweepPoint {
            benchmark,
            architecture,
            duplication,
        });
        self
    }

    /// The points in evaluation order.
    pub fn points(&self) -> &[SweepPoint] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the sweep has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Evaluate every point in parallel; results keep the point order.
    ///
    /// Compilation goes through a per-run [`CompileCache`]: grids whose
    /// axes repeat a (model, architecture, duplication) combination compile
    /// it once and share the artifact across workers (the single-flight
    /// store ensures exactly one compile per distinct point even under
    /// parallel racers).
    pub fn run(&self) -> Vec<ModelEvaluation> {
        self.run_with_cache(&CompileCache::new(self.points.len().max(1)))
    }

    /// [`Sweep::run`] against a caller-owned cache, so several sweeps (or a
    /// sweep plus direct [`Evaluator`] calls) can share compiled artifacts
    /// and so drivers can report the hit/miss statistics afterwards.
    pub fn run_with_cache(&self, cache: &CompileCache) -> Vec<ModelEvaluation> {
        parallel_map(&self.points, |point| {
            Evaluator::new(point.architecture.clone()).evaluate_with_cache(
                point.benchmark,
                point.duplication,
                Some(cache),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..257).collect();
        let squares = parallel_map(&items, |&x| x * x);
        assert_eq!(squares.len(), items.len());
        for (i, &sq) in squares.iter().enumerate() {
            assert_eq!(sq, i * i);
        }
    }

    #[test]
    fn log_space_matches_the_legacy_sweep_axis() {
        let axis = log_space(10.0, 10_000.0, 12);
        assert_eq!(axis.len(), 12);
        assert!((axis[0] - 10.0).abs() < 1e-9);
        assert!((axis[11] - 10_000.0).abs() < 1e-6);
        for pair in axis.windows(2) {
            assert!(pair[1] > pair[0]);
        }
        // Log spacing: constant ratio between neighbours.
        let r0 = axis[1] / axis[0];
        let r9 = axis[10] / axis[9];
        assert!((r0 - r9).abs() < 1e-9);
    }

    #[test]
    fn cartesian_grids_enumerate_every_combination() {
        let sweep = Sweep::cartesian(
            &[Benchmark::Mlp500x100, Benchmark::LeNet],
            &[ArchitectureConfig::fpsa()],
            &[1, 4],
        );
        assert_eq!(sweep.len(), 4);
        let dups: Vec<u64> = sweep.points().iter().map(|p| p.duplication).collect();
        assert_eq!(dups, vec![1, 4, 1, 4]);
    }

    #[test]
    fn repeated_points_compile_exactly_once() {
        use fpsa_sim::CacheOutcome;
        // The same (model, arch, duplication) point three times, plus one
        // distinct point: exactly two compiler invocations, two hits.
        let arch = ArchitectureConfig::fpsa();
        let sweep = Sweep::over_points(
            &arch,
            &[
                (Benchmark::Mlp500x100, 1),
                (Benchmark::Mlp500x100, 1),
                (Benchmark::LeNet, 4),
                (Benchmark::Mlp500x100, 1),
            ],
        );
        let cache = CompileCache::new(sweep.len());
        let results = sweep.run_with_cache(&cache);
        let stats = cache.stats();
        assert_eq!(stats.misses, 2, "one compile per distinct point");
        assert_eq!(stats.hits, 2, "duplicates reuse the cached artifact");
        assert!(stats.saved_wall_ns > 0.0);
        // Duplicates are bit-identical evaluations, and each report's trace
        // carries its own cache outcome.
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[3]);
        let outcomes: Vec<CacheOutcome> = results
            .iter()
            .map(|r| {
                r.performance
                    .compile
                    .as_ref()
                    .unwrap()
                    .cache()
                    .unwrap()
                    .outcome
            })
            .collect();
        assert_eq!(
            outcomes.iter().filter(|&&o| o == CacheOutcome::Hit).count(),
            2
        );
        assert_eq!(
            outcomes
                .iter()
                .filter(|&&o| o == CacheOutcome::Miss)
                .count(),
            2
        );
    }

    #[test]
    fn sweep_results_match_direct_evaluation() {
        let arch = ArchitectureConfig::fpsa();
        let sweep = Sweep::over_points(&arch, &[(Benchmark::Mlp500x100, 1), (Benchmark::LeNet, 4)]);
        let results = sweep.run();
        assert_eq!(results.len(), 2);
        let direct = Evaluator::new(arch).evaluate(Benchmark::LeNet, 4);
        assert_eq!(results[1], direct);
    }
}
