//! The top of the FPSA reproduction stack.
//!
//! This crate ties the whole system together:
//!
//! * [`compiler`] — the end-to-end compilation flow that a user would run to
//!   deploy a network on the FPSA fabric;
//! * [`cache`] — the content-addressed compile cache: stable structural
//!   keys over (graph + compiler config), single-flight artifact reuse
//!   across sweep workers, opt-in warm-started annealing from near-miss
//!   donors, and an opt-in on-disk placement-seed tier;
//! * [`pipeline`] — the instrumented stage pipeline beneath the compiler
//!   (`Synthesize → Map → PlaceRoute → Estimate`), each stage a typed
//!   artifact transform whose wall-clock time and sizes land in a
//!   `StageTrace`;
//! * [`evaluator`] — the evaluation harness that compiles a benchmark on a
//!   chosen architecture (FPSA / FP-PRIME / PRIME), estimates or measures the
//!   communication critical path, and reports throughput, latency, area and
//!   utilization;
//! * [`sweep`] — the unified rayon-backed parallel sweep engine every
//!   experiment driver and `Evaluator::evaluate_many` fan out through;
//! * [`validate`] — the differential validation path: compile a model, run
//!   it on the simulated fabric via `fpsa_sim::exec` and diff the outputs
//!   against the golden-model reference (float tolerance + integer
//!   bit-exactness);
//! * [`experiments`] — one driver per table and figure of the paper's
//!   evaluation section, each returning structured records that the
//!   benchmarks, examples and EXPERIMENTS.md regenerate.
//!
//! # Example
//!
//! ```
//! use fpsa_core::compiler::Compiler;
//! use fpsa_nn::zoo;
//!
//! let compiled = Compiler::fpsa().with_duplication(4).compile(&zoo::lenet())?;
//! let report = compiled.performance();
//! assert!(report.throughput_samples_per_s > 1_000.0);
//! # Ok::<(), fpsa_core::compiler::CompileError>(())
//! ```

pub mod cache;
pub mod compiler;
pub mod evaluator;
pub mod experiments;
pub mod pipeline;
pub mod report;
pub mod sweep;
pub mod validate;

pub use cache::{CacheStats, CompileCache, CompileKey};
pub use compiler::{CompileError, CompiledModel, Compiler};
pub use evaluator::{Evaluator, ModelEvaluation};
pub use sweep::{Sweep, SweepPoint};
pub use validate::{validate, ValidationConfig, ValidationReport};
