//! Table 3: the overall performance of FPSA for every benchmark model.

use crate::report::{engineering, format_table};
use crate::sweep::Sweep;
use fpsa_arch::ArchitectureConfig;
use fpsa_nn::zoo::Benchmark;
use serde::{Deserialize, Serialize};

/// One column (model) of Table 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3Column {
    /// Model name.
    pub model: String,
    /// Dataset name.
    pub dataset: String,
    /// Measured weight count.
    pub weights: u64,
    /// Measured operation count per sample.
    pub ops: u64,
    /// Throughput in samples per second.
    pub throughput_samples_per_s: f64,
    /// End-to-end latency in µs.
    pub latency_us: f64,
    /// Area in mm² (45 nm).
    pub area_mm2: f64,
    /// Per-VMM communication cost over the critical routed connection in ns
    /// (what clocks the pipeline).
    pub communication_ns_per_vmm: f64,
    /// Per-VMM communication cost over a typical routed connection in ns
    /// (the mean of the delay profile; what latency accumulates).
    pub communication_avg_ns_per_vmm: f64,
    /// Published throughput (samples/s) from the paper, for the report.
    pub published_throughput: f64,
    /// Published area (mm²) from the paper, for the report.
    pub published_area_mm2: f64,
}

/// Regenerate Table 3 (64x duplication, as the paper reports).
pub fn run() -> Vec<Table3Column> {
    run_with_duplication(64)
}

/// Regenerate the table at an arbitrary duplication degree. Every model
/// evaluates in parallel through the unified sweep engine.
pub fn run_with_duplication(duplication: u64) -> Vec<Table3Column> {
    let evals = Sweep::cartesian(
        &Benchmark::all(),
        &[ArchitectureConfig::fpsa()],
        &[duplication],
    )
    .run();
    Benchmark::all()
        .into_iter()
        .zip(evals)
        .map(|(benchmark, eval)| Table3Column {
            model: benchmark.name().to_string(),
            dataset: benchmark.dataset().to_string(),
            weights: eval.measured_weights,
            ops: eval.measured_ops,
            throughput_samples_per_s: eval.performance.throughput_samples_per_s,
            latency_us: eval.performance.latency_us,
            area_mm2: eval.performance.area_mm2,
            communication_ns_per_vmm: eval.performance.communication_ns_per_vmm,
            communication_avg_ns_per_vmm: eval.performance.communication_avg_ns_per_vmm,
            published_throughput: published_throughput(benchmark),
            published_area_mm2: published_area(benchmark),
        })
        .collect()
}

/// The throughput reported in the paper's Table 3 (samples per second).
pub fn published_throughput(benchmark: Benchmark) -> f64 {
    match benchmark {
        Benchmark::Mlp500x100 => 129.7e6,
        Benchmark::LeNet => 229.4e3,
        Benchmark::CifarVgg17 => 117.4e3,
        Benchmark::AlexNet => 28.2e3,
        Benchmark::Vgg16 => 2.4e3,
        Benchmark::GoogLeNet => 10.9e3,
        Benchmark::ResNet152 => 10.8e3,
    }
}

/// The area reported in the paper's Table 3 (mm², 45 nm).
pub fn published_area(benchmark: Benchmark) -> f64 {
    match benchmark {
        Benchmark::Mlp500x100 => 28.23,
        Benchmark::LeNet => 2.27,
        Benchmark::CifarVgg17 => 21.68,
        Benchmark::AlexNet => 45.89,
        Benchmark::Vgg16 => 68.09,
        Benchmark::GoogLeNet => 47.74,
        Benchmark::ResNet152 => 64.32,
    }
}

/// Render Table 3 as text.
pub fn to_table(columns: &[Table3Column]) -> String {
    format_table(
        &[
            "model",
            "dataset",
            "weights",
            "ops",
            "throughput (sample/s)",
            "latency (us)",
            "area (mm^2)",
            "comm crit (ns)",
            "comm avg (ns)",
            "paper thr.",
            "paper area",
        ],
        &columns
            .iter()
            .map(|c| {
                vec![
                    c.model.clone(),
                    c.dataset.clone(),
                    engineering(c.weights as f64),
                    engineering(c.ops as f64),
                    engineering(c.throughput_samples_per_s),
                    format!("{:.2}", c.latency_us),
                    format!("{:.2}", c.area_mm2),
                    format!("{:.1}", c.communication_ns_per_vmm),
                    format!("{:.1}", c.communication_avg_ns_per_vmm),
                    engineering(c.published_throughput),
                    format!("{:.2}", c.published_area_mm2),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_model_columns_follow_the_published_ordering() {
        // Use a light duplication degree to keep the test quick; the ordering
        // relationships of Table 3 already hold there.
        let cols = run_with_duplication(4);
        assert_eq!(cols.len(), 7);
        let by_name = |n: &str| cols.iter().find(|c| c.model == n).unwrap();
        let mlp = by_name("MLP-500-100");
        let lenet = by_name("LeNet");
        let vgg16 = by_name("VGG16");
        // The MLP is by far the fastest; VGG16 is the slowest of the three.
        assert!(mlp.throughput_samples_per_s > lenet.throughput_samples_per_s);
        assert!(lenet.throughput_samples_per_s > vgg16.throughput_samples_per_s);
        // Latency ordering mirrors model depth and size.
        assert!(mlp.latency_us < lenet.latency_us);
        assert!(lenet.latency_us < vgg16.latency_us);
        // VGG16 needs the most area of the whole zoo (it has by far the most
        // weights), and far more than the small MNIST models.
        assert!(vgg16.area_mm2 > by_name("GoogLeNet").area_mm2);
        assert!(vgg16.area_mm2 > lenet.area_mm2 * 10.0);
        assert!(vgg16.area_mm2 > mlp.area_mm2 * 2.0);
    }

    #[test]
    fn weights_match_published_counts() {
        let cols = run_with_duplication(1);
        for c in &cols {
            let published = Benchmark::all()
                .into_iter()
                .find(|b| b.name() == c.model)
                .unwrap()
                .published_weights();
            let err = (c.weights as f64 - published).abs() / published;
            assert!(
                err < 0.10,
                "{}: weights {} vs {}",
                c.model,
                c.weights,
                published
            );
        }
    }

    #[test]
    fn communication_profile_columns_are_consistent() {
        // The typical-connection cost never exceeds the critical one, and
        // FPSA's routed fabric always charges something per VMM.
        let cols = run_with_duplication(1);
        for c in &cols {
            assert!(c.communication_ns_per_vmm > 0.0, "{}", c.model);
            assert!(
                c.communication_avg_ns_per_vmm <= c.communication_ns_per_vmm + 1e-9,
                "{}: avg {} exceeds critical {}",
                c.model,
                c.communication_avg_ns_per_vmm,
                c.communication_ns_per_vmm
            );
        }
    }

    #[test]
    fn rendering_contains_every_model() {
        let cols = run_with_duplication(1);
        let table = to_table(&cols);
        for b in Benchmark::all() {
            assert!(table.contains(b.name()));
        }
    }
}
