//! Table 1: parameters of the function blocks under the 45 nm process.

use crate::report::format_table;
use crate::sweep::parallel_map;
use fpsa_device::circuits::{ChargingUnit, NeuronUnit, SpikeSubtracter};
use fpsa_device::clb::ConfigurableLogicBlockSpec;
use fpsa_device::pe::{PeCostBreakdown, ProcessingElementSpec};
use fpsa_device::reram::CrossbarSpec;
use fpsa_device::smb::SpikingMemoryBlockSpec;
use serde::{Deserialize, Serialize};

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Component name.
    pub component: String,
    /// Energy per activation in pJ.
    pub energy_pj: f64,
    /// Area in µm².
    pub area_um2: f64,
    /// Latency in ns.
    pub latency_ns: f64,
    /// The value published in the paper's Table 1 (area), for comparison.
    pub published_area_um2: f64,
}

/// The components Table 1 reports, in publication order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Component {
    Pe,
    ChargingUnits,
    Crossbars,
    NeuronUnits,
    Subtracters,
    Clb,
    Smb,
}

impl Component {
    const ALL: [Component; 7] = [
        Component::Pe,
        Component::ChargingUnits,
        Component::Crossbars,
        Component::NeuronUnits,
        Component::Subtracters,
        Component::Clb,
        Component::Smb,
    ];

    /// Evaluate this component's device models into its table row. The PE
    /// spec and its cost breakdown are computed once by [`run`] and shared
    /// across rows.
    fn row(self, pe: &ProcessingElementSpec, breakdown: &PeCostBreakdown) -> Table1Row {
        match self {
            Component::Pe => Table1Row {
                component: "PE (256x256)".into(),
                energy_pj: pe.cycle_energy_pj(),
                area_um2: pe.area_um2(),
                latency_ns: pe.clock_period_ns(),
                published_area_um2: 22_051.414,
            },
            Component::ChargingUnits => Table1Row {
                component: "Charging unit (x256)".into(),
                energy_pj: breakdown.charging_units.energy_pj,
                area_um2: breakdown.charging_units.area_um2,
                latency_ns: ChargingUnit::n45().latency_ns,
                published_area_um2: 600.704,
            },
            Component::Crossbars => Table1Row {
                component: "ReRAM 256x512 (x8)".into(),
                energy_pj: breakdown.crossbars.energy_pj,
                area_um2: breakdown.crossbars.area_um2,
                latency_ns: CrossbarSpec::fpsa_256x512().rc_delay_ns(),
                published_area_um2: 8_493.466,
            },
            Component::NeuronUnits => Table1Row {
                component: "Neuron unit (x512)".into(),
                energy_pj: breakdown.neuron_units.energy_pj,
                area_um2: breakdown.neuron_units.area_um2,
                latency_ns: NeuronUnit::n45().latency_ns,
                published_area_um2: 9_854.342,
            },
            Component::Subtracters => Table1Row {
                component: "Subtracter (x256)".into(),
                energy_pj: breakdown.subtracters.energy_pj,
                area_um2: breakdown.subtracters.area_um2,
                latency_ns: SpikeSubtracter::n45().latency_ns,
                published_area_um2: 3_102.902,
            },
            Component::Clb => {
                let clb = ConfigurableLogicBlockSpec::fpsa_128lut();
                Table1Row {
                    component: "CLB (128x LUT)".into(),
                    energy_pj: clb.cycle_energy_pj,
                    area_um2: clb.area_um2(),
                    latency_ns: clb.latency_ns(),
                    published_area_um2: 5_998.272,
                }
            }
            Component::Smb => {
                let smb = SpikingMemoryBlockSpec::fpsa_16kb();
                Table1Row {
                    component: "SMB (16Kb)".into(),
                    energy_pj: smb.access_energy_pj,
                    area_um2: smb.area_um2(),
                    latency_ns: smb.access_latency_ns(),
                    published_area_um2: 5_421.900,
                }
            }
        }
    }
}

/// Regenerate Table 1 from the device-level component models; the rows are
/// independent model evaluations and fan out through the sweep engine.
pub fn run() -> Vec<Table1Row> {
    let pe = ProcessingElementSpec::fpsa_default();
    let breakdown = pe.cost_breakdown();
    parallel_map(&Component::ALL, |component| component.row(&pe, &breakdown))
}

/// Render the table as text.
pub fn to_table(rows: &[Table1Row]) -> String {
    format_table(
        &[
            "component",
            "energy (pJ)",
            "area (um^2)",
            "latency (ns)",
            "paper area (um^2)",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.component.clone(),
                    format!("{:.3}", r.energy_pj),
                    format!("{:.3}", r.area_um2),
                    format!("{:.3}", r.latency_ns),
                    format!("{:.3}", r.published_area_um2),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_row_is_within_five_percent_of_the_published_area() {
        for row in run() {
            let err = (row.area_um2 - row.published_area_um2).abs() / row.published_area_um2;
            assert!(
                err < 0.05,
                "{}: area {} vs published {}",
                row.component,
                row.area_um2,
                row.published_area_um2
            );
        }
    }

    #[test]
    fn the_pe_row_aggregates_its_components() {
        let rows = run();
        let pe = &rows[0];
        let parts: f64 = rows[1..5].iter().map(|r| r.area_um2).sum();
        assert!((pe.area_um2 - parts).abs() < 1e-6);
    }

    #[test]
    fn table_renders_all_rows() {
        let rows = run();
        let table = to_table(&rows);
        assert_eq!(table.lines().count(), rows.len() + 2);
        assert!(table.contains("SMB (16Kb)"));
    }
}
