//! Figure 2: PRIME's peak / ideal / real performance versus chip area.

use crate::report::{engineering, format_table};
use crate::sweep::{log_space, parallel_map};
use fpsa_arch::ArchitectureConfig;
use fpsa_nn::zoo;
use fpsa_prime::{BoundsPoint, CommunicationModel, MemoryBus, PeParameters, PerformanceBounds};
use serde::{Deserialize, Serialize};

/// The Figure 2 sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure2 {
    /// Sweep points from small to large chips.
    pub points: Vec<BoundsPoint>,
}

/// Regenerate Figure 2 (VGG16 on PRIME, 45 nm): the bound model evaluated
/// over a log-spaced area axis through the unified sweep engine.
pub fn run() -> Figure2 {
    let stats = zoo::vgg16().statistics();
    let bounds = PerformanceBounds::new(
        PeParameters::from_arch(&ArchitectureConfig::prime()),
        CommunicationModel::Bus(MemoryBus::prime_default()),
        6,
        &stats,
    );
    let areas = log_space(bounds.minimum_area_mm2(), 10_000.0, 16);
    Figure2 {
        points: parallel_map(&areas, |&area| bounds.at_area(area)),
    }
}

/// Render the sweep as text.
pub fn to_table(fig: &Figure2) -> String {
    format_table(
        &[
            "area (mm^2)",
            "PEs",
            "peak (OPS)",
            "ideal (OPS)",
            "real (OPS)",
            "dup",
        ],
        &fig.points
            .iter()
            .map(|p| {
                vec![
                    format!("{:.1}", p.area_mm2),
                    p.pe_count.to_string(),
                    engineering(p.peak_ops),
                    engineering(p.ideal_ops),
                    engineering(p.real_ops),
                    p.duplication_degree.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_curve_is_communication_bound_at_large_areas() {
        let fig = run();
        let last = fig.points.last().unwrap();
        assert!(last.feasible);
        // Figure 2: the real curve sits far (roughly two orders of
        // magnitude) below the ideal curve once area is plentiful.
        assert!(last.ideal_ops / last.real_ops > 30.0);
        // And the communication-bound real curve flattens: the last two
        // points differ by much less than the area ratio.
        let prev = &fig.points[fig.points.len() - 2];
        assert!(last.real_ops / prev.real_ops < 1.5);
    }

    #[test]
    fn ideal_curve_shows_superlinear_region_then_approaches_peak() {
        let fig = run();
        let first = fig.points.iter().find(|p| p.feasible).unwrap();
        let mid = &fig.points[fig.points.len() / 2];
        let area_ratio = mid.area_mm2 / first.area_mm2;
        let perf_ratio = mid.ideal_ops / first.ideal_ops;
        assert!(
            perf_ratio > area_ratio,
            "ideal scaling should be super-linear: {perf_ratio} vs area {area_ratio}"
        );
        let last = fig.points.last().unwrap();
        assert!(last.ideal_ops <= last.peak_ops * 1.0001);
    }

    #[test]
    fn table_lists_every_point() {
        let fig = run();
        assert_eq!(to_table(&fig).lines().count(), fig.points.len() + 2);
    }
}
