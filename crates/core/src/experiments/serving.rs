//! Serving throughput of the `fpsa_serve` engine — beyond the paper.
//!
//! The paper's evaluation reports per-sample fabric performance; this driver
//! measures the *system* question the ROADMAP's north star asks: how many
//! requests per second does a compiled model sustain once it is put behind a
//! real request path?
//!
//! Two request paths are compared on identical request streams:
//!
//! * **direct** — the status quo before `fpsa_serve` existed: every request
//!   pays `CompiledModel::executor` (a fresh `Executor::bind`: weight
//!   realization plus artifact verification) and then one `run`, exactly
//!   what calling the execution engine per request costs;
//! * **engine** — a [`ServeEngine`] that binds once and serves forever,
//!   for every (replica count × batch config) point of the sweep grid.
//!
//! Outputs are required to be **bit-identical** between the two paths for
//! every request the driver compares — serving must change *when* work
//! happens, never *what* is computed. Requests/s, p50 and p99 latency land
//! in `BENCH_serving.json` via the `serving_throughput` bench target.

use crate::compiler::Compiler;
use crate::report::{format_table, nearest_rank_percentile};
use fpsa_nn::zoo::Benchmark;
use fpsa_nn::GraphParameters;
use fpsa_serve::ServeConfig;
use fpsa_sim::Precision;
use fpsa_workload::{Scenario, Trace, TraceRecorder, TraceReplayer};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Seed for the experiment's parameters and request stream.
const SEED: u64 = 0x5E4E;

/// How many leading requests have their outputs cross-checked bit-for-bit
/// against the direct path (bounds the memory the check keeps around).
const CHECKED_OUTPUTS: usize = 32;

/// One (replicas × batch config) measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingPoint {
    /// Model served.
    pub model: String,
    /// Replica worker threads.
    pub replicas: usize,
    /// Maximum dynamic batch size.
    pub max_batch: usize,
    /// Batch window in microseconds.
    pub window_us: u64,
    /// Requests served during the timed phase.
    pub requests: usize,
    /// Sustained throughput.
    pub requests_per_s: f64,
    /// Median submit-to-completion latency, microseconds.
    pub p50_latency_us: f64,
    /// 99th-percentile submit-to-completion latency, microseconds.
    pub p99_latency_us: f64,
    /// Mean executed batch size (how much coalescing actually happened).
    pub mean_batch: f64,
    /// Largest batch the engine executed.
    pub largest_batch: usize,
    /// Median latency from the engine's own `ServeStats` histogram, in
    /// microseconds (bucketed to powers of two — the engine-side view of
    /// `p50_latency_us`, which is measured exactly by the driver).
    pub engine_p50_us: u64,
    /// 99th-percentile latency from the engine's histogram, microseconds.
    pub engine_p99_us: u64,
    /// 99th-percentile queue depth observed at submission (engine
    /// histogram) — how deep the backlog ran under this batch policy.
    pub queue_depth_p99: u64,
    /// `requests_per_s` over the direct path's requests/s.
    pub speedup_vs_direct: f64,
}

/// The serving sweep for one model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingReport {
    /// Model served.
    pub model: String,
    /// Direct-path (bind per request, batch size 1) throughput.
    pub direct_requests_per_s: f64,
    /// Direct-path median latency, microseconds.
    pub direct_p50_us: f64,
    /// Direct-path 99th-percentile latency, microseconds.
    pub direct_p99_us: f64,
    /// One point per grid entry.
    pub points: Vec<ServingPoint>,
}

/// Regenerate the default sweep: the two MNIST-scale benchmarks over
/// 1/2/4 replicas and three batch policies.
pub fn run() -> Vec<ServingReport> {
    run_with(
        &[Benchmark::Mlp500x100, Benchmark::LeNet],
        &[1, 2, 4],
        &[(1, 0), (8, 200), (32, 1_000)],
        160,
    )
}

/// The shared workload scenario every serving sweep replays: a recorded
/// steady stream of `requests` events whose input vectors regenerate from
/// the trace seed by index. Replacing the old hand-rolled "cycle a pool of
/// samples" loop with a scenario means the serving and sharding drivers (and
/// any future harness) replay the *same* workload definition instead of
/// re-implementing arrival loops.
fn sweep_scenario(model: &str, requests: usize) -> Scenario {
    Scenario::steady(format!("serving-sweep-{model}"), model, SEED, requests)
}

/// Regenerate for arbitrary models, replica counts, `(max_batch,
/// window_us)` policies and request count. Every engine point replays the
/// same recorded `requests`-long trace the direct path ran, and the leading
/// [`CHECKED_OUTPUTS`] outputs are asserted bit-identical to it.
pub fn run_with(
    benchmarks: &[Benchmark],
    replicas: &[usize],
    batch_configs: &[(usize, u64)],
    requests: usize,
) -> Vec<ServingReport> {
    let requests = requests.max(1);
    benchmarks
        .iter()
        .map(|&benchmark| {
            let graph = benchmark.build();
            let params = GraphParameters::seeded(&graph, SEED);
            // An execution-throughput driver, not a physical-design gate:
            // over-limit models (VGG16-scale) keep serving via the explicit
            // analytic fallback instead of tripping CapacityExceeded.
            let compiled = Compiler::fpsa()
                .with_analytic_fallback()
                .compile(&graph)
                .expect("zoo benchmarks compile");

            let trace = TraceRecorder::new(&sweep_scenario(benchmark.name(), requests))
                .record()
                .expect("scenario is valid");
            let input_len = graph.input_elements();

            // Direct path: bind per request, run, one at a time.
            let mut direct_latencies = Vec::with_capacity(requests);
            let mut reference_outputs: Vec<Vec<f32>> = Vec::new();
            let direct_start = Instant::now();
            for i in 0..requests {
                let x = trace.input_for(i, input_len);
                let t = Instant::now();
                let exec = compiled
                    .executor(&graph, &params, &Precision::Float)
                    .expect("compiled benchmarks bind");
                let out = exec.run(&x).expect("direct execution succeeds");
                direct_latencies.push(t.elapsed().as_micros() as f64);
                if i < CHECKED_OUTPUTS {
                    reference_outputs.push(out);
                }
            }
            let direct_elapsed = direct_start.elapsed().as_secs_f64();
            let direct_requests_per_s = requests as f64 / direct_elapsed.max(1e-9);
            direct_latencies.sort_by(f64::total_cmp);

            let points = replicas
                .iter()
                .flat_map(|&r| batch_configs.iter().map(move |&(mb, w)| (r, mb, w)))
                .map(|(replica_count, max_batch, window_us)| {
                    measure_engine_point(
                        &compiled,
                        &graph,
                        &params,
                        benchmark.name(),
                        &trace,
                        input_len,
                        &reference_outputs,
                        direct_requests_per_s,
                        ServeConfig {
                            replicas: replica_count,
                            max_batch,
                            batch_window_us: window_us,
                        },
                    )
                })
                .collect();

            ServingReport {
                model: benchmark.name().to_string(),
                direct_requests_per_s,
                direct_p50_us: nearest_rank_percentile(&direct_latencies, 0.50),
                direct_p99_us: nearest_rank_percentile(&direct_latencies, 0.99),
                points,
            }
        })
        .collect()
}

/// Replay the recorded trace through one engine configuration and measure
/// it. The arrival loop itself lives in [`fpsa_workload::TraceReplayer`] —
/// shared with the sharding sweep and the workload bench, not re-rolled
/// per driver.
#[allow(clippy::too_many_arguments)]
fn measure_engine_point(
    compiled: &crate::compiler::CompiledModel,
    graph: &fpsa_nn::ComputationalGraph,
    params: &GraphParameters,
    model: &str,
    trace: &Trace,
    input_len: usize,
    reference_outputs: &[Vec<f32>],
    direct_requests_per_s: f64,
    config: ServeConfig,
) -> ServingPoint {
    let engine = compiled
        .serve(graph, params, &Precision::Float, config)
        .expect("compiled benchmarks serve");
    // Warm the replica arenas so the timed phase sees the steady state.
    // Sequential single requests (each waited out before the next) cannot
    // coalesce, so warm-up adds only batches of one; the snapshot below
    // subtracts them from the coalescing metrics.
    for _ in 0..2 {
        engine
            .infer(trace.input_for(0, input_len))
            .expect("warm-up requests are served");
    }
    let warm = engine.stats();

    let outcome = TraceReplayer::new(trace, input_len).replay(&engine);
    for (i, (out, want)) in outcome.outputs.iter().zip(reference_outputs).enumerate() {
        assert_eq!(
            out, want,
            "{model}: served output {i} diverged from the direct path"
        );
    }
    let stats = engine.shutdown();
    let mut latencies: Vec<f64> = outcome.latencies_us.iter().map(|&l| l as f64).collect();
    latencies.sort_by(f64::total_cmp);

    // Coalescing metrics over the timed phase only (warm-up subtracted).
    let timed_batches = stats.batches.saturating_sub(warm.batches);
    let timed_completed = stats.completed.saturating_sub(warm.completed);
    let mean_batch = if timed_batches == 0 {
        0.0
    } else {
        timed_completed as f64 / timed_batches as f64
    };

    let requests_per_s = outcome.throughput_rps();
    ServingPoint {
        model: model.to_string(),
        replicas: config.replicas,
        max_batch: config.max_batch,
        window_us: config.batch_window_us,
        requests: trace.len(),
        requests_per_s,
        p50_latency_us: nearest_rank_percentile(&latencies, 0.50),
        p99_latency_us: nearest_rank_percentile(&latencies, 0.99),
        mean_batch,
        largest_batch: stats.largest_batch(),
        engine_p50_us: stats.p50_latency_us(),
        engine_p99_us: stats.p99_latency_us(),
        queue_depth_p99: stats.queue_depth_percentile(0.99),
        speedup_vs_direct: requests_per_s / direct_requests_per_s.max(1e-9),
    }
}

/// Render the sweep as text.
pub fn to_table(reports: &[ServingReport]) -> String {
    let mut rows = Vec::new();
    for report in reports {
        rows.push(vec![
            report.model.clone(),
            "direct (bind/req)".to_string(),
            "1".to_string(),
            "-".to_string(),
            format!("{:.0}", report.direct_requests_per_s),
            format!("{:.0}", report.direct_p50_us),
            format!("{:.0}", report.direct_p99_us),
            "-".to_string(),
            "1.00".to_string(),
        ]);
        for p in &report.points {
            rows.push(vec![
                p.model.clone(),
                format!("{} replicas", p.replicas),
                p.max_batch.to_string(),
                format!("{}us", p.window_us),
                format!("{:.0}", p.requests_per_s),
                format!("{:.0}", p.p50_latency_us),
                format!("{:.0}", p.p99_latency_us),
                format!("<={}", p.queue_depth_p99),
                format!("{:.2}", p.speedup_vs_direct),
            ]);
        }
    }
    format_table(
        &[
            "model",
            "path",
            "max batch",
            "window",
            "req/s",
            "p50 us",
            "p99 us",
            "queue p99",
            "speedup",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_the_grid_and_outputs_stay_bit_identical() {
        // Output bit-identity between the direct and served paths is
        // asserted inside the driver for every compared request.
        let reports = run_with(&[Benchmark::Mlp500x100], &[1], &[(1, 0), (4, 500)], 6);
        assert_eq!(reports.len(), 1);
        let report = &reports[0];
        assert_eq!(report.points.len(), 2);
        assert!(report.direct_requests_per_s > 0.0);
        for p in &report.points {
            assert_eq!(p.requests, 6);
            assert!(p.requests_per_s > 0.0);
            assert!(p.p50_latency_us <= p.p99_latency_us);
            assert!(p.speedup_vs_direct > 0.0);
            assert!(p.largest_batch >= 1);
            // The engine-histogram view of the same latencies (bucketed,
            // warm-up included) stays ordered and in the right ballpark.
            assert!(p.engine_p50_us <= p.engine_p99_us);
            assert!(p.queue_depth_p99 >= 1);
        }
        let table = to_table(&reports);
        assert!(table.contains("direct (bind/req)"));
        assert!(table.contains("MLP-500-100"));
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(nearest_rank_percentile(&sorted, 0.50), 2.0);
        assert_eq!(nearest_rank_percentile(&sorted, 0.99), 4.0);
        assert_eq!(nearest_rank_percentile(&[], 0.5), 0.0);
    }

    /// The PR's acceptance criterion: on MLP-500-100, four pre-bound
    /// replicas with dynamic batching sustain at least 3× the requests/s of
    /// the 1-replica, batch-size-1, bind-per-request path — with
    /// bit-identical outputs (asserted inside the driver). Release-only:
    /// debug-build timings measure the optimizer, not the engine.
    #[cfg(not(debug_assertions))]
    #[test]
    fn four_replica_serving_sustains_3x_the_direct_path_on_mlp_500_100() {
        let reports = run_with(&[Benchmark::Mlp500x100], &[4], &[(8, 200)], 192);
        let report = &reports[0];
        let point = &report.points[0];
        assert!(
            point.speedup_vs_direct >= 3.0,
            "serving speedup {:.2} < 3.0 (engine {:.0} req/s vs direct {:.0} req/s)",
            point.speedup_vs_direct,
            point.requests_per_s,
            report.direct_requests_per_s
        );
    }
}
