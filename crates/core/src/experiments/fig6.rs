//! Figure 6: PRIME vs FP-PRIME vs FPSA for VGG16, performance versus area.
//!
//! The three curves isolate the paper's three improvements: FP-PRIME keeps
//! PRIME's PEs but replaces the bus with the reconfigurable routing
//! (breaking the communication bound); FPSA additionally replaces the PEs
//! with the compact spiking design (reducing area and latency). Together they
//! produce the up-to-1000x speedup at equal area.

use crate::report::{engineering, format_table};
use crate::sweep::{log_space, parallel_map};
use fpsa_arch::ArchitectureConfig;
use fpsa_nn::zoo;
use fpsa_prime::{BoundsPoint, CommunicationModel, MemoryBus, PeParameters, PerformanceBounds};
use serde::{Deserialize, Serialize};

/// One architecture's sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchitectureCurve {
    /// Architecture display name.
    pub architecture: String,
    /// Sweep points.
    pub points: Vec<BoundsPoint>,
}

/// The whole Figure 6 data set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure6 {
    /// PRIME, FP-PRIME and FPSA curves over the same area axis.
    pub curves: Vec<ArchitectureCurve>,
    /// The FPSA / PRIME real-performance speedup at the largest common area.
    pub speedup_at_max_area: f64,
}

fn bounds_for(arch: &ArchitectureConfig, per_value_ns: f64) -> PerformanceBounds {
    let stats = zoo::vgg16().statistics();
    let comm = match arch.communication {
        fpsa_arch::CommunicationStyle::MemoryBus { .. } => {
            CommunicationModel::Bus(MemoryBus::prime_default())
        }
        fpsa_arch::CommunicationStyle::Routed { .. } => CommunicationModel::Routed { per_value_ns },
    };
    PerformanceBounds::new(PeParameters::from_arch(arch), comm, 6, &stats)
}

/// Regenerate Figure 6. The routed per-value latencies follow the Figure 7
/// measurement methodology: 6 serialized bits per value for FP-PRIME, 64 for
/// FPSA, over the same routed critical path. The three architecture curves
/// (and each curve's area axis) evaluate in parallel through the unified
/// sweep engine.
pub fn run() -> Figure6 {
    let critical_path_ns = 9.9;
    let configs = [
        (ArchitectureConfig::prime(), 0.0),
        (ArchitectureConfig::fp_prime(), 6.0 * critical_path_ns),
        (ArchitectureConfig::fpsa(), 64.0 * critical_path_ns),
    ];
    let max_area = 10_000.0;
    let curves: Vec<ArchitectureCurve> = parallel_map(&configs, |(arch, per_value_ns)| {
        let bounds = bounds_for(arch, *per_value_ns);
        let areas = log_space(bounds.minimum_area_mm2(), max_area, 14);
        ArchitectureCurve {
            architecture: arch.kind.name().to_string(),
            points: parallel_map(&areas, |&area| bounds.at_area(area)),
        }
    });
    let prime_last = curves[0].points.last().unwrap().real_ops;
    let fpsa_last = curves[2].points.last().unwrap().real_ops;
    Figure6 {
        speedup_at_max_area: fpsa_last / prime_last,
        curves,
    }
}

/// Render the three curves side by side (matching area indices).
pub fn to_table(fig: &Figure6) -> String {
    let n = fig.curves[0].points.len();
    let mut rows = Vec::new();
    for i in 0..n {
        rows.push(vec![
            format!("{:.0}", fig.curves[0].points[i].area_mm2),
            engineering(fig.curves[0].points[i].real_ops),
            engineering(fig.curves[1].points[i].real_ops),
            engineering(fig.curves[2].points[i].real_ops),
        ]);
    }
    format_table(
        &[
            "area (mm^2, PRIME axis)",
            "PRIME (OPS)",
            "FP-PRIME (OPS)",
            "FPSA (OPS)",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fpsa_reaches_orders_of_magnitude_over_prime() {
        let fig = run();
        assert!(
            fig.speedup_at_max_area > 100.0,
            "FPSA/PRIME speedup at max area is only {:.1}x",
            fig.speedup_at_max_area
        );
    }

    #[test]
    fn fp_prime_breaks_the_communication_bound() {
        let fig = run();
        let prime = fig.curves[0].points.last().unwrap();
        let fp_prime = fig.curves[1].points.last().unwrap();
        // Same PEs, so the peak is identical; the routed fabric removes the
        // bus bound and the real performance approaches the ideal one.
        assert!(fp_prime.real_ops > prime.real_ops * 10.0);
        assert!(fp_prime.real_ops > 0.5 * fp_prime.ideal_ops);
    }

    #[test]
    fn fpsa_outperforms_fp_prime_through_faster_pes() {
        let fig = run();
        let fp_prime = fig.curves[1].points.last().unwrap();
        let fpsa = fig.curves[2].points.last().unwrap();
        assert!(fpsa.real_ops > fp_prime.real_ops * 2.0);
    }

    #[test]
    fn ordering_is_prime_fp_prime_fpsa() {
        let fig = run();
        let names: Vec<&str> = fig.curves.iter().map(|c| c.architecture.as_str()).collect();
        assert_eq!(names, vec!["PRIME", "FP-PRIME", "FPSA"]);
        assert!(!to_table(&fig).is_empty());
    }
}
