//! Figure 9: normalized accuracy of the splice vs add weight representations
//! as a function of the number of 4-bit cells per weight.
//!
//! The paper measures VGG16 on ImageNet; training an ImageNet network is far
//! outside the scope of a simulator repository, so (as documented in
//! DESIGN.md) the experiment trains a small MLP on a synthetic task, realizes
//! its quantized weights on simulated noisy ReRAM cells with both
//! representations, and reports the normalized accuracy plus the analytic
//! normalized deviation of §7.2 — the quantity that actually drives the
//! published curve. The shape reproduces the paper: splice stays flat (and
//! low under variation) no matter how many cells are spent, while the add
//! method climbs toward full precision with √cells.

use crate::report::format_table;
use crate::sweep::parallel_map;
use fpsa_device::variation::{CellVariation, WeightScheme};
use fpsa_nn::dataset::Dataset;
use fpsa_nn::mlp::{Mlp, TrainConfig};
use fpsa_sim::VariationStudy;
use serde::{Deserialize, Serialize};

/// One point of Figure 9.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure9Point {
    /// Representation method ("splice" or "add").
    pub method: String,
    /// Number of 4-bit cells per weight.
    pub cells: usize,
    /// Analytic normalized deviation (§7.2).
    pub normalized_deviation: f64,
    /// Accuracy normalized by the full-precision accuracy.
    pub normalized_accuracy: f64,
    /// Mean squared logit distortion (a finer-grained observable).
    pub logit_distortion: f64,
}

/// The Figure 9 data set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure9 {
    /// Sweep points for both methods.
    pub points: Vec<Figure9Point>,
    /// The full-precision test accuracy of the reference network.
    pub full_precision_accuracy: f64,
}

/// Train the reference network used by the study.
pub fn reference_network() -> (Mlp, Dataset) {
    let data = Dataset::gaussian_blobs(6, 80, 10, 0.45, 99);
    let (train, test) = data.split(0.8);
    let mut mlp = Mlp::new(&[10, 24, 16, 6], 17);
    mlp.train(
        &train,
        TrainConfig {
            learning_rate: 0.05,
            epochs: 60,
            seed: 23,
        },
    );
    (mlp, test)
}

/// Regenerate Figure 9 with the measured cell variation.
pub fn run() -> Figure9 {
    run_with(CellVariation::measured(), &[1, 2, 4, 8, 16], 5)
}

/// Regenerate the sweep for an arbitrary variation, cell counts and trial
/// count (tests use a smaller setting). Every (cells, method) point runs an
/// independent, deterministically seeded study, so the grid fans out through
/// the unified sweep engine.
pub fn run_with(variation: CellVariation, cell_counts: &[usize], trials: usize) -> Figure9 {
    let (mlp, test) = reference_network();
    let full = mlp.accuracy(&test);
    let grid: Vec<(&'static str, WeightScheme, usize)> = cell_counts
        .iter()
        .flat_map(|&cells| {
            [
                (
                    "splice",
                    WeightScheme::Splice {
                        cells,
                        bits_per_cell: 4,
                    },
                    cells,
                ),
                (
                    "add",
                    WeightScheme::Add {
                        cells,
                        bits_per_cell: 4,
                    },
                    cells,
                ),
            ]
        })
        .collect();
    let points = parallel_map(&grid, |&(method, scheme, cells)| {
        let study = VariationStudy::new(scheme, variation, trials, 1234 + cells as u64);
        Figure9Point {
            method: method.to_string(),
            cells,
            normalized_deviation: scheme.normalized_deviation(variation),
            normalized_accuracy: study.normalized_accuracy(&mlp, &test),
            logit_distortion: study.mean_logit_distortion(&mlp, &test),
        }
    });
    Figure9 {
        points,
        full_precision_accuracy: full,
    }
}

/// Render the sweep as text.
pub fn to_table(fig: &Figure9) -> String {
    format_table(
        &[
            "method",
            "cells",
            "norm. deviation",
            "norm. accuracy",
            "logit distortion",
        ],
        &fig.points
            .iter()
            .map(|p| {
                vec![
                    p.method.clone(),
                    p.cells.to_string(),
                    format!("{:.4}", p.normalized_deviation),
                    format!("{:.3}", p.normalized_accuracy),
                    format!("{:.5}", p.logit_distortion),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_deviation_falls_with_cells_while_splice_stays_flat() {
        let fig = run_with(CellVariation::measured(), &[1, 4, 16], 1);
        let dev = |method: &str, cells: usize| {
            fig.points
                .iter()
                .find(|p| p.method == method && p.cells == cells)
                .unwrap()
                .normalized_deviation
        };
        assert!(dev("add", 16) < dev("add", 1) / 3.0);
        let splice_change = (dev("splice", 16) - dev("splice", 1)).abs() / dev("splice", 1);
        assert!(splice_change < 0.1, "splice deviation should barely move");
    }

    #[test]
    fn add_distorts_less_than_splice_at_the_paper_configuration() {
        // PRIME uses 2 spliced cells; FPSA uses 8 added cells.
        let fig = run_with(CellVariation::measured(), &[2, 8], 2);
        let find = |method: &str, cells: usize| {
            fig.points
                .iter()
                .find(|p| p.method == method && p.cells == cells)
                .unwrap()
        };
        let prime = find("splice", 2);
        let fpsa = find("add", 8);
        assert!(fpsa.logit_distortion < prime.logit_distortion);
        assert!(fpsa.normalized_accuracy >= prime.normalized_accuracy - 0.02);
        assert!(fpsa.normalized_accuracy > 0.9);
    }

    #[test]
    fn reference_network_reaches_usable_accuracy() {
        let fig = run_with(CellVariation::ideal(), &[8], 1);
        assert!(fig.full_precision_accuracy > 0.85);
        // With ideal devices both methods preserve accuracy.
        for p in &fig.points {
            assert!(p.normalized_accuracy > 0.95, "{p:?}");
        }
        assert!(!to_table(&fig).is_empty());
    }
}
