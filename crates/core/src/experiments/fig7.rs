//! Figure 7: the per-PE latency breakdown (computation vs communication).
//!
//! VGG16 is synthesized and mapped once through the instrumented compile
//! pipeline (its [`StageTrace`] rides along on the result for the benchmark
//! harness), then the three architectures evaluate the same mapped model in
//! parallel through the unified sweep engine. The compilation goes through
//! the process-wide [`CompileCache`]: repeated regenerations (tests, bench
//! iterations) reuse the artifact, and the returned trace carries the cache
//! outcome for this request.

use crate::cache::CompileCache;
use crate::compiler::Compiler;
use crate::report::format_table;
use crate::sweep::parallel_map;
use fpsa_arch::ArchitectureConfig;
use fpsa_nn::zoo::Benchmark;
use fpsa_prime::MemoryBus;
use fpsa_sim::{CommunicationEstimate, PerformanceSimulator, StageTrace};
use serde::{Deserialize, Serialize};

/// One bar of Figure 7.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure7Bar {
    /// Architecture display name.
    pub architecture: String,
    /// Average computation latency of one PE invocation in ns.
    pub compute_ns: f64,
    /// Average communication latency of one PE invocation in ns.
    pub communication_ns: f64,
}

impl Figure7Bar {
    /// Total per-invocation latency.
    pub fn total_ns(&self) -> f64 {
        self.compute_ns + self.communication_ns
    }
}

/// The Figure 7 data set: the three bars plus the compile-stage trace of the
/// shared VGG16 compilation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure7 {
    /// One bar per architecture (PRIME, FP-PRIME, FPSA).
    pub bars: Vec<Figure7Bar>,
    /// Where compile time went for the shared VGG16 compilation (consumed by
    /// the Figure 7 bench and printed next to the bars).
    pub compile: StageTrace,
}

/// Regenerate Figure 7 for VGG16.
pub fn run() -> Figure7 {
    // One compilation through the staged pipeline provides the shared
    // core-op graph, mapping and the instrumentation trace. VGG16 is far
    // beyond the P&R block limit, so physical design is skipped explicitly.
    // The global cache makes repeated regenerations (bench iterations, the
    // test suite) reuse the artifact.
    let (compiled, info) = CompileCache::global()
        .compile_with_info(
            &Compiler::fpsa().without_place_and_route(),
            &Benchmark::Vgg16.build(),
        )
        .expect("VGG16 synthesizes");
    let mut trace = compiled.trace.clone();
    trace.set_cache(info);

    // The routed designs share one delay profile (critical connection ~68
    // hops, typical connection about half that distance, per the paper's
    // routed fabric); PRIME uses the bus.
    let routing = ArchitectureConfig::fpsa().routing;
    let routed_profile = CommunicationEstimate::Routed {
        critical_path_ns: 9.9,
        average_path_ns: routing.path_delay_ns(34),
    };
    let configs = [
        (
            ArchitectureConfig::prime(),
            CommunicationEstimate::Bus {
                bandwidth_gbps: MemoryBus::prime_default().bandwidth_gbps,
            },
        ),
        (ArchitectureConfig::fp_prime(), routed_profile),
        (ArchitectureConfig::fpsa(), routed_profile),
    ];
    let bars = parallel_map(&configs, |(arch, comm)| {
        let report = PerformanceSimulator::new(arch.clone()).evaluate(
            &compiled.core_graph,
            &compiled.mapping,
            *comm,
        );
        Figure7Bar {
            architecture: arch.kind.name().to_string(),
            compute_ns: report.compute_ns_per_vmm,
            communication_ns: report.communication_ns_per_vmm,
        }
    });
    Figure7 {
        bars,
        compile: trace,
    }
}

/// Render the bars as text.
pub fn to_table(fig: &Figure7) -> String {
    format_table(
        &[
            "architecture",
            "compute (ns)",
            "communication (ns)",
            "total (ns)",
        ],
        &fig.bars
            .iter()
            .map(|b| {
                vec![
                    b.architecture.clone(),
                    format!("{:.1}", b.compute_ns),
                    format!("{:.1}", b.communication_ns),
                    format!("{:.1}", b.total_ns()),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpsa_sim::StageKind;

    #[test]
    fn breakdown_reproduces_the_figure7_shape() {
        let fig = run();
        assert_eq!(fig.bars.len(), 3);
        let prime = &fig.bars[0];
        let fp_prime = &fig.bars[1];
        let fpsa = &fig.bars[2];
        // PRIME: communication dwarfs computation.
        assert!(prime.communication_ns > prime.compute_ns);
        // FP-PRIME: the routed fabric makes communication negligible next to
        // PRIME's slow PEs.
        assert!(fp_prime.communication_ns < 0.2 * fp_prime.compute_ns);
        // FPSA: computation shrinks ~20x, communication grows (spike trains),
        // but the total is still far below both baselines.
        assert!(fpsa.compute_ns < fp_prime.compute_ns / 10.0);
        assert!(fpsa.communication_ns > fp_prime.communication_ns);
        assert!(fpsa.total_ns() < prime.total_ns() / 3.0);
    }

    #[test]
    fn spike_train_to_count_ratio_is_64_to_6() {
        let fig = run();
        let ratio = fig.bars[2].communication_ns / fig.bars[1].communication_ns;
        assert!((ratio - 64.0 / 6.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn compile_trace_covers_the_whole_pipeline() {
        let fig = run();
        let kinds: Vec<StageKind> = fig.compile.records().iter().map(|r| r.stage).collect();
        assert_eq!(kinds, StageKind::ALL.to_vec());
        // Physical design was skipped for the ImageNet-scale netlist.
        let pr = &fig.compile.records()[2];
        assert_eq!(pr.items_out, 0);
        assert!(fig.compile.total_wall_ns() > 0.0);
    }

    #[test]
    fn table_renders_three_bars() {
        let fig = run();
        assert_eq!(to_table(&fig).lines().count(), 5);
    }
}
