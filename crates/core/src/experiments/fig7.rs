//! Figure 7: the per-PE latency breakdown (computation vs communication).

use crate::report::format_table;
use fpsa_arch::ArchitectureConfig;
use fpsa_nn::zoo::Benchmark;
use fpsa_sim::{CommunicationEstimate, PerformanceSimulator};
use fpsa_mapper::{AllocationPolicy, Mapper};
use fpsa_prime::MemoryBus;
use fpsa_synthesis::{NeuralSynthesizer, SynthesisConfig};
use serde::{Deserialize, Serialize};

/// One bar of Figure 7.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure7Bar {
    /// Architecture display name.
    pub architecture: String,
    /// Average computation latency of one PE invocation in ns.
    pub compute_ns: f64,
    /// Average communication latency of one PE invocation in ns.
    pub communication_ns: f64,
}

impl Figure7Bar {
    /// Total per-invocation latency.
    pub fn total_ns(&self) -> f64 {
        self.compute_ns + self.communication_ns
    }
}

/// Regenerate Figure 7 for VGG16.
pub fn run() -> Vec<Figure7Bar> {
    let graph = NeuralSynthesizer::new(SynthesisConfig::fpsa_default())
        .synthesize(&Benchmark::Vgg16.build())
        .expect("VGG16 synthesizes");
    let mapping = Mapper::new(64, AllocationPolicy::DuplicationDegree(1)).map(&graph);

    // The routed designs share one critical path; PRIME uses the bus.
    let critical_path_ns = 9.9;
    let configs = [
        (
            ArchitectureConfig::prime(),
            CommunicationEstimate::Bus {
                bandwidth_gbps: MemoryBus::prime_default().bandwidth_gbps,
            },
        ),
        (
            ArchitectureConfig::fp_prime(),
            CommunicationEstimate::Routed { critical_path_ns },
        ),
        (
            ArchitectureConfig::fpsa(),
            CommunicationEstimate::Routed { critical_path_ns },
        ),
    ];
    configs
        .iter()
        .map(|(arch, comm)| {
            let report =
                PerformanceSimulator::new(arch.clone()).evaluate(&graph, &mapping, *comm);
            Figure7Bar {
                architecture: arch.kind.name().to_string(),
                compute_ns: report.compute_ns_per_vmm,
                communication_ns: report.communication_ns_per_vmm,
            }
        })
        .collect()
}

/// Render the bars as text.
pub fn to_table(bars: &[Figure7Bar]) -> String {
    format_table(
        &["architecture", "compute (ns)", "communication (ns)", "total (ns)"],
        &bars
            .iter()
            .map(|b| {
                vec![
                    b.architecture.clone(),
                    format!("{:.1}", b.compute_ns),
                    format!("{:.1}", b.communication_ns),
                    format!("{:.1}", b.total_ns()),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_reproduces_the_figure7_shape() {
        let bars = run();
        assert_eq!(bars.len(), 3);
        let prime = &bars[0];
        let fp_prime = &bars[1];
        let fpsa = &bars[2];
        // PRIME: communication dwarfs computation.
        assert!(prime.communication_ns > prime.compute_ns);
        // FP-PRIME: the routed fabric makes communication negligible next to
        // PRIME's slow PEs.
        assert!(fp_prime.communication_ns < 0.2 * fp_prime.compute_ns);
        // FPSA: computation shrinks ~20x, communication grows (spike trains),
        // but the total is still far below both baselines.
        assert!(fpsa.compute_ns < fp_prime.compute_ns / 10.0);
        assert!(fpsa.communication_ns > fp_prime.communication_ns);
        assert!(fpsa.total_ns() < prime.total_ns() / 3.0);
    }

    #[test]
    fn spike_train_to_count_ratio_is_64_to_6() {
        let bars = run();
        let ratio = bars[2].communication_ns / bars[1].communication_ns;
        assert!((ratio - 64.0 / 6.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn table_renders_three_bars() {
        let bars = run();
        assert_eq!(to_table(&bars).lines().count(), 5);
    }
}
