//! Figure 9 on *compiled* models: accuracy vs device variation, measured by
//! executing the full compile pipeline's output on the simulated fabric.
//!
//! The original Figure 9 driver ([`crate::experiments::fig9`]) perturbs a
//! bare MLP's weight matrices directly. This driver closes the remaining
//! gap to the paper's claim — that the *system stack* produces correct,
//! runnable configurations — by pushing a trained network through
//! `Synthesize → Map → PlaceRoute` and injecting the per-PE weight
//! programming noise into the **compiled** model via the execution engine
//! (`fpsa_sim::exec`): every PE duplicate programs its own noisy crossbar,
//! seeded by the repository convention, and classification accuracy is
//! measured by actually running the fabric on the test set.
//!
//! The trained network is bias-free ([`Mlp::train_without_bias`]) because
//! the crossbar stores weight matrices only; its weights are imported into
//! the computational graph via [`GraphParameters::from_mlp`].

use crate::compiler::Compiler;
use crate::report::format_table;
use crate::sweep::parallel_map;
use fpsa_device::variation::{CellVariation, WeightScheme};
use fpsa_nn::dataset::Dataset;
use fpsa_nn::mlp::{Mlp, TrainConfig};
use fpsa_nn::{mlp_graph, seeds, ComputationalGraph, GraphParameters};
use fpsa_sim::exec::Precision;
use serde::{Deserialize, Serialize};

/// One point of the compiled-model variation sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledVariationPoint {
    /// Representation method ("splice" or "add").
    pub method: String,
    /// Number of 4-bit cells per weight.
    pub cells: usize,
    /// Analytic normalized deviation (§7.2), for cross-reference.
    pub normalized_deviation: f64,
    /// Mean compiled-execution accuracy over the Monte-Carlo trials.
    pub mean_accuracy: f64,
    /// Accuracy normalized by the noise-free compiled accuracy.
    pub normalized_accuracy: f64,
}

/// The compiled-model Figure 9 data set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledFigure9 {
    /// Sweep points for both methods.
    pub points: Vec<CompiledVariationPoint>,
    /// Noise-free accuracy of the compiled model (float execution).
    pub compiled_accuracy: f64,
    /// Float-reference accuracy of the source network, for comparison.
    pub reference_accuracy: f64,
}

/// Train the bias-free reference network and build its graph + parameters.
pub fn reference_network() -> (ComputationalGraph, GraphParameters, Dataset) {
    let data = Dataset::gaussian_blobs(6, 80, 10, 0.85, 77);
    let (train, test) = data.split(0.8);
    let sizes = [10, 24, 6];
    let mut mlp = Mlp::new(&sizes, 17);
    mlp.train_without_bias(
        &train,
        TrainConfig {
            learning_rate: 0.05,
            epochs: 60,
            seed: 23,
        },
    );
    let graph = mlp_graph("Compiled-MLP-10-24-6", &sizes);
    let params = GraphParameters::from_mlp(&graph, &mlp)
        .expect("bias-free training keeps the MLP importable");
    (graph, params, test)
}

/// Regenerate the sweep with the measured cell variation.
pub fn run() -> CompiledFigure9 {
    run_with(CellVariation::measured(), &[1, 2, 4, 8, 16], 3)
}

/// Regenerate for an arbitrary variation, cell counts and Monte-Carlo trial
/// count. Each (method, cells) point binds `trials` independently-seeded
/// executors (`seeds::derive(base, STREAM_TRIAL, trial)` base seeds, per-PE
/// streams below that) and fans out through the unified sweep engine.
pub fn run_with(variation: CellVariation, cell_counts: &[usize], trials: usize) -> CompiledFigure9 {
    let (graph, params, test) = reference_network();
    let compiler = Compiler::fpsa();
    let compiled = compiler.compile(&graph).expect("MLP graphs compile");

    let float_exec = compiled
        .executor(&graph, &params, &Precision::Float)
        .expect("compiled MLP binds");
    let compiled_accuracy = float_exec
        .accuracy(&test.samples, &test.labels)
        .expect("float execution succeeds");
    let reference = fpsa_nn::Reference::new(&graph, &params).expect("reference builds");
    let reference_accuracy = {
        let correct = test
            .samples
            .iter()
            .zip(&test.labels)
            .filter(|(x, &y)| fpsa_nn::mlp::argmax(&reference.logits(x).unwrap()) == y)
            .count();
        correct as f64 / test.len().max(1) as f64
    };

    let grid: Vec<(&'static str, WeightScheme, usize)> = cell_counts
        .iter()
        .flat_map(|&cells| {
            [
                (
                    "splice",
                    WeightScheme::Splice {
                        cells,
                        bits_per_cell: 4,
                    },
                    cells,
                ),
                (
                    "add",
                    WeightScheme::Add {
                        cells,
                        bits_per_cell: 4,
                    },
                    cells,
                ),
            ]
        })
        .collect();
    let points = parallel_map(&grid, |&(method, scheme, cells)| {
        let base = 0xF19_u64 + cells as u64;
        let mut total = 0.0;
        for trial in 0..trials.max(1) {
            let exec = compiled
                .executor(
                    &graph,
                    &params,
                    &Precision::Noisy {
                        scheme,
                        variation,
                        seed: seeds::derive(base, seeds::STREAM_TRIAL, trial as u64),
                    },
                )
                .expect("noisy binding succeeds");
            total += exec
                .accuracy(&test.samples, &test.labels)
                .expect("noisy execution succeeds");
        }
        let mean_accuracy = total / trials.max(1) as f64;
        CompiledVariationPoint {
            method: method.to_string(),
            cells,
            normalized_deviation: scheme.normalized_deviation(variation),
            mean_accuracy,
            normalized_accuracy: mean_accuracy / compiled_accuracy.max(1e-9),
        }
    });

    CompiledFigure9 {
        points,
        compiled_accuracy,
        reference_accuracy,
    }
}

/// Render the sweep as text.
pub fn to_table(fig: &CompiledFigure9) -> String {
    format_table(
        &[
            "method",
            "cells",
            "norm. deviation",
            "mean acc",
            "norm. acc",
        ],
        &fig.points
            .iter()
            .map(|p| {
                vec![
                    p.method.clone(),
                    p.cells.to_string(),
                    format!("{:.4}", p.normalized_deviation),
                    format!("{:.3}", p.mean_accuracy),
                    format!("{:.3}", p.normalized_accuracy),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiled_execution_preserves_trained_accuracy() {
        let fig = run_with(CellVariation::ideal(), &[8], 1);
        // Compiling and executing must not lose the trained accuracy, and
        // ideal devices must preserve it through the noisy path too.
        assert!(fig.reference_accuracy > 0.85, "{}", fig.reference_accuracy);
        assert!(
            (fig.compiled_accuracy - fig.reference_accuracy).abs() < 0.02,
            "compiled {} vs reference {}",
            fig.compiled_accuracy,
            fig.reference_accuracy
        );
        for p in &fig.points {
            assert!(p.normalized_accuracy > 0.95, "{p:?}");
        }
        assert!(!to_table(&fig).is_empty());
    }

    #[test]
    fn add_method_beats_splice_on_the_compiled_model_under_stress() {
        let stress = CellVariation { sigma_levels: 3.0 };
        let fig = run_with(stress, &[2, 8], 2);
        let find = |method: &str, cells: usize| {
            fig.points
                .iter()
                .find(|p| p.method == method && p.cells == cells)
                .unwrap()
        };
        let prime = find("splice", 2);
        let fpsa = find("add", 8);
        assert!(
            fpsa.normalized_accuracy >= prime.normalized_accuracy - 0.02,
            "add {} vs splice {}",
            fpsa.normalized_accuracy,
            prime.normalized_accuracy
        );
        assert!(
            fpsa.normalized_accuracy > 0.85,
            "{}",
            fpsa.normalized_accuracy
        );
    }
}
