//! Figure 8: scalability of FPSA with the duplication degree.
//!
//! For every benchmark model and duplication degree in {1, 4, 16, 64} the
//! experiment reports performance (Figure 8a), area (Figure 8b) and
//! computational density together with its peak and the spatial/temporal
//! utilization bounds (Figure 8c). For the netlists small enough for full
//! physical design it additionally reports the minimum routing channel width
//! found by the PathFinder search — the quantity the paper's mrVPR flow
//! measures for the routing fabric.

use crate::cache::CompileCache;
use crate::compiler::{Compiler, PlaceRouteConfig};
use crate::evaluator::ModelEvaluation;
use crate::report::{engineering, format_table};
use crate::sweep::{parallel_map, Sweep};
use fpsa_arch::ArchitectureConfig;
use fpsa_nn::zoo::Benchmark;
use serde::{Deserialize, Serialize};

/// The duplication degrees evaluated by the paper.
pub const DUPLICATION_DEGREES: [u64; 4] = [1, 4, 16, 64];

/// The models small enough for full physical design at 1x duplication.
pub const CHANNEL_WIDTH_MODELS: [Benchmark; 3] = [
    Benchmark::Mlp500x100,
    Benchmark::LeNet,
    Benchmark::CifarVgg17,
];

/// The minimum-channel-width result of one model (the mrVPR sweep).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelWidthPoint {
    /// Model name.
    pub model: String,
    /// Netlist blocks that went through physical design.
    pub blocks: usize,
    /// Minimum channel width at which the design routes.
    pub required_channel_width: usize,
    /// PathFinder iterations the minimum-width routing needed.
    pub router_iterations: usize,
    /// Critical connection length at the minimum width, in hops.
    pub critical_hops: usize,
}

/// The full Figure 8 data set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure8 {
    /// One evaluation per (model, duplication degree).
    pub evaluations: Vec<ModelEvaluation>,
    /// Minimum routing channel width per physically designed model.
    pub channel_widths: Vec<ChannelWidthPoint>,
}

impl Figure8 {
    /// The evaluations of one model, ordered by duplication degree.
    pub fn for_model(&self, name: &str) -> Vec<&ModelEvaluation> {
        let mut v: Vec<&ModelEvaluation> = self
            .evaluations
            .iter()
            .filter(|e| e.model == name)
            .collect();
        v.sort_by_key(|e| e.duplication);
        v
    }

    /// Geometric-mean speedup and area growth of a duplication degree
    /// relative to the 1x configuration, across all models.
    pub fn geomean_scaling(&self, duplication: u64) -> (f64, f64) {
        let mut perf_product = 1.0f64;
        let mut area_product = 1.0f64;
        let mut count = 0usize;
        for benchmark in Benchmark::all() {
            let series = self.for_model(benchmark.name());
            let base = series.iter().find(|e| e.duplication == 1);
            let this = series.iter().find(|e| e.duplication == duplication);
            if let (Some(base), Some(this)) = (base, this) {
                perf_product *= this.performance.ops_per_second / base.performance.ops_per_second;
                area_product *= this.performance.area_mm2 / base.performance.area_mm2;
                count += 1;
            }
        }
        if count == 0 {
            return (1.0, 1.0);
        }
        (
            perf_product.powf(1.0 / count as f64),
            area_product.powf(1.0 / count as f64),
        )
    }
}

/// The minimum-channel-width search over the physically designable models:
/// each model compiles once with the PlaceRoute stage in `Minimize` mode.
/// Models whose netlists exceed the block limit drop out (the explicit
/// analytic fallback leaves them with no physical design to report).
pub fn channel_width_search() -> Vec<ChannelWidthPoint> {
    parallel_map(&CHANNEL_WIDTH_MODELS, |benchmark| {
        let compiled = Compiler::fpsa()
            .with_place_route(
                PlaceRouteConfig::fast()
                    .minimize_channel_width()
                    .with_analytic_fallback(),
            )
            .compile(&benchmark.build())
            .expect("zoo models are well formed");
        compiled
            .physical
            .as_ref()
            .map(|physical| ChannelWidthPoint {
                model: benchmark.name().to_string(),
                blocks: compiled.mapping.netlist.len(),
                required_channel_width: physical.routing.channel_width,
                router_iterations: physical.routing.iterations,
                critical_hops: physical.timing.critical_hops,
            })
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Regenerate Figure 8 on the FPSA architecture: the full model ×
/// duplication grid, evaluated in parallel by the unified sweep engine,
/// plus the minimum-channel-width search.
pub fn run() -> Figure8 {
    run_with_cache(&CompileCache::new(
        Benchmark::all().len() * DUPLICATION_DEGREES.len(),
    ))
}

/// [`run`] against a caller-owned [`CompileCache`], so the bench driver can
/// report the hit/miss statistics (and repeated regenerations share
/// artifacts). The results are equal to an uncached run — trace equality
/// ignores cache provenance.
pub fn run_with_cache(cache: &CompileCache) -> Figure8 {
    Figure8 {
        evaluations: Sweep::cartesian(
            &Benchmark::all(),
            &[ArchitectureConfig::fpsa()],
            &DUPLICATION_DEGREES,
        )
        .run_with_cache(cache),
        channel_widths: channel_width_search(),
    }
}

/// A faster variant covering only the small models (used in tests). The
/// channel-width search is skipped here; run it via [`channel_width_search`]
/// or the full [`run`].
pub fn run_small() -> Figure8 {
    Figure8 {
        evaluations: Sweep::cartesian(
            &CHANNEL_WIDTH_MODELS,
            &[ArchitectureConfig::fpsa()],
            &DUPLICATION_DEGREES,
        )
        .run(),
        channel_widths: Vec::new(),
    }
}

/// Render the minimum-channel-width results as text.
pub fn channel_width_table(fig: &Figure8) -> String {
    format_table(
        &[
            "model",
            "blocks",
            "min channel width",
            "router iterations",
            "critical hops",
        ],
        &fig.channel_widths
            .iter()
            .map(|p| {
                vec![
                    p.model.clone(),
                    p.blocks.to_string(),
                    p.required_channel_width.to_string(),
                    p.router_iterations.to_string(),
                    p.critical_hops.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

/// Render Figure 8 as text.
pub fn to_table(fig: &Figure8) -> String {
    format_table(
        &[
            "model",
            "dup",
            "perf (OPS)",
            "area (mm^2)",
            "density (OPS/mm^2)",
            "spatial util",
            "temporal util",
        ],
        &fig.evaluations
            .iter()
            .map(|e| {
                vec![
                    e.model.clone(),
                    e.duplication.to_string(),
                    engineering(e.performance.ops_per_second),
                    format!("{:.2}", e.performance.area_mm2),
                    engineering(e.density_ops_mm2()),
                    format!("{:.3}", e.spatial_utilization),
                    format!("{:.3}", e.temporal_utilization),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplication_scales_cnn_performance_superlinearly_in_area() {
        let fig = run_small();
        let lenet = fig.for_model("LeNet");
        assert_eq!(lenet.len(), 4);
        let base = lenet[0];
        let top = lenet[3];
        let speedup = top.performance.ops_per_second / base.performance.ops_per_second;
        let area_growth = top.performance.area_mm2 / base.performance.area_mm2;
        assert!(speedup > 8.0, "64x duplication speedup {speedup}");
        assert!(
            area_growth < speedup,
            "area growth {area_growth} should lag the speedup {speedup}"
        );
    }

    #[test]
    fn the_mlp_does_not_benefit_from_duplication() {
        let fig = run_small();
        let mlp = fig.for_model("MLP-500-100");
        let speedup = mlp[3].performance.ops_per_second / mlp[0].performance.ops_per_second;
        assert!(speedup < 1.5, "MLP speedup should be flat, got {speedup}");
        // Its workload is balanced, so the temporal utilization is already 1.
        assert!(mlp[0].temporal_utilization > 0.99);
    }

    #[test]
    fn temporal_utilization_rises_with_duplication_for_cnns() {
        let fig = run_small();
        let vgg = fig.for_model("CIFAR-VGG17");
        assert!(vgg[3].temporal_utilization > vgg[0].temporal_utilization);
        // Spatial utilization does not change with duplication (Figure 8c).
        assert!((vgg[3].spatial_utilization - vgg[0].spatial_utilization).abs() < 1e-9);
    }

    #[test]
    fn geomean_scaling_reports_sensible_numbers() {
        let fig = run_small();
        let (perf4, area4) = fig.geomean_scaling(4);
        assert!(perf4 > 1.0);
        assert!(area4 >= 1.0);
        assert!(area4 < perf4 * 1.5);
        assert!(!to_table(&fig).is_empty());
    }

    #[test]
    fn channel_width_search_covers_the_small_models() {
        let points = channel_width_search();
        assert!(
            points.len() >= 2,
            "at least the MNIST-scale models fit under the block limit"
        );
        let arch_width = ArchitectureConfig::fpsa().routing.channel_width;
        for p in &points {
            assert!(p.required_channel_width >= 1);
            assert!(
                p.required_channel_width <= arch_width,
                "{}: minimum width {} exceeds the fabric's {}",
                p.model,
                p.required_channel_width,
                arch_width
            );
            assert!(p.router_iterations >= 1);
            assert!(p.blocks > 0);
        }
        let mut fig = run_small();
        fig.channel_widths = points;
        let table = channel_width_table(&fig);
        assert!(table.contains("min channel width"));
        for p in &fig.channel_widths {
            assert!(table.contains(&p.model));
        }
    }
}
