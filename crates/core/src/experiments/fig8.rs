//! Figure 8: scalability of FPSA with the duplication degree.
//!
//! For every benchmark model and duplication degree in {1, 4, 16, 64} the
//! experiment reports performance (Figure 8a), area (Figure 8b) and
//! computational density together with its peak and the spatial/temporal
//! utilization bounds (Figure 8c).

use crate::evaluator::ModelEvaluation;
use crate::report::{engineering, format_table};
use crate::sweep::Sweep;
use fpsa_arch::ArchitectureConfig;
use fpsa_nn::zoo::Benchmark;
use serde::{Deserialize, Serialize};

/// The duplication degrees evaluated by the paper.
pub const DUPLICATION_DEGREES: [u64; 4] = [1, 4, 16, 64];

/// The full Figure 8 data set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure8 {
    /// One evaluation per (model, duplication degree).
    pub evaluations: Vec<ModelEvaluation>,
}

impl Figure8 {
    /// The evaluations of one model, ordered by duplication degree.
    pub fn for_model(&self, name: &str) -> Vec<&ModelEvaluation> {
        let mut v: Vec<&ModelEvaluation> = self
            .evaluations
            .iter()
            .filter(|e| e.model == name)
            .collect();
        v.sort_by_key(|e| e.duplication);
        v
    }

    /// Geometric-mean speedup and area growth of a duplication degree
    /// relative to the 1x configuration, across all models.
    pub fn geomean_scaling(&self, duplication: u64) -> (f64, f64) {
        let mut perf_product = 1.0f64;
        let mut area_product = 1.0f64;
        let mut count = 0usize;
        for benchmark in Benchmark::all() {
            let series = self.for_model(benchmark.name());
            let base = series.iter().find(|e| e.duplication == 1);
            let this = series.iter().find(|e| e.duplication == duplication);
            if let (Some(base), Some(this)) = (base, this) {
                perf_product *= this.performance.ops_per_second / base.performance.ops_per_second;
                area_product *= this.performance.area_mm2 / base.performance.area_mm2;
                count += 1;
            }
        }
        if count == 0 {
            return (1.0, 1.0);
        }
        (
            perf_product.powf(1.0 / count as f64),
            area_product.powf(1.0 / count as f64),
        )
    }
}

/// Regenerate Figure 8 on the FPSA architecture: the full model ×
/// duplication grid, evaluated in parallel by the unified sweep engine.
pub fn run() -> Figure8 {
    Figure8 {
        evaluations: Sweep::cartesian(
            &Benchmark::all(),
            &[ArchitectureConfig::fpsa()],
            &DUPLICATION_DEGREES,
        )
        .run(),
    }
}

/// A faster variant covering only the small models (used in tests).
pub fn run_small() -> Figure8 {
    Figure8 {
        evaluations: Sweep::cartesian(
            &[
                Benchmark::Mlp500x100,
                Benchmark::LeNet,
                Benchmark::CifarVgg17,
            ],
            &[ArchitectureConfig::fpsa()],
            &DUPLICATION_DEGREES,
        )
        .run(),
    }
}

/// Render Figure 8 as text.
pub fn to_table(fig: &Figure8) -> String {
    format_table(
        &[
            "model",
            "dup",
            "perf (OPS)",
            "area (mm^2)",
            "density (OPS/mm^2)",
            "spatial util",
            "temporal util",
        ],
        &fig.evaluations
            .iter()
            .map(|e| {
                vec![
                    e.model.clone(),
                    e.duplication.to_string(),
                    engineering(e.performance.ops_per_second),
                    format!("{:.2}", e.performance.area_mm2),
                    engineering(e.density_ops_mm2()),
                    format!("{:.3}", e.spatial_utilization),
                    format!("{:.3}", e.temporal_utilization),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplication_scales_cnn_performance_superlinearly_in_area() {
        let fig = run_small();
        let lenet = fig.for_model("LeNet");
        assert_eq!(lenet.len(), 4);
        let base = lenet[0];
        let top = lenet[3];
        let speedup = top.performance.ops_per_second / base.performance.ops_per_second;
        let area_growth = top.performance.area_mm2 / base.performance.area_mm2;
        assert!(speedup > 8.0, "64x duplication speedup {speedup}");
        assert!(
            area_growth < speedup,
            "area growth {area_growth} should lag the speedup {speedup}"
        );
    }

    #[test]
    fn the_mlp_does_not_benefit_from_duplication() {
        let fig = run_small();
        let mlp = fig.for_model("MLP-500-100");
        let speedup = mlp[3].performance.ops_per_second / mlp[0].performance.ops_per_second;
        assert!(speedup < 1.5, "MLP speedup should be flat, got {speedup}");
        // Its workload is balanced, so the temporal utilization is already 1.
        assert!(mlp[0].temporal_utilization > 0.99);
    }

    #[test]
    fn temporal_utilization_rises_with_duplication_for_cnns() {
        let fig = run_small();
        let vgg = fig.for_model("CIFAR-VGG17");
        assert!(vgg[3].temporal_utilization > vgg[0].temporal_utilization);
        // Spatial utilization does not change with duplication (Figure 8c).
        assert!((vgg[3].spatial_utilization - vgg[0].spatial_utilization).abs() < 1e-9);
    }

    #[test]
    fn geomean_scaling_reports_sensible_numbers() {
        let fig = run_small();
        let (perf4, area4) = fig.geomean_scaling(4);
        assert!(perf4 > 1.0);
        assert!(area4 >= 1.0);
        assert!(area4 < perf4 * 1.5);
        assert!(!to_table(&fig).is_empty());
    }
}
