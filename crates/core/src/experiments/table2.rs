//! Table 2: PE comparison between PRIME and FPSA.

use crate::report::format_table;
use crate::sweep::parallel_map;
use fpsa_device::pe::ProcessingElementSpec;
use fpsa_prime::PrimePeSpec;
use serde::{Deserialize, Serialize};

/// One architecture's row of Table 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Architecture name.
    pub architecture: String,
    /// PE area in µm².
    pub area_um2: f64,
    /// Latency of a 256x256, 8-bit-weight, 6-bit-I/O VMM in ns.
    pub latency_ns: f64,
    /// Computational density in TOPS/mm².
    pub density_tops_mm2: f64,
}

/// The whole comparison, including the derived improvements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2 {
    /// PRIME and FPSA rows.
    pub rows: Vec<Table2Row>,
    /// Relative area change FPSA vs PRIME (negative = smaller).
    pub area_change: f64,
    /// Relative latency change FPSA vs PRIME (negative = faster).
    pub latency_change: f64,
    /// Density improvement factor (paper: 30.92x).
    pub density_improvement: f64,
}

/// The PE designs Table 2 compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PeUnderTest {
    Prime,
    Fpsa,
}

impl PeUnderTest {
    /// Evaluate this design's PE model into its table row.
    fn row(self) -> Table2Row {
        match self {
            PeUnderTest::Prime => {
                let prime = PrimePeSpec::prime_default();
                Table2Row {
                    architecture: "PRIME".into(),
                    area_um2: prime.area_um2(),
                    latency_ns: prime.vmm_latency_ns(),
                    density_tops_mm2: prime.density_tops_mm2(),
                }
            }
            PeUnderTest::Fpsa => {
                let fpsa = ProcessingElementSpec::fpsa_default();
                Table2Row {
                    architecture: "FPSA".into(),
                    area_um2: fpsa.area_um2(),
                    latency_ns: fpsa.vmm_latency_ns(),
                    density_tops_mm2: fpsa.computational_density_tops_per_mm2(),
                }
            }
        }
    }
}

/// Regenerate Table 2 from the two PE models (evaluated through the sweep
/// engine, like every other driver).
pub fn run() -> Table2 {
    let rows = parallel_map(&[PeUnderTest::Prime, PeUnderTest::Fpsa], |pe| pe.row());
    Table2 {
        area_change: rows[1].area_um2 / rows[0].area_um2 - 1.0,
        latency_change: rows[1].latency_ns / rows[0].latency_ns - 1.0,
        density_improvement: rows[1].density_tops_mm2 / rows[0].density_tops_mm2,
        rows,
    }
}

/// Render the comparison as text.
pub fn to_table(table: &Table2) -> String {
    let mut rows: Vec<Vec<String>> = table
        .rows
        .iter()
        .map(|r| {
            vec![
                r.architecture.clone(),
                format!("{:.3}", r.area_um2),
                format!("{:.1}", r.latency_ns),
                format!("{:.3}", r.density_tops_mm2),
            ]
        })
        .collect();
    rows.push(vec![
        "Improvement".into(),
        format!("{:.2}%", table.area_change * 100.0),
        format!("{:.2}%", table.latency_change * 100.0),
        format!("{:.2}x", table.density_improvement),
    ]);
    format_table(
        &[
            "architecture",
            "area (um^2)",
            "latency (ns)",
            "density (TOPS/mm^2)",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvements_match_the_published_table() {
        let t = run();
        // Paper: -36.63% area, -94.90% latency, 30.92x density.
        assert!(
            (t.area_change + 0.3663).abs() < 0.03,
            "area change {}",
            t.area_change
        );
        assert!(
            (t.latency_change + 0.949).abs() < 0.01,
            "latency change {}",
            t.latency_change
        );
        assert!(
            t.density_improvement > 28.0 && t.density_improvement < 34.0,
            "density improvement {}",
            t.density_improvement
        );
    }

    #[test]
    fn rows_are_ordered_prime_then_fpsa() {
        let t = run();
        assert_eq!(t.rows[0].architecture, "PRIME");
        assert_eq!(t.rows[1].architecture, "FPSA");
        assert!(t.rows[1].density_tops_mm2 > t.rows[0].density_tops_mm2);
    }

    #[test]
    fn rendering_includes_the_improvement_row() {
        let text = to_table(&run());
        assert!(text.contains("Improvement"));
        assert!(text.contains("FPSA"));
    }
}
