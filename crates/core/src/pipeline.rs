//! The instrumented compile pipeline.
//!
//! [`crate::compiler::Compiler::compile`] runs as four explicit stages —
//! `Synthesize → Map → PlaceRoute → Estimate` — each a [`CompileStage`] with
//! typed input and output artifacts. Stages borrow their inputs and produce
//! only the new artifact, so nothing is cloned between stages.
//! [`InstrumentedPipeline::run_stage`] wraps every stage with wall-clock
//! timing and artifact-size accounting and accumulates the measurements into
//! a [`StageTrace`] that travels on the compiled model (and from there into
//! `fpsa_sim::PerformanceReport`), so compile-time breakdowns come from real
//! instrumentation.
//!
//! The stage types are public: benchmarks (the compiler-stage ablation) and
//! tools can run any stage in isolation against its typed artifact.

use crate::compiler::CompileError;
use fpsa_arch::{ArchitectureConfig, FabricCapacity};
use fpsa_mapper::{AllocationPolicy, Mapper, Mapping};
use fpsa_nn::ComputationalGraph;
use fpsa_placeroute::{
    Placement, Placer, PlacerConfig, Router, RouterConfig, RoutingResult, TimingReport, WarmStart,
};
use fpsa_sim::{CommunicationEstimate, StageKind, StageQuality, StageRecord, StageTrace};
use fpsa_synthesis::{CoreOpGraph, NeuralSynthesizer, SynthesisConfig};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One typed stage of the compile pipeline.
///
/// A stage borrows its input artifact (the lifetime-parameterized
/// [`CompileStage::Input`]) and produces the next artifact; the sizes
/// reported by [`CompileStage::items_in`] / [`CompileStage::items_out`] land
/// in the [`StageTrace`] next to the stage's wall-clock time.
pub trait CompileStage {
    /// The (usually borrowed) artifact the stage consumes.
    type Input<'a>;
    /// The artifact the stage produces.
    type Output;

    /// Which pipeline stage this is.
    fn kind(&self) -> StageKind;

    /// Execute the stage.
    ///
    /// # Errors
    ///
    /// Synthesis propagates graph and shape errors; PlaceRoute raises the
    /// typed [`CompileError::CapacityExceeded`] when the netlist exceeds the
    /// block limit without an explicit fallback opt-in.
    fn run(&self, input: Self::Input<'_>) -> Result<Self::Output, CompileError>;

    /// Size of the input artifact, in the stage's natural unit.
    fn items_in(input: &Self::Input<'_>) -> usize;

    /// Size of the output artifact, in the stage's natural unit.
    fn items_out(output: &Self::Output) -> usize;

    /// Deterministic quality metrics of the output, if the stage reports any
    /// (they land in the [`StageTrace`] next to the wall-clock cost).
    fn quality(output: &Self::Output) -> Option<StageQuality> {
        let _ = output;
        None
    }
}

/// Stage 1: neural synthesis (computational graph → core-op graph).
#[derive(Debug, Clone)]
pub struct SynthesizeStage {
    synthesizer: NeuralSynthesizer,
}

/// The synthesis configuration an architecture implies (its crossbar
/// geometry). The single source of truth shared by [`SynthesizeStage`] and
/// the sharding compiler's full-model synthesis, so the per-stage and
/// whole-model syntheses can never tile differently.
pub fn synthesis_config_for(arch: &ArchitectureConfig) -> SynthesisConfig {
    SynthesisConfig {
        crossbar_rows: arch.pe.rows,
        crossbar_cols: arch.pe.cols,
    }
}

impl SynthesizeStage {
    /// A synthesis stage tiling for the architecture's crossbar geometry.
    pub fn for_architecture(arch: &ArchitectureConfig) -> Self {
        SynthesizeStage {
            synthesizer: NeuralSynthesizer::new(synthesis_config_for(arch)),
        }
    }
}

impl CompileStage for SynthesizeStage {
    type Input<'a> = &'a ComputationalGraph;
    type Output = CoreOpGraph;

    fn kind(&self) -> StageKind {
        StageKind::Synthesize
    }

    fn run(&self, input: &ComputationalGraph) -> Result<CoreOpGraph, CompileError> {
        Ok(self.synthesizer.synthesize(input)?)
    }

    fn items_in(input: &&ComputationalGraph) -> usize {
        input.len()
    }

    fn items_out(output: &CoreOpGraph) -> usize {
        output.len()
    }
}

/// Stage 2: spatial-to-temporal mapping (core-op graph → netlist).
#[derive(Debug, Clone, Copy)]
pub struct MapStage {
    mapper: Mapper,
}

impl MapStage {
    /// A mapping stage for the architecture's sampling window and the given
    /// duplication degree.
    pub fn new(arch: &ArchitectureConfig, duplication: u64) -> Self {
        MapStage {
            mapper: Mapper::new(
                arch.sampling_window(),
                AllocationPolicy::DuplicationDegree(duplication),
            ),
        }
    }
}

impl CompileStage for MapStage {
    type Input<'a> = &'a CoreOpGraph;
    type Output = Mapping;

    fn kind(&self) -> StageKind {
        StageKind::Map
    }

    fn run(&self, input: &CoreOpGraph) -> Result<Mapping, CompileError> {
        Ok(self.mapper.map(input))
    }

    fn items_in(input: &&CoreOpGraph) -> usize {
        input.len()
    }

    fn items_out(output: &Mapping) -> usize {
        output.netlist.len()
    }
}

/// The physical-design artifacts (present when P&R ran).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhysicalDesign {
    /// Block placement on the fabric.
    pub placement: Placement,
    /// Routed nets.
    pub routing: RoutingResult,
    /// Timing analysis of the routed design.
    pub timing: TimingReport,
}

/// How the PlaceRoute stage picks the routing channel width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChannelWidthMode {
    /// Route at the architecture's configured channel width.
    Architecture,
    /// Search for the minimum channel width that still routes — the paper's
    /// mrVPR minimum-channel-width sweep — and keep the routing found there.
    Minimize,
}

/// What the PlaceRoute stage does when the netlist exceeds its block limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OverLimitPolicy {
    /// Fail compilation with the typed
    /// [`CompileError::CapacityExceeded`] carrying the required vs available
    /// PE/SMB counts — the signal the multi-fabric auto-sharder consumes.
    Error,
    /// The pre-sharding behavior: silently skip physical design and let the
    /// Estimate stage fall back to the analytic wire model. Kept as an
    /// explicit opt-in for whole-model sweeps of ImageNet-scale netlists.
    AnalyticFallback,
}

/// Configuration of the physical-design stage: effort presets for placement
/// and routing, the channel-width mode, and the skip policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlaceRouteConfig {
    /// Annealing effort and seed.
    pub placer: PlacerConfig,
    /// PathFinder negotiation parameters.
    pub router: RouterConfig,
    /// Fixed-width routing or minimum-channel-width search.
    pub channel_width: ChannelWidthMode,
    /// Above this many netlist blocks the stage refuses physical design
    /// (see `over_limit` for what happens then).
    pub block_limit: usize,
    /// Whether an over-limit netlist is a typed error or an analytic-model
    /// fallback.
    pub over_limit: OverLimitPolicy,
    /// Force-skip physical design regardless of netlist size.
    pub skip: bool,
}

impl PlaceRouteConfig {
    /// The fast preset used by default compiles and tests.
    pub fn fast() -> Self {
        PlaceRouteConfig {
            placer: PlacerConfig::fast(),
            router: RouterConfig::negotiated(),
            channel_width: ChannelWidthMode::Architecture,
            block_limit: crate::compiler::PLACE_AND_ROUTE_BLOCK_LIMIT,
            over_limit: OverLimitPolicy::Error,
            skip: false,
        }
    }

    /// The quality preset used for final results.
    pub fn quality() -> Self {
        PlaceRouteConfig {
            placer: PlacerConfig::quality(),
            ..Self::fast()
        }
    }

    /// Switch to the minimum-channel-width search mode.
    pub fn minimize_channel_width(mut self) -> Self {
        self.channel_width = ChannelWidthMode::Minimize;
        self
    }

    /// Force-skip physical design.
    pub fn skipped(mut self) -> Self {
        self.skip = true;
        self
    }

    /// Opt in to the silent analytic-model fallback for over-limit netlists.
    pub fn with_analytic_fallback(mut self) -> Self {
        self.over_limit = OverLimitPolicy::AnalyticFallback;
        self
    }
}

impl Default for PlaceRouteConfig {
    fn default() -> Self {
        Self::fast()
    }
}

/// Stage 3: placement & routing, skipped above the block limit.
#[derive(Debug, Clone)]
pub struct PlaceRouteStage {
    arch: ArchitectureConfig,
    config: PlaceRouteConfig,
    warm: Option<WarmStart>,
}

impl PlaceRouteStage {
    /// A physical-design stage for an architecture.
    pub fn new(arch: ArchitectureConfig, config: PlaceRouteConfig) -> Self {
        PlaceRouteStage {
            arch,
            config,
            warm: None,
        }
    }

    /// Seed the annealer from a prior placement (a compile-cache near-miss
    /// donor or an exact on-disk seed). See [`fpsa_placeroute::WarmStart`].
    pub fn with_warm_start(mut self, warm: WarmStart) -> Self {
        self.warm = Some(warm);
        self
    }

    /// The stage's configuration.
    pub fn config(&self) -> &PlaceRouteConfig {
        &self.config
    }

    /// Whether this stage would run physical design for a netlist size.
    pub fn would_run(&self, blocks: usize) -> bool {
        !self.config.skip && blocks <= self.config.block_limit
    }
}

impl CompileStage for PlaceRouteStage {
    type Input<'a> = &'a Mapping;
    type Output = Option<PhysicalDesign>;

    fn kind(&self) -> StageKind {
        StageKind::PlaceRoute
    }

    fn run(&self, input: &Mapping) -> Result<Option<PhysicalDesign>, CompileError> {
        if !self.would_run(input.netlist.len()) {
            let blocks = input.netlist.len();
            if !self.config.skip
                && blocks > self.config.block_limit
                && self.config.over_limit == OverLimitPolicy::Error
            {
                let (pes, smbs, clbs) = input.block_demand();
                // The typed-error telemetry hook: persist the flight
                // recorder's last moments alongside the capacity failure.
                fpsa_obs::flight_dump_on_error(
                    "compile.capacity_exceeded",
                    &[
                        ("blocks", blocks as i64),
                        ("block_limit", self.config.block_limit as i64),
                    ],
                );
                return Err(CompileError::CapacityExceeded {
                    required: FabricCapacity::new(pes, smbs, clbs),
                    available: FabricCapacity::within_block_budget(
                        &self.arch,
                        self.config.block_limit,
                    ),
                    blocks,
                    block_limit: self.config.block_limit,
                });
            }
            return Ok(None);
        }
        let netlist = &input.netlist;
        let fabric = fpsa_placeroute::fabric_for(netlist, &self.arch);
        let placement =
            Placer::new(self.config.placer).place_seeded(netlist, &fabric, self.warm.as_ref());
        let router = Router::with_config(self.arch.routing, self.config.router);
        let routing = match self.config.channel_width {
            ChannelWidthMode::Architecture => router.route(netlist, &placement),
            ChannelWidthMode::Minimize => router.minimum_channel_width(netlist, &placement).1,
        };
        let timing = TimingReport::analyze(&routing, &self.arch.routing);
        Ok(Some(PhysicalDesign {
            placement,
            routing,
            timing,
        }))
    }

    fn items_in(input: &&Mapping) -> usize {
        input.netlist.len()
    }

    fn items_out(output: &Option<PhysicalDesign>) -> usize {
        // Connections that went through physical design; 0 when the stage
        // fell back to the analytic model.
        match output {
            Some(physical) => physical.routing.connection_hops.len(),
            None => 0,
        }
    }

    fn quality(output: &Option<PhysicalDesign>) -> Option<StageQuality> {
        output.as_ref().map(|physical| StageQuality::PlaceRoute {
            placement_wirelength: physical.placement.quality().final_wirelength,
            placement_acceptance_rate: physical.placement.quality().acceptance_rate(),
            placement_moves: physical.placement.quality().moves_evaluated,
            warm_started: physical.placement.quality().warm_started,
            router_iterations: physical.routing.iterations,
            required_channel_width: physical.routing.required_channel_width(),
            critical_hops: physical.timing.critical_hops,
        })
    }
}

/// Stage 4: pick the communication estimate — the routed critical path when
/// physical design ran on a routed architecture, the analytic model (or the
/// bus model) otherwise.
#[derive(Debug, Clone)]
pub struct EstimateStage {
    arch: ArchitectureConfig,
}

impl EstimateStage {
    /// An estimation stage for the target architecture.
    pub fn new(arch: ArchitectureConfig) -> Self {
        EstimateStage { arch }
    }
}

impl CompileStage for EstimateStage {
    type Input<'a> = (&'a Mapping, Option<&'a PhysicalDesign>);
    type Output = CommunicationEstimate;

    fn kind(&self) -> StageKind {
        StageKind::Estimate
    }

    fn run(
        &self,
        input: (&Mapping, Option<&PhysicalDesign>),
    ) -> Result<Self::Output, CompileError> {
        let (mapping, physical) = input;
        Ok(match (physical, &self.arch.communication) {
            (Some(p), fpsa_arch::CommunicationStyle::Routed { .. }) => {
                CommunicationEstimate::from_timing(&p.timing)
            }
            _ => CommunicationEstimate::analytic(&self.arch, mapping.netlist.len()),
        })
    }

    fn items_in(input: &(&Mapping, Option<&PhysicalDesign>)) -> usize {
        input.0.netlist.len()
    }

    fn items_out(_output: &CommunicationEstimate) -> usize {
        1
    }
}

/// Runs stages in order, recording wall-clock time and artifact sizes.
#[derive(Debug, Clone, Default)]
pub struct InstrumentedPipeline {
    trace: StageTrace,
}

impl InstrumentedPipeline {
    /// A pipeline with an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Run one stage, timing it and recording artifact sizes.
    ///
    /// # Errors
    ///
    /// Propagates the stage's error; nothing is recorded for a failed stage.
    pub fn run_stage<'a, S: CompileStage>(
        &mut self,
        stage: &S,
        input: S::Input<'a>,
    ) -> Result<S::Output, CompileError> {
        let items_in = S::items_in(&input);
        // Compile-stage spans ride the global tracer (wall clock); the
        // StageTrace keeps its own wall_ns so compile benchmarks need no
        // tracing enabled.
        let tracer = fpsa_obs::Tracer::global();
        let span = if tracer.enabled() {
            tracer.enter_with(
                stage.kind().name(),
                "compile",
                tracer.now_us(),
                fpsa_obs::SpanId::NONE,
                &[("items_in", items_in as i64)],
            )
        } else {
            fpsa_obs::Span::DISABLED
        };
        let start = Instant::now();
        let output = match stage.run(input) {
            Ok(output) => output,
            Err(e) => {
                // The span still closes on the error path, marked failed.
                if !span.id.is_none() {
                    let ts = tracer.now_us();
                    tracer.record(&span, "failed", 1, ts);
                    tracer.exit(&span, ts);
                }
                return Err(e);
            }
        };
        let wall_ns = start.elapsed().as_secs_f64() * 1e9;
        if !span.id.is_none() {
            let ts = tracer.now_us();
            tracer.record(&span, "items_out", S::items_out(&output) as i64, ts);
            tracer.exit(&span, ts);
        }
        self.trace.push(StageRecord {
            stage: stage.kind(),
            wall_ns,
            items_in,
            items_out: S::items_out(&output),
            quality: S::quality(&output),
        });
        Ok(output)
    }

    /// The measurements recorded so far.
    pub fn trace(&self) -> &StageTrace {
        &self.trace
    }

    /// Consume the pipeline, yielding the trace.
    pub fn finish(self) -> StageTrace {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpsa_nn::zoo;

    #[test]
    fn stages_compose_into_the_compiler_flow() {
        let arch = ArchitectureConfig::fpsa();
        let graph = zoo::lenet();
        let mut pipeline = InstrumentedPipeline::new();
        let core = pipeline
            .run_stage(&SynthesizeStage::for_architecture(&arch), &graph)
            .unwrap();
        let mapping = pipeline.run_stage(&MapStage::new(&arch, 1), &core).unwrap();
        let physical = pipeline
            .run_stage(
                &PlaceRouteStage::new(arch.clone(), PlaceRouteConfig::fast()),
                &mapping,
            )
            .unwrap();
        assert!(physical.is_some(), "LeNet fits under the block limit");
        let communication = pipeline
            .run_stage(&EstimateStage::new(arch), (&mapping, physical.as_ref()))
            .unwrap();
        assert!(matches!(
            communication,
            CommunicationEstimate::Routed { .. }
        ));

        let trace = pipeline.finish();
        let kinds: Vec<StageKind> = trace.records().iter().map(|r| r.stage).collect();
        assert_eq!(kinds, StageKind::ALL.to_vec());
        assert!(trace.records().iter().all(|r| r.wall_ns >= 0.0));
        // The mapper folds the spatial core-op graph onto a netlist, so both
        // sides of every stage carry real sizes.
        assert!(trace.records().iter().all(|r| r.items_in > 0));
        // The PlaceRoute stage reports its quality metrics into the trace.
        match &trace.records()[2].quality {
            Some(StageQuality::PlaceRoute {
                placement_wirelength,
                placement_acceptance_rate,
                router_iterations,
                required_channel_width,
                ..
            }) => {
                assert!(*placement_wirelength > 0.0);
                assert!((0.0..=1.0).contains(placement_acceptance_rate));
                assert!(*router_iterations >= 1);
                assert!(*required_channel_width >= 1);
            }
            other => panic!("PlaceRoute must report quality, got {other:?}"),
        }
        // The other stages report none.
        assert!(trace.records()[0].quality.is_none());
        assert!(trace.records()[1].quality.is_none());
    }

    #[test]
    fn minimize_mode_finds_a_width_below_the_architecture_default() {
        let arch = ArchitectureConfig::fpsa();
        let graph = zoo::lenet();
        let mut pipeline = InstrumentedPipeline::new();
        let core = pipeline
            .run_stage(&SynthesizeStage::for_architecture(&arch), &graph)
            .unwrap();
        let mapping = pipeline.run_stage(&MapStage::new(&arch, 1), &core).unwrap();
        let stage = PlaceRouteStage::new(
            arch.clone(),
            PlaceRouteConfig::fast().minimize_channel_width(),
        );
        let physical = pipeline.run_stage(&stage, &mapping).unwrap().unwrap();
        assert!(physical.routing.is_routable());
        assert!(
            physical.routing.channel_width <= arch.routing.channel_width,
            "minimum width {} exceeds the architecture's {}",
            physical.routing.channel_width,
            arch.routing.channel_width
        );
        assert_eq!(
            physical.routing.channel_width,
            physical.routing.required_channel_width()
        );
    }

    #[test]
    fn skipping_place_and_route_records_an_empty_output() {
        let arch = ArchitectureConfig::fpsa();
        let graph = zoo::lenet();
        let mut pipeline = InstrumentedPipeline::new();
        let core = pipeline
            .run_stage(&SynthesizeStage::for_architecture(&arch), &graph)
            .unwrap();
        let mapping = pipeline.run_stage(&MapStage::new(&arch, 1), &core).unwrap();
        let physical = pipeline
            .run_stage(
                &PlaceRouteStage::new(arch.clone(), PlaceRouteConfig::fast().skipped()),
                &mapping,
            )
            .unwrap();
        assert!(physical.is_none());
        let record = &pipeline.trace().records()[2];
        assert_eq!(record.stage, StageKind::PlaceRoute);
        assert_eq!(record.items_out, 0);
        assert!(record.items_in > 0);
        assert!(record.quality.is_none(), "skipped stages report no quality");
    }

    #[test]
    fn stage_errors_propagate_and_record_nothing() {
        use fpsa_nn::{Operator, TensorShape};

        let arch = ArchitectureConfig::fpsa();
        let mut pipeline = InstrumentedPipeline::new();
        // A node wired to a nonexistent input fails synthesis.
        let mut graph = ComputationalGraph::new("broken");
        graph.add_input("input", TensorShape::Features(8));
        graph.add_node(
            "dangling",
            Operator::Linear {
                in_features: 8,
                out_features: 4,
            },
            vec![999],
        );
        let result = pipeline.run_stage(&SynthesizeStage::for_architecture(&arch), &graph);
        assert!(result.is_err());
        assert!(pipeline.trace().is_empty());
    }
}
