//! Plain-text table formatting for experiment output.

/// Format a table with a header row and data rows, padding every column to
/// its widest cell. Used by the experiment drivers and the examples to print
/// paper-style tables.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let columns = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(columns) {
            if cell.len() > widths[i] {
                widths[i] = cell.len();
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (i, cell) in cells.iter().enumerate().take(widths.len()) {
            line.push_str(&format!(" {:<width$} |", cell, width = widths[i]));
        }
        line.push('\n');
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    let mut sep = String::from("|");
    for w in &widths {
        sep.push_str(&format!("{}|", "-".repeat(w + 2)));
    }
    sep.push('\n');
    out.push_str(&sep);
    for row in rows {
        out.push_str(&render_row(row, &widths));
    }
    out
}

/// The `q`-quantile of an ascending-sorted sample, nearest-rank convention
/// (0 when empty). The shared percentile rule of the serving and sharding
/// experiment drivers — one definition, so their latency columns can never
/// silently diverge.
pub fn nearest_rank_percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Format a floating point value with engineering-style suffixes (K, M, G, T).
pub fn engineering(value: f64) -> String {
    let abs = value.abs();
    if abs >= 1e12 {
        format!("{:.2}T", value / 1e12)
    } else if abs >= 1e9 {
        format!("{:.2}G", value / 1e9)
    } else if abs >= 1e6 {
        format!("{:.2}M", value / 1e6)
    } else if abs >= 1e3 {
        format!("{:.2}K", value / 1e3)
    } else {
        format!("{value:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned_and_complete() {
        let table = format_table(
            &["model", "ops"],
            &[
                vec!["VGG16".to_string(), "30.9G".to_string()],
                vec!["LeNet".to_string(), "4.6M".to_string()],
            ],
        );
        assert!(table.contains("| model | ops   |"));
        assert!(table.contains("| VGG16 | 30.9G |"));
        assert_eq!(table.lines().count(), 4);
    }

    #[test]
    fn engineering_suffixes() {
        assert_eq!(engineering(1.5e13), "15.00T");
        assert_eq!(engineering(2.4e3), "2.40K");
        assert_eq!(engineering(3.0e7), "30.00M");
        assert_eq!(engineering(5.0e9), "5.00G");
        assert_eq!(engineering(12.0), "12.00");
    }
}
