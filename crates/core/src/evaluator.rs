//! The evaluation harness.
//!
//! `Evaluator` compiles a benchmark for a chosen architecture and duplication
//! degree and collects everything the paper's figures report: the measured
//! performance, the peak and the spatial/temporal utilization bounds, and the
//! compute/communication latency breakdown. Evaluations of independent
//! (model, duplication) points are embarrassingly parallel;
//! [`Evaluator::evaluate_many`] routes them through the unified
//! [`crate::sweep::Sweep`] engine.

use crate::cache::CompileCache;
use crate::compiler::{CompiledModel, Compiler};
use fpsa_arch::ArchitectureConfig;
use fpsa_nn::zoo::Benchmark;
use fpsa_sim::PerformanceReport;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Everything measured for one (model, architecture, duplication) point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelEvaluation {
    /// Which benchmark was evaluated.
    pub model: String,
    /// Architecture display name.
    pub architecture: String,
    /// Requested duplication degree.
    pub duplication: u64,
    /// Measured performance.
    pub performance: PerformanceReport,
    /// Peak performance of the allocated PEs in OPS.
    pub peak_ops: f64,
    /// Spatial utilization bound (crossbar fill), 0..1.
    pub spatial_utilization: f64,
    /// Temporal utilization bound (pipeline balance), 0..1.
    pub temporal_utilization: f64,
    /// Published weight count for cross-checking (from Table 3).
    pub published_weights: f64,
    /// Measured weight count.
    pub measured_weights: u64,
    /// Measured operation count per sample.
    pub measured_ops: u64,
}

impl ModelEvaluation {
    /// The real computational density in OPS/mm².
    pub fn density_ops_mm2(&self) -> f64 {
        self.performance.ops_per_mm2
    }

    /// The peak computational density in OPS/mm².
    pub fn peak_density_ops_mm2(&self) -> f64 {
        self.peak_ops / self.performance.area_mm2.max(1e-9)
    }
}

/// The evaluation harness.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluator {
    /// Architecture under evaluation.
    pub arch: ArchitectureConfig,
}

impl Evaluator {
    /// An evaluator for the FPSA architecture.
    pub fn fpsa() -> Self {
        Evaluator {
            arch: ArchitectureConfig::fpsa(),
        }
    }

    /// An evaluator for an arbitrary architecture.
    pub fn new(arch: ArchitectureConfig) -> Self {
        Evaluator { arch }
    }

    /// Evaluate one benchmark at one duplication degree.
    pub fn evaluate(&self, benchmark: Benchmark, duplication: u64) -> ModelEvaluation {
        self.evaluate_with_cache(benchmark, duplication, None)
    }

    /// [`Evaluator::evaluate`], compiling through a [`CompileCache`] when
    /// one is given: identical (model, config) points reuse the cached
    /// artifact and the report's compile trace carries the cache outcome.
    /// Results are equal to an uncached evaluation (trace equality ignores
    /// cache provenance, like wall-clock).
    pub fn evaluate_with_cache(
        &self,
        benchmark: Benchmark,
        duplication: u64,
        cache: Option<&CompileCache>,
    ) -> ModelEvaluation {
        let graph = benchmark.build();
        let stats = graph.statistics();
        let compiler = Compiler::for_architecture(self.arch.clone())
            .with_duplication(duplication)
            .without_place_and_route();
        let (compiled, info): (Arc<CompiledModel>, _) = match cache {
            Some(cache) => {
                let (model, info) = cache
                    .compile_with_info(&compiler, &graph)
                    .expect("zoo models are well formed");
                (model, Some(info))
            }
            None => (
                Arc::new(
                    compiler
                        .compile(&graph)
                        .expect("zoo models are well formed"),
                ),
                None,
            ),
        };
        let mut performance = compiled.performance();
        // Stamp how the cache satisfied *this* request (the shared artifact
        // records only how it was first produced). Excluded from equality,
        // like wall-clock.
        if let (Some(info), Some(trace)) = (info, performance.compile.as_mut()) {
            trace.set_cache(info);
        }
        let peak_ops = compiled.mapping.netlist.stats().pe_count as f64 * self.arch.pe.peak_ops();
        ModelEvaluation {
            model: benchmark.name().to_string(),
            architecture: self.arch.kind.name().to_string(),
            duplication,
            performance,
            peak_ops,
            spatial_utilization: compiled.core_graph.spatial_utilization(),
            temporal_utilization: compiled.mapping.allocation.temporal_utilization(),
            published_weights: benchmark.published_weights(),
            measured_weights: stats.total_weights,
            measured_ops: stats.total_ops,
        }
    }

    /// Evaluate several (benchmark, duplication) points in parallel through
    /// the unified sweep engine; results keep the input order.
    pub fn evaluate_many(&self, points: &[(Benchmark, u64)]) -> Vec<ModelEvaluation> {
        crate::sweep::Sweep::over_points(&self.arch, points).run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluating_the_mlp_is_fast_and_consistent() {
        let eval = Evaluator::fpsa().evaluate(Benchmark::Mlp500x100, 1);
        assert_eq!(eval.model, "MLP-500-100");
        assert_eq!(eval.measured_weights, 443_000);
        assert!(eval.performance.throughput_samples_per_s > 0.0);
        assert!(eval.spatial_utilization > 0.0 && eval.spatial_utilization <= 1.0);
        assert!(eval.temporal_utilization > 0.0 && eval.temporal_utilization <= 1.0 + 1e-9);
        assert!(eval.peak_density_ops_mm2() >= eval.density_ops_mm2());
    }

    #[test]
    fn duplication_raises_throughput_for_cnns() {
        let evaluator = Evaluator::fpsa();
        let d1 = evaluator.evaluate(Benchmark::LeNet, 1);
        let d16 = evaluator.evaluate(Benchmark::LeNet, 16);
        assert!(
            d16.performance.throughput_samples_per_s
                > 4.0 * d1.performance.throughput_samples_per_s
        );
        // The MLP has no reuse, so duplication does not help it.
        let m1 = evaluator.evaluate(Benchmark::Mlp500x100, 1);
        let m16 = evaluator.evaluate(Benchmark::Mlp500x100, 16);
        assert!(
            (m16.performance.throughput_samples_per_s / m1.performance.throughput_samples_per_s)
                < 1.5
        );
    }

    #[test]
    fn parallel_sweep_matches_sequential_results() {
        let evaluator = Evaluator::fpsa();
        let points = [(Benchmark::Mlp500x100, 1), (Benchmark::LeNet, 4)];
        let parallel = evaluator.evaluate_many(&points);
        let sequential: Vec<ModelEvaluation> = points
            .iter()
            .map(|&(b, d)| evaluator.evaluate(b, d))
            .collect();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn fpsa_density_exceeds_prime_density_on_the_same_model() {
        let fpsa = Evaluator::fpsa().evaluate(Benchmark::LeNet, 4);
        let prime = Evaluator::new(ArchitectureConfig::prime()).evaluate(Benchmark::LeNet, 4);
        assert!(fpsa.density_ops_mm2() > prime.density_ops_mm2() * 5.0);
    }
}
