//! Shared helpers for the FPSA benchmark harness.
//!
//! Every bench binary in `benches/` regenerates one table or figure of the
//! paper: it prints the experiment's table (so that `cargo bench` output can
//! be pasted straight into EXPERIMENTS.md) and then times the underlying
//! experiment code with Criterion.

use std::path::PathBuf;

/// Print an experiment banner followed by its rendered table.
pub fn print_experiment(title: &str, table: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
    println!("{table}");
}

/// The workspace-level `target/experiment-data` directory. Cargo runs bench
/// binaries with the *package* directory as CWD, so a bare relative
/// `target/` would scatter artifacts under `crates/bench/target/` where the
/// CI artifact checks never look; walking up to the directory holding
/// `Cargo.lock` anchors them at the workspace root instead.
fn experiment_dir() -> PathBuf {
    workspace_root().join("target").join("experiment-data")
}

/// The workspace root: the nearest ancestor of the CWD holding `Cargo.lock`.
/// Public so bench binaries can locate checked-in inputs (e.g. the
/// `scenarios/` directory) regardless of Cargo's per-package CWD.
pub fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    for _ in 0..4 {
        if dir.join("Cargo.lock").exists() {
            break;
        }
        if !dir.pop() {
            break;
        }
    }
    dir
}

/// Persist an experiment's structured records next to Criterion's output so
/// the numbers that produced a table can be inspected later.
///
/// Errors are reported but not fatal: benches still run on read-only file
/// systems.
pub fn save_json<T: serde::Serialize>(name: &str, value: &T) {
    let dir = experiment_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("note: could not create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("note: could not write {}: {e}", path.display());
            }
        }
        Err(e) => eprintln!("note: could not serialize {name}: {e}"),
    }
}

/// Persist a pre-rendered experiment artifact under
/// `<root>/target/experiment-data/`. `relative` may contain subdirectories
/// (`workload/steady.md`); parents are created as needed. Errors are
/// reported but not fatal, like [`save_json`].
pub fn save_text(relative: &str, contents: &str) {
    let path = experiment_dir().join(relative);
    if let Some(parent) = path.parent() {
        if let Err(e) = std::fs::create_dir_all(parent) {
            eprintln!("note: could not create {}: {e}", parent.display());
            return;
        }
    }
    if let Err(e) = std::fs::write(&path, contents) {
        eprintln!("note: could not write {}: {e}", path.display());
    }
}

/// Persist a benchmark artifact at the **workspace root** (not under
/// `target/`) — for the artifacts CI pins by path, like `BENCH_exec.json`.
/// The caller supplies the exact file contents (pre-rendered JSON), so the
/// artifact stays machine-parseable regardless of serializer behavior.
///
/// Errors are reported but not fatal, like [`save_json`].
pub fn save_text_at_root(file_name: &str, contents: &str) {
    let path = workspace_root().join(file_name);
    if let Err(e) = std::fs::write(&path, contents) {
        eprintln!("note: could not write {}: {e}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn print_experiment_does_not_panic() {
        print_experiment("Table X", "| a |\n|---|\n| 1 |\n");
    }

    #[test]
    fn save_json_accepts_serializable_values() {
        save_json("bench-selftest", &vec![1, 2, 3]);
    }

    #[test]
    fn experiment_dir_anchors_at_the_workspace_root() {
        // Test binaries also run with the package as CWD, so the resolved
        // directory must sit next to the workspace's Cargo.lock — not
        // inside this crate's own directory.
        let dir = experiment_dir();
        let root = dir
            .parent()
            .and_then(std::path::Path::parent)
            .expect("<root>/target/experiment-data has two ancestors");
        assert!(
            root.join("Cargo.lock").exists(),
            "artifacts must land at the workspace root, got {}",
            dir.display()
        );
        assert_ne!(
            root,
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")),
            "artifacts must not land inside the bench crate"
        );
    }
}
