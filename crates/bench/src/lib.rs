//! Shared helpers for the FPSA benchmark harness.
//!
//! Every bench binary in `benches/` regenerates one table or figure of the
//! paper: it prints the experiment's table (so that `cargo bench` output can
//! be pasted straight into EXPERIMENTS.md) and then times the underlying
//! experiment code with Criterion.

use std::path::PathBuf;

/// Print an experiment banner followed by its rendered table.
pub fn print_experiment(title: &str, table: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
    println!("{table}");
}

/// The workspace-level `target/experiment-data` directory. Cargo runs bench
/// binaries with the *package* directory as CWD, so a bare relative
/// `target/` would scatter artifacts under `crates/bench/target/` where the
/// CI artifact checks never look; walking up to the directory holding
/// `Cargo.lock` anchors them at the workspace root instead.
fn experiment_dir() -> PathBuf {
    workspace_root().join("target").join("experiment-data")
}

/// The workspace root: the nearest ancestor of the CWD holding `Cargo.lock`.
/// Public so bench binaries can locate checked-in inputs (e.g. the
/// `scenarios/` directory) regardless of Cargo's per-package CWD.
pub fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    for _ in 0..4 {
        if dir.join("Cargo.lock").exists() {
            break;
        }
        if !dir.pop() {
            break;
        }
    }
    dir
}

/// Persist an experiment's structured records next to Criterion's output so
/// the numbers that produced a table can be inspected later.
///
/// Errors are reported but not fatal: benches still run on read-only file
/// systems.
pub fn save_json<T: serde::Serialize>(name: &str, value: &T) {
    let dir = experiment_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("note: could not create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("note: could not write {}: {e}", path.display());
            }
        }
        Err(e) => eprintln!("note: could not serialize {name}: {e}"),
    }
}

/// Persist a pre-rendered experiment artifact under
/// `<root>/target/experiment-data/`. `relative` may contain subdirectories
/// (`workload/steady.md`); parents are created as needed. Errors are
/// reported but not fatal, like [`save_json`].
pub fn save_text(relative: &str, contents: &str) {
    let path = experiment_dir().join(relative);
    if let Some(parent) = path.parent() {
        if let Err(e) = std::fs::create_dir_all(parent) {
            eprintln!("note: could not create {}: {e}", parent.display());
            return;
        }
    }
    if let Err(e) = std::fs::write(&path, contents) {
        eprintln!("note: could not write {}: {e}", path.display());
    }
}

/// Persist a benchmark artifact at the **workspace root** (not under
/// `target/`) — for the artifacts CI pins by path, like `BENCH_exec.json`.
/// The caller supplies the exact file contents (pre-rendered JSON), so the
/// artifact stays machine-parseable regardless of serializer behavior.
///
/// Errors are reported but not fatal, like [`save_json`].
pub fn save_text_at_root(file_name: &str, contents: &str) {
    let path = workspace_root().join(file_name);
    if let Err(e) = std::fs::write(&path, contents) {
        eprintln!("note: could not write {}: {e}", path.display());
    }
}

/// The envelope schema every root `BENCH_*.json` artifact declares. Bump
/// when the envelope shape (not a bench's payload) changes.
pub const BENCH_SCHEMA: &str = "fpsa-bench-v1";

/// A deterministic run identifier that needs no `git describe` (bench
/// runs happen in detached worktrees and tarballs where describe output
/// is unavailable or unstable): the FNV-1a hash of the payload itself.
/// The same results always carry the same id, so regenerated artifacts
/// diff clean when nothing moved.
pub fn run_id(payload: &str) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in payload.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    format!("fnv1a-{hash:016x}")
}

/// Wrap a pre-rendered JSON payload in the common versioned envelope
/// (`{schema, git_describe_free_run_id, payload}`) the CI well-formedness
/// checks validate on every root artifact.
pub fn bench_envelope(payload: &str) -> String {
    let payload = payload.trim_end();
    // Indent the payload body so the envelope stays readable; the first
    // line rides on the `"payload":` key itself.
    let mut indented = String::with_capacity(payload.len() + 64);
    for (i, line) in payload.lines().enumerate() {
        if i > 0 {
            indented.push_str("\n  ");
        }
        indented.push_str(line);
    }
    format!(
        "{{\n  \"schema\": \"{}\",\n  \"git_describe_free_run_id\": \"{}\",\n  \"payload\": {}\n}}\n",
        BENCH_SCHEMA,
        run_id(payload),
        indented
    )
}

/// Persist a root `BENCH_*.json` artifact wrapped in the versioned
/// envelope. All four CI-pinned artifacts go through here so the envelope
/// cannot drift per bench. Errors are reported but not fatal, like
/// [`save_json`].
pub fn save_bench_artifact(file_name: &str, payload_json: &str) {
    save_text_at_root(file_name, &bench_envelope(payload_json));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn print_experiment_does_not_panic() {
        print_experiment("Table X", "| a |\n|---|\n| 1 |\n");
    }

    #[test]
    fn save_json_accepts_serializable_values() {
        save_json("bench-selftest", &vec![1, 2, 3]);
    }

    #[test]
    fn the_bench_envelope_is_versioned_and_content_addressed() {
        let payload = "{\n  \"speedup\": 3.5\n}\n";
        let envelope = bench_envelope(payload);
        assert!(envelope.starts_with("{\n  \"schema\": \"fpsa-bench-v1\",\n"));
        assert!(envelope.contains(&format!(
            "\"git_describe_free_run_id\": \"{}\"",
            run_id(payload.trim_end())
        )));
        assert!(envelope.contains("\"payload\": {\n    \"speedup\": 3.5\n  }"));
        // Same payload, same id; different payload, different id.
        assert_eq!(bench_envelope(payload), envelope);
        assert_ne!(run_id("{}"), run_id("{ }"));
        // Balanced braces: the envelope splices, never re-serializes.
        let opens = envelope.matches('{').count();
        assert_eq!(opens, envelope.matches('}').count());
        assert_eq!(opens, 2, "the envelope object plus the payload object");
    }

    #[test]
    fn experiment_dir_anchors_at_the_workspace_root() {
        // Test binaries also run with the package as CWD, so the resolved
        // directory must sit next to the workspace's Cargo.lock — not
        // inside this crate's own directory.
        let dir = experiment_dir();
        let root = dir
            .parent()
            .and_then(std::path::Path::parent)
            .expect("<root>/target/experiment-data has two ancestors");
        assert!(
            root.join("Cargo.lock").exists(),
            "artifacts must land at the workspace root, got {}",
            dir.display()
        );
        assert_ne!(
            root,
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")),
            "artifacts must not land inside the bench crate"
        );
    }
}
