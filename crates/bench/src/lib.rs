//! Shared helpers for the FPSA benchmark harness.
//!
//! Every bench binary in `benches/` regenerates one table or figure of the
//! paper: it prints the experiment's table (so that `cargo bench` output can
//! be pasted straight into EXPERIMENTS.md) and then times the underlying
//! experiment code with Criterion.

use std::path::PathBuf;

/// Print an experiment banner followed by its rendered table.
pub fn print_experiment(title: &str, table: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
    println!("{table}");
}

/// Persist an experiment's structured records next to Criterion's output so
/// the numbers that produced a table can be inspected later.
///
/// Errors are reported but not fatal: benches still run on read-only file
/// systems.
pub fn save_json<T: serde::Serialize>(name: &str, value: &T) {
    let dir = PathBuf::from("target").join("experiment-data");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("note: could not create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("note: could not write {}: {e}", path.display());
            }
        }
        Err(e) => eprintln!("note: could not serialize {name}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn print_experiment_does_not_panic() {
        print_experiment("Table X", "| a |\n|---|\n| 1 |\n");
    }

    #[test]
    fn save_json_accepts_serializable_values() {
        save_json("bench-selftest", &vec![1, 2, 3]);
    }
}
