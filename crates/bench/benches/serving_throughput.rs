//! Serving throughput of the `fpsa_serve` engine: dynamic batching ×
//! replica sharding vs the bind-per-request direct path, on the MNIST-scale
//! zoo benchmarks. Emits `BENCH_serving.json` next to Criterion's output.

use criterion::{criterion_group, criterion_main, Criterion};
use fpsa_bench::{print_experiment, save_json};
use fpsa_core::experiments::serving;
use fpsa_nn::zoo::Benchmark;

fn bench(c: &mut Criterion) {
    let reports = serving::run();
    print_experiment(
        "Serving throughput: fpsa_serve vs bind-per-request direct path",
        &serving::to_table(&reports),
    );
    save_json("BENCH_serving", &reports);

    let mut group = c.benchmark_group("serving");
    group.sample_size(10);
    group.bench_function("mlp_500_100_4x8_sweep_small", |b| {
        b.iter(|| serving::run_with(&[Benchmark::Mlp500x100], &[4], &[(8, 200)], 64))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
