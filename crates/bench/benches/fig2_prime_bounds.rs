//! Regenerates Figure 2: PRIME peak / ideal / real performance vs area.

use criterion::{criterion_group, criterion_main, Criterion};
use fpsa_bench::{print_experiment, save_json};
use fpsa_core::experiments::fig2;

fn bench(c: &mut Criterion) {
    let fig = fig2::run();
    print_experiment(
        "Figure 2: PRIME bounds for VGG16 (peak / ideal / real)",
        &fig2::to_table(&fig),
    );
    save_json("fig2", &fig);
    let mut group = c.benchmark_group("fig2");
    group.sample_size(20);
    group.bench_function("prime_bounds_sweep", |b| b.iter(fig2::run));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
