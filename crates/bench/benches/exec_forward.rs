//! Per-sample forward-pass cost of the bytecode executor vs the retired
//! tile-program interpreter, bind-amortized on one core, on the two
//! deterministic paper models (MLP-500-100 and LeNet).
//!
//! Two bytecode numbers are reported: single-sample `run_into`, and the
//! serving hot path `run_batch_into`, whose instruction-major dispatch
//! streams each weight tile from memory once per batch. The acceptance
//! speedup is interpreter vs the batched path — both are bind-amortized
//! wall-clock on the same core, and the batched results are asserted
//! bit-identical to per-sample runs by the serving determinism suite.
//!
//! Emits `BENCH_exec.json` at the **workspace root** — hand-rendered JSON so
//! the `exec-perf` CI job can parse it and pin `min_speedup >=
//! target_speedup` (3×), giving the repo's perf trajectory a tracked
//! execution datapoint.

use criterion::{criterion_group, criterion_main, Criterion};
use fpsa_bench::{print_experiment, save_bench_artifact};
use fpsa_core::validate::sample_inputs;
use fpsa_core::Compiler;
use fpsa_nn::{zoo, ComputationalGraph, GraphParameters};
use fpsa_sim::{ExecArena, Executor, Precision};
use std::fmt::Write as _;
use std::time::Instant;

struct ExecRow {
    model: String,
    interpreter_ns_per_sample: f64,
    bytecode_ns_per_sample: f64,
    bytecode_batch_ns_per_sample: f64,
    speedup: f64,
}

const BATCH: usize = 8;
const REPS: usize = 12;
const TARGET_SPEEDUP: f64 = 3.0;

/// Fastest batch over `REPS` repetitions, in ns per sample. Warm-up grows
/// the arena and output buffers first, so both paths run allocation-free.
fn best_ns_per_sample<F: FnMut(&[Vec<f32>])>(inputs: &[Vec<f32>], mut run: F) -> f64 {
    run(inputs);
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        run(inputs);
        best = best.min(start.elapsed().as_nanos() as f64 / inputs.len() as f64);
    }
    best
}

fn measure(graph: &ComputationalGraph) -> (ExecRow, Executor, Vec<Vec<f32>>) {
    let params = GraphParameters::seeded(graph, 0xE8EC);
    let compiled = Compiler::fpsa()
        .compile(graph)
        .unwrap_or_else(|e| panic!("{}: compile failed: {e}", graph.name));
    let exec = compiled
        .executor(graph, &params, &Precision::Float)
        .unwrap_or_else(|e| panic!("{}: bind failed: {e}", graph.name));
    let inputs = sample_inputs(graph, BATCH, 0xE8EC);

    let mut arena = ExecArena::default();
    let mut out = Vec::new();
    let bytecode = best_ns_per_sample(&inputs, |xs| {
        for x in xs {
            exec.run_into(x, &mut arena, &mut out)
                .expect("bytecode run");
        }
    });
    let mut arena = ExecArena::default();
    let mut outs = Vec::new();
    let batched = best_ns_per_sample(&inputs, |xs| {
        exec.run_batch_into(xs, &mut arena, &mut outs)
            .expect("batched run");
    });
    let mut arena = ExecArena::default();
    let mut out = Vec::new();
    let interpreter = best_ns_per_sample(&inputs, |xs| {
        for x in xs {
            exec.run_interpreted_into(x, &mut arena, &mut out)
                .expect("interpreter run");
        }
    });

    let row = ExecRow {
        model: graph.name.clone(),
        interpreter_ns_per_sample: interpreter,
        bytecode_ns_per_sample: bytecode,
        bytecode_batch_ns_per_sample: batched,
        speedup: interpreter / batched,
    };
    (row, exec, inputs)
}

fn to_table(rows: &[ExecRow]) -> String {
    let mut t = String::from(
        "| model | interpreter ns/sample | bytecode ns/sample | batched ns/sample | speedup |\n|---|---|---|---|---|\n",
    );
    for r in rows {
        let _ = writeln!(
            t,
            "| {} | {:.0} | {:.0} | {:.0} | {:.2}x |",
            r.model,
            r.interpreter_ns_per_sample,
            r.bytecode_ns_per_sample,
            r.bytecode_batch_ns_per_sample,
            r.speedup
        );
    }
    t
}

/// Hand-rendered JSON report: the vendored serde shim serializes through
/// `Debug`, which jq cannot parse, so the CI-pinned artifact is formatted
/// explicitly here.
fn to_json(rows: &[ExecRow], min_speedup: f64) -> String {
    let mut j = String::from("{\n");
    let _ = writeln!(j, "  \"target_speedup\": {TARGET_SPEEDUP:.1},");
    let _ = writeln!(j, "  \"batch\": {BATCH},");
    let _ = writeln!(j, "  \"min_speedup\": {min_speedup:.4},");
    j.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(j, "    {{");
        let _ = writeln!(j, "      \"model\": \"{}\",", r.model);
        let _ = writeln!(
            j,
            "      \"interpreter_ns_per_sample\": {:.1},",
            r.interpreter_ns_per_sample
        );
        let _ = writeln!(
            j,
            "      \"bytecode_ns_per_sample\": {:.1},",
            r.bytecode_ns_per_sample
        );
        let _ = writeln!(
            j,
            "      \"bytecode_batch_ns_per_sample\": {:.1},",
            r.bytecode_batch_ns_per_sample
        );
        let _ = writeln!(j, "      \"speedup\": {:.4}", r.speedup);
        let _ = writeln!(j, "    }}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    j.push_str("  ]\n}\n");
    j
}

fn bench(c: &mut Criterion) {
    let mut rows = Vec::new();
    let mut timed = Vec::new();
    for graph in [zoo::mlp_500_100(), zoo::lenet()] {
        let (row, exec, inputs) = measure(&graph);
        rows.push(row);
        timed.push((graph.name.clone(), exec, inputs));
    }
    print_experiment(
        "Forward-pass execution: bind-time bytecode vs tile-program interpreter",
        &to_table(&rows),
    );
    let min_speedup = rows.iter().map(|r| r.speedup).fold(f64::INFINITY, f64::min);
    save_bench_artifact("BENCH_exec.json", &to_json(&rows, min_speedup));

    let mut group = c.benchmark_group("exec_forward");
    group.sample_size(10);
    for (name, exec, inputs) in &timed {
        let mut arena = ExecArena::default();
        let mut outs = Vec::new();
        group.bench_function(format!("{name}_bytecode_batch").as_str(), |b| {
            b.iter(|| {
                exec.run_batch_into(inputs, &mut arena, &mut outs)
                    .expect("run");
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
