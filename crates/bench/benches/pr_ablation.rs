//! Physical-design ablation: what the timing-driven engine buys over the
//! seed implementations it replaced.
//!
//! * **Placement** — the incremental annealer (cached per-net bounding
//!   boxes, adaptive cooling) against a faithful reimplementation of the
//!   seed annealer (per-move recomputation of the affected nets' before/after
//!   cost, fixed geometric cooling) at the same `quality()` move budget: the
//!   incremental engine must match or beat the seed's final HPWL while
//!   spending measurably less time per move.
//! * **Routing** — PathFinder negotiation against a single congestion-aware
//!   pass on the Figure 8 netlists: the negotiated routing must need at most
//!   the single pass's channel width.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fpsa_arch::{ArchitectureConfig, BlockKind, Fabric};
use fpsa_bench::{print_experiment, save_json};
use fpsa_mapper::{AllocationPolicy, Mapper, Netlist, NetlistBlock};
use fpsa_nn::zoo::Benchmark;
use fpsa_placeroute::{Placer, PlacerConfig, Router, RouterConfig, WarmStart};
use fpsa_synthesis::{NeuralSynthesizer, SynthesisConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn netlist_for(benchmark: Benchmark, duplication: u64) -> Netlist {
    let graph = NeuralSynthesizer::new(SynthesisConfig::fpsa_default())
        .synthesize(&benchmark.build())
        .expect("zoo models synthesize");
    Mapper::new(64, AllocationPolicy::DuplicationDegree(duplication))
        .map(&graph)
        .netlist
}

/// The seed annealer's tuning: 2000 moves over 60 geometric steps was the
/// repository's quality() preset before the incremental engine landed.
struct SeedConfig {
    seed: u64,
    moves_per_temperature: usize,
    temperature_steps: usize,
    initial_temperature_fraction: f64,
}

impl SeedConfig {
    fn quality() -> Self {
        SeedConfig {
            seed: 0xF95A,
            moves_per_temperature: 2000,
            temperature_steps: 60,
            initial_temperature_fraction: 0.05,
        }
    }
}

/// The seed repository's annealer, kept verbatim as the ablation baseline:
/// every move recomputes the affected nets' HPWL before *and* after the
/// swap (no cached bounding boxes), under a fixed geometric schedule.
/// Returns the final HPWL and the number of moves attempted.
fn seed_anneal(netlist: &Netlist, fabric: &Fabric, config: &SeedConfig) -> (f64, u64) {
    let dims = fabric.dims;
    let kind_of = |b: &NetlistBlock| match b {
        NetlistBlock::Pe { .. } => BlockKind::Pe,
        NetlistBlock::Smb { .. } => BlockKind::Smb,
        NetlistBlock::Clb { .. } => BlockKind::Clb,
    };
    let mut free: std::collections::HashMap<BlockKind, Vec<usize>> = BlockKind::all()
        .iter()
        .map(|&k| (k, fabric.slots_of(k).into_iter().rev().collect()))
        .collect();
    let mut positions: Vec<(usize, usize)> = Vec::with_capacity(netlist.len());
    for block in netlist.blocks() {
        let kind = kind_of(block);
        let slot = free
            .get_mut(&kind)
            .and_then(Vec::pop)
            .or_else(|| free.get_mut(&BlockKind::Pe).and_then(Vec::pop))
            .or_else(|| free.get_mut(&BlockKind::Smb).and_then(Vec::pop))
            .or_else(|| free.get_mut(&BlockKind::Clb).and_then(Vec::pop))
            .expect("fabric fits the netlist");
        positions.push(dims.coord(slot));
    }

    let mut nets_of_block: Vec<Vec<usize>> = vec![Vec::new(); netlist.len()];
    for (i, net) in netlist.nets().iter().enumerate() {
        nets_of_block[net.source].push(i);
        for &s in &net.sinks {
            nets_of_block[s].push(i);
        }
    }
    let hpwl = |positions: &[(usize, usize)], net: &fpsa_mapper::Net| -> f64 {
        let mut min_r = usize::MAX;
        let mut max_r = 0usize;
        let mut min_c = usize::MAX;
        let mut max_c = 0usize;
        for &b in std::iter::once(&net.source).chain(net.sinks.iter()) {
            let (r, c) = positions[b];
            min_r = min_r.min(r);
            max_r = max_r.max(r);
            min_c = min_c.min(c);
            max_c = max_c.max(c);
        }
        (max_r - min_r) as f64 + (max_c - min_c) as f64
    };

    let cost: f64 = netlist.nets().iter().map(|n| hpwl(&positions, n)).sum();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut temperature = (cost * config.initial_temperature_fraction).max(1.0);
    let mut attempted = 0u64;
    let mut by_kind: std::collections::BTreeMap<BlockKind, Vec<usize>> = Default::default();
    for (i, b) in netlist.blocks().iter().enumerate() {
        by_kind.entry(kind_of(b)).or_default().push(i);
    }
    for _ in 0..config.temperature_steps {
        for _ in 0..config.moves_per_temperature {
            let kinds: Vec<&BlockKind> = by_kind
                .iter()
                .filter(|(_, v)| v.len() >= 2)
                .map(|(k, _)| k)
                .collect();
            if kinds.is_empty() {
                break;
            }
            let kind = *kinds[rng.gen_range(0..kinds.len())];
            let members = &by_kind[&kind];
            let a = members[rng.gen_range(0..members.len())];
            let b = members[rng.gen_range(0..members.len())];
            if a == b {
                continue;
            }
            attempted += 1;
            let mut affected: Vec<usize> = nets_of_block[a]
                .iter()
                .chain(nets_of_block[b].iter())
                .copied()
                .collect();
            affected.sort_unstable();
            affected.dedup();
            let before: f64 = affected
                .iter()
                .map(|&n| hpwl(&positions, &netlist.nets()[n]))
                .sum();
            positions.swap(a, b);
            let after: f64 = affected
                .iter()
                .map(|&n| hpwl(&positions, &netlist.nets()[n]))
                .sum();
            let delta = after - before;
            let accept = delta <= 0.0 || rng.gen::<f64>() < (-delta / temperature.max(1e-9)).exp();
            if !accept {
                positions.swap(a, b);
            }
        }
        temperature *= 0.9;
    }
    let final_hpwl = netlist.nets().iter().map(|n| hpwl(&positions, n)).sum();
    (final_hpwl, attempted)
}

fn bench(c: &mut Criterion) {
    let arch = ArchitectureConfig::fpsa();
    let netlist = netlist_for(Benchmark::LeNet, 4);
    let fabric = Fabric::with_pe_count(arch.clone(), netlist.len());

    // Comparison pass: each engine at its own quality preset (the seed's
    // historical 2000x60 schedule vs the incremental engine's quality()),
    // measuring final HPWL and wall-clock per attempted move.
    let mut quality_cfg = PlacerConfig::quality();
    quality_cfg.timing_weight = 0.0; // compare raw HPWL on equal terms
    let start = std::time::Instant::now();
    let incremental = Placer::new(quality_cfg).place(&netlist, &fabric);
    let incremental_wall = start.elapsed();
    let seed_cfg = SeedConfig::quality();
    let start = std::time::Instant::now();
    let (seed_hpwl, seed_moves) = seed_anneal(&netlist, &fabric, &seed_cfg);
    let seed_wall = start.elapsed();
    let incremental_ns_per_move =
        incremental_wall.as_nanos() as f64 / incremental.quality().moves_evaluated.max(1) as f64;
    let seed_ns_per_move = seed_wall.as_nanos() as f64 / seed_moves.max(1) as f64;
    print_experiment(
        "P&R ablation: incremental vs seed annealer (LeNet x4, each at its quality preset)",
        &format!(
            "incremental HPWL {:.0}  ({} moves, {:.0} ns/move)\nseed HPWL        {:.0}  ({} moves, {:.0} ns/move)\nHPWL ratio {:.3} (<= 1 means equal-or-better), per-move speedup {:.2}x",
            incremental.wirelength(),
            incremental.quality().moves_evaluated,
            incremental_ns_per_move,
            seed_hpwl,
            seed_moves,
            seed_ns_per_move,
            incremental.wirelength() / seed_hpwl.max(1.0),
            seed_ns_per_move / incremental_ns_per_move.max(1.0),
        ),
    );
    assert!(
        incremental.wirelength() <= seed_hpwl,
        "incremental placement must match or beat the seed annealer's HPWL"
    );
    // Wall-clock comparisons are machine-dependent, so a slowdown only
    // warns (the HPWL assertion above is the deterministic gate).
    if incremental_ns_per_move >= seed_ns_per_move {
        eprintln!(
            "warning: incremental moves ({incremental_ns_per_move:.0} ns) were not cheaper than \
             seed moves ({seed_ns_per_move:.0} ns) on this run"
        );
    }

    // Warm-start ablation: seeding the annealer from a donor placement (the
    // compile cache's near-miss path) must reach equal-or-better HPWL than
    // the cold anneal in at most half the move evaluations.
    let warm_seed = WarmStart::from_placement(&netlist, &incremental);
    let start = std::time::Instant::now();
    let warm = Placer::new(quality_cfg).place_seeded(&netlist, &fabric, Some(&warm_seed));
    let warm_wall = start.elapsed();
    print_experiment(
        "P&R ablation: warm-started anneal vs cold anneal (LeNet x4, quality preset)",
        &format!(
            "cold HPWL {:.0}  ({} moves, {} ms)\nwarm HPWL {:.0}  ({} moves, {} ms, {} blocks seeded)",
            incremental.wirelength(),
            incremental.quality().moves_evaluated,
            incremental_wall.as_millis(),
            warm.wirelength(),
            warm.quality().moves_evaluated,
            warm_wall.as_millis(),
            warm.quality().seeded_blocks,
        ),
    );
    assert!(warm.quality().warm_started);
    assert!(
        warm.wirelength() <= incremental.wirelength(),
        "warm-started placement must not regress the donor's HPWL"
    );
    assert!(
        warm.quality().moves_evaluated <= incremental.quality().moves_evaluated / 2,
        "warm start must cut the move budget at least in half"
    );

    let mut width_rows = Vec::new();
    for benchmark in [
        Benchmark::Mlp500x100,
        Benchmark::LeNet,
        Benchmark::CifarVgg17,
    ] {
        let model_netlist = netlist_for(benchmark, 1);
        let model_fabric = Fabric::with_pe_count(arch.clone(), model_netlist.len());
        let placement = Placer::new(PlacerConfig::fast()).place(&model_netlist, &model_fabric);
        let negotiated = Router::new(arch.routing).route(&model_netlist, &placement);
        let single = Router::with_config(arch.routing, RouterConfig::single_pass())
            .route(&model_netlist, &placement);
        width_rows.push(format!(
            "{:<12} single-pass width {:>4}  negotiated width {:>4}  (iterations {})",
            benchmark.name(),
            single.required_channel_width(),
            negotiated.required_channel_width(),
            negotiated.iterations,
        ));
        assert!(
            negotiated.required_channel_width() <= single.required_channel_width(),
            "{}: negotiation must not need more tracks than the single pass",
            benchmark.name()
        );
    }
    print_experiment(
        "P&R ablation: PathFinder negotiation vs single congestion-aware pass",
        &width_rows.join("\n"),
    );
    save_json(
        "pr_ablation",
        &(incremental.quality().clone(), seed_hpwl, width_rows.clone()),
    );

    // Timed passes: per-move cost of both annealers at the same budget, the
    // two router modes, and the full minimum-width search.
    let mut group = c.benchmark_group("pr_ablation");
    group.sample_size(10);
    let fast = PlacerConfig::fast();
    group.bench_function("place_incremental_fast", |b| {
        b.iter(|| Placer::new(fast).place(&netlist, &fabric))
    });
    group.bench_function("place_seed_reference_quality", |b| {
        let seed_cfg = SeedConfig::quality();
        b.iter(|| seed_anneal(&netlist, &fabric, &seed_cfg))
    });
    group.bench_function("place_incremental_quality", |b| {
        let quality = PlacerConfig::quality();
        b.iter(|| Placer::new(quality).place(&netlist, &fabric))
    });
    let placement = Placer::new(fast).place(&netlist, &fabric);
    for (label, config) in [
        ("negotiated", RouterConfig::negotiated()),
        ("single_pass", RouterConfig::single_pass()),
    ] {
        group.bench_with_input(
            BenchmarkId::new("route_lenet_x4", label),
            &config,
            |b, config| {
                let router = Router::with_config(arch.routing, *config);
                b.iter(|| router.route(&netlist, &placement))
            },
        );
    }
    group.bench_function("minimum_channel_width_lenet_x4", |b| {
        let router = Router::new(arch.routing);
        b.iter(|| router.minimum_channel_width(&netlist, &placement))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
