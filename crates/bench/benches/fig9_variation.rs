//! Regenerates Figure 9: splice vs add accuracy under device variation.

use criterion::{criterion_group, criterion_main, Criterion};
use fpsa_bench::{print_experiment, save_json};
use fpsa_core::experiments::fig9;
use fpsa_device::variation::CellVariation;

fn bench(c: &mut Criterion) {
    let fig = fig9::run();
    print_experiment(
        &format!(
            "Figure 9: splice vs add under measured variation (full-precision accuracy {:.3})",
            fig.full_precision_accuracy
        ),
        &fig9::to_table(&fig),
    );
    save_json("fig9", &fig);
    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);
    group.bench_function("variation_sweep_small", |b| {
        b.iter(|| fig9::run_with(CellVariation::measured(), &[2, 8], 1))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
