//! The telemetry overhead pin: `Executor::run_batch_into` (whose entry
//! carries the tracing bracket — one relaxed mode load and a branch when
//! tracing is off) vs `run_batch_into_untraced` (the same body with no
//! bracket at all), on the paper-scale MLP-500-100 forward pass.
//!
//! The contract from the observability design: **disabled** telemetry
//! costs at most 2% on the executor hot path. The two variants are timed
//! in interleaved rounds (so frequency scaling and cache state drift hit
//! both equally) and compared on medians, which a single descheduled
//! round cannot move.
//!
//! Emits `BENCH_obs.json` at the workspace root — the `obs` CI job pins
//! `overhead_ratio <= target_ratio`.

use criterion::{criterion_group, criterion_main, Criterion};
use fpsa_bench::{print_experiment, save_bench_artifact};
use fpsa_core::validate::sample_inputs;
use fpsa_core::Compiler;
use fpsa_nn::zoo;
use fpsa_obs::{Mode, Tracer};
use fpsa_sim::{ExecArena, Executor, Precision};
use std::fmt::Write as _;
use std::time::Instant;

const BATCH: usize = 8;
const ROUNDS: usize = 31;
const TARGET_RATIO: f64 = 1.02;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    xs[xs.len() / 2]
}

fn time_ns_per_sample<F: FnMut()>(n_samples: usize, mut run: F) -> f64 {
    let start = Instant::now();
    run();
    start.elapsed().as_nanos() as f64 / n_samples as f64
}

fn bench(c: &mut Criterion) {
    // The pin measures the *disabled* path: this is the mode every
    // latency-sensitive deployment runs in.
    assert_eq!(Tracer::global().mode(), Mode::Off);

    let graph = zoo::mlp_500_100();
    let params = fpsa_nn::GraphParameters::seeded(&graph, 0xE8EC);
    let compiled = Compiler::fpsa().compile(&graph).expect("MLP compiles");
    let exec: Executor = compiled
        .executor(&graph, &params, &Precision::Float)
        .expect("MLP binds");
    let inputs = sample_inputs(&graph, BATCH, 0xE8EC);

    let mut arena = ExecArena::default();
    let mut outs = Vec::new();
    // Warm-up grows the arena and output buffers; both paths then run
    // allocation-free.
    exec.run_batch_into(&inputs, &mut arena, &mut outs)
        .expect("warmup");

    let mut traced = Vec::with_capacity(ROUNDS);
    let mut untraced = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        untraced.push(time_ns_per_sample(BATCH, || {
            exec.run_batch_into_untraced(&inputs, &mut arena, &mut outs)
                .expect("untraced run");
        }));
        traced.push(time_ns_per_sample(BATCH, || {
            exec.run_batch_into(&inputs, &mut arena, &mut outs)
                .expect("traced run");
        }));
    }
    let traced_ns = median(traced);
    let untraced_ns = median(untraced);
    let ratio = traced_ns / untraced_ns;

    let mut table = String::from("| path | ns/sample |\n|---|---|\n");
    let _ = writeln!(table, "| no-obs baseline | {untraced_ns:.0} |");
    let _ = writeln!(table, "| obs disabled | {traced_ns:.0} |");
    let _ = writeln!(table, "| ratio | {ratio:.4} (target <= {TARGET_RATIO}) |");
    print_experiment(
        "Telemetry overhead: disabled tracing on the executor hot path",
        &table,
    );

    let mut j = String::from("{\n");
    let _ = writeln!(j, "  \"model\": \"{}\",", graph.name);
    let _ = writeln!(j, "  \"batch\": {BATCH},");
    let _ = writeln!(j, "  \"rounds\": {ROUNDS},");
    let _ = writeln!(j, "  \"untraced_ns_per_sample\": {untraced_ns:.1},");
    let _ = writeln!(j, "  \"traced_off_ns_per_sample\": {traced_ns:.1},");
    let _ = writeln!(j, "  \"overhead_ratio\": {ratio:.4},");
    let _ = writeln!(j, "  \"target_ratio\": {TARGET_RATIO}");
    j.push_str("}\n");
    save_bench_artifact("BENCH_obs.json", &j);

    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(10);
    group.bench_function("mlp_500_100_obs_disabled", |b| {
        b.iter(|| {
            exec.run_batch_into(&inputs, &mut arena, &mut outs)
                .expect("run");
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
