//! The fleet-serving comparison: co-located multi-tenant fleet vs
//! dedicated single-model engines on the checked-in mixed-zoo trace, and
//! the CI-pinned `BENCH_fleet.json`.
//!
//! For `scenarios/fleet/fleet-zoo.scenario` (hot/cold model skew, two
//! tenant classes, a deliberately saturating arrival rate) the driver in
//! `fpsa_fleet::experiments::fleet` spends the same number of fabrics two
//! ways — every model co-located on every fabric with room, vs one model
//! per fabric — and compares them on the deterministic virtual clock. The
//! `fleet` CI job parses the artifact and pins `virtual_speedup > 1` and
//! `bit_identical == true`; wall-clock throughputs of the real engines are
//! recorded as advisory context, never pinned.

use criterion::{criterion_group, criterion_main, Criterion};
use fpsa_bench::{print_experiment, save_bench_artifact};
use fpsa_fleet::experiments::fleet::{checked_in_zoo, measure_dedicated, run, FleetComparison};
use fpsa_workload::{simulate_fleet, FleetPolicy, TraceRecorder};
use std::fmt::Write as _;

fn to_table(c: &FleetComparison, dedicated_measured_rps: f64) -> String {
    let mut t = String::from("| metric | co-located fleet | dedicated fabrics |\n|---|---|---|\n");
    let _ = writeln!(
        t,
        "| virtual throughput (req/s) | {:.0} | {:.0} |",
        c.fleet_virtual_rps, c.dedicated_virtual_rps
    );
    let _ = writeln!(
        t,
        "| virtual makespan (ms) | {:.1} | {:.1} |",
        c.fleet_makespan_us as f64 / 1_000.0,
        c.dedicated_makespan_us as f64 / 1_000.0
    );
    let _ = writeln!(
        t,
        "| measured throughput (req/s, advisory) | {:.0} | {:.0} |",
        c.fleet_measured_rps, dedicated_measured_rps
    );
    let _ = writeln!(t, "| virtual speedup | {:.2}x | — |", c.virtual_speedup);
    let _ = writeln!(
        t,
        "| placements over {} fabrics | {} | {} |",
        c.fabrics,
        c.placements,
        c.models.len()
    );
    let _ = writeln!(
        t,
        "| bit-identical to direct execution | {} | — |",
        if c.bit_identical { "yes" } else { "NO" }
    );
    t
}

/// Hand-rendered JSON (the vendored serde facade cannot produce strict
/// JSON), parsed and pinned by the `fleet` CI job.
fn to_json(c: &FleetComparison, dedicated_measured_rps: f64) -> String {
    let mut j = String::from("{\n");
    let _ = writeln!(j, "  \"scenario\": \"{}\",", c.scenario);
    let _ = writeln!(j, "  \"requests\": {},", c.requests);
    let _ = writeln!(j, "  \"trace_fingerprint\": \"{:016x}\",", c.fingerprint);
    let _ = writeln!(j, "  \"fabrics\": {},", c.fabrics);
    let models = c
        .models
        .iter()
        .map(|m| format!("\"{m}\""))
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(j, "  \"models\": [{models}],");
    let _ = writeln!(j, "  \"tenants\": {},", c.tenants);
    let _ = writeln!(j, "  \"placements\": {},", c.placements);
    let _ = writeln!(j, "  \"fleet_virtual_rps\": {:.3},", c.fleet_virtual_rps);
    let _ = writeln!(
        j,
        "  \"dedicated_virtual_rps\": {:.3},",
        c.dedicated_virtual_rps
    );
    let _ = writeln!(j, "  \"virtual_speedup\": {:.5},", c.virtual_speedup);
    let _ = writeln!(j, "  \"fleet_makespan_us\": {},", c.fleet_makespan_us);
    let _ = writeln!(
        j,
        "  \"dedicated_makespan_us\": {},",
        c.dedicated_makespan_us
    );
    let p99s = c
        .tenant_virtual_p99_us
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(j, "  \"tenant_virtual_p99_us\": [{p99s}],");
    let _ = writeln!(j, "  \"fleet_measured_rps\": {:.1},", c.fleet_measured_rps);
    let _ = writeln!(
        j,
        "  \"dedicated_measured_rps\": {dedicated_measured_rps:.1},"
    );
    let _ = writeln!(j, "  \"bind_hits\": {},", c.bind_hits);
    let _ = writeln!(j, "  \"bind_misses\": {},", c.bind_misses);
    let _ = writeln!(j, "  \"sheds\": {},", c.sheds);
    let _ = writeln!(j, "  \"bit_identical\": {}", c.bit_identical);
    j.push_str("}\n");
    j
}

fn bench(c: &mut Criterion) {
    let scenario = checked_in_zoo();
    let comparison = run(&scenario, scenario.models.len());
    let dedicated_measured_rps = measure_dedicated(&scenario);
    assert!(
        comparison.bit_identical,
        "fleet outputs diverged from direct execution"
    );

    print_experiment(
        "Fleet serving: co-located zoo vs dedicated single-model fabrics",
        &to_table(&comparison, dedicated_measured_rps),
    );
    save_bench_artifact(
        "BENCH_fleet.json",
        &to_json(&comparison, dedicated_measured_rps),
    );

    // Criterion timing: the fleet virtual replay of the full zoo trace —
    // the deterministic half everything above is pinned on.
    let trace = TraceRecorder::new(&scenario)
        .record()
        .expect("scenario is valid");
    let policy = FleetPolicy {
        per_fabric: scenario.policy,
        hosted: vec![(0..scenario.models.len() as u16).collect(); scenario.models.len()],
        tenant_weights: (0..scenario.tenants.len() as u16).map(|t| (t, 1)).collect(),
    };
    let mut group = c.benchmark_group("fleet_serving");
    group.sample_size(10);
    group.bench_function("fleet_zoo_virtual_sim", |b| {
        b.iter(|| simulate_fleet(&trace, &policy, scenario.service))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
