//! Ablation benchmarks for the software stack itself: where compile time
//! goes stage by stage — read straight from the instrumented pipeline's
//! `StageTrace` instead of re-timing each step by hand — and how the
//! duplication degree and channel width affect the result. These are the
//! design-choice ablations called out in DESIGN.md rather than paper figures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fpsa_bench::{print_experiment, save_json};
use fpsa_core::compiler::Compiler;
use fpsa_core::pipeline::{CompileStage, MapStage, SynthesizeStage};
use fpsa_nn::zoo;
use fpsa_placeroute::Router;

fn bench(c: &mut Criterion) {
    let lenet = zoo::lenet();

    // One instrumented compilation provides the per-stage breakdown that
    // this ablation used to reconstruct by timing each step separately.
    let compiled = Compiler::fpsa().compile(&lenet).unwrap();
    print_experiment(
        "Compiler-stage ablation: LeNet wall-clock by pipeline stage",
        &compiled.trace.to_table(),
    );
    save_json("ablation_compiler_stages", &compiled.trace);

    let arch = compiled.arch.clone();
    let synthesize = SynthesizeStage::for_architecture(&arch);
    let core = synthesize.run(&lenet).unwrap();

    let mut group = c.benchmark_group("compiler_stages");
    group.sample_size(20);
    group.bench_function("compile_lenet_full_pipeline", |b| {
        b.iter(|| Compiler::fpsa().compile(&lenet).unwrap())
    });
    group.bench_function("synthesize_lenet", |b| {
        b.iter(|| synthesize.run(&lenet).unwrap())
    });
    for dup in [1u64, 16] {
        group.bench_with_input(BenchmarkId::new("map_lenet_dup", dup), &dup, |b, &dup| {
            let map = MapStage::new(&arch, dup);
            b.iter(|| map.run(&core).unwrap())
        });
    }
    // Channel width is a routing-architecture knob beneath the PlaceRoute
    // stage; ablate it against the placement of the compiled model.
    let mapping = &compiled.mapping;
    let placement = &compiled
        .physical
        .as_ref()
        .expect("LeNet is small enough for P&R")
        .placement;
    for width in [128usize, 512] {
        group.bench_with_input(
            BenchmarkId::new("route_lenet_width", width),
            &width,
            |b, &w| {
                let mut routing = arch.routing;
                routing.channel_width = w;
                b.iter(|| Router::new(routing).route(&mapping.netlist, placement))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
