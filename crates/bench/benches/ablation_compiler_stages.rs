//! Ablation benchmarks for the software stack itself: how long each stage of
//! the compiler takes (synthesis, mapping, placement & routing) and how the
//! duplication degree and channel width affect the result. These are the
//! design-choice ablations called out in DESIGN.md rather than paper figures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fpsa_arch::{ArchitectureConfig, Fabric};
use fpsa_mapper::{AllocationPolicy, Mapper};
use fpsa_nn::zoo;
use fpsa_placeroute::{Placer, PlacerConfig, Router};
use fpsa_synthesis::{NeuralSynthesizer, SynthesisConfig};

fn bench(c: &mut Criterion) {
    let synthesizer = NeuralSynthesizer::new(SynthesisConfig::fpsa_default());
    let lenet = zoo::lenet();
    let core = synthesizer.synthesize(&lenet).unwrap();

    let mut group = c.benchmark_group("compiler_stages");
    group.sample_size(20);
    group.bench_function("synthesize_lenet", |b| {
        b.iter(|| synthesizer.synthesize(&lenet).unwrap())
    });
    for dup in [1u64, 16] {
        group.bench_with_input(BenchmarkId::new("map_lenet_dup", dup), &dup, |b, &dup| {
            let mapper = Mapper::new(64, AllocationPolicy::DuplicationDegree(dup));
            b.iter(|| mapper.map(&core))
        });
    }
    let mapping = Mapper::new(64, AllocationPolicy::DuplicationDegree(1)).map(&core);
    let config = ArchitectureConfig::fpsa();
    let fabric = Fabric::with_pe_count(config.clone(), mapping.netlist.len());
    group.bench_function("place_lenet", |b| {
        b.iter(|| Placer::new(PlacerConfig::fast()).place(&mapping.netlist, &fabric))
    });
    let placement = Placer::new(PlacerConfig::fast()).place(&mapping.netlist, &fabric);
    for width in [128usize, 512] {
        group.bench_with_input(BenchmarkId::new("route_lenet_width", width), &width, |b, &w| {
            let mut routing = config.routing;
            routing.channel_width = w;
            b.iter(|| Router::new(routing).route(&mapping.netlist, &placement))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
