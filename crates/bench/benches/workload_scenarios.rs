//! The workload scenario suite: replay every checked-in scenario, compare
//! full-trace vs phase-sampled statistics, and write the per-scenario
//! reports plus the CI-pinned `BENCH_workload.json`.
//!
//! Per scenario (`scenarios/*.scenario`): record the trace, replay it in
//! full under the deterministic virtual clock, cluster it SimPoint-style and
//! replay only the weighted representatives, then render markdown + JSON
//! reports into `target/experiment-data/workload/`. The root artifact
//! aggregates one row per scenario; the `workload` CI job parses it and pins
//! that every scenario stays within the phase-sampling tolerance and that
//! every ≥100k-request scenario samples ≤ 1/10 of its events.
//!
//! One real-engine smoke replay (MLP-500-100 behind a `ServeEngine`) keeps
//! the measured path exercised — its wall-clock throughput is recorded as
//! advisory context, never pinned.

use criterion::{criterion_group, criterion_main, Criterion};
use fpsa_bench::{print_experiment, save_bench_artifact, save_text, workspace_root};
use fpsa_core::Compiler;
use fpsa_nn::{zoo, GraphParameters};
use fpsa_serve::{ServeConfig, ServeEngine};
use fpsa_sim::Precision;
use fpsa_workload::{
    check_tolerance, plan, scenario_report, simulate, simulate_phased, PhaseConfig, Scenario,
    TraceRecorder, TraceReplayer, PERCENTILE_TOLERANCE_FACTOR, THROUGHPUT_TOLERANCE,
};
use std::fmt::Write as _;

struct ScenarioRow {
    name: String,
    requests: usize,
    fingerprint: u64,
    full_rps: f64,
    phased_rps: f64,
    rel_err: f64,
    full_p50: u64,
    phased_p50: u64,
    full_p99: u64,
    phased_p99: u64,
    sampled_fraction: f64,
    within_tolerance: bool,
}

fn load_scenarios() -> Vec<Scenario> {
    let dir = workspace_root().join("scenarios");
    let mut scenarios: Vec<Scenario> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .filter_map(|entry| {
            let path = entry.expect("readable dir entry").path();
            (path.extension().and_then(|e| e.to_str()) == Some("scenario")).then(|| {
                let text = std::fs::read_to_string(&path).expect("scenario file reads");
                Scenario::parse(&text)
                    .unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()))
            })
        })
        .collect();
    scenarios.sort_by(|a, b| a.name.cmp(&b.name));
    scenarios
}

fn measure(scenario: &Scenario) -> ScenarioRow {
    let trace = TraceRecorder::new(scenario)
        .record()
        .expect("scenario is valid");
    let full = simulate(&trace, scenario.policy, scenario.service);
    let phase_plan = plan(&trace, PhaseConfig::default());
    let phased = simulate_phased(&trace, &phase_plan, scenario.policy, scenario.service);

    let report = scenario_report(scenario, &trace, &full, &phase_plan, &phased);
    save_text(&format!("workload/{}.md", scenario.name), &report.markdown);
    save_text(&format!("workload/{}.json", scenario.name), &report.json);

    ScenarioRow {
        name: scenario.name.clone(),
        requests: trace.len(),
        fingerprint: trace.fingerprint(),
        full_rps: full.throughput_rps,
        phased_rps: phased.throughput_rps,
        rel_err: (phased.throughput_rps - full.throughput_rps).abs()
            / full.throughput_rps.max(1e-9),
        full_p50: full.stats.latency_percentile_us(0.5),
        phased_p50: phased.latency_percentile_us(0.5),
        full_p99: full.stats.latency_percentile_us(0.99),
        phased_p99: phased.latency_percentile_us(0.99),
        sampled_fraction: phase_plan.sampled_fraction(),
        within_tolerance: check_tolerance(&full, &phased).is_ok(),
    }
}

/// One measured replay through a real engine: advisory wall-clock context
/// for the virtual numbers, plus a standing end-to-end exercise of the
/// record → replay path against `ServeEngine`.
fn real_engine_smoke() -> (String, usize, f64) {
    let graph = zoo::mlp_500_100();
    let params = GraphParameters::seeded(&graph, 0xBE7C);
    let compiled = Compiler::fpsa().compile(&graph).expect("MLP compiles");
    let scenario = Scenario::steady("bench-smoke", "MLP-500-100", 0xBE7C, 256);
    let trace = TraceRecorder::new(&scenario)
        .record()
        .expect("scenario is valid");
    let engine = ServeEngine::start(
        compiled
            .executor(&graph, &params, &Precision::Float)
            .expect("MLP binds"),
        ServeConfig {
            replicas: scenario.policy.replicas,
            max_batch: scenario.policy.max_batch,
            batch_window_us: scenario.policy.window_us,
        },
    );
    let outcome = TraceReplayer::new(&trace, graph.input_elements()).replay(&engine);
    engine.shutdown();
    (graph.name.clone(), trace.len(), outcome.throughput_rps())
}

fn to_table(rows: &[ScenarioRow]) -> String {
    let mut t = String::from(
        "| scenario | requests | full req/s | phased req/s | rel err | p99 full/phased us | sampled | ok |\n|---|---|---|---|---|---|---|---|\n",
    );
    for r in rows {
        let _ = writeln!(
            t,
            "| {} | {} | {:.0} | {:.0} | {:.1}% | {}/{} | {:.1}% | {} |",
            r.name,
            r.requests,
            r.full_rps,
            r.phased_rps,
            r.rel_err * 100.0,
            r.full_p99,
            r.phased_p99,
            r.sampled_fraction * 100.0,
            if r.within_tolerance { "yes" } else { "NO" }
        );
    }
    t
}

/// Hand-rendered JSON (the vendored serde facade cannot produce strict
/// JSON), parsed and pinned by the `workload` CI job.
fn to_json(rows: &[ScenarioRow], smoke: &(String, usize, f64)) -> String {
    let mut j = String::from("{\n");
    let _ = writeln!(j, "  \"throughput_tolerance\": {THROUGHPUT_TOLERANCE},");
    let _ = writeln!(
        j,
        "  \"percentile_tolerance_factor\": {PERCENTILE_TOLERANCE_FACTOR},"
    );
    let _ = writeln!(
        j,
        "  \"all_within_tolerance\": {},",
        rows.iter().all(|r| r.within_tolerance)
    );
    let _ = writeln!(
        j,
        "  \"real_engine_smoke\": {{\"model\": \"{}\", \"requests\": {}, \"throughput_rps\": {:.1}}},",
        smoke.0, smoke.1, smoke.2
    );
    j.push_str("  \"scenarios\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(j, "    {{");
        let _ = writeln!(j, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(j, "      \"requests\": {},", r.requests);
        let _ = writeln!(
            j,
            "      \"trace_fingerprint\": \"{:016x}\",",
            r.fingerprint
        );
        let _ = writeln!(j, "      \"full_throughput_rps\": {:.3},", r.full_rps);
        let _ = writeln!(j, "      \"phased_throughput_rps\": {:.3},", r.phased_rps);
        let _ = writeln!(j, "      \"throughput_rel_err\": {:.5},", r.rel_err);
        let _ = writeln!(j, "      \"full_p50_us\": {},", r.full_p50);
        let _ = writeln!(j, "      \"phased_p50_us\": {},", r.phased_p50);
        let _ = writeln!(j, "      \"full_p99_us\": {},", r.full_p99);
        let _ = writeln!(j, "      \"phased_p99_us\": {},", r.phased_p99);
        let _ = writeln!(j, "      \"sampled_fraction\": {:.5},", r.sampled_fraction);
        let _ = writeln!(j, "      \"within_tolerance\": {}", r.within_tolerance);
        let _ = writeln!(j, "    }}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    j.push_str("  ]\n}\n");
    j
}

fn bench(c: &mut Criterion) {
    let scenarios = load_scenarios();
    assert!(
        !scenarios.is_empty(),
        "no scenarios found under <root>/scenarios/"
    );
    let rows: Vec<ScenarioRow> = scenarios.iter().map(measure).collect();
    let smoke = real_engine_smoke();
    print_experiment(
        "Workload scenarios: full-trace vs phase-sampled virtual replay",
        &to_table(&rows),
    );
    save_bench_artifact("BENCH_workload.json", &to_json(&rows, &smoke));

    // Criterion timing: the full virtual replay of the largest scenario vs
    // the phased replay of its precomputed plan — the speedup the sampling
    // exists to buy.
    let largest = scenarios
        .iter()
        .max_by_key(|s| s.requests)
        .expect("non-empty");
    let trace = TraceRecorder::new(largest)
        .record()
        .expect("scenario is valid");
    let phase_plan = plan(&trace, PhaseConfig::default());
    let mut group = c.benchmark_group("workload_scenarios");
    group.sample_size(10);
    group.bench_function(format!("{}_full_sim", largest.name).as_str(), |b| {
        b.iter(|| simulate(&trace, largest.policy, largest.service))
    });
    group.bench_function(format!("{}_phased_sim", largest.name).as_str(), |b| {
        b.iter(|| simulate_phased(&trace, &phase_plan, largest.policy, largest.service))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
