//! Regenerates Figure 7: per-PE latency breakdown (computation vs
//! communication), plus the compile-stage breakdown of the shared VGG16
//! compilation measured by the instrumented pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use fpsa_bench::{print_experiment, save_json};
use fpsa_core::experiments::fig7;

fn bench(c: &mut Criterion) {
    let fig = fig7::run();
    print_experiment(
        "Figure 7: per-PE latency breakdown for VGG16",
        &fig7::to_table(&fig),
    );
    print_experiment(
        "Figure 7 (instrumentation): where the VGG16 compile spent its time",
        &fig.compile.to_table(),
    );
    print_experiment(
        "Figure 7 compile cache: process-wide statistics",
        &fpsa_core::CompileCache::global().stats().summary(),
    );
    save_json("fig7", &fig);
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.bench_function("latency_breakdown_vgg16", |b| b.iter(fig7::run));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
