//! Regenerates Figure 7: per-PE latency breakdown (computation vs communication).

use criterion::{criterion_group, criterion_main, Criterion};
use fpsa_bench::{print_experiment, save_json};
use fpsa_core::experiments::fig7;

fn bench(c: &mut Criterion) {
    let bars = fig7::run();
    print_experiment("Figure 7: per-PE latency breakdown for VGG16", &fig7::to_table(&bars));
    save_json("fig7", &bars);
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.bench_function("latency_breakdown_vgg16", |b| b.iter(fig7::run));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
