//! Regenerates Table 1: function-block parameters at 45 nm.

use criterion::{criterion_group, criterion_main, Criterion};
use fpsa_bench::{print_experiment, save_json};
use fpsa_core::experiments::table1;

fn bench(c: &mut Criterion) {
    let rows = table1::run();
    print_experiment(
        "Table 1: function-block parameters (45 nm)",
        &table1::to_table(&rows),
    );
    save_json("table1", &rows);
    c.bench_function("table1/function_block_models", |b| b.iter(table1::run));
}

criterion_group!(benches, bench);
criterion_main!(benches);
