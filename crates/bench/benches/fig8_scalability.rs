//! Regenerates Figure 8: scalability with the duplication degree.

use criterion::{criterion_group, criterion_main, Criterion};
use fpsa_bench::{print_experiment, save_json};
use fpsa_core::experiments::fig8;
use fpsa_core::CompileCache;

fn bench(c: &mut Criterion) {
    // The full seven-model sweep is printed once; Criterion times the
    // three-model variant so a bench run stays short. The sweep compiles
    // through a shared cache whose hit/miss statistics are printed below.
    let cache = CompileCache::new(64);
    let fig = fig8::run_with_cache(&cache);
    let (p4, a4) = fig.geomean_scaling(4);
    let (p16, a16) = fig.geomean_scaling(16);
    let (p64, a64) = fig.geomean_scaling(64);
    print_experiment(
        &format!(
            "Figure 8: scalability (geomean speedup/area growth: 4x -> {p4:.2}x/{a4:.2}x, 16x -> {p16:.2}x/{a16:.2}x, 64x -> {p64:.2}x/{a64:.2}x)"
        ),
        &fig8::to_table(&fig),
    );
    print_experiment(
        "Figure 8 routing fabric: minimum channel width (mrVPR sweep)",
        &fig8::channel_width_table(&fig),
    );
    print_experiment(
        "Figure 8 compile cache: sweep-wide hit/miss statistics",
        &cache.stats().summary(),
    );
    save_json("fig8", &fig);
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    group.bench_function("scalability_small_models", |b| b.iter(fig8::run_small));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
