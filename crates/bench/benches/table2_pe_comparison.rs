//! Regenerates Table 2: PE comparison between PRIME and FPSA.

use criterion::{criterion_group, criterion_main, Criterion};
use fpsa_bench::{print_experiment, save_json};
use fpsa_core::experiments::table2;

fn bench(c: &mut Criterion) {
    let table = table2::run();
    print_experiment(
        "Table 2: PRIME vs FPSA processing element (256x256 VMM, 8-bit weights, 6-bit I/O)",
        &table2::to_table(&table),
    );
    save_json("table2", &table);
    c.bench_function("table2/pe_comparison", |b| b.iter(table2::run));
}

criterion_group!(benches, bench);
criterion_main!(benches);
