//! Multi-fabric sharding sweep: stage count × batch window versus the
//! single-fabric baseline (modeled pipeline throughput with chip-to-chip
//! transport, plus measured pipeline-parallel serving on the same stream).
//! Emits `BENCH_sharding.json` next to Criterion's output.

use criterion::{criterion_group, criterion_main, Criterion};
use fpsa_bench::{print_experiment, save_json};
use fpsa_nn::params::mlp_graph;
use fpsa_shard::experiments::sharding;

fn bench(c: &mut Criterion) {
    let reports = sharding::run();
    print_experiment(
        "Multi-fabric sharding: pipeline stages vs the single fabric",
        &sharding::to_table(&reports),
    );
    print_experiment(
        "Sharding compile cache: process-wide statistics",
        &fpsa_core::CompileCache::global().stats().summary(),
    );
    save_json("BENCH_sharding", &reports);

    let mut group = c.benchmark_group("sharding");
    group.sample_size(10);
    group.bench_function("mlp_300_280_260_10_2stage_sweep_small", |b| {
        let graph = mlp_graph("MLP-300-280-260-10", &[300, 280, 260, 10]);
        b.iter(|| sharding::run_with(&graph, &[2], &[(8, 200)], 32))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
