//! Regenerates Table 3: overall FPSA performance for every benchmark model.

use criterion::{criterion_group, criterion_main, Criterion};
use fpsa_bench::{print_experiment, save_json};
use fpsa_core::experiments::table3;

fn bench(c: &mut Criterion) {
    let cols = table3::run();
    print_experiment(
        "Table 3: overall FPSA performance (64x duplication)",
        &table3::to_table(&cols),
    );
    save_json("table3", &cols);
    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    group.bench_function("overall_low_duplication", |b| {
        b.iter(|| table3::run_with_duplication(1))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
