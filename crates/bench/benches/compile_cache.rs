//! Compile-at-scale: the content-addressed compile cache and warm-started
//! annealing, measured on the paper models.
//!
//! Three measurements land in `BENCH_compile.json` at the **workspace root**
//! (hand-rendered JSON, like `BENCH_exec.json`), where the `compile-perf`
//! CI job pins them:
//!
//! * **cached recompile** — MLP-500-100 cold compile vs a cache hit
//!   (`cached_speedup`, pinned >= 10x);
//! * **repeated-config sweep** — six identical VGG16 evaluation points
//!   through the cache vs uncached, both sequential so the ratio is
//!   core-count independent (`sweep_ratio`, pinned <= 0.5);
//! * **warm start** — annealing a one-layer-resized MLP from the donor's
//!   placement vs cold (`warm_moves_ratio`, pinned <= 0.5, with
//!   equal-or-better HPWL).

use criterion::{criterion_group, criterion_main, Criterion};
use fpsa_bench::{print_experiment, save_bench_artifact};
use fpsa_core::compiler::PlaceRouteConfig;
use fpsa_core::{CompileCache, Compiler, Evaluator};
use fpsa_nn::params::mlp_graph;
use fpsa_nn::zoo::{self, Benchmark};
use fpsa_placeroute::WarmStart;
use std::fmt::Write as _;
use std::time::Instant;

const HIT_REPS: usize = 8;
const SWEEP_POINTS: usize = 6;
const TARGET_CACHED_SPEEDUP: f64 = 10.0;
const TARGET_SWEEP_RATIO: f64 = 0.5;
const TARGET_WARM_MOVES_RATIO: f64 = 0.5;

struct CompileCacheReport {
    cold_compile_ms: f64,
    cached_compile_ms: f64,
    cached_speedup: f64,
    uncached_sweep_ms: f64,
    cached_sweep_ms: f64,
    sweep_ratio: f64,
    cold_moves: u64,
    warm_moves: u64,
    warm_moves_ratio: f64,
    cold_hpwl: f64,
    warm_hpwl: f64,
}

fn measure() -> CompileCacheReport {
    // Cached recompile: MLP-500-100 (full P&R) cold, then best-of hits.
    let cache = CompileCache::new(4);
    let graph = zoo::mlp_500_100();
    let compiler = Compiler::fpsa();
    let start = Instant::now();
    cache
        .compile(&compiler, &graph)
        .expect("MLP-500-100 compiles");
    let cold_compile = start.elapsed().as_secs_f64() * 1e3;
    let mut cached_compile = f64::INFINITY;
    for _ in 0..HIT_REPS {
        let start = Instant::now();
        cache
            .compile(&compiler, &graph)
            .expect("MLP-500-100 compiles");
        cached_compile = cached_compile.min(start.elapsed().as_secs_f64() * 1e3);
    }

    // Repeated-config sweep, sequential on both sides.
    let evaluator = Evaluator::fpsa();
    let start = Instant::now();
    for _ in 0..SWEEP_POINTS {
        evaluator.evaluate(Benchmark::Vgg16, 1);
    }
    let uncached_sweep = start.elapsed().as_secs_f64() * 1e3;
    let sweep_cache = CompileCache::new(4);
    let start = Instant::now();
    for _ in 0..SWEEP_POINTS {
        evaluator.evaluate_with_cache(Benchmark::Vgg16, 1, Some(&sweep_cache));
    }
    let cached_sweep = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(sweep_cache.stats().misses, 1);
    assert_eq!(sweep_cache.stats().hits, SWEEP_POINTS as u64 - 1);

    // Warm start on a one-layer-resized model.
    let donor_graph = mlp_graph("warm-mlp", &[512, 384, 256, 10]);
    let edited_graph = mlp_graph("warm-mlp", &[512, 384, 288, 10]);
    let pr_compiler = Compiler::fpsa().with_place_route(PlaceRouteConfig::quality());
    let donor = pr_compiler.compile(&donor_graph).expect("donor compiles");
    let donor_physical = donor.physical.as_ref().expect("donor gets full P&R");
    let cold = pr_compiler.compile(&edited_graph).expect("cold compiles");
    let cold_physical = cold.physical.as_ref().expect("cold gets full P&R");
    let seed = WarmStart::from_placement(&donor.mapping.netlist, &donor_physical.placement);
    let warm = pr_compiler
        .compile_warm(&edited_graph, Some(seed))
        .expect("warm compiles");
    let warm_physical = warm.physical.as_ref().expect("warm gets full P&R");
    let cold_moves = cold_physical.placement.quality().moves_evaluated;
    let warm_moves = warm_physical.placement.quality().moves_evaluated;
    assert!(warm_physical.placement.quality().warm_started);
    assert!(
        warm_physical.placement.wirelength() <= cold_physical.placement.wirelength(),
        "warm HPWL must not regress past cold"
    );

    CompileCacheReport {
        cold_compile_ms: cold_compile,
        cached_compile_ms: cached_compile,
        cached_speedup: cold_compile / cached_compile.max(1e-9),
        uncached_sweep_ms: uncached_sweep,
        cached_sweep_ms: cached_sweep,
        sweep_ratio: cached_sweep / uncached_sweep.max(1e-9),
        cold_moves,
        warm_moves,
        warm_moves_ratio: warm_moves as f64 / cold_moves.max(1) as f64,
        cold_hpwl: cold_physical.placement.wirelength(),
        warm_hpwl: warm_physical.placement.wirelength(),
    }
}

fn to_table(r: &CompileCacheReport) -> String {
    format!(
        "cold compile (MLP-500-100)   {:.1} ms\n\
         cached recompile             {:.3} ms  ({:.0}x, target >= {TARGET_CACHED_SPEEDUP:.0}x)\n\
         uncached sweep (6x VGG16)    {:.1} ms\n\
         cached sweep                 {:.1} ms  (ratio {:.2}, target <= {TARGET_SWEEP_RATIO})\n\
         cold anneal                  {} moves, HPWL {:.0}\n\
         warm-started anneal          {} moves, HPWL {:.0}  (ratio {:.2}, target <= {TARGET_WARM_MOVES_RATIO})",
        r.cold_compile_ms,
        r.cached_compile_ms,
        r.cached_speedup,
        r.uncached_sweep_ms,
        r.cached_sweep_ms,
        r.sweep_ratio,
        r.cold_moves,
        r.cold_hpwl,
        r.warm_moves,
        r.warm_hpwl,
        r.warm_moves_ratio,
    )
}

/// Hand-rendered JSON (the vendored serde shim serializes through `Debug`,
/// which the CI pin scripts cannot parse).
fn to_json(r: &CompileCacheReport) -> String {
    let mut j = String::from("{\n");
    let _ = writeln!(
        j,
        "  \"target_cached_speedup\": {TARGET_CACHED_SPEEDUP:.1},"
    );
    let _ = writeln!(j, "  \"target_sweep_ratio\": {TARGET_SWEEP_RATIO:.2},");
    let _ = writeln!(
        j,
        "  \"target_warm_moves_ratio\": {TARGET_WARM_MOVES_RATIO:.2},"
    );
    let _ = writeln!(j, "  \"cold_compile_ms\": {:.3},", r.cold_compile_ms);
    let _ = writeln!(j, "  \"cached_compile_ms\": {:.5},", r.cached_compile_ms);
    let _ = writeln!(j, "  \"cached_speedup\": {:.2},", r.cached_speedup);
    let _ = writeln!(j, "  \"uncached_sweep_ms\": {:.3},", r.uncached_sweep_ms);
    let _ = writeln!(j, "  \"cached_sweep_ms\": {:.3},", r.cached_sweep_ms);
    let _ = writeln!(j, "  \"sweep_ratio\": {:.4},", r.sweep_ratio);
    let _ = writeln!(j, "  \"cold_moves\": {},", r.cold_moves);
    let _ = writeln!(j, "  \"warm_moves\": {},", r.warm_moves);
    let _ = writeln!(j, "  \"warm_moves_ratio\": {:.4},", r.warm_moves_ratio);
    let _ = writeln!(j, "  \"cold_hpwl\": {:.1},", r.cold_hpwl);
    let _ = writeln!(j, "  \"warm_hpwl\": {:.1}", r.warm_hpwl);
    j.push_str("}\n");
    j
}

fn bench(c: &mut Criterion) {
    let report = measure();
    print_experiment(
        "Compile cache: cold vs cached vs warm-started compilation",
        &to_table(&report),
    );
    save_bench_artifact("BENCH_compile.json", &to_json(&report));

    let mut group = c.benchmark_group("compile_cache");
    group.sample_size(10);
    let cache = CompileCache::new(4);
    let graph = zoo::mlp_500_100();
    let compiler = Compiler::fpsa();
    cache.compile(&compiler, &graph).expect("warms the cache");
    group.bench_function("mlp_500_100_cache_hit", |b| {
        b.iter(|| cache.compile(&compiler, &graph).expect("hit"))
    });
    group.bench_function("mlp_500_100_cold_compile", |b| {
        b.iter(|| compiler.compile(&graph).expect("cold compile"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
