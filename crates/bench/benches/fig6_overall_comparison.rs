//! Regenerates Figure 6: PRIME vs FP-PRIME vs FPSA for VGG16.

use criterion::{criterion_group, criterion_main, Criterion};
use fpsa_bench::{print_experiment, save_json};
use fpsa_core::experiments::fig6;

fn bench(c: &mut Criterion) {
    let fig = fig6::run();
    print_experiment(
        &format!(
            "Figure 6: overall comparison for VGG16 (FPSA/PRIME speedup at max area: {:.0}x)",
            fig.speedup_at_max_area
        ),
        &fig6::to_table(&fig),
    );
    save_json("fig6", &fig);
    let mut group = c.benchmark_group("fig6");
    group.sample_size(20);
    group.bench_function("three_architecture_sweep", |b| b.iter(fig6::run));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
