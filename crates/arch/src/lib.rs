//! The FPSA fabric architecture description.
//!
//! FPSA arranges three kinds of function blocks — ReRAM processing elements
//! (PEs), spiking memory blocks (SMBs) and configurable logic blocks (CLBs) —
//! on an island-style reconfigurable fabric. The blocks connect to vertical
//! and horizontal routing channels through connection boxes (CBs), and the
//! channels connect to each other through switch boxes (SBs); both are built
//! from ReRAM cells (the mrFPGA approach) and are stacked in the upper metal
//! layers over the function blocks, so the routing contributes latency and
//! configuration state but little extra die area.
//!
//! This crate describes the fabric: block mix, grid geometry, channel and
//! switch parameters, and the configuration bitstream format. The placement
//! and routing algorithms that target this description live in
//! `fpsa-placeroute`.

pub mod bitstream;
pub mod blocks;
pub mod capacity;
pub mod config;
pub mod fabric;
pub mod routing;

pub use bitstream::{Bitstream, Section, SectionKind};
pub use blocks::{BlockKind, FunctionBlock};
pub use capacity::FabricCapacity;
pub use config::{ArchitectureConfig, ArchitectureKind, CommunicationStyle, PeModel};
pub use fabric::{Fabric, FabricDimensions};
pub use routing::RoutingArchitecture;
