//! Function-block capacity accounting.
//!
//! A [`FabricCapacity`] counts the PE / SMB / CLB slots a design needs or a
//! fabric offers. It is the currency of the multi-fabric sharding stack: the
//! compiler's block-limit check reports it in the typed `CapacityExceeded`
//! error, and the partitioner in `fpsa_shard` packs pipeline stages under a
//! per-chip budget expressed in the same units.

use crate::config::ArchitectureConfig;
use crate::fabric::Fabric;
use serde::{Deserialize, Serialize};

/// A count of function-block slots, by kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FabricCapacity {
    /// Processing elements.
    pub pes: usize,
    /// Spiking memory blocks.
    pub smbs: usize,
    /// Configurable logic blocks.
    pub clbs: usize,
}

impl FabricCapacity {
    /// A capacity with the given per-kind counts.
    pub fn new(pes: usize, smbs: usize, clbs: usize) -> Self {
        FabricCapacity { pes, smbs, clbs }
    }

    /// The capacity a concrete fabric instance offers.
    pub fn of(fabric: &Fabric) -> Self {
        FabricCapacity {
            pes: fabric.pe_count(),
            smbs: fabric.smb_count(),
            clbs: fabric.clb_count(),
        }
    }

    /// The largest capacity whose total block count stays within `blocks`
    /// slots, split at the architecture's interleave ratio (every
    /// `pes_per_smb + 2` slots hold `pes_per_smb` PEs, one SMB and one CLB).
    /// This is what the compiler's netlist block limit corresponds to in
    /// per-kind terms.
    pub fn within_block_budget(config: &ArchitectureConfig, blocks: usize) -> Self {
        let phase = config.pes_per_smb + 2;
        let full = blocks / phase;
        let rest = blocks % phase;
        FabricCapacity {
            pes: full * config.pes_per_smb + rest.min(config.pes_per_smb),
            smbs: full + usize::from(rest > config.pes_per_smb),
            // A partial phase (rest <= pes_per_smb + 1) fills its PEs and at
            // most the SMB slot; it can never reach the trailing CLB slot.
            clbs: full,
        }
    }

    /// Total block slots across all kinds.
    pub fn total_blocks(&self) -> usize {
        self.pes + self.smbs + self.clbs
    }

    /// Whether a demand fits inside this capacity, kind by kind.
    pub fn fits(&self, demand: &FabricCapacity) -> bool {
        demand.pes <= self.pes && demand.smbs <= self.smbs && demand.clbs <= self.clbs
    }

    /// The fraction of this capacity's PEs a demand occupies (the per-chip
    /// utilization figure of the sharding experiments).
    pub fn pe_utilization(&self, demand: &FabricCapacity) -> f64 {
        if self.pes == 0 {
            return 0.0;
        }
        demand.pes as f64 / self.pes as f64
    }
}

impl std::fmt::Display for FabricCapacity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} PEs / {} SMBs / {} CLBs",
            self.pes, self.smbs, self.clbs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fabric_capacity_matches_the_instantiated_fabric() {
        let config = ArchitectureConfig::fpsa();
        let fabric = Fabric::with_pe_count(config, 100);
        let cap = FabricCapacity::of(&fabric);
        assert_eq!(cap.pes, fabric.pe_count());
        assert_eq!(cap.smbs, fabric.smb_count());
        assert_eq!(cap.clbs, fabric.clb_count());
        assert!(cap.pes >= 100);
    }

    #[test]
    fn block_budget_splits_at_the_interleave_ratio() {
        let config = ArchitectureConfig::fpsa(); // 8 PEs : 1 SMB : 1 CLB
        let cap = FabricCapacity::within_block_budget(&config, 10);
        assert_eq!(cap, FabricCapacity::new(8, 1, 1));
        assert_eq!(cap.total_blocks(), 10);
        // Partial phases allocate PEs first, then the SMB, then the CLB.
        assert_eq!(
            FabricCapacity::within_block_budget(&config, 13),
            FabricCapacity::new(11, 1, 1)
        );
        assert_eq!(
            FabricCapacity::within_block_budget(&config, 19),
            FabricCapacity::new(16, 2, 1)
        );
        assert!(FabricCapacity::within_block_budget(&config, 4_000).total_blocks() <= 4_000);
    }

    #[test]
    fn fits_compares_kind_by_kind() {
        let budget = FabricCapacity::new(16, 2, 2);
        assert!(budget.fits(&FabricCapacity::new(16, 2, 2)));
        assert!(budget.fits(&FabricCapacity::new(1, 0, 0)));
        assert!(!budget.fits(&FabricCapacity::new(17, 0, 0)));
        assert!(!budget.fits(&FabricCapacity::new(1, 3, 0)));
    }

    #[test]
    fn pe_utilization_is_a_fraction_of_the_budget() {
        let budget = FabricCapacity::new(20, 3, 3);
        let demand = FabricCapacity::new(15, 1, 1);
        assert!((budget.pe_utilization(&demand) - 0.75).abs() < 1e-12);
        assert_eq!(FabricCapacity::default().pe_utilization(&demand), 0.0);
    }

    #[test]
    fn display_reads_naturally() {
        let s = FabricCapacity::new(8, 1, 1).to_string();
        assert!(s.contains("8 PEs"));
        assert!(s.contains("1 SMBs"));
    }
}
