//! Architecture configurations: FPSA, FP-PRIME and PRIME.
//!
//! The paper's evaluation compares three designs that differ in two
//! dimensions — the processing element and the communication subsystem:
//!
//! | design   | PE                           | communication            |
//! |----------|------------------------------|--------------------------|
//! | PRIME    | splicing PE with ADC/DAC     | shared memory bus        |
//! | FP-PRIME | splicing PE with ADC/DAC     | reconfigurable routing   |
//! | FPSA     | spiking PE (this paper)      | reconfigurable routing   |

use crate::blocks::FunctionBlock;
use crate::routing::RoutingArchitecture;
use fpsa_device::pe::{published, ProcessingElementSpec};
use serde::{Deserialize, Serialize};

/// Which of the three evaluated designs a configuration describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArchitectureKind {
    /// The baseline PRIME accelerator (memory bus, ADC/DAC PEs).
    Prime,
    /// PRIME's PEs on FPSA's reconfigurable routing.
    FpPrime,
    /// The full FPSA design.
    Fpsa,
}

impl ArchitectureKind {
    /// Display name used in figures.
    pub fn name(&self) -> &'static str {
        match self {
            ArchitectureKind::Prime => "PRIME",
            ArchitectureKind::FpPrime => "FP-PRIME",
            ArchitectureKind::Fpsa => "FPSA",
        }
    }

    /// Whether this design uses the reconfigurable routing fabric.
    pub fn uses_reconfigurable_routing(&self) -> bool {
        !matches!(self, ArchitectureKind::Prime)
    }
}

/// How values travel between PEs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CommunicationStyle {
    /// A shared memory bus with the given aggregate bandwidth (GB/s).
    MemoryBus {
        /// Aggregate bus bandwidth in gigabytes per second.
        bandwidth_gbps: f64,
    },
    /// The reconfigurable routing fabric, transmitting each value as `bits`
    /// serial bits over a dedicated routed path.
    Routed {
        /// Bits transferred per value (n for spike counts, 2^n for trains).
        bits_per_value: u64,
    },
}

/// The parameters of a processing element as seen by the system-level model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeModel {
    /// PE area in µm².
    pub area_um2: f64,
    /// Latency of one full vector-matrix multiplication in ns.
    pub vmm_latency_ns: f64,
    /// Logical rows (inputs) of the PE.
    pub rows: usize,
    /// Logical columns (outputs) of the PE.
    pub cols: usize,
}

impl PeModel {
    /// The FPSA spiking PE, derived from the device-level composition.
    pub fn fpsa() -> Self {
        let pe = ProcessingElementSpec::fpsa_default();
        PeModel {
            area_um2: pe.area_um2(),
            vmm_latency_ns: pe.vmm_latency_ns(),
            rows: pe.logical_rows(),
            cols: pe.logical_cols(),
        }
    }

    /// The PRIME splicing PE (Table 2 published values).
    pub fn prime() -> Self {
        PeModel {
            area_um2: published::PRIME_PE_AREA_UM2,
            vmm_latency_ns: published::PRIME_PE_LATENCY_NS,
            rows: 256,
            cols: 256,
        }
    }

    /// Operations per VMM (multiply + add per logical cross point).
    pub fn ops_per_vmm(&self) -> f64 {
        2.0 * self.rows as f64 * self.cols as f64
    }

    /// Peak throughput in operations per second.
    pub fn peak_ops(&self) -> f64 {
        self.ops_per_vmm() / (self.vmm_latency_ns * 1e-9)
    }

    /// Computational density in TOPS/mm².
    pub fn density_tops_mm2(&self) -> f64 {
        self.peak_ops() * 1e-12 / (self.area_um2 * 1e-6)
    }
}

/// A complete architecture configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchitectureConfig {
    /// Which design this is.
    pub kind: ArchitectureKind,
    /// The PE model used for computation.
    pub pe: PeModel,
    /// Activation precision in bits (6 in the paper).
    pub io_bits: u32,
    /// The communication subsystem.
    pub communication: CommunicationStyle,
    /// Routing fabric parameters (also present for PRIME so that FP-PRIME
    /// reuses them, but ignored when `communication` is a bus).
    pub routing: RoutingArchitecture,
    /// Number of PEs per SMB on the fabric.
    pub pes_per_smb: usize,
    /// Number of PEs per CLB on the fabric.
    pub pes_per_clb: usize,
}

impl ArchitectureConfig {
    /// The full FPSA configuration: spiking PEs, spike trains on the routed
    /// fabric (2^6 bits per value), one SMB and one CLB per eight PEs.
    pub fn fpsa() -> Self {
        ArchitectureConfig {
            kind: ArchitectureKind::Fpsa,
            pe: PeModel::fpsa(),
            io_bits: 6,
            communication: CommunicationStyle::Routed {
                bits_per_value: 1 << 6,
            },
            routing: RoutingArchitecture::fpsa_default(),
            pes_per_smb: 8,
            pes_per_clb: 8,
        }
    }

    /// FP-PRIME: PRIME's PEs on FPSA's routing; values travel as 6-bit
    /// counts because PRIME PEs exchange digital numbers, not spike trains.
    pub fn fp_prime() -> Self {
        ArchitectureConfig {
            kind: ArchitectureKind::FpPrime,
            pe: PeModel::prime(),
            io_bits: 6,
            communication: CommunicationStyle::Routed { bits_per_value: 6 },
            routing: RoutingArchitecture::fpsa_default(),
            pes_per_smb: 8,
            pes_per_clb: 8,
        }
    }

    /// The PRIME baseline: splicing PEs on a shared memory bus.
    pub fn prime() -> Self {
        ArchitectureConfig {
            kind: ArchitectureKind::Prime,
            pe: PeModel::prime(),
            io_bits: 6,
            communication: CommunicationStyle::MemoryBus {
                bandwidth_gbps: 32.0,
            },
            routing: RoutingArchitecture::fpsa_default(),
            pes_per_smb: 8,
            pes_per_clb: 8,
        }
    }

    /// The sampling window in cycles implied by the I/O precision.
    pub fn sampling_window(&self) -> u64 {
        1u64 << self.io_bits
    }

    /// The function blocks instantiated on this fabric (only meaningful for
    /// routed designs; PRIME has no SMB/CLB mix but the same accessor keeps
    /// the area model uniform).
    pub fn support_blocks(&self) -> (FunctionBlock, FunctionBlock) {
        (FunctionBlock::default_smb(), FunctionBlock::default_clb())
    }

    /// Area of one fabric tile slot carrying a PE, including its share of
    /// SMB, CLB and routing-driver area, in µm².
    pub fn area_per_pe_um2(&self) -> f64 {
        let (smb, clb) = self.support_blocks();
        let support =
            smb.area_um2() / self.pes_per_smb as f64 + clb.area_um2() / self.pes_per_clb as f64;
        let drivers = if self.kind.uses_reconfigurable_routing() {
            self.routing.driver_area_um2_per_tile()
        } else {
            0.0
        };
        self.pe.area_um2 + support + drivers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_have_names_and_routing_flags() {
        assert_eq!(ArchitectureKind::Prime.name(), "PRIME");
        assert!(!ArchitectureKind::Prime.uses_reconfigurable_routing());
        assert!(ArchitectureKind::Fpsa.uses_reconfigurable_routing());
        assert!(ArchitectureKind::FpPrime.uses_reconfigurable_routing());
    }

    #[test]
    fn pe_models_match_table2() {
        let fpsa = PeModel::fpsa();
        let prime = PeModel::prime();
        assert!((fpsa.density_tops_mm2() - 38.0).abs() < 1.5);
        assert!((prime.density_tops_mm2() - 1.229).abs() < 0.01);
        assert!(fpsa.density_tops_mm2() / prime.density_tops_mm2() > 28.0);
    }

    #[test]
    fn fpsa_transmits_spike_trains_and_fp_prime_counts() {
        match ArchitectureConfig::fpsa().communication {
            CommunicationStyle::Routed { bits_per_value } => assert_eq!(bits_per_value, 64),
            _ => panic!("FPSA must use routed communication"),
        }
        match ArchitectureConfig::fp_prime().communication {
            CommunicationStyle::Routed { bits_per_value } => assert_eq!(bits_per_value, 6),
            _ => panic!("FP-PRIME must use routed communication"),
        }
        match ArchitectureConfig::prime().communication {
            CommunicationStyle::MemoryBus { bandwidth_gbps } => assert!(bandwidth_gbps > 0.0),
            _ => panic!("PRIME must use a memory bus"),
        }
    }

    #[test]
    fn sampling_window_is_64_cycles_for_6_bits() {
        assert_eq!(ArchitectureConfig::fpsa().sampling_window(), 64);
    }

    #[test]
    fn area_per_pe_includes_support_blocks() {
        let cfg = ArchitectureConfig::fpsa();
        assert!(cfg.area_per_pe_um2() > cfg.pe.area_um2);
        // Support blocks add noticeably less than a second PE.
        assert!(cfg.area_per_pe_um2() < 1.5 * cfg.pe.area_um2);
    }

    #[test]
    fn prime_pe_is_larger_and_slower_than_fpsa_pe() {
        let cfg_f = ArchitectureConfig::fpsa();
        let cfg_p = ArchitectureConfig::prime();
        assert!(cfg_p.pe.area_um2 > cfg_f.pe.area_um2);
        assert!(cfg_p.pe.vmm_latency_ns > cfg_f.pe.vmm_latency_ns * 10.0);
    }
}
