//! The reconfigurable routing architecture.
//!
//! FPSA adopts the island-style FPGA routing architecture: every function
//! block connects to its neighbouring horizontal and vertical channels
//! through connection boxes (CBs), and channels connect at their crossings
//! through switch boxes (SBs). Following mrFPGA, the programmable switches
//! are ReRAM cells placed above the function blocks in metal layers M5–M9, so
//! the routing network adds configuration state and delay but almost no
//! silicon footprint.
//!
//! Unlike a bus or NoC, every signal gets its own statically configured
//! channel, so bandwidth scales with wiring and the worst-case latency is
//! known at configuration time.

use serde::{Deserialize, Serialize};

/// Parameters of the routing fabric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoutingArchitecture {
    /// Number of tracks per routing channel.
    pub channel_width: usize,
    /// Wire segment length in blocks (1 = single-block segments).
    pub segment_length: usize,
    /// Delay of one ReRAM switch-box crossing in ns.
    pub switch_delay_ns: f64,
    /// Delay of a connection-box entry/exit in ns.
    pub connection_delay_ns: f64,
    /// Wire delay per block pitch in ns (driven by the block footprint and
    /// the per-mm wire delay of the technology).
    pub wire_delay_per_block_ns: f64,
    /// Fraction of the connection box's tracks each block pin can reach.
    pub connection_flexibility: f64,
    /// Energy of moving one bit across one block pitch, in pJ.
    pub energy_per_bit_hop_pj: f64,
}

impl RoutingArchitecture {
    /// The mrFPGA-style routing fabric used by FPSA, sized for the high
    /// fan-in/out of ReRAM PEs (512 pins per block).
    pub fn fpsa_default() -> Self {
        RoutingArchitecture {
            channel_width: 512,
            segment_length: 1,
            switch_delay_ns: 0.12,
            connection_delay_ns: 0.10,
            wire_delay_per_block_ns: 0.02,
            connection_flexibility: 0.5,
            energy_per_bit_hop_pj: 0.01,
        }
    }

    /// Per-hop delay (one segment plus one switch box) in ns.
    pub fn hop_delay_ns(&self) -> f64 {
        self.wire_delay_per_block_ns * self.segment_length as f64 + self.switch_delay_ns
    }

    /// Delay of a routed path with the given number of block hops, in ns:
    /// source connection box, `hops` segments/switches, sink connection box.
    pub fn path_delay_ns(&self, hops: usize) -> f64 {
        2.0 * self.connection_delay_ns + hops as f64 * self.hop_delay_ns()
    }

    /// Energy of moving `bits` bits across `hops` block pitches, in pJ.
    pub fn transfer_energy_pj(&self, bits: u64, hops: usize) -> f64 {
        bits as f64 * hops as f64 * self.energy_per_bit_hop_pj
    }

    /// Number of configuration bits per fabric tile: the switch box holds
    /// `6 x W x L` programmable cross points (Wilton-style, three output
    /// directions per incoming track) and four connection boxes hold
    /// `flexibility x W` bits per block pin side.
    pub fn config_bits_per_tile(&self, block_pins: usize) -> usize {
        let sb = 6 * self.channel_width * self.segment_length;
        let cb = (self.connection_flexibility * self.channel_width as f64).ceil() as usize
            * block_pins.max(1)
            / 4;
        sb + cb
    }

    /// Area of the per-tile routing circuitry that cannot be stacked above
    /// the block (the switch drivers), in µm². mrFPGA places the ReRAM
    /// switches in the metal stack; the remaining driver overhead is modelled as a
    /// small per-track cost.
    pub fn driver_area_um2_per_tile(&self) -> f64 {
        0.6 * self.channel_width as f64
    }
}

impl Default for RoutingArchitecture {
    fn default() -> Self {
        Self::fpsa_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sized_for_pe_fanout() {
        let r = RoutingArchitecture::fpsa_default();
        assert!(r.channel_width >= 512);
    }

    #[test]
    fn hop_delay_combines_wire_and_switch() {
        let r = RoutingArchitecture::fpsa_default();
        assert!((r.hop_delay_ns() - (r.wire_delay_per_block_ns + r.switch_delay_ns)).abs() < 1e-12);
    }

    #[test]
    fn path_delay_is_monotone_in_hops() {
        let r = RoutingArchitecture::fpsa_default();
        assert!(r.path_delay_ns(10) > r.path_delay_ns(5));
        assert!((r.path_delay_ns(0) - 2.0 * r.connection_delay_ns).abs() < 1e-12);
    }

    #[test]
    fn typical_critical_paths_are_nanoseconds_not_microseconds() {
        // Figure 7 reports per-value transfer latencies around 10 ns on the
        // routed fabric; a few tens of hops must land in that range.
        let r = RoutingArchitecture::fpsa_default();
        let d = r.path_delay_ns(60);
        assert!(d > 2.0 && d < 20.0, "path delay {d}");
    }

    #[test]
    fn transfer_energy_scales_with_bits_and_distance() {
        let r = RoutingArchitecture::fpsa_default();
        let e1 = r.transfer_energy_pj(64, 10);
        let e2 = r.transfer_energy_pj(128, 10);
        let e3 = r.transfer_energy_pj(64, 20);
        assert!((e2 / e1 - 2.0).abs() < 1e-12);
        assert!((e3 / e1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn config_bits_grow_with_channel_width() {
        let mut narrow = RoutingArchitecture::fpsa_default();
        narrow.channel_width = 128;
        let wide = RoutingArchitecture::fpsa_default();
        assert!(wide.config_bits_per_tile(512) > narrow.config_bits_per_tile(512));
    }

    #[test]
    fn driver_area_stays_small_relative_to_a_pe() {
        let r = RoutingArchitecture::fpsa_default();
        // A PE is ~22,000 um^2; the per-tile routing drivers must stay well
        // below that for the "routing stacked over blocks" assumption to hold.
        assert!(r.driver_area_um2_per_tile() < 2000.0);
    }
}
