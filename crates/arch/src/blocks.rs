//! Function-block descriptions.

use fpsa_device::clb::ConfigurableLogicBlockSpec;
use fpsa_device::pe::ProcessingElementSpec;
use fpsa_device::smb::SpikingMemoryBlockSpec;
use serde::{Deserialize, Serialize};

/// The three kinds of function blocks on the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BlockKind {
    /// ReRAM processing element (computation).
    Pe,
    /// Spiking memory block (buffering).
    Smb,
    /// Configurable logic block (control).
    Clb,
}

impl BlockKind {
    /// All block kinds.
    pub fn all() -> [BlockKind; 3] {
        [BlockKind::Pe, BlockKind::Smb, BlockKind::Clb]
    }

    /// Short mnemonic used in netlists and reports.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            BlockKind::Pe => "pe",
            BlockKind::Smb => "smb",
            BlockKind::Clb => "clb",
        }
    }
}

/// A concrete function-block specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FunctionBlock {
    /// A processing element.
    Pe(ProcessingElementSpec),
    /// A spiking memory block.
    Smb(SpikingMemoryBlockSpec),
    /// A configurable logic block.
    Clb(ConfigurableLogicBlockSpec),
}

impl FunctionBlock {
    /// Default PE block.
    pub fn default_pe() -> Self {
        FunctionBlock::Pe(ProcessingElementSpec::fpsa_default())
    }

    /// Default SMB block.
    pub fn default_smb() -> Self {
        FunctionBlock::Smb(SpikingMemoryBlockSpec::fpsa_16kb())
    }

    /// Default CLB block.
    pub fn default_clb() -> Self {
        FunctionBlock::Clb(ConfigurableLogicBlockSpec::fpsa_128lut())
    }

    /// The block's kind.
    pub fn kind(&self) -> BlockKind {
        match self {
            FunctionBlock::Pe(_) => BlockKind::Pe,
            FunctionBlock::Smb(_) => BlockKind::Smb,
            FunctionBlock::Clb(_) => BlockKind::Clb,
        }
    }

    /// Silicon area in µm².
    pub fn area_um2(&self) -> f64 {
        match self {
            FunctionBlock::Pe(pe) => pe.area_um2(),
            FunctionBlock::Smb(smb) => smb.area_um2(),
            FunctionBlock::Clb(clb) => clb.area_um2(),
        }
    }

    /// Intrinsic block latency in ns (one pipeline clock for a PE, one access
    /// for an SMB, one LUT evaluation for a CLB).
    pub fn latency_ns(&self) -> f64 {
        match self {
            FunctionBlock::Pe(pe) => pe.clock_period_ns(),
            FunctionBlock::Smb(smb) => smb.access_latency_ns(),
            FunctionBlock::Clb(clb) => clb.latency_ns(),
        }
    }

    /// Number of routing pins the block exposes to its connection boxes.
    pub fn pin_count(&self) -> usize {
        match self {
            FunctionBlock::Pe(pe) => pe.pin_count(),
            FunctionBlock::Smb(smb) => smb.pin_count(),
            FunctionBlock::Clb(clb) => clb.pin_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_round_trip() {
        assert_eq!(FunctionBlock::default_pe().kind(), BlockKind::Pe);
        assert_eq!(FunctionBlock::default_smb().kind(), BlockKind::Smb);
        assert_eq!(FunctionBlock::default_clb().kind(), BlockKind::Clb);
        assert_eq!(BlockKind::all().len(), 3);
    }

    #[test]
    fn mnemonics_are_distinct() {
        let m: std::collections::HashSet<_> =
            BlockKind::all().iter().map(|k| k.mnemonic()).collect();
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn block_areas_match_table1() {
        assert!((FunctionBlock::default_pe().area_um2() - 22051.414).abs() / 22051.414 < 0.01);
        assert!((FunctionBlock::default_smb().area_um2() - 5421.9).abs() < 1.0);
        assert!((FunctionBlock::default_clb().area_um2() - 5998.272).abs() < 1.0);
    }

    #[test]
    fn pe_is_the_largest_and_slowest_block() {
        let pe = FunctionBlock::default_pe();
        let smb = FunctionBlock::default_smb();
        let clb = FunctionBlock::default_clb();
        assert!(pe.area_um2() > smb.area_um2());
        assert!(pe.area_um2() > clb.area_um2());
        assert!(pe.latency_ns() > clb.latency_ns());
    }

    #[test]
    fn pin_counts_are_balanced_across_block_kinds() {
        // The paper sizes CLBs so that their pin count is comparable to a PE.
        let pe = FunctionBlock::default_pe().pin_count();
        let clb = FunctionBlock::default_clb().pin_count();
        assert_eq!(pe, clb);
        assert!(FunctionBlock::default_smb().pin_count() > 0);
    }
}
