//! The physical fabric: a 2-D grid of function-block slots.

use crate::blocks::BlockKind;
use crate::config::ArchitectureConfig;
use serde::{Deserialize, Serialize};

/// Grid dimensions of a fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FabricDimensions {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
}

impl FabricDimensions {
    /// Total slot count.
    pub fn slots(&self) -> usize {
        self.rows * self.cols
    }

    /// The smallest square grid with at least `slots` slots.
    pub fn square_for(slots: usize) -> Self {
        let side = (slots as f64).sqrt().ceil().max(1.0) as usize;
        FabricDimensions {
            rows: side,
            cols: side,
        }
    }

    /// Manhattan distance between two slot coordinates.
    pub fn manhattan(&self, a: (usize, usize), b: (usize, usize)) -> usize {
        a.0.abs_diff(b.0) + a.1.abs_diff(b.1)
    }

    /// Linear index of a coordinate.
    pub fn index(&self, coord: (usize, usize)) -> usize {
        coord.0 * self.cols + coord.1
    }

    /// Coordinate of a linear index.
    pub fn coord(&self, index: usize) -> (usize, usize) {
        (index / self.cols, index % self.cols)
    }
}

/// A concrete fabric instance: an architecture configuration plus a grid of
/// block slots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fabric {
    /// The architecture this fabric instantiates.
    pub config: ArchitectureConfig,
    /// Grid dimensions.
    pub dims: FabricDimensions,
    slots: Vec<BlockKind>,
}

impl Fabric {
    /// Build a fabric with at least `pe_count` PEs, inserting SMBs and CLBs
    /// at the ratios requested by the configuration. Blocks are interleaved
    /// so that every PE has a buffer and control block nearby.
    pub fn with_pe_count(config: ArchitectureConfig, pe_count: usize) -> Self {
        let pe_count = pe_count.max(1);
        let smb_count = pe_count.div_ceil(config.pes_per_smb);
        let clb_count = pe_count.div_ceil(config.pes_per_clb);
        let total = pe_count + smb_count + clb_count;
        let dims = FabricDimensions::square_for(total);

        let mut slots = Vec::with_capacity(dims.slots());
        let mut placed_smb = 0usize;
        let mut placed_clb = 0usize;
        for i in 0..dims.slots() {
            // Interleave: every (pes_per_smb + 2) slots hold one SMB and one
            // CLB; remaining slots hold PEs (extra slots in the square grid
            // stay PEs so capacity only rounds up).
            let phase = i % (config.pes_per_smb + 2);
            let kind = if phase == config.pes_per_smb && placed_smb < smb_count {
                placed_smb += 1;
                BlockKind::Smb
            } else if phase == config.pes_per_smb + 1 && placed_clb < clb_count {
                placed_clb += 1;
                BlockKind::Clb
            } else {
                BlockKind::Pe
            };
            slots.push(kind);
        }
        Fabric {
            config,
            dims,
            slots,
        }
    }

    /// Build the largest fabric that fits in `area_mm2` of silicon.
    pub fn with_area(config: ArchitectureConfig, area_mm2: f64) -> Self {
        let per_pe_mm2 = config.area_per_pe_um2() * 1e-6;
        let pe_count = ((area_mm2 / per_pe_mm2).floor() as usize).max(1);
        Self::with_pe_count(config, pe_count)
    }

    /// The block kind at each slot, in row-major order.
    pub fn slots(&self) -> &[BlockKind] {
        &self.slots
    }

    /// Slots of a given kind, as linear indices.
    pub fn slots_of(&self, kind: BlockKind) -> Vec<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, k)| **k == kind)
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of PEs on the fabric.
    pub fn pe_count(&self) -> usize {
        self.slots.iter().filter(|k| **k == BlockKind::Pe).count()
    }

    /// Number of SMBs on the fabric.
    pub fn smb_count(&self) -> usize {
        self.slots.iter().filter(|k| **k == BlockKind::Smb).count()
    }

    /// Number of CLBs on the fabric.
    pub fn clb_count(&self) -> usize {
        self.slots.iter().filter(|k| **k == BlockKind::Clb).count()
    }

    /// Total silicon area in mm² (function blocks plus routing drivers; the
    /// mrFPGA routing network itself sits in the metal stack above).
    pub fn area_mm2(&self) -> f64 {
        let (smb, clb) = self.config.support_blocks();
        let blocks = self.pe_count() as f64 * self.config.pe.area_um2
            + self.smb_count() as f64 * smb.area_um2()
            + self.clb_count() as f64 * clb.area_um2();
        let drivers = if self.config.kind.uses_reconfigurable_routing() {
            self.dims.slots() as f64 * self.config.routing.driver_area_um2_per_tile()
        } else {
            0.0
        };
        (blocks + drivers) * 1e-6
    }

    /// Peak computational throughput in operations per second.
    pub fn peak_ops(&self) -> f64 {
        self.pe_count() as f64 * self.config.pe.peak_ops()
    }

    /// Peak computational density in TOPS/mm².
    pub fn peak_density_tops_mm2(&self) -> f64 {
        self.peak_ops() * 1e-12 / self.area_mm2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions_round_up_to_squares() {
        let d = FabricDimensions::square_for(10);
        assert_eq!(d, FabricDimensions { rows: 4, cols: 4 });
        assert!(d.slots() >= 10);
        assert_eq!(FabricDimensions::square_for(0).slots(), 1);
    }

    #[test]
    fn coordinate_round_trip() {
        let d = FabricDimensions { rows: 5, cols: 7 };
        for i in 0..d.slots() {
            assert_eq!(d.index(d.coord(i)), i);
        }
        assert_eq!(d.manhattan((0, 0), (3, 4)), 7);
    }

    #[test]
    fn fabric_holds_requested_pe_count() {
        let f = Fabric::with_pe_count(ArchitectureConfig::fpsa(), 100);
        assert!(f.pe_count() >= 100);
        assert!(f.smb_count() >= 100 / 8);
        assert!(f.clb_count() >= 100 / 8);
        assert_eq!(f.slots().len(), f.dims.slots());
    }

    #[test]
    fn block_mix_follows_configuration_ratio() {
        let f = Fabric::with_pe_count(ArchitectureConfig::fpsa(), 512);
        let ratio = f.pe_count() as f64 / f.smb_count() as f64;
        assert!(ratio > 5.0 && ratio < 11.0, "PE/SMB ratio {ratio}");
    }

    #[test]
    fn area_grows_with_pe_count() {
        let small = Fabric::with_pe_count(ArchitectureConfig::fpsa(), 64);
        let large = Fabric::with_pe_count(ArchitectureConfig::fpsa(), 1024);
        assert!(large.area_mm2() > small.area_mm2() * 10.0);
    }

    #[test]
    fn with_area_respects_the_budget() {
        let cfg = ArchitectureConfig::fpsa();
        let f = Fabric::with_area(cfg, 50.0);
        // The realized area stays within ~20% of the requested budget
        // (grid rounding adds a few extra slots).
        assert!(f.area_mm2() < 60.0, "area {}", f.area_mm2());
        assert!(f.area_mm2() > 35.0, "area {}", f.area_mm2());
        assert!(f.pe_count() > 1000);
    }

    #[test]
    fn peak_density_approaches_pe_density() {
        let f = Fabric::with_pe_count(ArchitectureConfig::fpsa(), 256);
        let pe_density = f.config.pe.density_tops_mm2();
        let fabric_density = f.peak_density_tops_mm2();
        // Support blocks and drivers cost some density, but not more than 40%.
        assert!(fabric_density < pe_density);
        assert!(fabric_density > 0.6 * pe_density);
    }

    #[test]
    fn slots_of_partitions_the_grid() {
        let f = Fabric::with_pe_count(ArchitectureConfig::fpsa(), 32);
        let total = f.slots_of(BlockKind::Pe).len()
            + f.slots_of(BlockKind::Smb).len()
            + f.slots_of(BlockKind::Clb).len();
        assert_eq!(total, f.dims.slots());
    }
}
