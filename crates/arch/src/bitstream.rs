//! Configuration bitstream packing.
//!
//! A compiled network ultimately becomes a configuration of the fabric: the
//! ReRAM levels of every PE crossbar, the LUT contents of every CLB, and the
//! on/off state of every routing switch. This module packs those sections
//! into a single binary image and reads them back, so a compiled
//! configuration can be persisted or shipped to (simulated) hardware.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// The kinds of configuration sections in a bitstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SectionKind {
    /// ReRAM levels of one PE crossbar.
    PeWeights,
    /// LUT contents of one CLB.
    ClbLuts,
    /// Switch-box and connection-box switch states of one tile.
    RoutingSwitches,
    /// SMB port and addressing configuration.
    SmbConfig,
}

impl SectionKind {
    fn tag(&self) -> u8 {
        match self {
            SectionKind::PeWeights => 1,
            SectionKind::ClbLuts => 2,
            SectionKind::RoutingSwitches => 3,
            SectionKind::SmbConfig => 4,
        }
    }

    fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            1 => Some(SectionKind::PeWeights),
            2 => Some(SectionKind::ClbLuts),
            3 => Some(SectionKind::RoutingSwitches),
            4 => Some(SectionKind::SmbConfig),
            _ => None,
        }
    }
}

/// One configuration section: the target slot and its payload bits.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Section {
    /// Which kind of resource this configures.
    pub kind: SectionKind,
    /// Linear slot index on the fabric.
    pub slot: u32,
    /// Raw payload bytes.
    pub payload: Vec<u8>,
}

/// Builder and parser for fabric configuration bitstreams.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Bitstream {
    sections: Vec<Section>,
}

/// Magic number identifying an FPSA bitstream.
const MAGIC: u32 = 0xF95A_0001;

impl Bitstream {
    /// Create an empty bitstream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a configuration section.
    pub fn push(&mut self, kind: SectionKind, slot: u32, payload: Vec<u8>) {
        self.sections.push(Section {
            kind,
            slot,
            payload,
        });
    }

    /// The sections in insertion order.
    pub fn sections(&self) -> &[Section] {
        &self.sections
    }

    /// Total configuration size in bytes (payloads only).
    pub fn payload_bytes(&self) -> usize {
        self.sections.iter().map(|s| s.payload.len()).sum()
    }

    /// Serialize to the binary image format.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(16 + self.payload_bytes());
        buf.put_u32(MAGIC);
        buf.put_u32(self.sections.len() as u32);
        for s in &self.sections {
            buf.put_u8(s.kind.tag());
            buf.put_u32(s.slot);
            buf.put_u32(s.payload.len() as u32);
            buf.put_slice(&s.payload);
        }
        buf.freeze()
    }

    /// Parse a binary image back into sections.
    ///
    /// Returns `None` if the image is truncated or has an unknown magic or
    /// section tag.
    pub fn from_bytes(mut data: Bytes) -> Option<Self> {
        if data.remaining() < 8 || data.get_u32() != MAGIC {
            return None;
        }
        let count = data.get_u32() as usize;
        let mut sections = Vec::with_capacity(count);
        for _ in 0..count {
            if data.remaining() < 9 {
                return None;
            }
            let kind = SectionKind::from_tag(data.get_u8())?;
            let slot = data.get_u32();
            let len = data.get_u32() as usize;
            if data.remaining() < len {
                return None;
            }
            let payload = data.copy_to_bytes(len).to_vec();
            sections.push(Section {
                kind,
                slot,
                payload,
            });
        }
        Some(Bitstream { sections })
    }

    /// Pack a slice of 4-bit ReRAM levels (two per byte) into a PE weight
    /// section payload.
    pub fn pack_levels(levels: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(levels.len().div_ceil(2));
        for pair in levels.chunks(2) {
            let lo = pair[0] & 0x0F;
            let hi = pair.get(1).copied().unwrap_or(0) & 0x0F;
            out.push(lo | (hi << 4));
        }
        out
    }

    /// Unpack a PE weight payload back into 4-bit levels.
    pub fn unpack_levels(payload: &[u8], count: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(count);
        for byte in payload {
            out.push(byte & 0x0F);
            out.push(byte >> 4);
        }
        out.truncate(count);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_sections() {
        let mut b = Bitstream::new();
        b.push(SectionKind::PeWeights, 3, vec![1, 2, 3, 4]);
        b.push(SectionKind::RoutingSwitches, 9, vec![0xFF; 10]);
        b.push(SectionKind::ClbLuts, 1, vec![]);
        let bytes = b.to_bytes();
        let parsed = Bitstream::from_bytes(bytes).unwrap();
        assert_eq!(parsed, b);
        assert_eq!(parsed.payload_bytes(), 14);
    }

    #[test]
    fn corrupt_magic_is_rejected() {
        let mut b = Bitstream::new();
        b.push(SectionKind::SmbConfig, 0, vec![1]);
        let mut bytes = b.to_bytes().to_vec();
        bytes[0] ^= 0xFF;
        assert!(Bitstream::from_bytes(Bytes::from(bytes)).is_none());
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let mut b = Bitstream::new();
        b.push(SectionKind::PeWeights, 0, vec![0; 100]);
        let bytes = b.to_bytes();
        let truncated = bytes.slice(0..bytes.len() - 10);
        assert!(Bitstream::from_bytes(truncated).is_none());
    }

    #[test]
    fn level_packing_round_trips() {
        let levels: Vec<u8> = (0..31).map(|i| i % 16).collect();
        let packed = Bitstream::pack_levels(&levels);
        assert_eq!(packed.len(), 16);
        let unpacked = Bitstream::unpack_levels(&packed, levels.len());
        assert_eq!(unpacked, levels);
    }

    #[test]
    fn empty_bitstream_round_trips() {
        let b = Bitstream::new();
        let parsed = Bitstream::from_bytes(b.to_bytes()).unwrap();
        assert!(parsed.sections().is_empty());
    }
}
