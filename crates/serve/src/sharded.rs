//! The pipeline-parallel sharded serving engine.
//!
//! A [`ShardedEngine`] serves a model that has been split into pipeline
//! stages, each pre-bound to its own fabric's [`Executor`] (see
//! `fpsa_shard`, which produces the stage executors). The engine is the
//! serving-side half of multi-fabric model parallelism:
//!
//! ```text
//!  clients ──submit──► stage 0 (DynamicBatcher: coalesce, window)
//!                         │ replicas × worker, own ExecArena
//!                         ▼ batch, payloads rewritten to stage outputs
//!                      stage 1 relay queue ──► workers ──► …
//!                         ▼
//!                      stage N-1 workers ──► tickets resolve (+latency)
//! ```
//!
//! Requests coalesce into dynamic batches at stage 0 exactly like the
//! single-fabric [`crate::ServeEngine`]; a batch then *streams* through the
//! stages as a unit. Each stage owns its replica workers, so while stage 1
//! computes batch A, stage 0 is already computing batch B — consecutive
//! batches occupy different chips concurrently, which is what makes
//! steady-state throughput scale with the stage count on real multi-fabric
//! hardware (the simulator measures that scaling in the modeled domain; see
//! `fpsa_shard::experiments`).
//!
//! # Determinism
//!
//! Stage executors are pure after bind and every request's value path is
//! fixed (stage 0's output is stage 1's input, per request, regardless of
//! batch composition), so engine outputs are bit-identical to chaining
//! `Executor::run` calls per stage — and, when the stages came from
//! `fpsa_shard`, bit-identical to the *unsharded* single-fabric run. The
//! sharded determinism suite in `crates/shard` pins both equalities across
//! precisions, stage counts and concurrent client streams.
//!
//! # Shutdown
//!
//! Shutdown drains front to back: stage 0 stops admitting and drains its
//! batcher, then each relay stage is marked `upstream_done` once every
//! worker of the previous stage has exited, so in-flight batches are never
//! dropped — every ticket resolves.

use crate::batcher::{BatchPolicy, DynamicBatcher};
use crate::engine::{Response, ServeConfig, ServeError, ServeStats, Ticket};
use fpsa_obs::{Span, SpanId, Tracer};
use fpsa_sim::exec::Executor;
use std::collections::VecDeque;
use std::fmt;
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// One request travelling the stage pipeline: the payload starts as the
/// client's input and is rewritten to each stage's output on the way.
struct InFlight {
    payload: Vec<f32>,
    submitted_us: u64,
    tx: mpsc::Sender<Response>,
    /// Root telemetry span of the request ([`Span::DISABLED`] when tracing
    /// was off at submission). Each stage hop opens a child under it.
    span: Span,
}

/// Stage 0's queue: the dynamic batcher plus the admission flag.
struct EntryQueue {
    batcher: DynamicBatcher<InFlight>,
    shutdown: bool,
}

/// A later stage's queue: whole batches relayed from the previous stage.
struct RelayQueue {
    batches: VecDeque<Vec<InFlight>>,
    /// Set once every worker of the previous stage has exited; an empty
    /// queue then means "no more work ever".
    upstream_done: bool,
}

enum StageQueue {
    Entry(EntryQueue),
    Relay(RelayQueue),
}

/// One pipeline stage: its bound executor and its work queue.
struct StageState {
    exec: Executor,
    queue: Mutex<StageQueue>,
    work: Condvar,
}

/// Everything the stage workers share.
struct PipeShared {
    stages: Vec<StageState>,
    input_len: Option<usize>,
    stats: Mutex<ServeStats>,
    started: Instant,
}

impl PipeShared {
    fn now_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }
}

/// An in-process pipeline-parallel serving engine over pre-bound per-stage
/// executors (see the module docs).
pub struct ShardedEngine {
    shared: Arc<PipeShared>,
    /// Worker handles grouped by stage, so shutdown can drain front to back.
    workers: Vec<Vec<thread::JoinHandle<()>>>,
    config: ServeConfig,
}

impl fmt::Debug for ShardedEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("config", &self.config)
            .field("stages", &self.workers.len())
            .finish()
    }
}

impl ShardedEngine {
    /// Start serving over a chain of stage executors. `config.replicas`
    /// workers are spawned **per stage** (each stage is its own chip with
    /// its own worker pool); `max_batch` / `batch_window_us` set the
    /// coalescing policy at the entry stage.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty — a pipeline needs at least one stage.
    pub fn start(stages: Vec<Executor>, config: ServeConfig) -> ShardedEngine {
        assert!(!stages.is_empty(), "a sharded pipeline needs >= 1 stage");
        let config = ServeConfig {
            replicas: config.replicas.max(1),
            max_batch: config.max_batch.max(1),
            batch_window_us: config.batch_window_us,
        };
        let input_len = stages[0].input_len();
        let stage_states: Vec<StageState> = stages
            .into_iter()
            .enumerate()
            .map(|(i, exec)| StageState {
                exec,
                queue: Mutex::new(if i == 0 {
                    StageQueue::Entry(EntryQueue {
                        batcher: DynamicBatcher::new(BatchPolicy::new(
                            config.max_batch,
                            config.batch_window_us,
                        )),
                        shutdown: false,
                    })
                } else {
                    StageQueue::Relay(RelayQueue {
                        batches: VecDeque::new(),
                        upstream_done: false,
                    })
                }),
                work: Condvar::new(),
            })
            .collect();
        let shared = Arc::new(PipeShared {
            stages: stage_states,
            input_len,
            stats: Mutex::new(ServeStats::default()),
            started: Instant::now(),
        });
        let workers = (0..shared.stages.len())
            .map(|stage| {
                (0..config.replicas)
                    .map(|replica| {
                        let shared = Arc::clone(&shared);
                        thread::Builder::new()
                            .name(format!("fpsa-shard-{stage}-{replica}"))
                            .spawn(move || stage_worker(&shared, stage))
                            .expect("sharded serving worker threads spawn")
                    })
                    .collect()
            })
            .collect();
        ShardedEngine {
            shared,
            workers,
            config,
        }
    }

    /// The (clamped) configuration the engine runs with.
    pub fn config(&self) -> ServeConfig {
        self.config
    }

    /// Number of pipeline stages.
    pub fn stage_count(&self) -> usize {
        self.shared.stages.len()
    }

    /// Enqueue one request at the entry stage; never blocks on the model.
    /// Invalid inputs and post-shutdown submissions resolve the ticket
    /// immediately with an error instead of poisoning a batch.
    pub fn submit(&self, input: Vec<f32>) -> Ticket {
        let (tx, rx) = mpsc::channel();
        let ticket = Ticket { rx };
        let rejection = match self.shared.input_len {
            Some(want) if input.len() != want => Some(ServeError::InputLength {
                got: input.len(),
                want,
            }),
            _ => None,
        };
        let entry = &self.shared.stages[0];
        {
            let mut queue = entry.queue.lock().expect("entry queue lock");
            let StageQueue::Entry(q) = &mut *queue else {
                unreachable!("stage 0 is always the entry queue");
            };
            let rejection = rejection.or(q.shutdown.then_some(ServeError::ShutDown));
            if let Some(err) = rejection {
                self.shared.stats.lock().expect("stats lock").rejected += 1;
                let _ = tx.send(Err(err));
                return ticket;
            }
            let tracer = Tracer::global();
            let span = if tracer.enabled() {
                tracer.enter("request", "shard", tracer.now_us(), SpanId::NONE)
            } else {
                Span::DISABLED
            };
            let now = self.shared.now_us();
            q.batcher.push(
                InFlight {
                    payload: input,
                    submitted_us: now,
                    tx,
                    span,
                },
                now,
            );
            let mut stats = self.shared.stats.lock().expect("stats lock");
            stats.submitted += 1;
            stats.record_queue_depth(q.batcher.len());
        }
        entry.work.notify_one();
        ticket
    }

    /// Submit one request and block for its output.
    ///
    /// # Errors
    ///
    /// The request's [`ServeError`], if it failed.
    pub fn infer(&self, input: Vec<f32>) -> Result<Vec<f32>, ServeError> {
        self.submit(input).wait()
    }

    /// Submit a whole batch and collect the outputs in submission order.
    ///
    /// # Errors
    ///
    /// The first failing request's [`ServeError`].
    pub fn serve_batch(&self, inputs: &[Vec<f32>]) -> Result<Vec<Vec<f32>>, ServeError> {
        let tickets: Vec<Ticket> = inputs.iter().map(|x| self.submit(x.clone())).collect();
        tickets.into_iter().map(Ticket::wait).collect()
    }

    /// A snapshot of the lifetime counters. Batches are counted where they
    /// complete (the exit stage), so `batches` means "batches that crossed
    /// the whole pipeline".
    pub fn stats(&self) -> ServeStats {
        *self.shared.stats.lock().expect("stats lock")
    }

    /// Stop admitting requests, drain every stage front to back, join the
    /// workers and return the final counters.
    pub fn shutdown(mut self) -> ServeStats {
        self.shutdown_and_join();
        self.stats()
    }

    fn shutdown_and_join(&mut self) {
        if self.workers.iter().all(Vec::is_empty) {
            return;
        }
        // Front to back: stop admissions, drain stage 0, then cascade the
        // upstream-done marker so each relay stage drains after its feeder.
        for (stage, handles) in self.workers.iter_mut().enumerate() {
            {
                let mut queue = self.shared.stages[stage].queue.lock().expect("queue lock");
                match &mut *queue {
                    StageQueue::Entry(q) => q.shutdown = true,
                    StageQueue::Relay(q) => q.upstream_done = true,
                }
            }
            self.shared.stages[stage].work.notify_all();
            for handle in handles.drain(..) {
                let _ = handle.join();
            }
        }
    }
}

impl Drop for ShardedEngine {
    fn drop(&mut self) {
        self.shutdown_and_join();
    }
}

/// One stage worker: claim batches, execute them on this stage's executor,
/// forward to the next stage (or resolve tickets at the exit stage).
fn stage_worker(shared: &PipeShared, stage: usize) {
    let state = &shared.stages[stage];
    let exit = stage + 1 == shared.stages.len();
    let tracer = Tracer::global();
    let mut arena = state.exec.arena();
    let mut inputs: Vec<Vec<f32>> = Vec::new();
    let mut outputs: Vec<Vec<f32>> = Vec::new();
    let mut latencies: Vec<u64> = Vec::new();
    let mut hop_spans: Vec<Span> = Vec::new();
    while let Some(mut batch) = next_stage_batch(shared, stage) {
        inputs.clear();
        inputs.extend(batch.iter_mut().map(|req| std::mem::take(&mut req.payload)));
        hop_spans.clear();
        if tracer.enabled() {
            let ts = tracer.now_us();
            hop_spans.extend(batch.iter().map(|req| {
                tracer.enter_with(
                    "stage",
                    "shard",
                    ts,
                    req.span.id,
                    &[("stage", stage as i64), ("batch", batch.len() as i64)],
                )
            }));
        }
        let result = state.exec.run_batch_into(&inputs, &mut arena, &mut outputs);
        if !hop_spans.is_empty() {
            let ts = tracer.now_us();
            for span in &hop_spans {
                tracer.exit(span, ts);
            }
        }
        match &result {
            Ok(()) if !exit => {
                // Rewrite payloads to this stage's outputs and relay the
                // batch as a unit — the next stage sees it exactly once.
                for (req, out) in batch.iter_mut().zip(outputs.iter_mut()) {
                    req.payload = std::mem::take(out);
                }
                let next = &shared.stages[stage + 1];
                {
                    let mut queue = next.queue.lock().expect("relay queue lock");
                    let StageQueue::Relay(q) = &mut *queue else {
                        unreachable!("stages past 0 are relay queues");
                    };
                    q.batches.push_back(batch);
                }
                next.work.notify_one();
            }
            Ok(()) => {
                let done_us = shared.now_us();
                latencies.clear();
                latencies.extend(
                    batch
                        .iter()
                        .map(|req| done_us.saturating_sub(req.submitted_us)),
                );
                {
                    // Count before answering, so a client that just received
                    // its output always observes itself in the stats.
                    let mut stats = shared.stats.lock().expect("stats lock");
                    stats.record_batch(batch.len(), true);
                    for &latency in &latencies {
                        stats.record_latency(latency);
                    }
                }
                for ((req, out), &latency) in
                    batch.iter().zip(outputs.iter_mut()).zip(latencies.iter())
                {
                    let _ = req.tx.send(Ok((std::mem::take(out), latency)));
                    if !req.span.id.is_none() {
                        let ts = tracer.now_us();
                        tracer.record(&req.span, "latency_us", latency as i64, ts);
                        tracer.exit(&req.span, ts);
                    }
                }
            }
            Err(e) => {
                // Inputs are validated at submission, so this is an internal
                // failure; the batch stops here and every member learns.
                shared
                    .stats
                    .lock()
                    .expect("stats lock")
                    .record_batch(batch.len(), false);
                for req in &batch {
                    let _ = req.tx.send(Err(ServeError::Exec(e.clone())));
                    if !req.span.id.is_none() {
                        let ts = tracer.now_us();
                        tracer.record(&req.span, "exec_error", 1, ts);
                        tracer.exit(&req.span, ts);
                    }
                }
            }
        }
    }
}

/// Block until this stage has a batch (or is drained out; `None` ends the
/// worker). Stage 0 applies the coalescing policy; relay stages pop FIFO.
fn next_stage_batch(shared: &PipeShared, stage: usize) -> Option<Vec<InFlight>> {
    let state = &shared.stages[stage];
    let mut queue = state.queue.lock().expect("queue lock");
    loop {
        match &mut *queue {
            StageQueue::Entry(q) => {
                let now = shared.now_us();
                if let Some(batch) = q.batcher.pop_ready(now) {
                    if !q.batcher.is_empty() {
                        state.work.notify_one();
                    }
                    return Some(batch);
                }
                if q.shutdown {
                    // Drain without waiting out the window.
                    return q.batcher.pop_now();
                }
                queue = match q.batcher.next_deadline_us() {
                    Some(deadline) => {
                        let wait = Duration::from_micros(deadline.saturating_sub(now).max(1));
                        state.work.wait_timeout(queue, wait).expect("queue lock").0
                    }
                    None => state.work.wait(queue).expect("queue lock"),
                };
            }
            StageQueue::Relay(q) => {
                if let Some(batch) = q.batches.pop_front() {
                    if !q.batches.is_empty() {
                        state.work.notify_one();
                    }
                    return Some(batch);
                }
                if q.upstream_done {
                    return None;
                }
                queue = state.work.wait(queue).expect("queue lock");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpsa_core::Compiler;
    use fpsa_nn::params::mlp_graph;
    use fpsa_nn::GraphParameters;
    use fpsa_sim::Precision;

    /// Two hand-built pipeline stages: 16→8 and 8→4 MLPs. (The real sharded
    /// stage construction — where outputs are proven bit-identical to an
    /// unsharded compilation — lives in `fpsa_shard`; here the engine's
    /// plumbing is tested against manual stage chaining.)
    fn stage_executors() -> Vec<Executor> {
        [("front", vec![16usize, 8]), ("back", vec![8, 4])]
            .into_iter()
            .map(|(name, sizes)| {
                let graph = mlp_graph(name, &sizes);
                let params = GraphParameters::seeded(&graph, 21);
                let compiled = Compiler::fpsa().compile(&graph).unwrap();
                compiled
                    .executor(&graph, &params, &Precision::Float)
                    .unwrap()
            })
            .collect()
    }

    fn sample(seed: u64) -> Vec<f32> {
        (0..16).map(|i| ((seed + i) % 10) as f32 * 0.1).collect()
    }

    fn direct_chain(input: &[f32]) -> Vec<f32> {
        let stages = stage_executors();
        let mut value = input.to_vec();
        for stage in &stages {
            value = stage.run(&value).unwrap();
        }
        value
    }

    #[test]
    fn pipelined_outputs_match_manual_stage_chaining() {
        let engine = ShardedEngine::start(stage_executors(), ServeConfig::default());
        assert_eq!(engine.stage_count(), 2);
        let inputs: Vec<Vec<f32>> = (0..6).map(sample).collect();
        let served = engine.serve_batch(&inputs).unwrap();
        for (x, got) in inputs.iter().zip(&served) {
            assert_eq!(got, &direct_chain(x));
            assert_eq!(got.len(), 4);
        }
        let stats = engine.shutdown();
        assert_eq!(stats.submitted, 6);
        assert_eq!(stats.completed, 6);
        assert_eq!(stats.failed + stats.rejected, 0);
        assert_eq!(stats.latency_us.count(), 6);
    }

    #[test]
    fn bad_inputs_are_rejected_at_the_entry_stage() {
        let engine = ShardedEngine::start(stage_executors(), ServeConfig::direct());
        let err = engine.infer(vec![0.0; 5]).unwrap_err();
        assert_eq!(err, ServeError::InputLength { got: 5, want: 16 });
        assert_eq!(engine.infer(sample(3)).unwrap(), direct_chain(&sample(3)));
        let stats = engine.stats();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn shutdown_drains_in_flight_batches_through_every_stage() {
        let config = ServeConfig {
            replicas: 1,
            max_batch: 8,
            batch_window_us: 30_000_000,
        };
        let engine = ShardedEngine::start(stage_executors(), config);
        // Stragglers that would otherwise wait out a 30 s window at stage 0.
        let tickets: Vec<Ticket> = (0..5).map(|i| engine.submit(sample(i))).collect();
        let stats = engine.shutdown();
        assert_eq!(stats.completed, 5);
        for (i, ticket) in tickets.into_iter().enumerate() {
            assert_eq!(ticket.wait().unwrap(), direct_chain(&sample(i as u64)));
        }
    }

    #[test]
    fn a_full_batch_streams_through_as_one_unit() {
        let config = ServeConfig {
            replicas: 1,
            max_batch: 4,
            batch_window_us: 30_000_000,
        };
        let engine = ShardedEngine::start(stage_executors(), config);
        let tickets: Vec<Ticket> = (0..4).map(|i| engine.submit(sample(i))).collect();
        for ticket in tickets {
            ticket.wait().unwrap();
        }
        let stats = engine.shutdown();
        // Counted at the exit stage: the four requests crossed the pipeline
        // as a single batch.
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.largest_batch(), 4);
        // Bucket [4,7]'s upper bound, capped at the tracked maximum (4).
        assert_eq!(stats.batch_size_percentile(0.5), 4);
    }

    #[test]
    fn a_single_stage_engine_degenerates_to_plain_serving() {
        let graph = mlp_graph("solo", &[16, 4]);
        let params = GraphParameters::seeded(&graph, 3);
        let compiled = Compiler::fpsa().compile(&graph).unwrap();
        let exec = compiled
            .executor(&graph, &params, &Precision::Float)
            .unwrap();
        let want = exec.run(&sample(0)).unwrap();
        let engine = ShardedEngine::start(vec![exec], ServeConfig::default());
        assert_eq!(engine.infer(sample(0)).unwrap(), want);
    }

    #[test]
    fn post_shutdown_submissions_are_rejected() {
        let mut engine = ShardedEngine::start(stage_executors(), ServeConfig::direct());
        engine.shutdown_and_join();
        let err = engine.infer(sample(0)).unwrap_err();
        assert_eq!(err, ServeError::ShutDown);
    }
}
