//! The throughput engine: pre-bound executor replicas draining a shared
//! dynamic-batch queue.
//!
//! # Replica lifecycle
//!
//! [`ServeEngine::start`] takes a bound [`Executor`] — the expensive step
//! (weight realization, artifact verification) already paid exactly once —
//! and shares it read-only (`Arc`) across `replicas` worker threads. Each
//! worker owns the only mutable state it needs: one [`fpsa_sim::ExecArena`]
//! of recycled scratch buffers plus a reusable output table, so the
//! steady-state request path performs no scratch allocation. Workers block
//! on a condvar over the shared [`DynamicBatcher`], pop ready batches FIFO
//! under the queue lock, and execute them *outside* the lock — which is what
//! pipelines consecutive batches across replicas: while one replica computes
//! a batch, the next batch fills and is claimed by another.
//!
//! # Shutdown
//!
//! Dropping the engine (or calling [`ServeEngine::shutdown`]) flips the
//! shutdown flag and wakes every worker; workers then drain the queue
//! without waiting out the batch window and exit once it is empty. Requests
//! are therefore never dropped: every ticket resolves to an output or an
//! error.
//!
//! # Determinism
//!
//! Execution is pure (all randomness is realized when the executor binds),
//! every request is executed by [`Executor::run_into`] — bit-identical to
//! [`Executor::run`] by construction — and each response travels a
//! per-request channel, so neither batch composition, replica count, window
//! length, nor thread scheduling can change *what* a request computes or
//! *which* client receives it. The determinism suite
//! (`tests/determinism.rs`) pins this across all three precisions.

use crate::batcher::{BatchPolicy, DynamicBatcher};
use fpsa_obs::{Counter, Histogram, Registry, Span, SpanId, Tracer};
use fpsa_sim::exec::{ExecError, Executor};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// How an engine batches and shards incoming requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Worker threads sharing the pre-bound executor (clamped to ≥ 1).
    pub replicas: usize,
    /// Largest batch one replica executes in one go (clamped to ≥ 1).
    pub max_batch: usize,
    /// How long a part-full batch may wait for stragglers, in microseconds
    /// (0 = serve immediately, batch only under backlog).
    pub batch_window_us: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            replicas: 2,
            max_batch: 8,
            batch_window_us: 200,
        }
    }
}

impl ServeConfig {
    /// The no-coalescing configuration: one replica, batch size 1, no wait —
    /// the engine-shaped equivalent of calling `Executor::run` per request.
    pub fn direct() -> Self {
        ServeConfig {
            replicas: 1,
            max_batch: 1,
            batch_window_us: 0,
        }
    }

    /// Set the replica count.
    pub fn with_replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas;
        self
    }

    /// Set the maximum batch size.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Set the batch window in microseconds.
    pub fn with_batch_window_us(mut self, window_us: u64) -> Self {
        self.batch_window_us = window_us;
        self
    }
}

/// Why a request failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The engine is shutting down and no longer admits requests.
    ShutDown,
    /// The input does not match the model's input width.
    InputLength {
        /// Elements submitted.
        got: usize,
        /// Elements the graph expects.
        want: usize,
    },
    /// The executor rejected the batch (propagated per request).
    Exec(ExecError),
    /// The serving thread disappeared before answering (engine panic).
    Canceled,
    /// Admission control shed the request: the tenant's observed p99
    /// latency exceeds its SLO budget and its backlog is above the shed
    /// threshold, so serving it would only deepen the violation.
    Shed {
        /// The tenant whose SLO budget is blown.
        tenant: u16,
        /// Observed p99 latency in microseconds at shed time.
        p99_us: u64,
        /// The tenant's configured p99 budget in microseconds.
        budget_us: u64,
    },
    /// The fleet tier knows no model registered under the submitted id.
    UnknownModel {
        /// The model id the request named.
        model: u16,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::ShutDown => write!(f, "serving engine is shut down"),
            ServeError::InputLength { got, want } => {
                write!(f, "input has {got} elements, model expects {want}")
            }
            ServeError::Exec(e) => write!(f, "execution failed: {e}"),
            ServeError::Canceled => write!(f, "request canceled before completion"),
            ServeError::Shed {
                tenant,
                p99_us,
                budget_us,
            } => write!(
                f,
                "request shed: tenant {tenant} p99 {p99_us}us exceeds SLO budget {budget_us}us"
            ),
            ServeError::UnknownModel { model } => {
                write!(f, "request names unknown model {model}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Number of power-of-two buckets in each [`ServeStats`] histogram.
/// An alias of [`fpsa_obs::HIST_BUCKETS`]: the serving stats were the
/// original home of the bucketed-percentile machinery, which now lives in
/// the shared [`fpsa_obs::Histogram`] every layer uses.
pub const STATS_BUCKETS: usize = fpsa_obs::HIST_BUCKETS;

/// Aggregate counters over an engine's lifetime.
///
/// Besides the plain counters, the stats carry three power-of-two-bucketed
/// [`Histogram`]s (executed batch sizes, queue depth observed at
/// submission, request latency) whose percentiles are exact up to bucket
/// granularity — an answer is never *under*-reported by more than one
/// bucket (2×), at any magnitude: each histogram tracks its true maximum
/// ([`ServeStats::largest_batch`], [`ServeStats::max_queue_depth`],
/// [`ServeStats::max_latency_us`]), percentile reads are capped at it, and
/// the saturated overflow bucket reports it outright instead of its
/// power-of-two upper bound (which tops out at `2^31 − 1` µs ≈ 36 min and
/// would under-report a multi-hour latency without the cap).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeStats {
    /// Requests admitted into the queue.
    pub submitted: u64,
    /// Requests answered with an output.
    pub completed: u64,
    /// Requests answered with an error after admission.
    pub failed: u64,
    /// Requests rejected at submission (bad input length, shutdown).
    pub rejected: u64,
    /// Batches executed.
    pub batches: u64,
    /// Executed batch sizes: bucket `i ≥ 1` counts batches of size in
    /// `[2^(i-1), 2^i)`.
    pub batch_sizes: Histogram,
    /// Queue depth seen at each submission (after the request joined),
    /// same bucketing.
    pub queue_depth: Histogram,
    /// Submit-to-completion latency of every completed request in
    /// microseconds, same bucketing.
    pub latency_us: Histogram,
}

impl ServeStats {
    /// Mean executed batch size (0 when no batch ran yet).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            (self.completed + self.failed) as f64 / self.batches as f64
        }
    }

    /// Largest batch observed.
    pub fn largest_batch(&self) -> usize {
        self.batch_sizes.max() as usize
    }

    /// Deepest queue ever observed at a submission.
    pub fn max_queue_depth(&self) -> u64 {
        self.queue_depth.max()
    }

    /// Largest latency ever recorded, in microseconds.
    pub fn max_latency_us(&self) -> u64 {
        self.latency_us.max()
    }

    /// The `q`-quantile of completed-request latency in microseconds
    /// (bucket upper bound capped at the tracked maximum; 0 when nothing
    /// completed).
    pub fn latency_percentile_us(&self, q: f64) -> u64 {
        self.latency_us.percentile(q)
    }

    /// Median request latency in microseconds (see
    /// [`ServeStats::latency_percentile_us`]).
    pub fn p50_latency_us(&self) -> u64 {
        self.latency_percentile_us(0.50)
    }

    /// 99th-percentile request latency in microseconds.
    pub fn p99_latency_us(&self) -> u64 {
        self.latency_percentile_us(0.99)
    }

    /// The `q`-quantile of executed batch sizes.
    pub fn batch_size_percentile(&self, q: f64) -> u64 {
        self.batch_sizes.percentile(q)
    }

    /// The `q`-quantile of the queue depth observed at submission.
    pub fn queue_depth_percentile(&self, q: f64) -> u64 {
        self.queue_depth.percentile(q)
    }

    /// Count one executed batch (size, histogram, and the member requests
    /// as completed or failed). Public so external measurement substrates
    /// (the `fpsa_workload` virtual-time replay) can build stats with the
    /// engine's exact bucketing contract.
    pub fn record_batch(&mut self, size: usize, ok: bool) {
        self.batches += 1;
        self.batch_sizes.record(size as u64);
        if ok {
            self.completed += size as u64;
        } else {
            self.failed += size as u64;
        }
    }

    /// Record the queue depth a submission observed.
    pub fn record_queue_depth(&mut self, depth: usize) {
        self.queue_depth.record(depth as u64);
    }

    /// Record one completed request's latency.
    pub fn record_latency(&mut self, us: u64) {
        self.latency_us.record(us);
    }
}

/// One response: the logits plus the request's queue-to-completion latency
/// in microseconds (stamped by the worker, not by the waiter). Public so
/// out-of-crate engines (the fleet tier) can answer tickets minted via
/// [`Ticket::channel`] under the same contract.
pub type Response = Result<(Vec<f32>, u64), ServeError>;

/// A pending request inside the queue.
struct Request {
    input: Vec<f32>,
    submitted_us: u64,
    tx: mpsc::Sender<Response>,
    /// The request's root trace span ([`Span::DISABLED`] when the global
    /// tracer is off — every later tracing call on it is then a no-op).
    span: Span,
    /// The open `queue` child span, closed when a worker claims the batch.
    queue_span: Span,
}

/// The handle [`ServeEngine::submit`] returns: redeem it for the output.
/// Each ticket is answered exactly once; responses cannot cross between
/// requests because every ticket owns its own channel.
pub struct Ticket {
    pub(crate) rx: mpsc::Receiver<Response>,
}

impl Ticket {
    /// A fresh ticket plus the sender that resolves it. This is the hook
    /// external engines (e.g. the fleet tier) use to answer requests under
    /// the same exactly-once ticket contract as the in-crate engines: send
    /// one [`Response`] on the returned sender, or drop it to cancel the
    /// ticket ([`Ticket::wait`] then yields [`ServeError::Canceled`]).
    pub fn channel() -> (mpsc::Sender<Response>, Ticket) {
        let (tx, rx) = mpsc::channel();
        (tx, Ticket { rx })
    }

    /// Resolve a ticket immediately with `response` — the rejection path
    /// for engines that refuse a request at submit time (shed, shutdown,
    /// bad input) without involving a worker.
    pub fn resolved(response: Response) -> Ticket {
        let (tx, ticket) = Ticket::channel();
        let _ = tx.send(response);
        ticket
    }

    /// Block until the output is ready.
    ///
    /// # Errors
    ///
    /// The request's [`ServeError`], if it failed.
    pub fn wait(self) -> Result<Vec<f32>, ServeError> {
        self.wait_timed().map(|(out, _)| out)
    }

    /// Block until the output is ready, also returning the request's
    /// submit-to-completion latency in microseconds.
    ///
    /// # Errors
    ///
    /// The request's [`ServeError`], if it failed.
    pub fn wait_timed(self) -> Result<(Vec<f32>, u64), ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Canceled))
    }
}

/// Queue state behind the engine's mutex.
struct QueueState {
    batcher: DynamicBatcher<Request>,
    shutdown: bool,
    stats: ServeStats,
}

/// Global-registry counter handles, registered once at engine start and
/// cached so the hot path pays one relaxed RMW per event — never the
/// registry's name-table lock.
pub struct EngineCounters {
    submitted: Counter,
    completed: Counter,
    failed: Counter,
    rejected: Counter,
}

impl EngineCounters {
    /// Register (idempotently) the four lifecycle counters under `tier`
    /// (e.g. `serve` → `serve.submitted` …).
    pub fn for_tier(tier: &str) -> EngineCounters {
        let registry = Registry::global();
        EngineCounters {
            submitted: registry.counter(&format!("{tier}.submitted")),
            completed: registry.counter(&format!("{tier}.completed")),
            failed: registry.counter(&format!("{tier}.failed")),
            rejected: registry.counter(&format!("{tier}.rejected")),
        }
    }

    /// Count one admitted request.
    pub fn submitted(&self) {
        Registry::global().inc(self.submitted);
    }

    /// Count one rejected request.
    pub fn rejected(&self) {
        Registry::global().inc(self.rejected);
    }

    /// Count one executed batch: `n` completions or `n` failures.
    pub fn batch_done(&self, n: usize, ok: bool) {
        let counter = if ok { self.completed } else { self.failed };
        Registry::global().add(counter, n as u64);
    }
}

/// Everything the worker threads share (itself behind one `Arc`).
struct Shared {
    exec: Executor,
    input_len: Option<usize>,
    state: Mutex<QueueState>,
    work: Condvar,
    started: Instant,
    counters: EngineCounters,
}

impl Shared {
    /// Microseconds since the engine started (the batcher's clock).
    fn now_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }
}

/// An in-process serving engine over one pre-bound executor: dynamic
/// batching in front, replica sharding behind (see the module docs).
pub struct ServeEngine {
    shared: Arc<Shared>,
    workers: Vec<thread::JoinHandle<()>>,
    config: ServeConfig,
}

impl fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServeEngine")
            .field("config", &self.config)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl ServeEngine {
    /// Start serving: bind-once executor in, worker pool out.
    pub fn start(executor: Executor, config: ServeConfig) -> ServeEngine {
        let config = ServeConfig {
            replicas: config.replicas.max(1),
            max_batch: config.max_batch.max(1),
            batch_window_us: config.batch_window_us,
        };
        let input_len = executor.input_len();
        let shared = Arc::new(Shared {
            exec: executor,
            input_len,
            state: Mutex::new(QueueState {
                batcher: DynamicBatcher::new(BatchPolicy::new(
                    config.max_batch,
                    config.batch_window_us,
                )),
                shutdown: false,
                stats: ServeStats::default(),
            }),
            work: Condvar::new(),
            started: Instant::now(),
            counters: EngineCounters::for_tier("serve"),
        });
        let workers = (0..config.replicas)
            .map(|replica| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("fpsa-serve-{replica}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("serving worker threads spawn")
            })
            .collect();
        ServeEngine {
            shared,
            workers,
            config,
        }
    }

    /// The (clamped) configuration the engine runs with.
    pub fn config(&self) -> ServeConfig {
        self.config
    }

    /// Enqueue one request; never blocks on the model. Invalid inputs and
    /// post-shutdown submissions resolve the ticket immediately with an
    /// error instead of poisoning a batch.
    pub fn submit(&self, input: Vec<f32>) -> Ticket {
        let (tx, rx) = mpsc::channel();
        let ticket = Ticket { rx };
        let rejection = match self.shared.input_len {
            Some(want) if input.len() != want => Some(ServeError::InputLength {
                got: input.len(),
                want,
            }),
            _ => None,
        };
        // One relaxed load when tracing is off; spans open outside the
        // queue lock so tracing never extends the critical section.
        let tracer = Tracer::global();
        let (span, queue_span) = if tracer.enabled() {
            let ts = tracer.now_us();
            let span = tracer.enter("request", "serve", ts, SpanId::NONE);
            let queue_span = tracer.enter("queue", "serve", ts, span.id);
            (span, queue_span)
        } else {
            (Span::DISABLED, Span::DISABLED)
        };
        {
            let mut state = self.shared.state.lock().expect("queue lock");
            if let Some(err) = rejection {
                state.stats.rejected += 1;
                self.shared.counters.rejected();
                let _ = tx.send(Err(err));
                drop(state);
                if !span.id.is_none() {
                    let ts = tracer.now_us();
                    tracer.record(&span, "rejected", 1, ts);
                    tracer.exit(&queue_span, ts);
                    tracer.exit(&span, ts);
                }
                return ticket;
            }
            if state.shutdown {
                state.stats.rejected += 1;
                self.shared.counters.rejected();
                let _ = tx.send(Err(ServeError::ShutDown));
                drop(state);
                if !span.id.is_none() {
                    let ts = tracer.now_us();
                    tracer.record(&span, "shutdown", 1, ts);
                    tracer.exit(&queue_span, ts);
                    tracer.exit(&span, ts);
                }
                return ticket;
            }
            // Stamped under the lock, so batcher timestamps are monotone
            // and the oldest entry is always the queue front.
            let now = self.shared.now_us();
            state.stats.submitted += 1;
            self.shared.counters.submitted();
            state.batcher.push(
                Request {
                    input,
                    submitted_us: now,
                    tx,
                    span,
                    queue_span,
                },
                now,
            );
            let depth = state.batcher.len();
            state.stats.record_queue_depth(depth);
            tracer.counter("serve.queue_depth", "serve", now, depth as i64);
        }
        self.shared.work.notify_one();
        ticket
    }

    /// Submit one request and block for its output.
    ///
    /// # Errors
    ///
    /// The request's [`ServeError`], if it failed.
    pub fn infer(&self, input: Vec<f32>) -> Result<Vec<f32>, ServeError> {
        self.submit(input).wait()
    }

    /// Submit a whole batch and collect the outputs in submission order.
    ///
    /// # Errors
    ///
    /// The first failing request's [`ServeError`].
    pub fn serve_batch(&self, inputs: &[Vec<f32>]) -> Result<Vec<Vec<f32>>, ServeError> {
        let tickets: Vec<Ticket> = inputs.iter().map(|x| self.submit(x.clone())).collect();
        tickets.into_iter().map(Ticket::wait).collect()
    }

    /// A snapshot of the lifetime counters.
    pub fn stats(&self) -> ServeStats {
        self.shared.state.lock().expect("queue lock").stats
    }

    /// Stop admitting requests, drain the queue, join the workers and
    /// return the final counters.
    pub fn shutdown(mut self) -> ServeStats {
        self.shutdown_and_join();
        self.stats()
    }

    fn shutdown_and_join(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("queue lock");
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.shutdown_and_join();
    }
}

/// One replica: claim ready batches FIFO, execute them outside the lock on
/// this replica's arena, answer every ticket, repeat until drained shutdown.
fn worker_loop(shared: &Shared) {
    let tracer = Tracer::global();
    let mut arena = shared.exec.arena();
    let mut inputs: Vec<Vec<f32>> = Vec::new();
    let mut outputs: Vec<Vec<f32>> = Vec::new();
    let mut exec_spans: Vec<Span> = Vec::new();
    while let Some(mut batch) = next_batch(shared) {
        inputs.clear();
        inputs.extend(batch.iter_mut().map(|req| std::mem::take(&mut req.input)));
        exec_spans.clear();
        if tracer.enabled() {
            // The claim instant closes every member's queue span and opens
            // its execute span (sharing the request's correlation id, so
            // the chain nests in the exported trace).
            let ts = tracer.now_us();
            for req in &batch {
                tracer.exit(&req.queue_span, ts);
            }
            exec_spans.extend(batch.iter().map(|req| {
                tracer.enter_with(
                    "execute",
                    "serve",
                    ts,
                    req.span.id,
                    &[("batch", batch.len() as i64)],
                )
            }));
        }
        let result = shared
            .exec
            .run_batch_into(&inputs, &mut arena, &mut outputs);
        let done_us = shared.now_us();
        if !exec_spans.is_empty() {
            let ts = tracer.now_us();
            for span in &exec_spans {
                tracer.exit(span, ts);
            }
        }
        {
            // Count the batch before answering its tickets, so a client that
            // just received its output always observes itself in the stats.
            let mut state = shared.state.lock().expect("queue lock");
            state.stats.record_batch(batch.len(), result.is_ok());
            shared.counters.batch_done(batch.len(), result.is_ok());
            if result.is_ok() {
                for req in &batch {
                    state
                        .stats
                        .record_latency(done_us.saturating_sub(req.submitted_us));
                }
            }
        }
        match &result {
            Ok(()) => {
                for (req, out) in batch.iter().zip(outputs.iter_mut()) {
                    let latency = done_us.saturating_sub(req.submitted_us);
                    if req.span.id.is_none() {
                        let _ = req.tx.send(Ok((std::mem::take(out), latency)));
                    } else {
                        let respond =
                            tracer.enter("respond", "serve", tracer.now_us(), req.span.id);
                        let _ = req.tx.send(Ok((std::mem::take(out), latency)));
                        let ts = tracer.now_us();
                        tracer.record(&req.span, "latency_us", latency as i64, ts);
                        tracer.exit(&respond, ts);
                        tracer.exit(&req.span, ts);
                    }
                }
            }
            Err(e) => {
                // Inputs are validated at submission, so this is an internal
                // failure; every member of the batch learns about it.
                for req in &batch {
                    let _ = req.tx.send(Err(ServeError::Exec(e.clone())));
                    if !req.span.id.is_none() {
                        let ts = tracer.now_us();
                        tracer.record(&req.span, "exec_error", 1, ts);
                        tracer.exit(&req.span, ts);
                    }
                }
            }
        }
    }
}

/// Block until a batch is ready (or the engine drained out). Wakes on new
/// work and on the oldest request's deadline; after a pop, hands any
/// leftover queue to another replica via `notify_one` — that hand-off is
/// the batch pipeline.
fn next_batch(shared: &Shared) -> Option<Vec<Request>> {
    let mut state = shared.state.lock().expect("queue lock");
    loop {
        let now = shared.now_us();
        if let Some(batch) = state.batcher.pop_ready(now) {
            if !state.batcher.is_empty() {
                shared.work.notify_one();
            }
            return Some(batch);
        }
        if state.shutdown {
            // Drain without waiting out the window; None ends the worker.
            return state.batcher.pop_now();
        }
        state = match state.batcher.next_deadline_us() {
            Some(deadline) => {
                let wait = Duration::from_micros(deadline.saturating_sub(now).max(1));
                shared.work.wait_timeout(state, wait).expect("queue lock").0
            }
            None => shared.work.wait(state).expect("queue lock"),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpsa_core::Compiler;
    use fpsa_nn::{zoo, GraphParameters};
    use fpsa_sim::Precision;

    fn mlp_executor() -> Executor {
        let graph = zoo::tiny_mlp();
        let params = GraphParameters::seeded(&graph, 7);
        let compiled = Compiler::fpsa().compile(&graph).unwrap();
        compiled
            .executor(&graph, &params, &Precision::Float)
            .unwrap()
    }

    fn sample(seed: u64) -> Vec<f32> {
        (0..16).map(|i| ((seed + i) % 10) as f32 * 0.1).collect()
    }

    #[test]
    fn served_outputs_match_direct_execution() {
        let exec = mlp_executor();
        let direct: Vec<Vec<f32>> = (0..6).map(|i| exec.run(&sample(i)).unwrap()).collect();
        let engine = ServeEngine::start(mlp_executor(), ServeConfig::default());
        let inputs: Vec<Vec<f32>> = (0..6).map(sample).collect();
        let served = engine.serve_batch(&inputs).unwrap();
        assert_eq!(served, direct);
        let stats = engine.shutdown();
        assert_eq!(stats.submitted, 6);
        assert_eq!(stats.completed, 6);
        assert_eq!(stats.failed + stats.rejected, 0);
    }

    #[test]
    fn bad_input_lengths_are_rejected_without_poisoning_the_queue() {
        let engine = ServeEngine::start(mlp_executor(), ServeConfig::direct());
        let err = engine.infer(vec![0.0; 3]).unwrap_err();
        assert_eq!(err, ServeError::InputLength { got: 3, want: 16 });
        // A well-formed request right after still serves.
        assert_eq!(engine.infer(sample(1)).unwrap().len(), 4);
        let stats = engine.stats();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn a_full_batch_flushes_before_its_window_expires() {
        // Window far beyond the test's patience: the only way these four
        // requests complete promptly is the size trigger.
        let config = ServeConfig {
            replicas: 1,
            max_batch: 4,
            batch_window_us: 30_000_000,
        };
        let engine = ServeEngine::start(mlp_executor(), config);
        let tickets: Vec<Ticket> = (0..4).map(|i| engine.submit(sample(i))).collect();
        for ticket in tickets {
            ticket.wait().unwrap();
        }
        let stats = engine.shutdown();
        assert_eq!(stats.batches, 1, "four submissions must coalesce");
        assert_eq!(stats.largest_batch(), 4);
    }

    #[test]
    fn shutdown_drains_pending_requests_instead_of_dropping_them() {
        let config = ServeConfig {
            replicas: 2,
            max_batch: 8,
            batch_window_us: 30_000_000,
        };
        let engine = ServeEngine::start(mlp_executor(), config);
        // Three stragglers that would otherwise wait out a 30 s window.
        let tickets: Vec<Ticket> = (0..3).map(|i| engine.submit(sample(i))).collect();
        let stats = engine.shutdown();
        assert_eq!(stats.completed, 3);
        for ticket in tickets {
            assert_eq!(ticket.wait().unwrap().len(), 4);
        }
    }

    #[test]
    fn config_clamps_to_at_least_one_replica_and_batch() {
        let engine = ServeEngine::start(
            mlp_executor(),
            ServeConfig {
                replicas: 0,
                max_batch: 0,
                batch_window_us: 0,
            },
        );
        assert_eq!(engine.config().replicas, 1);
        assert_eq!(engine.config().max_batch, 1);
        assert_eq!(engine.infer(sample(0)).unwrap().len(), 4);
    }

    #[test]
    fn histograms_account_for_every_request_and_batch() {
        let engine = ServeEngine::start(mlp_executor(), ServeConfig::direct());
        for i in 0..5 {
            engine.infer(sample(i)).unwrap();
        }
        let stats = engine.shutdown();
        assert_eq!(stats.batch_sizes.count(), stats.batches);
        assert_eq!(stats.latency_us.count(), stats.completed);
        assert_eq!(
            stats.queue_depth.count(),
            stats.submitted,
            "every admitted request records the depth it observed"
        );
        // Direct mode executes batches of exactly one.
        assert_eq!(stats.batch_size_percentile(0.5), 1);
        assert_eq!(stats.batch_size_percentile(0.99), 1);
        assert!(stats.p50_latency_us() <= stats.p99_latency_us());
        assert!(stats.queue_depth_percentile(0.5) >= 1);
    }

    #[test]
    fn histogram_percentiles_use_bucket_upper_bounds_capped_at_the_maximum() {
        let mut stats = ServeStats::default();
        // 99 fast requests at 3 us (bucket [2,3]), one straggler at 1000 us.
        for _ in 0..99 {
            stats.record_latency(3);
        }
        stats.record_latency(1_000);
        assert_eq!(stats.p50_latency_us(), 3);
        assert_eq!(stats.p99_latency_us(), 3);
        // The top non-empty bucket's upper bound (1023) is capped at the
        // tracked maximum: the p100 answer is exact.
        assert_eq!(stats.latency_percentile_us(1.0), 1_000);
        assert_eq!(stats.max_latency_us(), 1_000);
        assert_eq!(ServeStats::default().p99_latency_us(), 0);
        // Zero values land in bucket zero.
        let mut zeros = ServeStats::default();
        zeros.record_queue_depth(0);
        assert_eq!(zeros.queue_depth_percentile(0.5), 0);
    }

    #[test]
    fn overflow_bucket_reports_the_tracked_maximum_not_its_saturated_bound() {
        // Regression: `stats_bucket` clamps to bucket 31, whose power-of-two
        // upper bound is 2^31 − 1 µs (~36 min). A multi-hour latency used to
        // be silently reported as ~36 min — a >5× under-report that broke
        // the documented "never under-reported by more than one bucket (2×)"
        // contract. The overflow bucket must answer with the true maximum.
        let four_hours_us: u64 = 4 * 3_600 * 1_000_000;
        assert!(four_hours_us > (1u64 << 31) - 1);
        let mut stats = ServeStats::default();
        stats.record_latency(four_hours_us);
        assert_eq!(stats.latency_us.buckets()[STATS_BUCKETS - 1], 1);
        assert_eq!(stats.p50_latency_us(), four_hours_us);
        assert_eq!(stats.p99_latency_us(), four_hours_us);
        assert_eq!(stats.latency_percentile_us(1.0), four_hours_us);

        // Mixed with fast traffic, the tail percentile still reports the
        // true maximum once its rank lands in the overflow bucket.
        let mut mixed = ServeStats::default();
        for _ in 0..9 {
            mixed.record_latency(100);
        }
        mixed.record_latency(four_hours_us);
        assert_eq!(mixed.p50_latency_us(), 127);
        assert_eq!(mixed.latency_percentile_us(0.95), four_hours_us);

        // The same contract holds for the queue-depth histogram.
        let mut deep = ServeStats::default();
        deep.record_queue_depth(usize::try_from(3u64 << 31).unwrap());
        assert_eq!(deep.queue_depth_percentile(0.99), 3u64 << 31);
    }

    #[test]
    fn stats_mean_batch_is_well_defined() {
        assert_eq!(ServeStats::default().mean_batch(), 0.0);
        let stats = ServeStats {
            completed: 6,
            batches: 2,
            ..ServeStats::default()
        };
        assert!((stats.mean_batch() - 3.0).abs() < 1e-12);
    }
}
