//! Weighted-fair queueing across tenants: deficit round-robin over
//! per-tenant [`DynamicBatcher`] lanes.
//!
//! The fleet engine serves many tenants from one fabric, so admission needs
//! an arbiter between tenant queues that (a) keeps each tenant's stream
//! FIFO, (b) never starves anyone, and (c) skews service capacity by a
//! configured weight. [`WeightedFairBatcher`] is that arbiter: one
//! [`DynamicBatcher`] lane per tenant, scheduled by classic **deficit
//! round-robin** — each time the scan visits a lane that has a flushable
//! batch, the lane earns `weight` credits, and it may pop only when its
//! accumulated deficit covers the batch size. A lane that empties forfeits
//! its credit, so idle tenants cannot bank service.
//!
//! Like the underlying batcher, the machine is **pure and clock-free**:
//! time enters only as `now_us` arguments, no threads or `Instant` anywhere,
//! so the property suite (`tests/wfq_properties.rs`) can drive it through
//! arbitrary multi-tenant interleavings with a synthetic clock and check:
//!
//! * **lossless, duplicate-free** — concatenating every popped batch is a
//!   permutation-free interleaving of the per-tenant arrival sequences;
//! * **per-tenant FIFO** — each tenant's items pop in arrival order;
//! * **bounded deficit** — no lane's credit ever exceeds
//!   `max_batch + weight`, the DRR fairness bound;
//! * **deadline-keeping** — a non-empty machine is ready no later than
//!   [`WeightedFairBatcher::next_deadline_us`].

use crate::batcher::{BatchPolicy, DynamicBatcher};

/// One tenant's queue plus its deficit-round-robin bookkeeping.
#[derive(Debug)]
struct Lane<T> {
    queue: DynamicBatcher<T>,
    /// Credits earned per scan visit; spending one unit serves one request.
    weight: u64,
    /// Accumulated unspent credit (reset when the lane drains empty).
    deficit: u64,
}

/// A multi-tenant batching queue under deficit round-robin (see the module
/// docs). Tenants are dense `u16` indices, matching `TraceEvent::tenant`;
/// lanes materialize lazily on first use with weight 1 unless configured
/// via [`WeightedFairBatcher::set_weight`].
#[derive(Debug)]
pub struct WeightedFairBatcher<T> {
    policy: BatchPolicy,
    lanes: Vec<Lane<T>>,
    /// The lane the next DRR scan starts from.
    cursor: usize,
    /// Whether the cursor's lane has already earned its quantum for the
    /// visit in progress (a lane keeps serving across `pop_ready` calls
    /// until its deficit runs dry; it must not re-earn per pop).
    visit_credited: bool,
    len: usize,
}

impl<T> WeightedFairBatcher<T> {
    /// An empty machine; every lane gets `policy` and weight 1 until
    /// configured otherwise.
    pub fn new(policy: BatchPolicy) -> Self {
        WeightedFairBatcher {
            policy: BatchPolicy::new(policy.max_batch, policy.window_us),
            lanes: Vec::new(),
            cursor: 0,
            visit_credited: false,
            len: 0,
        }
    }

    /// The per-lane batch policy.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Total queued items across all tenants.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is queued anywhere.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Items queued for one tenant.
    pub fn tenant_len(&self, tenant: u16) -> usize {
        self.lanes
            .get(usize::from(tenant))
            .map_or(0, |lane| lane.queue.len())
    }

    /// `tenant`'s scheduling weight (1 until configured).
    pub fn weight(&self, tenant: u16) -> u64 {
        self.lanes
            .get(usize::from(tenant))
            .map_or(1, |lane| lane.weight)
    }

    /// Set `tenant`'s weight (clamped to at least 1): credits earned per
    /// scan visit, i.e. the tenant's relative share under contention.
    pub fn set_weight(&mut self, tenant: u16, weight: u64) {
        self.lane_mut(tenant).weight = weight.max(1);
    }

    /// `tenant`'s current unspent DRR credit (a fairness diagnostic; the
    /// property suite pins its bound).
    pub fn deficit(&self, tenant: u16) -> u64 {
        self.lanes
            .get(usize::from(tenant))
            .map_or(0, |lane| lane.deficit)
    }

    fn lane_mut(&mut self, tenant: u16) -> &mut Lane<T> {
        let index = usize::from(tenant);
        while self.lanes.len() <= index {
            self.lanes.push(Lane {
                queue: DynamicBatcher::new(self.policy),
                weight: 1,
                deficit: 0,
            });
        }
        &mut self.lanes[index]
    }

    /// Enqueue one item for `tenant`, observed at `now_us` (monotone stamps
    /// expected, exactly as for [`DynamicBatcher::push`]).
    pub fn push(&mut self, tenant: u16, item: T, now_us: u64) {
        self.lane_mut(tenant).queue.push(item, now_us);
        self.len += 1;
    }

    /// The earliest instant any lane's oldest item ages out (`None` when
    /// empty). Polling [`WeightedFairBatcher::pop_ready`] then is
    /// guaranteed to yield a batch.
    pub fn next_deadline_us(&self) -> Option<u64> {
        self.lanes
            .iter()
            .filter_map(|lane| lane.queue.next_deadline_us())
            .min()
    }

    /// Whether some lane has a flushable batch at `now_us`.
    pub fn ready(&self, now_us: u64) -> bool {
        self.lanes.iter().any(|lane| lane.queue.ready(now_us))
    }

    /// Pop the next batch under deficit round-robin if any lane is ready at
    /// `now_us`, returning `(tenant, batch)`.
    ///
    /// Classic DRR visit semantics, spread across calls: when the scan
    /// reaches a ready lane it earns its `weight` quantum once, then keeps
    /// serving that lane (one batch per call, each pop paying its size)
    /// until the deficit no longer covers the next flushable batch — only
    /// then does the cursor move on. A lane that drains empty forfeits its
    /// remaining credit. Every full scan cycle re-credits each still-ready
    /// lane, so whenever [`Self::ready`] holds some lane is served within
    /// `max_batch` cycles — the call never spins.
    pub fn pop_ready(&mut self, now_us: u64) -> Option<(u16, Vec<T>)> {
        if !self.ready(now_us) {
            return None;
        }
        let lanes = self.lanes.len();
        loop {
            let index = self.cursor % lanes;
            let lane = &mut self.lanes[index];
            if lane.queue.ready(now_us) {
                if !self.visit_credited {
                    lane.deficit = lane.deficit.saturating_add(lane.weight);
                    self.visit_credited = true;
                }
                let cost = lane.queue.len().min(self.policy.max_batch) as u64;
                if lane.deficit >= cost {
                    let batch = lane.queue.pop_ready(now_us).expect("lane checked ready");
                    lane.deficit -= batch.len() as u64;
                    if lane.queue.is_empty() {
                        lane.deficit = 0;
                    }
                    self.len -= batch.len();
                    // The cursor stays: the lane may spend its remaining
                    // credit on the next call before the scan moves on.
                    return Some((index as u16, batch));
                }
            } else {
                // A lane that cannot flush right now — empty, or all its
                // stragglers still inside the batching window — is not
                // contending: it forfeits its credit like an idle lane in
                // classic DRR. Letting it bank credit across windows is
                // what would break the `max_batch + weight` deficit bound.
                lane.deficit = 0;
            }
            self.cursor = (index + 1) % lanes;
            self.visit_credited = false;
        }
    }

    /// Pop a batch unconditionally (the shutdown drain path): round-robin
    /// from the cursor, first non-empty lane, ignoring windows and
    /// deficits. `None` only when everything is empty.
    pub fn pop_now(&mut self) -> Option<(u16, Vec<T>)> {
        let lanes = self.lanes.len();
        for offset in 0..lanes {
            let index = (self.cursor + offset) % lanes;
            let lane = &mut self.lanes[index];
            let Some(batch) = lane.queue.pop_now() else {
                continue;
            };
            lane.deficit = 0;
            self.len -= batch.len();
            self.cursor = (index + 1) % lanes;
            self.visit_credited = false;
            return Some((index as u16, batch));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wfq(max_batch: usize, window_us: u64) -> WeightedFairBatcher<u32> {
        WeightedFairBatcher::new(BatchPolicy::new(max_batch, window_us))
    }

    #[test]
    fn single_tenant_degenerates_to_the_plain_batcher() {
        let mut q = wfq(3, 1_000);
        for i in 0..5u32 {
            q.push(0, i, 10);
        }
        assert_eq!(q.pop_ready(10), Some((0, vec![0, 1, 2])));
        assert_eq!(q.pop_ready(10), None, "stragglers wait out the window");
        assert_eq!(q.pop_ready(1_010), Some((0, vec![3, 4])));
        assert!(q.is_empty());
    }

    #[test]
    fn round_robin_alternates_equal_weight_tenants() {
        let mut q = wfq(2, 0);
        for i in 0..4u32 {
            q.push(0, i, 0);
            q.push(1, 100 + i, 0);
        }
        let mut served = Vec::new();
        while let Some((tenant, batch)) = q.pop_ready(0) {
            served.push((tenant, batch));
        }
        assert_eq!(
            served,
            vec![
                (0, vec![0, 1]),
                (1, vec![100, 101]),
                (0, vec![2, 3]),
                (1, vec![102, 103]),
            ]
        );
    }

    #[test]
    fn weights_skew_service_proportionally() {
        // Tenant 1 at weight 3 should drain ~3x faster under contention.
        let mut q = wfq(1, 0);
        q.set_weight(1, 3);
        for i in 0..12u32 {
            q.push(0, i, 0);
            q.push(1, 100 + i, 0);
        }
        let first_eight: Vec<u16> = (0..8).map(|_| q.pop_ready(0).unwrap().0).collect();
        let heavy = first_eight.iter().filter(|&&t| t == 1).count();
        assert_eq!(heavy, 6, "weight-3 tenant got {heavy}/8 of early slots");
    }

    #[test]
    fn empty_lanes_forfeit_their_deficit() {
        let mut q = wfq(4, 0);
        q.set_weight(0, 100);
        q.push(0, 1u32, 0);
        assert_eq!(q.pop_ready(0), Some((0, vec![1])));
        assert_eq!(q.deficit(0), 0, "credit must not bank while idle");
    }

    #[test]
    fn deadlines_surface_the_oldest_lane() {
        let mut q: WeightedFairBatcher<char> = WeightedFairBatcher::new(BatchPolicy::new(8, 500));
        q.push(3, 'a', 400);
        q.push(1, 'b', 100);
        assert_eq!(q.next_deadline_us(), Some(600));
        assert!(!q.ready(599));
        assert!(q.ready(600));
        assert_eq!(q.pop_ready(600), Some((1, vec!['b'])));
    }

    #[test]
    fn pop_now_drains_everything_round_robin() {
        let mut q = wfq(2, u64::MAX);
        for i in 0..3u32 {
            q.push(0, i, 0);
            q.push(2, 100 + i, 0);
        }
        let mut drained = 0;
        while let Some((_, batch)) = q.pop_now() {
            assert!(batch.len() <= 2);
            drained += batch.len();
        }
        assert_eq!(drained, 6);
        assert!(q.is_empty());
    }

    #[test]
    fn sparse_tenant_ids_materialize_lazily() {
        let mut q = wfq(1, 0);
        q.push(40_000, 7u32, 0);
        assert_eq!(q.len(), 1);
        assert_eq!(q.tenant_len(40_000), 1);
        assert_eq!(q.pop_ready(0), Some((40_000, vec![7])));
    }
}
