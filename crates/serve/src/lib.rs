//! `fpsa_serve` — the in-process high-throughput serving engine.
//!
//! Everything below `fpsa_serve` computes one sample at a time:
//! `fpsa_sim::exec::Executor` binds a compiled model's artifacts to weights
//! (the expensive step — weight realization, schedule/transport
//! verification, lowering the tile programs to flat bytecode) and then runs
//! samples purely over the compiled instruction stream. This crate turns
//! that into a *request path* shaped like production inference serving:
//!
//! * **bind once, serve forever** — a [`ServeEngine`] owns one pre-bound
//!   executor shared read-only across a pool of replica worker threads, so
//!   no request ever pays the bind cost again;
//! * **dynamic batching** — queued requests coalesce FIFO up to a size /
//!   deadline window ([`DynamicBatcher`], a pure state machine with its own
//!   property suite);
//! * **replica sharding** — ready batches are claimed by whichever replica
//!   frees up first and executed outside the queue lock, pipelining
//!   consecutive batches across replicas; each replica recycles one
//!   `fpsa_sim::ExecArena`, so the hot path performs no scratch allocation.
//!
//! Throughput comes from amortization and parallelism only — never from
//! changed arithmetic: engine outputs are bit-identical to direct
//! `Executor::run` calls for every precision, batch interleaving and replica
//! count (see `tests/determinism.rs` and DESIGN.md's determinism argument).
//!
//! # Quick start
//!
//! ```
//! use fpsa_core::Compiler;
//! use fpsa_nn::{zoo, GraphParameters};
//! use fpsa_serve::{ServeConfig, ServeEngine};
//! use fpsa_sim::Precision;
//!
//! let graph = zoo::tiny_mlp();
//! let params = GraphParameters::seeded(&graph, 7);
//! let compiled = Compiler::fpsa().compile(&graph)?;
//! let executor = compiled.executor(&graph, &params, &Precision::Float)?;
//!
//! let engine = ServeEngine::start(executor, ServeConfig::default().with_replicas(2));
//! let logits = engine.infer(vec![0.5; 16]).expect("request is served");
//! assert_eq!(logits.len(), 4);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod batcher;
pub mod engine;
pub mod sharded;
pub mod wfq;

pub use batcher::{BatchPolicy, DynamicBatcher};
pub use engine::{
    EngineCounters, Response, ServeConfig, ServeEngine, ServeError, ServeStats, Ticket,
    STATS_BUCKETS,
};
pub use sharded::ShardedEngine;
pub use wfq::WeightedFairBatcher;
