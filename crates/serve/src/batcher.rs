//! The dynamic batcher: a pure, clock-free state machine.
//!
//! The batcher owns the serving engine's admission discipline and nothing
//! else — no threads, no condvars, no `Instant`. Time enters exclusively as
//! `now_us` arguments, which is what makes the machine exhaustively testable:
//! the property suite (`tests/batcher_properties.rs`) drives it with
//! synthetic clocks through arbitrary arrival/poll interleavings and checks
//! the invariants the serving engine's correctness rests on:
//!
//! * **FIFO, lossless, duplicate-free** — the concatenation of every popped
//!   batch is exactly the arrival sequence;
//! * **bounded** — no batch exceeds `max_batch` (and none is empty);
//! * **deadline-keeping** — a non-empty queue is ready no later than
//!   `oldest arrival + window_us`, so a worker polling at
//!   [`DynamicBatcher::next_deadline_us`] always flushes it.
//!
//! A batch becomes ready when it *fills* (`max_batch` pending) or when it
//! *ages out* (the oldest entry has waited `window_us`). A zero window means
//! "never wait": any non-empty queue is ready, and batching then only
//! happens when requests arrive faster than workers drain them.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// When to flush a filling batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchPolicy {
    /// Hard upper bound on batch size (at least 1).
    pub max_batch: usize,
    /// How long the oldest request may wait before the batch is flushed
    /// part-full, in microseconds.
    pub window_us: u64,
}

impl BatchPolicy {
    /// A policy flushing at `max_batch` (clamped to at least 1) or after
    /// `window_us`, whichever comes first.
    pub fn new(max_batch: usize, window_us: u64) -> Self {
        BatchPolicy {
            max_batch: max_batch.max(1),
            window_us,
        }
    }
}

/// A FIFO queue that coalesces items into bounded batches under a
/// [`BatchPolicy`]. Generic over the payload so tests can drive it with
/// plain markers instead of full requests.
#[derive(Debug)]
pub struct DynamicBatcher<T> {
    policy: BatchPolicy,
    pending: VecDeque<(T, u64)>,
}

impl<T> DynamicBatcher<T> {
    /// An empty batcher under `policy`.
    pub fn new(policy: BatchPolicy) -> Self {
        DynamicBatcher {
            policy: BatchPolicy::new(policy.max_batch, policy.window_us),
            pending: VecDeque::new(),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Enqueue one item observed at `now_us`. Timestamps are expected to be
    /// monotone (the engine stamps them under one lock from one clock);
    /// non-monotone stamps only make deadlines conservative, never unsafe.
    pub fn push(&mut self, item: T, now_us: u64) {
        self.pending.push_back((item, now_us));
    }

    /// The instant the oldest pending item ages out (`None` when empty).
    /// Polling [`DynamicBatcher::pop_ready`] at this time is guaranteed to
    /// yield a batch.
    pub fn next_deadline_us(&self) -> Option<u64> {
        self.pending
            .front()
            .map(|&(_, arrived)| arrived.saturating_add(self.policy.window_us))
    }

    /// Whether a batch can be popped at `now_us`: the queue has filled a
    /// whole batch, or the oldest entry's window has expired.
    pub fn ready(&self, now_us: u64) -> bool {
        self.pending.len() >= self.policy.max_batch
            || self
                .next_deadline_us()
                .is_some_and(|deadline| deadline <= now_us)
    }

    /// Pop the next batch if one is ready at `now_us`: the oldest pending
    /// items, FIFO, at most `max_batch` of them.
    pub fn pop_ready(&mut self, now_us: u64) -> Option<Vec<T>> {
        if self.ready(now_us) {
            self.pop_now()
        } else {
            None
        }
    }

    /// Pop a batch unconditionally (the shutdown drain path): the oldest
    /// pending items, FIFO, at most `max_batch`; `None` only when empty.
    pub fn pop_now(&mut self) -> Option<Vec<T>> {
        if self.pending.is_empty() {
            return None;
        }
        let take = self.pending.len().min(self.policy.max_batch);
        Some(self.pending.drain(..take).map(|(item, _)| item).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_flush_immediately_and_keep_fifo_order() {
        let mut b = DynamicBatcher::new(BatchPolicy::new(3, 1_000));
        for i in 0..5u32 {
            b.push(i, 10 + u64::from(i));
        }
        assert!(
            b.ready(12),
            "a full batch is ready regardless of the window"
        );
        assert_eq!(b.pop_ready(12), Some(vec![0, 1, 2]));
        assert!(!b.ready(12), "two stragglers inside the window are not");
        assert_eq!(b.pop_ready(12), None);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn window_expiry_flushes_part_full_batches() {
        let mut b = DynamicBatcher::new(BatchPolicy::new(8, 500));
        b.push('a', 100);
        b.push('b', 300);
        assert_eq!(b.next_deadline_us(), Some(600));
        assert!(!b.ready(599));
        assert!(b.ready(600));
        assert_eq!(b.pop_ready(600), Some(vec!['a', 'b']));
        assert_eq!(b.next_deadline_us(), None);
    }

    #[test]
    fn zero_window_never_waits() {
        let mut b = DynamicBatcher::new(BatchPolicy::new(4, 0));
        b.push(1u8, 7);
        assert!(b.ready(7));
        assert_eq!(b.pop_ready(7), Some(vec![1]));
    }

    #[test]
    fn pop_now_drains_in_bounded_fifo_chunks() {
        let mut b = DynamicBatcher::new(BatchPolicy::new(2, u64::MAX));
        for i in 0..5u32 {
            b.push(i, 0);
        }
        assert_eq!(b.pop_now(), Some(vec![0, 1]));
        assert_eq!(b.pop_now(), Some(vec![2, 3]));
        assert_eq!(b.pop_now(), Some(vec![4]));
        assert_eq!(b.pop_now(), None);
    }

    #[test]
    fn max_batch_is_clamped_to_one() {
        let b: DynamicBatcher<()> = DynamicBatcher::new(BatchPolicy {
            max_batch: 0,
            window_us: 0,
        });
        assert_eq!(b.policy().max_batch, 1);
    }

    #[test]
    fn saturating_deadline_handles_infinite_windows() {
        let mut b = DynamicBatcher::new(BatchPolicy::new(4, u64::MAX));
        b.push(0u8, 123);
        assert_eq!(b.next_deadline_us(), Some(u64::MAX));
        assert!(!b.ready(u64::MAX - 1));
    }
}
