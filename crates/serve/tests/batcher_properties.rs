//! Property suite for the dynamic batcher.
//!
//! The batcher is a pure state machine (time is an argument), so these
//! properties drive it through arbitrary arrival/poll interleavings with a
//! synthetic clock and check the invariants the serving engine relies on:
//!
//! * no request is ever dropped or duplicated;
//! * responses within a client stream are never reordered (the popped
//!   batches concatenate to the exact FIFO arrival sequence, so any
//!   subsequence — in particular one client's stream — stays in order);
//! * no batch exceeds the configured `max_batch` (or is empty);
//! * a non-empty queue always flushes within its deadline: polling at
//!   `next_deadline_us` yields a batch, and after a final drain poll at the
//!   last deadline plus the window the queue is empty.

use fpsa_serve::{BatchPolicy, DynamicBatcher};
use proptest::prelude::*;

/// Replay a schedule of arrivals (amid worker polls) against one batcher.
///
/// `gaps_us[i]` is the delay before arrival `i`; after each arrival the
/// worker polls with probability-like flag `polls[i]` (simulating a replica
/// grabbing work), then time advances. Returns the popped batches in pop
/// order plus the clock after the final drain.
fn replay(
    policy: BatchPolicy,
    gaps_us: &[u64],
    polls: &[bool],
) -> (Vec<Vec<u32>>, DynamicBatcher<u32>) {
    let mut batcher = DynamicBatcher::new(policy);
    let mut batches = Vec::new();
    let mut now = 0u64;
    for (i, (&gap, &poll)) in gaps_us.iter().zip(polls).enumerate() {
        now += gap;
        batcher.push(i as u32, now);
        if poll {
            while let Some(batch) = batcher.pop_ready(now) {
                batches.push(batch);
            }
        }
    }
    // Final drain exactly like an idle worker: sleep to each deadline, poll.
    while let Some(deadline) = batcher.next_deadline_us() {
        now = now.max(deadline);
        let batch = batcher
            .pop_ready(now)
            .expect("a non-empty queue must flush at its deadline");
        batches.push(batch);
    }
    (batches, batcher)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Lossless, duplicate-free, FIFO; bounded batches; deadline flush.
    #[test]
    fn batches_are_lossless_fifo_bounded_and_deadline_kept(
        max_batch in 1usize..12,
        window_us in 0u64..5_000,
        gaps_us in proptest::collection::vec(0u64..2_000, 1..60),
        poll_bits in proptest::collection::vec(0u32..2, 1..60),
    ) {
        let n = gaps_us.len().min(poll_bits.len());
        let gaps = &gaps_us[..n];
        let polls: Vec<bool> = poll_bits[..n].iter().map(|&b| b == 1).collect();
        let policy = BatchPolicy::new(max_batch, window_us);
        let (batches, batcher) = replay(policy, gaps, &polls);

        // Fully drained: the queue is empty after the final deadline polls.
        prop_assert!(batcher.is_empty());
        prop_assert_eq!(batcher.next_deadline_us(), None);

        // Bounded and non-empty.
        for batch in &batches {
            prop_assert!(!batch.is_empty(), "the batcher must never emit an empty batch");
            prop_assert!(
                batch.len() <= policy.max_batch,
                "batch of {} exceeds max_batch {}",
                batch.len(),
                policy.max_batch
            );
        }

        // Lossless + duplicate-free + FIFO: the concatenation of all popped
        // batches is exactly the arrival sequence 0..n. This subsumes the
        // per-client ordering guarantee: any client's subsequence of a
        // stream that is globally in order is itself in order.
        let drained: Vec<u32> = batches.iter().flatten().copied().collect();
        let expected: Vec<u32> = (0..n as u32).collect();
        prop_assert_eq!(drained, expected);
    }

    /// The deadline is exactly the oldest arrival plus the window, and the
    /// queue is never ready before it (unless full).
    #[test]
    fn deadlines_are_tight(
        window_us in 1u64..10_000,
        first_arrival in 0u64..1_000_000,
    ) {
        let mut b = DynamicBatcher::new(BatchPolicy::new(4, window_us));
        prop_assert_eq!(b.next_deadline_us(), None);
        b.push(0u32, first_arrival);
        let deadline = first_arrival + window_us;
        prop_assert_eq!(b.next_deadline_us(), Some(deadline));
        prop_assert!(!b.ready(deadline - 1), "ready strictly before the deadline");
        prop_assert!(b.ready(deadline), "not ready at the deadline");
        // A later straggler does not extend the oldest request's deadline.
        b.push(1u32, deadline - 1);
        prop_assert_eq!(b.next_deadline_us(), Some(deadline));
    }

    /// Filling the batch makes it ready immediately, at any clock value.
    #[test]
    fn full_batches_ignore_the_window(
        max_batch in 1usize..9,
        arrival in 0u64..1_000,
    ) {
        let mut b = DynamicBatcher::new(BatchPolicy::new(max_batch, u64::MAX));
        for i in 0..max_batch {
            prop_assert!(!b.ready(arrival), "ready before the batch filled");
            b.push(i as u32, arrival);
        }
        prop_assert!(b.ready(arrival));
        let batch = b.pop_ready(arrival).expect("full batch pops");
        prop_assert_eq!(batch.len(), max_batch);
        prop_assert!(b.is_empty());
    }
}
