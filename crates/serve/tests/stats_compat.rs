//! S1 regression pin: `ServeStats` moved its bucketing onto the shared
//! `fpsa_obs::Histogram`, and the percentile surface (p50/p99, batch-size
//! and queue-depth percentiles) must be value-identical to the retired
//! private implementation. The reference below is a verbatim copy of the
//! old `stats_bucket` / `bucket_upper` / `hist_percentile` trio.

use fpsa_serve::{ServeStats, STATS_BUCKETS};

fn old_stats_bucket(value: u64) -> usize {
    ((u64::BITS - value.leading_zeros()) as usize).min(STATS_BUCKETS - 1)
}

fn old_bucket_upper(bucket: usize) -> u64 {
    if bucket >= 63 {
        u64::MAX
    } else {
        (1u64 << bucket) - 1
    }
}

/// The retired nearest-rank percentile over a raw bucket array + tracked max.
fn old_hist_percentile(hist: &[u64; STATS_BUCKETS], max: u64, q: f64) -> u64 {
    let total: u64 = hist.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (i, &count) in hist.iter().enumerate() {
        seen += count;
        if seen >= rank {
            if i + 1 == STATS_BUCKETS {
                return max;
            }
            return old_bucket_upper(i).min(max);
        }
    }
    max
}

/// A deterministic, broad-spectrum sample sequence: exact powers of two,
/// off-by-ones around bucket boundaries, zeros, and a pseudo-random spray.
fn samples() -> Vec<u64> {
    let mut v: Vec<u64> = vec![0, 0, 1, 1, 2, 3, 4, 7, 8, 15, 16, 31, 1024, 65_535, 1 << 40];
    let mut x = 0x2545_F491_4F6C_DD1Du64;
    for _ in 0..500 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        v.push(x % 5_000_000);
    }
    v
}

#[test]
fn latency_percentiles_match_the_retired_implementation() {
    let mut stats = ServeStats::default();
    let mut reference = [0u64; STATS_BUCKETS];
    let mut max = 0u64;
    for s in samples() {
        stats.record_latency(s);
        reference[old_stats_bucket(s)] += 1;
        max = max.max(s);
    }
    for q in [0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
        assert_eq!(
            stats.latency_percentile_us(q),
            old_hist_percentile(&reference, max, q),
            "latency percentile diverged at q={q}"
        );
    }
    assert_eq!(
        stats.p50_latency_us(),
        old_hist_percentile(&reference, max, 0.5)
    );
    assert_eq!(
        stats.p99_latency_us(),
        old_hist_percentile(&reference, max, 0.99)
    );
    assert_eq!(stats.max_latency_us(), max);
}

#[test]
fn batch_and_queue_percentiles_match_the_retired_implementation() {
    let mut stats = ServeStats::default();
    let mut batches = [0u64; STATS_BUCKETS];
    let mut depths = [0u64; STATS_BUCKETS];
    let (mut bmax, mut dmax) = (0u64, 0u64);
    for (i, s) in samples().into_iter().enumerate() {
        let batch = (s % 63) as usize + 1;
        let depth = (s % 200) as usize;
        stats.record_batch(batch, i % 7 != 0);
        stats.record_queue_depth(depth);
        batches[old_stats_bucket(batch as u64)] += 1;
        bmax = bmax.max(batch as u64);
        depths[old_stats_bucket(depth as u64)] += 1;
        dmax = dmax.max(depth as u64);
    }
    for q in [0.5, 0.9, 0.99] {
        assert_eq!(
            stats.batch_size_percentile(q),
            old_hist_percentile(&batches, bmax, q),
            "batch-size percentile diverged at q={q}"
        );
        assert_eq!(
            stats.queue_depth_percentile(q),
            old_hist_percentile(&depths, dmax, q),
            "queue-depth percentile diverged at q={q}"
        );
    }
    assert_eq!(stats.largest_batch() as u64, bmax);
    assert_eq!(stats.max_queue_depth(), dmax);
}

#[test]
fn empty_histograms_report_zero_everywhere() {
    let stats = ServeStats::default();
    assert_eq!(stats.latency_percentile_us(0.99), 0);
    assert_eq!(stats.batch_size_percentile(0.5), 0);
    assert_eq!(stats.queue_depth_percentile(0.5), 0);
    assert_eq!(stats.max_latency_us(), 0);
    assert_eq!(stats.largest_batch(), 0);
}
