//! Property suite for the weighted-fair batcher.
//!
//! Mirrors `tests/batcher_properties.rs` one arbiter up: the machine is
//! still pure (time is an argument), so arbitrary multi-tenant
//! arrival/poll interleavings run under a synthetic clock and check the
//! invariants the fleet engine's fairness rests on:
//!
//! * no request is ever dropped or duplicated across tenants;
//! * each tenant's stream pops in arrival order (per-tenant FIFO);
//! * no batch exceeds `max_batch`, none is empty, and every popped batch
//!   holds one tenant only;
//! * a non-empty machine flushes within its deadline;
//! * no lane's unspent deficit ever reaches `max_batch + weight` — the
//!   classic DRR fairness bound, which is what makes the weight a real
//!   service-share guarantee rather than a hint.

use fpsa_serve::{BatchPolicy, WeightedFairBatcher};
use proptest::prelude::*;

/// Replay a multi-tenant schedule against one machine, checking the deficit
/// bound after every pop. Returns the popped `(tenant, batch)` sequence.
fn replay(
    policy: BatchPolicy,
    weights: &[u64],
    tenants: &[u16],
    gaps_us: &[u64],
    polls: &[bool],
) -> Vec<(u16, Vec<u32>)> {
    let mut q: WeightedFairBatcher<u32> = WeightedFairBatcher::new(policy);
    for (tenant, &weight) in weights.iter().enumerate() {
        q.set_weight(tenant as u16, weight);
    }
    let check_deficits = |q: &WeightedFairBatcher<u32>| {
        for (tenant, &weight) in weights.iter().enumerate() {
            let bound = policy.max_batch as u64 + weight.max(1);
            let deficit = q.deficit(tenant as u16);
            assert!(
                deficit < bound,
                "tenant {tenant} deficit {deficit} >= DRR bound {bound}"
            );
        }
    };
    let mut batches = Vec::new();
    let mut now = 0u64;
    for (i, ((&tenant, &gap), &poll)) in tenants.iter().zip(gaps_us).zip(polls).enumerate() {
        now += gap;
        q.push(tenant, i as u32, now);
        if poll {
            while let Some(popped) = q.pop_ready(now) {
                batches.push(popped);
                check_deficits(&q);
            }
        }
    }
    // Final drain exactly like an idle worker: sleep to each deadline, poll.
    while let Some(deadline) = q.next_deadline_us() {
        now = now.max(deadline);
        let popped = q
            .pop_ready(now)
            .expect("a non-empty machine must flush at its deadline");
        batches.push(popped);
        check_deficits(&q);
    }
    assert!(q.is_empty());
    batches
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Lossless, duplicate-free, per-tenant FIFO, bounded, deficit-bounded.
    #[test]
    fn wfq_is_lossless_fifo_bounded_and_fair(
        max_batch in 1usize..10,
        window_us in 0u64..4_000,
        weights in proptest::collection::vec(1u64..6, 1..5),
        tenant_picks in proptest::collection::vec(0u32..5, 1..80),
        gaps_us in proptest::collection::vec(0u64..1_500, 1..80),
        poll_bits in proptest::collection::vec(0u32..2, 1..80),
    ) {
        let n = tenant_picks.len().min(gaps_us.len()).min(poll_bits.len());
        let lanes = weights.len() as u32;
        let tenants: Vec<u16> = tenant_picks[..n].iter().map(|&t| (t % lanes) as u16).collect();
        let polls: Vec<bool> = poll_bits[..n].iter().map(|&b| b == 1).collect();
        let policy = BatchPolicy::new(max_batch, window_us);
        let batches = replay(policy, &weights, &tenants, &gaps_us[..n], &polls);

        for (_, batch) in &batches {
            prop_assert!(!batch.is_empty(), "the machine must never emit an empty batch");
            prop_assert!(batch.len() <= policy.max_batch);
        }

        // Lossless + duplicate-free: every item pops exactly once.
        let mut drained: Vec<u32> = batches.iter().flat_map(|(_, b)| b).copied().collect();
        drained.sort_unstable();
        let expected: Vec<u32> = (0..n as u32).collect();
        prop_assert_eq!(&drained, &expected);

        // Single-tenant batches whose items really belong to that tenant,
        // and per-tenant FIFO: each tenant's drain order is its arrival
        // order (item ids are globally increasing, so FIFO within a lane
        // means strictly increasing ids in that lane's pop stream).
        let mut last_seen = vec![None::<u32>; lanes as usize];
        for (tenant, batch) in &batches {
            for &item in batch {
                prop_assert_eq!(
                    tenants[item as usize], *tenant,
                    "item {} popped from the wrong lane", item
                );
                let last = &mut last_seen[usize::from(*tenant)];
                prop_assert!(
                    last.is_none_or(|prev| prev < item),
                    "tenant {} reordered: {} after {:?}", tenant, item, last
                );
                *last = Some(item);
            }
        }
    }

    /// Under saturation, weights translate into proportional service: a
    /// weight-w tenant owns ~w/(sum w) of the served requests at every
    /// prefix of the drain (within one round's slack).
    #[test]
    fn weights_are_honored_under_saturation(
        per_tenant in 20usize..60,
        heavy_weight in 2u64..6,
    ) {
        let policy = BatchPolicy::new(1, 0);
        let mut q: WeightedFairBatcher<u32> = WeightedFairBatcher::new(policy);
        q.set_weight(1, heavy_weight);
        // Both lanes fully backlogged at t=0: pure DRR contention.
        for i in 0..per_tenant as u32 {
            q.push(0, i, 0);
            q.push(1, 1_000 + i, 0);
        }
        let mut heavy_served = 0u64;
        let mut total = 0u64;
        while let Some((tenant, batch)) = q.pop_ready(0) {
            heavy_served += u64::from(tenant) * batch.len() as u64;
            total += batch.len() as u64;
            // While both lanes still contend, the heavy tenant's share of
            // every served prefix sits within one DRR round of its weight
            // fraction. (Once either lane drains, the other mops up and
            // shares rightly diverge.)
            if q.tenant_len(0) > 0 && q.tenant_len(1) > 0 && total > heavy_weight {
                let expect = total as f64 * heavy_weight as f64 / (1.0 + heavy_weight as f64);
                prop_assert!(
                    (heavy_served as f64 - expect).abs() <= (1 + heavy_weight) as f64,
                    "heavy share {} of {} strays from {:.1} (weight {})",
                    heavy_served, total, expect, heavy_weight
                );
            }
        }
        prop_assert_eq!(total, 2 * per_tenant as u64);
    }
}
