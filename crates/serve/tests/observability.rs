//! The serve-tier half of the "tracing only observes" contract: the
//! determinism guarantees of `ServeEngine` and `ShardedEngine` hold
//! unchanged with the global tracer in [`Mode::Full`], and the trace the
//! engines leave behind carries the full request→queue→execute→respond
//! span chain. One test, its own binary: the global tracer is
//! process-wide state.

use fpsa_core::Compiler;
use fpsa_nn::params::mlp_graph;
use fpsa_nn::GraphParameters;
use fpsa_obs::{Mode, Phase, Registry, Tracer};
use fpsa_serve::{ServeConfig, ServeEngine, ShardedEngine};
use fpsa_sim::{Executor, Precision};

fn executor(name: &str, sizes: &[usize]) -> Executor {
    let graph = mlp_graph(name, sizes);
    let params = GraphParameters::seeded(&graph, 21);
    let compiled = Compiler::fpsa().compile(&graph).expect("mlp compiles");
    compiled
        .executor(&graph, &params, &Precision::Float)
        .expect("mlp binds")
}

fn sample(seed: u64) -> Vec<f32> {
    (0..16).map(|i| ((seed + i) % 10) as f32 * 0.1).collect()
}

/// Span names recorded under `cat` whose begin has a matching end.
fn span_names(events: &[fpsa_obs::Event], cat: &str) -> Vec<&'static str> {
    events
        .iter()
        .filter(|e| e.cat == cat && e.phase == Phase::SpanBegin)
        .filter(|b| {
            events
                .iter()
                .any(|e| e.phase == Phase::SpanEnd && e.id == b.id && e.name == b.name)
        })
        .map(|e| e.name)
        .collect()
}

#[test]
fn full_tracing_leaves_serve_and_shard_outputs_bit_identical() {
    let inputs: Vec<Vec<f32>> = (0..8).map(sample).collect();

    // Ground truths, computed before tracing turns on.
    let direct_exec = executor("obs-mlp", &[16, 8, 4]);
    let direct: Vec<Vec<f32>> = inputs
        .iter()
        .map(|x| direct_exec.run(x).expect("direct run"))
        .collect();
    let stage_execs = || {
        vec![
            executor("obs-front", &[16, 8]),
            executor("obs-back", &[8, 4]),
        ]
    };
    let chained: Vec<Vec<f32>> = {
        let stages = stage_execs();
        inputs
            .iter()
            .map(|x| {
                let mut v = x.clone();
                for stage in &stages {
                    v = stage.run(&v).expect("stage run");
                }
                v
            })
            .collect()
    };

    let counter_at = |name: &str| {
        Registry::global()
            .snapshot()
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    };
    let submitted_before = counter_at("serve.submitted");
    let completed_before = counter_at("serve.completed");

    let tracer = Tracer::global();
    tracer.clear();
    tracer.set_mode(Mode::Full);

    // Flat engine under full tracing: outputs bit-identical to direct.
    let engine = ServeEngine::start(
        executor("obs-mlp", &[16, 8, 4]),
        ServeConfig {
            replicas: 2,
            max_batch: 4,
            batch_window_us: 300,
        },
    );
    let served = engine.serve_batch(&inputs).expect("serve batch");
    assert_eq!(served, direct, "tracing perturbed ServeEngine outputs");
    engine.shutdown();

    // Sharded pipeline under full tracing: identical to manual chaining.
    let sharded = ShardedEngine::start(stage_execs(), ServeConfig::default());
    let piped = sharded.serve_batch(&inputs).expect("sharded batch");
    assert_eq!(piped, chained, "tracing perturbed ShardedEngine outputs");
    sharded.shutdown();

    let events = tracer.events();
    tracer.set_mode(Mode::Off);
    tracer.clear();

    // The flat engine also fed the process-wide metrics registry.
    assert_eq!(
        counter_at("serve.submitted") - submitted_before,
        inputs.len() as u64,
        "every admitted request increments serve.submitted"
    );
    assert_eq!(
        counter_at("serve.completed") - completed_before,
        inputs.len() as u64,
        "every served request increments serve.completed"
    );

    // The engines left complete span chains behind.
    let serve_spans = span_names(&events, "serve");
    for name in ["request", "queue", "execute", "respond"] {
        assert!(
            serve_spans.iter().filter(|&&n| n == name).count() >= inputs.len(),
            "every served request opens+closes a '{name}' span"
        );
    }
    let shard_spans = span_names(&events, "shard");
    assert!(
        shard_spans.iter().filter(|&&n| n == "request").count() >= inputs.len(),
        "every sharded request has a root span"
    );
    assert!(
        // Two pipeline stages: at least two stage hops per request.
        shard_spans.iter().filter(|&&n| n == "stage").count() >= 2 * inputs.len(),
        "every pipeline hop records a 'stage' span"
    );
    assert!(
        events
            .iter()
            .any(|e| e.phase == Phase::Counter && e.name == "serve.queue_depth"),
        "admission samples the queue-depth counter"
    );
}
