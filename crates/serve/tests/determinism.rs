//! The serving determinism suite.
//!
//! The engine's contract: for *any* interleaving of batch window, replica
//! count and request arrival order, served outputs are **bit-identical** to
//! a direct single-threaded `Executor::run` on the same inputs — in all
//! three numeric regimes (Float, Integer, Noisy). Throughput machinery may
//! only change when work happens, never what is computed or who receives
//! it.

use fpsa_core::Compiler;
use fpsa_device::variation::{CellVariation, WeightScheme};
use fpsa_nn::reference::QuantizationPlan;
use fpsa_nn::{seeds, zoo, ComputationalGraph, GraphParameters, Operator};
use fpsa_serve::{ServeConfig, ServeEngine, Ticket};
use fpsa_sim::{Executor, Precision};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn samples(graph: &ComputationalGraph, n: usize) -> Vec<Vec<f32>> {
    let len = graph
        .nodes()
        .iter()
        .find_map(|node| match node.op {
            Operator::Input { shape } => Some(shape.elements()),
            _ => None,
        })
        .expect("graph has an input");
    (0..n)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(seeds::derive(77, seeds::STREAM_SAMPLES, i as u64));
            (0..len).map(|_| rng.gen_range(0.0f32..1.0)).collect()
        })
        .collect()
}

/// The three numeric regimes, bound from the same compiled model.
fn precisions(
    graph: &ComputationalGraph,
    params: &GraphParameters,
    inputs: &[Vec<f32>],
) -> Vec<Precision> {
    let plan = QuantizationPlan::calibrate(graph, params, inputs).expect("calibration succeeds");
    vec![
        Precision::Float,
        Precision::Integer(plan),
        Precision::Noisy {
            scheme: WeightScheme::fpsa_add(),
            variation: CellVariation::measured(),
            seed: 0xD07,
        },
    ]
}

fn bind(
    compiled: &fpsa_core::CompiledModel,
    graph: &ComputationalGraph,
    params: &GraphParameters,
    precision: &Precision,
) -> Executor {
    compiled
        .executor(graph, params, precision)
        .expect("compiled zoo models bind")
}

#[test]
fn served_outputs_are_bit_identical_across_windows_replicas_and_arrival_orders() {
    let graph = zoo::tiny_cnn();
    let params = GraphParameters::seeded(&graph, 0x5EED);
    let compiled = Compiler::fpsa().compile(&graph).expect("tiny CNN compiles");
    let inputs = samples(&graph, 10);

    for precision in precisions(&graph, &params, &inputs) {
        // The single-threaded ground truth, computed once per precision —
        // `run_checked` also shadows the bytecode stream with the retired
        // interpreter, asserting bit-identity per node in every regime.
        let direct_exec = bind(&compiled, &graph, &params, &precision);
        let direct: Vec<Vec<f32>> = inputs
            .iter()
            .map(|x| direct_exec.run_checked(x).expect("direct run succeeds"))
            .collect();

        for replicas in [1, 2, 4] {
            for (max_batch, window_us) in [(1, 0), (3, 0), (4, 400), (16, 1_500)] {
                let engine = ServeEngine::start(
                    bind(&compiled, &graph, &params, &precision),
                    ServeConfig {
                        replicas,
                        max_batch,
                        batch_window_us: window_us,
                    },
                );

                // Arrival order 1: the whole stream at once (max coalescing).
                let tickets: Vec<Ticket> =
                    inputs.iter().map(|x| engine.submit(x.clone())).collect();
                for (i, ticket) in tickets.into_iter().enumerate() {
                    assert_eq!(
                        ticket.wait().expect("request served"),
                        direct[i],
                        "burst arrival diverged ({precision:?}, {replicas} replicas, batch {max_batch}/{window_us}us)"
                    );
                }

                // Arrival order 2: reversed, in dribbled chunks with gaps
                // (windows expire mid-stream, batches straddle chunks).
                let mut tickets: Vec<(usize, Ticket)> = Vec::new();
                for (n, chunk) in inputs
                    .iter()
                    .enumerate()
                    .rev()
                    .collect::<Vec<_>>()
                    .chunks(3)
                    .enumerate()
                {
                    for &(i, x) in chunk {
                        tickets.push((i, engine.submit(x.clone())));
                    }
                    if n % 2 == 0 {
                        std::thread::sleep(Duration::from_micros(600));
                    }
                }
                for (i, ticket) in tickets {
                    assert_eq!(
                        ticket.wait().expect("request served"),
                        direct[i],
                        "dribbled arrival diverged ({precision:?}, {replicas} replicas, batch {max_batch}/{window_us}us)"
                    );
                }

                let stats = engine.shutdown();
                assert_eq!(stats.submitted, 2 * inputs.len() as u64);
                assert_eq!(stats.completed, 2 * inputs.len() as u64);
                assert_eq!(stats.failed + stats.rejected, 0);
            }
        }
    }
}

#[test]
fn concurrent_client_streams_each_see_their_own_outputs_in_order() {
    // Several client threads hammer one engine with distinct streams; every
    // client must receive exactly its own results, in its own submission
    // order, bit-identical to direct execution.
    let graph = zoo::tiny_mlp();
    let params = GraphParameters::seeded(&graph, 0xC11E);
    let compiled = Compiler::fpsa().compile(&graph).expect("tiny MLP compiles");
    let direct_exec = bind(&compiled, &graph, &params, &Precision::Float);
    let engine = ServeEngine::start(
        bind(&compiled, &graph, &params, &Precision::Float),
        ServeConfig {
            replicas: 3,
            max_batch: 4,
            batch_window_us: 300,
        },
    );

    let clients = 4;
    let per_client = 12;
    std::thread::scope(|scope| {
        for client in 0..clients {
            let engine = &engine;
            let direct_exec = &direct_exec;
            let graph = &graph;
            scope.spawn(move || {
                let stream: Vec<Vec<f32>> = samples(graph, clients * per_client)
                    [client * per_client..(client + 1) * per_client]
                    .to_vec();
                let want: Vec<Vec<f32>> = stream
                    .iter()
                    .map(|x| direct_exec.run(x).expect("direct run"))
                    .collect();
                // Submit the whole stream, then redeem tickets in submission
                // order: responses must arrive for the right requests.
                let tickets: Vec<Ticket> =
                    stream.iter().map(|x| engine.submit(x.clone())).collect();
                for (i, ticket) in tickets.into_iter().enumerate() {
                    assert_eq!(
                        ticket.wait().expect("request served"),
                        want[i],
                        "client {client} request {i} got the wrong output"
                    );
                }
            });
        }
    });

    let stats = engine.shutdown();
    assert_eq!(stats.completed, (clients * per_client) as u64);
    assert!(stats.largest_batch() <= 4, "configured max batch exceeded");
}

#[test]
fn integer_precision_stays_bit_exact_through_the_engine_on_mlp_500_100() {
    // The paper-scale MNIST MLP in the exactly-reproducible regime: integer
    // codes are associative, so any divergence through the serving path is
    // an engine bug, full stop. (Small request count: this test also runs
    // in debug CI.)
    let graph = zoo::mlp_500_100();
    let params = GraphParameters::seeded(&graph, 0x500_100);
    let compiled = Compiler::fpsa().compile(&graph).expect("MLP compiles");
    let inputs = samples(&graph, 4);
    let plan = QuantizationPlan::calibrate(&graph, &params, &inputs).expect("calibrates");
    let precision = Precision::Integer(plan);
    let direct_exec = bind(&compiled, &graph, &params, &precision);
    let direct: Vec<Vec<f32>> = inputs.iter().map(|x| direct_exec.run(x).unwrap()).collect();
    let engine = ServeEngine::start(
        bind(&compiled, &graph, &params, &precision),
        ServeConfig {
            replicas: 2,
            max_batch: 4,
            batch_window_us: 500,
        },
    );
    let served = engine.serve_batch(&inputs).expect("batch served");
    assert_eq!(served, direct);
}
