//! The fleet-serving determinism suite.
//!
//! Mirrors `crates/workload/tests/determinism.rs`, one level up the stack:
//! a multi-model, multi-tenant trace replayed through the co-located
//! [`FleetEngine`] must yield outputs bit-identical to direct
//! `Executor::run` — across runs, replica counts, concurrent client
//! streams, tenant-weight configurations and all three numeric regimes.
//! Co-location, weighted-fair queueing and shortest-queue routing decide
//! *where and when* a request runs, never *what it computes*.
//!
//! The release build additionally pins the acceptance criterion on the
//! checked-in `scenarios/fleet/fleet-zoo.scenario`: the co-located fleet
//! beats dedicated single-model engines on aggregate virtual-clock
//! throughput.

use fpsa_core::Compiler;
use fpsa_device::variation::{CellVariation, WeightScheme};
use fpsa_fleet::experiments::fleet::{checked_in_zoo, fabric_capacity, zoo_graph};
use fpsa_fleet::{FleetConfig, FleetEngine, FleetPlacement, ModelRegistry};
use fpsa_nn::reference::QuantizationPlan;
use fpsa_nn::GraphParameters;
use fpsa_sim::Precision;
use fpsa_workload::{
    simulate_fleet, FleetPolicy, MixEntry, Scenario, TraceRecorder, TraceReplayer,
};

const REQUESTS: usize = 32;

/// A small two-model, two-tenant zoo with a 3:1 popularity skew.
fn zoo_scenario() -> Scenario {
    let mut scenario = Scenario::steady("fleet-determinism", "tiny_mlp", 0xF1EE7D, REQUESTS);
    scenario.models = vec![
        MixEntry {
            name: "tiny_mlp".into(),
            weight: 3.0,
        },
        MixEntry {
            name: "tiny_cnn".into(),
            weight: 1.0,
        },
    ];
    scenario.tenants = vec![
        MixEntry {
            name: "free".into(),
            weight: 1.0,
        },
        MixEntry {
            name: "pro".into(),
            weight: 3.0,
        },
    ];
    scenario
}

/// The three numeric regimes for `model`, integer calibrated on that
/// model's own share of the trace inputs.
fn precisions(name: &str, seed: u64, calibration: &[Vec<f32>]) -> Vec<Precision> {
    let graph = zoo_graph(name).expect("zoo model");
    let params = GraphParameters::seeded(&graph, seed);
    let plan =
        QuantizationPlan::calibrate(&graph, &params, calibration).expect("calibration succeeds");
    vec![
        Precision::Float,
        Precision::Integer(plan),
        Precision::Noisy {
            scheme: WeightScheme::fpsa_add(),
            variation: CellVariation::measured(),
            seed: 0xD07,
        },
    ]
}

#[test]
fn fleet_outputs_are_bit_identical_across_runs_replicas_clients_and_precisions() {
    let scenario = zoo_scenario();
    let trace = TraceRecorder::new(&scenario)
        .record()
        .expect("valid scenario");

    // Per-model calibration inputs: each model's own events off the trace.
    let names = ["tiny_mlp", "tiny_cnn"];
    let input_lens: Vec<usize> = names
        .iter()
        .map(|n| zoo_graph(n).unwrap().input_elements())
        .collect();
    let calibrations: Vec<Vec<Vec<f32>>> = (0..names.len() as u16)
        .map(|model| {
            trace
                .events
                .iter()
                .enumerate()
                .filter(|(_, e)| e.model == model)
                .map(|(i, _)| trace.input_for(i, input_lens[usize::from(model)]))
                .collect()
        })
        .collect();

    let regimes: Vec<Vec<Precision>> = names
        .iter()
        .enumerate()
        .map(|(m, name)| precisions(name, scenario.seed + m as u64, &calibrations[m]))
        .collect();

    // One pass per regime: both models registered at that regime's
    // precision, fleet replay checked against direct execution.
    for regime in [0, 1, 2] {
        let mut registry = ModelRegistry::new(Compiler::fpsa());
        for (m, name) in names.iter().enumerate() {
            let graph = zoo_graph(name).unwrap();
            let params = GraphParameters::seeded(&graph, scenario.seed + m as u64);
            registry
                .register(*name, graph, params, regimes[m][regime].clone())
                .expect("zoo models compile");
        }

        // Ground truth: direct single-threaded execution, per event.
        let direct: Vec<Vec<f32>> = trace
            .events
            .iter()
            .enumerate()
            .map(|(i, event)| {
                let spec = registry.get(event.model).expect("registered");
                spec.compiled
                    .executor(&spec.graph, &spec.params, &spec.precision)
                    .expect("models bind")
                    .run(&trace.input_for(i, input_lens[usize::from(event.model)]))
                    .expect("direct run succeeds")
            })
            .collect();

        let placement =
            FleetPlacement::pack(&registry, 2, fabric_capacity()).expect("the zoo fits");
        let replayer = TraceReplayer::new(&trace, 0);

        for replicas in [1, 2, 4] {
            let engine = FleetEngine::start(
                registry.clone(),
                placement.clone(),
                FleetConfig::default()
                    .with_replicas(replicas)
                    .with_batching(4, 300)
                    .with_tenant_weight(0, 1)
                    .with_tenant_weight(1, 3),
            );
            // Run 1: single client. Run 2: same engine, same trace. Run 3:
            // three concurrent client streams. All bit-identical to direct.
            let first = replayer.replay_routed(&engine, &input_lens);
            let second = replayer.replay_routed(&engine, &input_lens);
            let concurrent = replayer.replay_routed_concurrent(&engine, &input_lens, 3);
            assert_eq!(
                first.outputs, direct,
                "fleet replay diverged from direct (regime {regime}, {replicas} replicas)"
            );
            assert_eq!(first.outputs, second.outputs);
            assert_eq!(first.outputs, concurrent.outputs);

            let stats = engine.shutdown();
            assert_eq!(stats.aggregate.submitted, 3 * REQUESTS as u64);
            assert_eq!(stats.aggregate.completed, 3 * REQUESTS as u64);
            assert_eq!(stats.aggregate.failed + stats.aggregate.rejected, 0);
        }
    }
}

#[test]
fn tenant_weights_change_scheduling_but_never_outputs() {
    let scenario = zoo_scenario();
    let trace = TraceRecorder::new(&scenario)
        .record()
        .expect("valid scenario");
    let input_lens: Vec<usize> = ["tiny_mlp", "tiny_cnn"]
        .iter()
        .map(|n| zoo_graph(n).unwrap().input_elements())
        .collect();

    let build_registry = || {
        let mut registry = ModelRegistry::new(Compiler::fpsa());
        for (m, name) in ["tiny_mlp", "tiny_cnn"].iter().enumerate() {
            let graph = zoo_graph(name).unwrap();
            let params = GraphParameters::seeded(&graph, scenario.seed + m as u64);
            registry
                .register(*name, graph, params, Precision::Float)
                .expect("zoo models compile");
        }
        registry
    };

    let mut outputs = Vec::new();
    for weights in [
        vec![(0u16, 1u64), (1, 1)],
        vec![(0, 1), (1, 7)],
        vec![(0, 5), (1, 2)],
    ] {
        let registry = build_registry();
        let placement =
            FleetPlacement::pack(&registry, 2, fabric_capacity()).expect("the zoo fits");
        let mut config = FleetConfig::default()
            .with_replicas(2)
            .with_batching(4, 200);
        for (tenant, weight) in weights {
            config = config.with_tenant_weight(tenant, weight);
        }
        let engine = FleetEngine::start(registry, placement, config);
        outputs.push(
            TraceReplayer::new(&trace, 0)
                .replay_routed(&engine, &input_lens)
                .outputs,
        );
        engine.shutdown();
    }
    assert_eq!(outputs[0], outputs[1], "weights perturbed outputs");
    assert_eq!(outputs[0], outputs[2], "weights perturbed outputs");
}

#[test]
fn fleet_virtual_stats_are_identical_across_runs_and_host_thread_counts() {
    let scenario = zoo_scenario();
    let trace = TraceRecorder::new(&scenario)
        .record()
        .expect("valid scenario");
    let policy = FleetPolicy {
        per_fabric: scenario.policy,
        hosted: vec![vec![0, 1], vec![0, 1]],
        tenant_weights: vec![(0, 1), (1, 3)],
    };
    let baseline = simulate_fleet(&trace, &policy, scenario.service);
    assert_eq!(baseline.aggregate.stats.completed, REQUESTS as u64);

    // Re-running in this thread and in a pile of fresh threads must all
    // produce the identical stats — the virtual clock owes its determinism
    // to nothing about the host.
    assert_eq!(baseline, simulate_fleet(&trace, &policy, scenario.service));
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let trace = &trace;
                let policy = &policy;
                let service = scenario.service;
                scope.spawn(move || simulate_fleet(trace, policy, service))
            })
            .collect();
        for handle in handles {
            assert_eq!(baseline, handle.join().expect("sim thread"));
        }
    });
}

/// The acceptance pin, release only (the 30k-request replay is too slow
/// under `debug_assertions`): on the checked-in mixed-zoo trace, the
/// co-located fleet beats dedicated single-model engines on aggregate
/// virtual-clock throughput, with bit-identical outputs and no sheds.
#[cfg(not(debug_assertions))]
#[test]
fn colocation_beats_dedicated_engines_on_the_checked_in_zoo() {
    let scenario = checked_in_zoo();
    assert_eq!(scenario.name, "fleet-zoo");
    assert!(scenario.models.len() >= 2, "mixed zoo needs >= 2 models");
    assert!(scenario.tenants.len() >= 2, "mixed zoo needs >= 2 tenants");

    let comparison = fpsa_fleet::experiments::fleet::run(&scenario, scenario.models.len());
    assert!(
        comparison.virtual_speedup > 1.0,
        "co-location must beat dedicated fabrics: fleet {:.0} rps vs dedicated {:.0} rps",
        comparison.fleet_virtual_rps,
        comparison.dedicated_virtual_rps
    );
    assert!(
        comparison.bit_identical,
        "fleet outputs diverged from direct execution"
    );
    assert_eq!(
        comparison.sheds, 0,
        "no SLO budgets configured, nothing sheds"
    );
    // The trace is a pure function of the scenario: pin its identity so a
    // silent recorder change cannot move the goalposts.
    let again = TraceRecorder::new(&scenario)
        .record()
        .expect("valid scenario");
    assert_eq!(comparison.fingerprint, again.fingerprint());
}

// `checked_in_zoo` is exercised by the release-gated pin above; keep the
// debug build honest about the file parsing and staying a mixed zoo.
#[test]
fn the_checked_in_zoo_scenario_parses_and_is_mixed() {
    let scenario = checked_in_zoo();
    assert_eq!(scenario.name, "fleet-zoo");
    assert!(scenario.models.len() >= 2);
    assert!(scenario.tenants.len() >= 2);
    assert!(scenario.requests >= 10_000);
}
