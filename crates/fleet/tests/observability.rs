//! S3 pin: a fleet SLO shed dumps the flight recorder.
//!
//! The `ServeError::Shed` construction site in `FleetEngine::submit` is a
//! typed-error telemetry hook: with the global tracer in
//! [`Mode::FlightRecorder`], constructing the error must capture a
//! postmortem — the shedding tenant in the trigger args and the last
//! queue-depth samples in the ring — retrievable via
//! [`Tracer::last_dump`]. This lives in its own test binary because the
//! global tracer is process-wide state.

use fpsa_core::Compiler;
use fpsa_fleet::{FleetConfig, FleetEngine, FleetPlacement, ModelRegistry, SloBudget};
use fpsa_nn::{zoo, GraphParameters};
use fpsa_obs::{Mode, Phase, Tracer};
use fpsa_sim::Precision;

#[test]
fn a_shed_dumps_the_flight_recorder_with_tenant_and_queue_context() {
    let tracer = Tracer::global();
    tracer.clear();
    tracer.set_mode(Mode::FlightRecorder);

    let mut registry = ModelRegistry::new(Compiler::fpsa());
    let graph = zoo::tiny_mlp();
    let params = GraphParameters::seeded(&graph, 11);
    let model = registry
        .register("tiny_mlp", graph, params, Precision::Float)
        .expect("tiny_mlp compiles");
    let capacity = fpsa_arch::FabricCapacity::new(100_000, 20_000, 20_000);
    let placement = FleetPlacement::pack(&registry, 1, capacity).expect("mlp fits");
    let engine = FleetEngine::start(
        registry,
        placement,
        FleetConfig::default().with_slo(
            0,
            SloBudget {
                p99_budget_us: 0,
                shed_depth: 0,
            },
        ),
    );

    // First request completes (no latency history yet, p99 = 0); it leaves
    // behind spans and a `fleet.queue_depth` counter sample in the ring.
    engine
        .infer(0, model, vec![0.25; 16])
        .expect("first request served");
    // Now p99 > 0 blows the zero budget: the submit sheds — and the shed
    // must have dumped the recorder.
    let err = engine.submit(0, model, vec![0.5; 16]).wait().unwrap_err();
    assert!(
        matches!(err, fpsa_serve::ServeError::Shed { tenant: 0, .. }),
        "expected Shed, got {err:?}"
    );
    engine.shutdown();

    let dump = tracer
        .last_dump()
        .expect("constructing ServeError::Shed captures a postmortem");
    assert_eq!(dump.reason, "fleet.shed");
    assert!(
        dump.args.contains(&("tenant", 0)),
        "dump args name the shedding tenant: {:?}",
        dump.args
    );
    assert!(
        dump.args.iter().any(|&(k, _)| k == "budget_us"),
        "dump args carry the blown budget: {:?}",
        dump.args
    );
    // The ring holds the request telemetry that led up to the shed: the
    // last queue-depth samples and the shed instant itself.
    assert!(
        dump.events
            .iter()
            .any(|e| e.phase == Phase::Counter && e.name == "fleet.queue_depth"),
        "ring retains queue-depth samples"
    );
    assert!(
        dump.events
            .iter()
            .any(|e| e.phase == Phase::Instant && e.name == "shed"),
        "ring retains the shed instant"
    );
    assert!(dump.total_recorded >= dump.events.len() as u64);

    // The global tracer outlives this test: leave it as we found it.
    tracer.set_mode(Mode::Off);
    tracer.clear();
}
