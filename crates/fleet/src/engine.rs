//! The fleet engine: one request front door over many co-located models.
//!
//! A [`FleetEngine`] owns a packed [`FleetPlacement`] and runs one worker
//! pool per fabric, mirroring `fpsa_serve::ServeEngine`'s queue discipline
//! one tier up:
//!
//! * **routing** — a request for model *m* goes to whichever fabric hosting
//!   *m* has the shortest queue (ties to the lowest index), so replicated
//!   models absorb load wherever there is room;
//! * **weighted-fair admission** — each fabric queues requests in a
//!   [`WeightedFairBatcher`], so tenants share a fabric by configured
//!   weight instead of racing FIFO;
//! * **bind-handle LRU** — executors are bound lazily per fabric and kept
//!   in a small LRU cache, so a cold model pays one bind and hot models
//!   never rebind;
//! * **per-tenant SLOs** — every tenant gets its own latency histogram;
//!   when a tenant's observed p99 exceeds its budget and its backlog is
//!   above the shed threshold, new requests are shed with the typed
//!   [`ServeError::Shed`] instead of deepening the violation.
//!
//! Throughput comes from placement and scheduling only — never from
//! changed arithmetic: fleet outputs are bit-identical to direct
//! `Executor::run` calls for every model, precision and interleaving
//! (`tests/fleet_determinism.rs`).

use std::fmt;
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use fpsa_obs::{Span, SpanId, Tracer};
use fpsa_serve::{BatchPolicy, Response, ServeError, ServeStats, Ticket, WeightedFairBatcher};
use fpsa_sim::Executor;

use crate::packer::FleetPlacement;
use crate::registry::{ModelId, ModelRegistry};

/// A tenant's service-level objective: shed new work once the observed p99
/// latency exceeds `p99_budget_us` *and* the tenant's queued backlog is
/// deeper than `shed_depth` (so a blown budget with an empty queue still
/// admits — serving it cannot worsen the tail).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloBudget {
    /// The tenant's p99 latency budget in microseconds.
    pub p99_budget_us: u64,
    /// Queued requests the tenant may hold while violating before sheds
    /// start.
    pub shed_depth: usize,
}

/// Fleet-engine tuning knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Worker threads per fabric.
    pub replicas_per_fabric: usize,
    /// Largest batch a worker claims at once (per tenant lane).
    pub max_batch: usize,
    /// How long a lone request may wait for company, in microseconds.
    pub batch_window_us: u64,
    /// Bound-executor slots in each fabric's LRU cache (clamped ≥ 1).
    pub bind_cache: usize,
    /// Weighted-fair shares: `(tenant, weight)`; unlisted tenants weigh 1.
    pub tenant_weights: Vec<(u16, u64)>,
    /// Per-tenant SLO budgets; unlisted tenants are never shed.
    pub slos: Vec<(u16, SloBudget)>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            replicas_per_fabric: 2,
            max_batch: 8,
            batch_window_us: 200,
            bind_cache: 4,
            tenant_weights: Vec::new(),
            slos: Vec::new(),
        }
    }
}

impl FleetConfig {
    /// Set the worker count per fabric.
    pub fn with_replicas(mut self, replicas: usize) -> Self {
        self.replicas_per_fabric = replicas;
        self
    }

    /// Set the batching policy.
    pub fn with_batching(mut self, max_batch: usize, window_us: u64) -> Self {
        self.max_batch = max_batch;
        self.batch_window_us = window_us;
        self
    }

    /// Set the per-fabric bind-handle cache capacity.
    pub fn with_bind_cache(mut self, slots: usize) -> Self {
        self.bind_cache = slots;
        self
    }

    /// Give `tenant` a weighted-fair share.
    pub fn with_tenant_weight(mut self, tenant: u16, weight: u64) -> Self {
        self.tenant_weights.push((tenant, weight));
        self
    }

    /// Give `tenant` an SLO budget.
    pub fn with_slo(mut self, tenant: u16, slo: SloBudget) -> Self {
        self.slos.push((tenant, slo));
        self
    }
}

/// Hit/miss/eviction counters for the bind-handle LRU caches (summed
/// across fabrics in [`FleetStats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BindCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to bind.
    pub misses: u64,
    /// Bound executors dropped to make room.
    pub evictions: u64,
}

/// One tenant's SLO standing, read out of [`FleetStats::slo_status`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantSloStatus {
    /// The tenant.
    pub tenant: u16,
    /// Observed p99 latency in microseconds.
    pub p99_latency_us: u64,
    /// The configured budget, if any.
    pub budget_us: Option<u64>,
    /// Whether the observed p99 currently exceeds the budget.
    pub violating: bool,
    /// Requests shed so far under [`ServeError::Shed`].
    pub shed: u64,
}

/// Lifetime fleet counters: an aggregate [`ServeStats`] plus one per
/// tenant, shed counts, and the bind-cache totals.
#[derive(Debug, Clone, Default)]
pub struct FleetStats {
    /// All tenants together.
    pub aggregate: ServeStats,
    /// Per-tenant counters, dense by tenant id.
    pub tenants: Vec<ServeStats>,
    /// Requests shed per tenant (subset of that tenant's `rejected`).
    pub sheds: Vec<u64>,
    /// Per-tenant p99 budgets (dense by tenant id; `None` = no SLO).
    pub budgets: Vec<Option<u64>>,
    /// Bind-handle LRU counters summed across fabrics.
    pub bind_cache: BindCacheStats,
}

impl FleetStats {
    /// Every tenant's SLO standing, dense by tenant id.
    pub fn slo_status(&self) -> Vec<TenantSloStatus> {
        (0..self.tenants.len())
            .map(|t| {
                let p99 = self.tenants[t].p99_latency_us();
                let budget = self.budgets.get(t).copied().flatten();
                TenantSloStatus {
                    tenant: t as u16,
                    p99_latency_us: p99,
                    budget_us: budget,
                    violating: budget.is_some_and(|b| p99 > b),
                    shed: self.sheds.get(t).copied().unwrap_or(0),
                }
            })
            .collect()
    }
}

/// A queued fleet request (single tenant's lane holds mixed models).
struct FleetRequest {
    model: ModelId,
    input: Vec<f32>,
    submitted_us: u64,
    tx: mpsc::Sender<Response>,
    /// The request's root trace span ([`Span::DISABLED`] when the global
    /// tracer is off — every later tracing call on it is then a no-op).
    span: Span,
    /// The open `queue` child span, closed when a worker claims the batch.
    queue_span: Span,
}

/// One fabric's queue behind its mutex.
struct FabricQueue {
    queue: WeightedFairBatcher<FleetRequest>,
    shutdown: bool,
}

/// One fabric: its queue, wakeup and bind cache (which models it hosts is
/// the placement's bookkeeping — the router consults `FleetPlacement`).
struct FabricUnit {
    state: Mutex<FabricQueue>,
    work: Condvar,
    binds: Mutex<BindCache>,
}

/// A tiny LRU over bound executors: `capacity` live binds per fabric.
struct BindCache {
    capacity: usize,
    clock: u64,
    entries: Vec<(ModelId, Arc<Executor>, u64)>,
    stats: BindCacheStats,
}

impl BindCache {
    fn new(capacity: usize) -> Self {
        BindCache {
            capacity: capacity.max(1),
            clock: 0,
            entries: Vec::new(),
            stats: BindCacheStats::default(),
        }
    }

    /// The cached executor for `model`, refreshing its recency on a hit.
    /// A miss is counted here — the caller binds *outside* the cache lock
    /// (so a slow cold bind never blocks a sibling replica's hit lookups)
    /// and hands the result to [`BindCache::insert`].
    fn lookup(&mut self, model: ModelId) -> Option<Arc<Executor>> {
        self.clock += 1;
        let clock = self.clock;
        if let Some(entry) = self.entries.iter_mut().find(|(id, _, _)| *id == model) {
            entry.2 = clock;
            self.stats.hits += 1;
            return Some(Arc::clone(&entry.1));
        }
        self.stats.misses += 1;
        None
    }

    /// Install a freshly bound executor, evicting the least-recently-used
    /// handle at capacity. If a racing worker bound `model` first, its
    /// entry wins (recency refreshed) so the cache never holds duplicates;
    /// the returned handle is the one the caller should run with.
    fn insert(&mut self, model: ModelId, executor: Arc<Executor>) -> Arc<Executor> {
        self.clock += 1;
        let clock = self.clock;
        if let Some(entry) = self.entries.iter_mut().find(|(id, _, _)| *id == model) {
            entry.2 = clock;
            return Arc::clone(&entry.1);
        }
        if self.entries.len() >= self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, _, used))| *used)
                .map(|(i, _)| i)
                .expect("cache non-empty at capacity");
            self.entries.swap_remove(lru);
            self.stats.evictions += 1;
        }
        self.entries.push((model, Arc::clone(&executor), clock));
        executor
    }
}

/// Bind `model`'s executor from the registry — the cold half of the bind
/// cache, run without any fabric lock held.
fn bind_executor(registry: &ModelRegistry, model: ModelId) -> Result<Arc<Executor>, ServeError> {
    let spec = registry
        .get(model)
        .ok_or(ServeError::UnknownModel { model })?;
    spec.compiled
        .executor(&spec.graph, &spec.params, &spec.precision)
        .map(Arc::new)
        .map_err(ServeError::Exec)
}

/// Per-tenant counters behind the stats mutex.
#[derive(Default)]
struct TenantState {
    stats: ServeStats,
    shed: u64,
    budget: Option<SloBudget>,
}

struct StatsState {
    aggregate: ServeStats,
    tenants: Vec<TenantState>,
}

impl StatsState {
    fn tenant_mut(&mut self, tenant: u16) -> &mut TenantState {
        let index = usize::from(tenant);
        while self.tenants.len() <= index {
            self.tenants.push(TenantState::default());
        }
        &mut self.tenants[index]
    }
}

/// Everything the fleet's worker threads share.
struct Shared {
    registry: ModelRegistry,
    fabrics: Vec<FabricUnit>,
    stats: Mutex<StatsState>,
    started: Instant,
    /// Cached global-registry handles (`fleet.submitted` …) plus the
    /// fleet-specific shed counter.
    counters: fpsa_serve::EngineCounters,
    shed_counter: fpsa_obs::Counter,
}

impl Shared {
    /// Microseconds since the fleet started (every queue's clock).
    fn now_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }
}

/// A multi-tenant, multi-model serving engine over a packed fleet of
/// fabrics (see the module docs).
pub struct FleetEngine {
    shared: Arc<Shared>,
    placement: FleetPlacement,
    workers: Vec<thread::JoinHandle<()>>,
    config: FleetConfig,
}

impl fmt::Debug for FleetEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FleetEngine")
            .field("fabrics", &self.placement.fabrics())
            .field("models", &self.shared.registry.len())
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl FleetEngine {
    /// Start serving the fleet: `placement` must come from
    /// [`FleetPlacement::pack`] over the same `registry`.
    pub fn start(
        registry: ModelRegistry,
        placement: FleetPlacement,
        config: FleetConfig,
    ) -> FleetEngine {
        let config = FleetConfig {
            replicas_per_fabric: config.replicas_per_fabric.max(1),
            max_batch: config.max_batch.max(1),
            ..config
        };
        let policy = BatchPolicy::new(config.max_batch, config.batch_window_us);
        let fabrics = (0..placement.fabrics())
            .map(|_| {
                let mut queue = WeightedFairBatcher::new(policy);
                for &(tenant, weight) in &config.tenant_weights {
                    queue.set_weight(tenant, weight);
                }
                FabricUnit {
                    state: Mutex::new(FabricQueue {
                        queue,
                        shutdown: false,
                    }),
                    work: Condvar::new(),
                    binds: Mutex::new(BindCache::new(config.bind_cache)),
                }
            })
            .collect();
        let mut stats = StatsState {
            aggregate: ServeStats::default(),
            tenants: Vec::new(),
        };
        for &(tenant, slo) in &config.slos {
            stats.tenant_mut(tenant).budget = Some(slo);
        }
        let shared = Arc::new(Shared {
            registry,
            fabrics,
            stats: Mutex::new(stats),
            started: Instant::now(),
            counters: fpsa_serve::EngineCounters::for_tier("fleet"),
            shed_counter: fpsa_obs::Registry::global().counter("fleet.shed"),
        });
        let mut workers = Vec::with_capacity(placement.fabrics() * config.replicas_per_fabric);
        for fabric in 0..placement.fabrics() {
            for replica in 0..config.replicas_per_fabric {
                let shared = Arc::clone(&shared);
                workers.push(
                    thread::Builder::new()
                        .name(format!("fpsa-fleet-{fabric}-{replica}"))
                        .spawn(move || worker_loop(&shared, fabric))
                        .expect("fleet worker threads spawn"),
                );
            }
        }
        FleetEngine {
            shared,
            placement,
            workers,
            config,
        }
    }

    /// The (clamped) configuration the fleet runs with.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The placement the fleet serves.
    pub fn placement(&self) -> &FleetPlacement {
        &self.placement
    }

    /// The registry the fleet serves.
    pub fn registry(&self) -> &ModelRegistry {
        &self.shared.registry
    }

    /// Enqueue one request for `model` on behalf of `tenant`; never blocks
    /// on the model. Invalid inputs, unknown models, SLO sheds and
    /// post-shutdown submissions resolve the ticket immediately with the
    /// typed error instead of poisoning a batch.
    pub fn submit(&self, tenant: u16, model: ModelId, input: Vec<f32>) -> Ticket {
        let Some(spec) = self.shared.registry.get(model) else {
            return self.reject(tenant, ServeError::UnknownModel { model });
        };
        if let Some(want) = spec.input_len() {
            if input.len() != want {
                return self.reject(
                    tenant,
                    ServeError::InputLength {
                        got: input.len(),
                        want,
                    },
                );
            }
        }
        let hosts = self.placement.hosts_of(model);
        debug_assert!(!hosts.is_empty(), "packed placement hosts every model");

        // SLO admission control: a tenant past its p99 budget with a deep
        // enough backlog is shed before it can queue.
        if let Some((budget, p99)) = self.blown_budget(tenant) {
            let backlog: usize = hosts
                .iter()
                .map(|&f| {
                    let state = self.shared.fabrics[f].state.lock().expect("fabric lock");
                    state.queue.tenant_len(tenant)
                })
                .sum();
            if backlog >= budget.shed_depth {
                let err = ServeError::Shed {
                    tenant,
                    p99_us: p99,
                    budget_us: budget.p99_budget_us,
                };
                // The typed-error telemetry hook: mark the decision on the
                // timeline and persist the flight-recorder postmortem (the
                // last queue-depth samples and spans before the shed).
                let tracer = Tracer::global();
                if tracer.enabled() {
                    tracer.instant(
                        "shed",
                        "fleet",
                        self.shared.now_us(),
                        &[("tenant", i64::from(tenant)), ("backlog", backlog as i64)],
                    );
                    fpsa_obs::flight_dump_on_error(
                        "fleet.shed",
                        &[
                            ("tenant", i64::from(tenant)),
                            ("p99_us", p99 as i64),
                            ("budget_us", budget.p99_budget_us as i64),
                            ("backlog", backlog as i64),
                        ],
                    );
                }
                let mut stats = self.shared.stats.lock().expect("stats lock");
                stats.tenant_mut(tenant).shed += 1;
                fpsa_obs::Registry::global().inc(self.shared.shed_counter);
                return Self::count_rejection(&self.shared, &mut stats, tenant, err);
            }
        }

        // Route to the hosting fabric with the shortest queue (ties to the
        // lowest index). The read is a heuristic — racing submitters may
        // both pick the same fabric — but admission order per fabric is
        // still serialized by its queue lock.
        let fabric = hosts
            .iter()
            .copied()
            .min_by_key(|&f| {
                let state = self.shared.fabrics[f].state.lock().expect("fabric lock");
                (state.queue.len(), f)
            })
            .expect("hosts non-empty");

        // One relaxed load when tracing is off; the routing decision and
        // the request's queue span open outside the fabric lock.
        let tracer = Tracer::global();
        let (span, queue_span) = if tracer.enabled() {
            let ts = tracer.now_us();
            let span = tracer.enter_with(
                "request",
                "fleet",
                ts,
                SpanId::NONE,
                &[("tenant", i64::from(tenant)), ("model", i64::from(model))],
            );
            tracer.record(&span, "fabric", fabric as i64, ts);
            let queue_span = tracer.enter("queue", "fleet", ts, span.id);
            (span, queue_span)
        } else {
            (Span::DISABLED, Span::DISABLED)
        };
        let (tx, ticket) = Ticket::channel();
        let unit = &self.shared.fabrics[fabric];
        {
            let mut state = unit.state.lock().expect("fabric lock");
            if state.shutdown {
                drop(state);
                if !span.id.is_none() {
                    let ts = tracer.now_us();
                    tracer.record(&span, "shutdown", 1, ts);
                    tracer.exit(&queue_span, ts);
                    tracer.exit(&span, ts);
                }
                let mut stats = self.shared.stats.lock().expect("stats lock");
                return Self::count_rejection(
                    &self.shared,
                    &mut stats,
                    tenant,
                    ServeError::ShutDown,
                );
            }
            // Stamped under the fabric lock, so each queue's timestamps are
            // monotone and lanes stay FIFO.
            let now = self.shared.now_us();
            state.queue.push(
                tenant,
                FleetRequest {
                    model,
                    input,
                    submitted_us: now,
                    tx,
                    span,
                    queue_span,
                },
                now,
            );
            let depth = state.queue.len();
            tracer.counter("fleet.queue_depth", "fleet", now, depth as i64);
            // Counted while the fabric lock is still held: a worker cannot
            // pop (let alone complete) this request before the lock drops,
            // so `completed <= submitted` holds in every stats() snapshot.
            let mut stats = self.shared.stats.lock().expect("stats lock");
            stats.aggregate.submitted += 1;
            self.shared.counters.submitted();
            stats.aggregate.record_queue_depth(depth);
            let tenant_state = stats.tenant_mut(tenant);
            tenant_state.stats.submitted += 1;
            tenant_state.stats.record_queue_depth(depth);
        }
        unit.work.notify_one();
        ticket
    }

    /// Submit one request and block for its output.
    ///
    /// # Errors
    ///
    /// The request's [`ServeError`], if it failed.
    pub fn infer(
        &self,
        tenant: u16,
        model: ModelId,
        input: Vec<f32>,
    ) -> Result<Vec<f32>, ServeError> {
        self.submit(tenant, model, input).wait()
    }

    /// A snapshot of the lifetime counters.
    pub fn stats(&self) -> FleetStats {
        let state = self.shared.stats.lock().expect("stats lock");
        let mut bind_cache = BindCacheStats::default();
        for unit in &self.shared.fabrics {
            let cache = unit.binds.lock().expect("bind cache lock");
            bind_cache.hits += cache.stats.hits;
            bind_cache.misses += cache.stats.misses;
            bind_cache.evictions += cache.stats.evictions;
        }
        FleetStats {
            aggregate: state.aggregate,
            tenants: state.tenants.iter().map(|t| t.stats).collect(),
            sheds: state.tenants.iter().map(|t| t.shed).collect(),
            budgets: state
                .tenants
                .iter()
                .map(|t| t.budget.map(|b| b.p99_budget_us))
                .collect(),
            bind_cache,
        }
    }

    /// Stop admitting requests, drain every queue, join the workers and
    /// return the final counters.
    pub fn shutdown(mut self) -> FleetStats {
        self.shutdown_and_join();
        self.stats()
    }

    fn shutdown_and_join(&mut self) {
        for unit in &self.shared.fabrics {
            let mut state = unit.state.lock().expect("fabric lock");
            state.shutdown = true;
        }
        for unit in &self.shared.fabrics {
            unit.work.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }

    /// The tenant's `(budget, observed p99)` if its p99 currently exceeds
    /// the budget.
    fn blown_budget(&self, tenant: u16) -> Option<(SloBudget, u64)> {
        let stats = self.shared.stats.lock().expect("stats lock");
        let state = stats.tenants.get(usize::from(tenant))?;
        let budget = state.budget?;
        let p99 = state.stats.p99_latency_us();
        (p99 > budget.p99_budget_us).then_some((budget, p99))
    }

    /// Resolve a ticket with `err` without queueing, counting the
    /// rejection for the tenant and the aggregate.
    fn reject(&self, tenant: u16, err: ServeError) -> Ticket {
        let mut stats = self.shared.stats.lock().expect("stats lock");
        Self::count_rejection(&self.shared, &mut stats, tenant, err)
    }

    fn count_rejection(
        shared: &Shared,
        stats: &mut StatsState,
        tenant: u16,
        err: ServeError,
    ) -> Ticket {
        stats.aggregate.rejected += 1;
        stats.tenant_mut(tenant).stats.rejected += 1;
        shared.counters.rejected();
        Ticket::resolved(Err(err))
    }
}

impl Drop for FleetEngine {
    fn drop(&mut self) {
        self.shutdown_and_join();
    }
}

impl fpsa_workload::RoutedReplayTarget for FleetEngine {
    fn submit_routed(&self, tenant: u16, model: u16, input: Vec<f32>) -> Ticket {
        FleetEngine::submit(self, tenant, model, input)
    }
    fn stats(&self) -> ServeStats {
        FleetEngine::stats(self).aggregate
    }
}

/// One fabric worker: claim per-tenant batches under weighted-fair order,
/// split each into contiguous same-model runs, execute them outside the
/// queue lock on this worker's arena, answer every ticket.
fn worker_loop(shared: &Shared, fabric: usize) {
    let tracer = Tracer::global();
    let mut arena = fpsa_sim::ExecArena::new();
    let mut inputs: Vec<Vec<f32>> = Vec::new();
    let mut outputs: Vec<Vec<f32>> = Vec::new();
    let mut exec_spans: Vec<Span> = Vec::new();
    while let Some((tenant, mut batch)) = next_batch(shared, fabric) {
        if tracer.enabled() {
            let ts = tracer.now_us();
            for req in &batch {
                tracer.exit(&req.queue_span, ts);
            }
        }
        let mut start = 0;
        while start < batch.len() {
            // A lane is FIFO across models; a run is the longest prefix of
            // one model, executed as one executor batch.
            let model = batch[start].model;
            let end = start
                + batch[start..]
                    .iter()
                    .take_while(|req| req.model == model)
                    .count();
            let run = &mut batch[start..end];
            inputs.clear();
            inputs.extend(run.iter_mut().map(|req| std::mem::take(&mut req.input)));
            exec_spans.clear();
            if tracer.enabled() {
                let ts = tracer.now_us();
                exec_spans.extend(run.iter().map(|req| {
                    tracer.enter_with(
                        "execute",
                        "fleet",
                        ts,
                        req.span.id,
                        &[("fabric", fabric as i64), ("run", run.len() as i64)],
                    )
                }));
            }
            // Cache lookup and insert each hold the bind mutex briefly;
            // the bind itself runs unlocked, so a slow cold bind never
            // stalls a sibling replica's cache hits on the same fabric.
            let cached = shared.fabrics[fabric]
                .binds
                .lock()
                .expect("bind cache lock")
                .lookup(model);
            let executor = match cached {
                Some(exec) => Ok(exec),
                None => bind_executor(&shared.registry, model).map(|exec| {
                    shared.fabrics[fabric]
                        .binds
                        .lock()
                        .expect("bind cache lock")
                        .insert(model, exec)
                }),
            };
            let result = match executor {
                Ok(exec) => exec
                    .run_batch_into(&inputs, &mut arena, &mut outputs)
                    .map_err(ServeError::Exec),
                Err(e) => Err(e),
            };
            let done_us = shared.now_us();
            if !exec_spans.is_empty() {
                let ts = tracer.now_us();
                for span in &exec_spans {
                    tracer.exit(span, ts);
                }
            }
            {
                // Count the run before answering its tickets, so a client
                // that just received its output observes itself in the
                // stats.
                let mut stats = shared.stats.lock().expect("stats lock");
                stats.aggregate.record_batch(run.len(), result.is_ok());
                shared.counters.batch_done(run.len(), result.is_ok());
                if result.is_ok() {
                    for req in run.iter() {
                        let latency = done_us.saturating_sub(req.submitted_us);
                        stats.aggregate.record_latency(latency);
                    }
                }
                let tenant_state = stats.tenant_mut(tenant);
                tenant_state.stats.record_batch(run.len(), result.is_ok());
                if result.is_ok() {
                    for req in run.iter() {
                        let latency = done_us.saturating_sub(req.submitted_us);
                        tenant_state.stats.record_latency(latency);
                    }
                }
            }
            match &result {
                Ok(()) => {
                    for (req, out) in run.iter().zip(outputs.iter_mut()) {
                        let latency = done_us.saturating_sub(req.submitted_us);
                        if req.span.id.is_none() {
                            let _ = req.tx.send(Ok((std::mem::take(out), latency)));
                        } else {
                            let respond =
                                tracer.enter("respond", "fleet", tracer.now_us(), req.span.id);
                            let _ = req.tx.send(Ok((std::mem::take(out), latency)));
                            let ts = tracer.now_us();
                            tracer.record(&req.span, "latency_us", latency as i64, ts);
                            tracer.exit(&respond, ts);
                            tracer.exit(&req.span, ts);
                        }
                    }
                }
                Err(e) => {
                    for req in run.iter() {
                        let _ = req.tx.send(Err(e.clone()));
                        if !req.span.id.is_none() {
                            let ts = tracer.now_us();
                            tracer.record(&req.span, "exec_error", 1, ts);
                            tracer.exit(&req.span, ts);
                        }
                    }
                }
            }
            start = end;
        }
    }
}

/// Block until this fabric has a batch (or drained out at shutdown),
/// mirroring `fpsa_serve`'s `next_batch` over the weighted-fair queue.
fn next_batch(shared: &Shared, fabric: usize) -> Option<(u16, Vec<FleetRequest>)> {
    let unit = &shared.fabrics[fabric];
    let mut state = unit.state.lock().expect("fabric lock");
    loop {
        let now = shared.now_us();
        if let Some(popped) = state.queue.pop_ready(now) {
            if !state.queue.is_empty() {
                unit.work.notify_one();
            }
            return Some(popped);
        }
        if state.shutdown {
            return state.queue.pop_now();
        }
        state = match state.queue.next_deadline_us() {
            Some(deadline) => {
                let wait = Duration::from_micros(deadline.saturating_sub(now).max(1));
                unit.work.wait_timeout(state, wait).expect("fabric lock").0
            }
            None => unit.work.wait(state).expect("fabric lock"),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpsa_arch::FabricCapacity;
    use fpsa_core::{CompileCache, Compiler};
    use fpsa_nn::{zoo, GraphParameters};
    use fpsa_sim::Precision;

    fn zoo_registry() -> ModelRegistry {
        let cache = Arc::new(CompileCache::new(8));
        let mut registry = ModelRegistry::with_cache(Compiler::fpsa(), cache);
        for (name, graph, seed) in [("mlp", zoo::tiny_mlp(), 11), ("cnn", zoo::tiny_cnn(), 13)] {
            let params = GraphParameters::seeded(&graph, seed);
            registry
                .register(name, graph, params, Precision::Float)
                .unwrap();
        }
        registry
    }

    fn ample() -> FabricCapacity {
        FabricCapacity::new(100_000, 20_000, 20_000)
    }

    fn sample(len: usize, seed: u64) -> Vec<f32> {
        (0..len)
            .map(|i| ((seed + i as u64) % 10) as f32 * 0.1)
            .collect()
    }

    #[test]
    fn fleet_outputs_match_direct_execution_across_models() {
        let registry = zoo_registry();
        let direct: Vec<Vec<f32>> = (0..8)
            .map(|i| {
                let spec = registry.get((i % 2) as ModelId).unwrap();
                let exec = spec
                    .compiled
                    .executor(&spec.graph, &spec.params, &spec.precision)
                    .unwrap();
                exec.run(&sample(spec.input_len().unwrap(), i)).unwrap()
            })
            .collect();
        let placement = FleetPlacement::pack(&registry, 2, ample()).unwrap();
        let engine = FleetEngine::start(registry, placement, FleetConfig::default());
        let tickets: Vec<Ticket> = (0..8)
            .map(|i| {
                let model = (i % 2) as ModelId;
                let len = engine.registry().get(model).unwrap().input_len().unwrap();
                engine.submit((i % 3) as u16, model, sample(len, i))
            })
            .collect();
        let served: Vec<Vec<f32>> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        assert_eq!(served, direct);
        let stats = engine.shutdown();
        assert_eq!(stats.aggregate.submitted, 8);
        assert_eq!(stats.aggregate.completed, 8);
        assert_eq!(stats.aggregate.failed + stats.aggregate.rejected, 0);
        assert_eq!(
            stats.tenants.iter().map(|t| t.completed).sum::<u64>(),
            8,
            "per-tenant counters partition the aggregate"
        );
    }

    #[test]
    fn bad_inputs_and_unknown_models_resolve_typed_errors() {
        let registry = zoo_registry();
        let placement = FleetPlacement::pack(&registry, 1, ample()).unwrap();
        let engine = FleetEngine::start(registry, placement, FleetConfig::default());
        let err = engine.submit(0, 0, vec![0.0; 3]).wait().unwrap_err();
        assert_eq!(err, ServeError::InputLength { got: 3, want: 16 });
        let err = engine.submit(0, 99, vec![0.0; 16]).wait().unwrap_err();
        assert_eq!(err, ServeError::UnknownModel { model: 99 });
        let stats = engine.shutdown();
        assert_eq!(stats.aggregate.rejected, 2);
    }

    #[test]
    fn a_cold_bind_cache_rebinds_under_pressure() {
        let registry = zoo_registry();
        let placement = FleetPlacement::pack(&registry, 1, ample()).unwrap();
        // One bind slot for two models forces an eviction per switch.
        let engine = FleetEngine::start(
            registry,
            placement,
            FleetConfig::default().with_replicas(1).with_bind_cache(1),
        );
        for i in 0..4u64 {
            let model = (i % 2) as ModelId;
            let len = engine.registry().get(model).unwrap().input_len().unwrap();
            engine.infer(0, model, sample(len, i)).unwrap();
        }
        let stats = engine.shutdown();
        assert_eq!(stats.aggregate.completed, 4);
        assert!(
            stats.bind_cache.misses >= 2,
            "both models must cold-bind at least once"
        );
        assert!(
            stats.bind_cache.evictions >= 1,
            "a single slot must evict on model switches"
        );
    }

    #[test]
    fn blown_slo_budgets_shed_with_the_typed_error() {
        let registry = zoo_registry();
        let placement = FleetPlacement::pack(&registry, 1, ample()).unwrap();
        let engine = FleetEngine::start(
            registry,
            placement,
            FleetConfig::default().with_slo(
                0,
                SloBudget {
                    p99_budget_us: 0,
                    shed_depth: 0,
                },
            ),
        );
        // First request completes (no latency history yet, p99 = 0).
        engine.infer(0, 0, sample(16, 1)).unwrap();
        // Now p99 > 0 exceeds the 0us budget: the next submit sheds.
        let err = engine.submit(0, 0, sample(16, 2)).wait().unwrap_err();
        match err {
            ServeError::Shed {
                tenant, budget_us, ..
            } => {
                assert_eq!(tenant, 0);
                assert_eq!(budget_us, 0);
            }
            other => panic!("expected Shed, got {other:?}"),
        }
        // Tenant 1 has no SLO and is untouched.
        engine.infer(1, 0, sample(16, 3)).unwrap();
        let stats = engine.shutdown();
        assert_eq!(stats.sheds[0], 1);
        assert_eq!(stats.tenants[0].rejected, 1);
        assert_eq!(stats.tenants[1].rejected, 0);
        let status = stats.slo_status();
        assert!(status[0].violating);
        assert_eq!(status[0].budget_us, Some(0));
        assert_eq!(status[1].budget_us, None);
    }

    #[test]
    fn shutdown_rejects_new_work_but_drains_queued_work() {
        let registry = zoo_registry();
        let placement = FleetPlacement::pack(&registry, 1, ample()).unwrap();
        let engine = FleetEngine::start(registry, placement, FleetConfig::default());
        engine.infer(0, 0, sample(16, 1)).unwrap();
        let stats = engine.shutdown();
        assert_eq!(stats.aggregate.completed, 1);
    }
}
