//! Fleet evaluation drivers (persisted by the `fleet_serving` bench).

pub mod fleet;
