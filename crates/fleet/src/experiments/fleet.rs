//! The fleet-serving comparison — beyond the paper.
//!
//! For a mixed model-zoo scenario (several models, several tenants, one
//! arrival stream) the driver compares two ways of spending the same
//! fabrics:
//!
//! * **co-located fleet** — [`FleetPlacement::pack`] puts every model on
//!   every fabric with room, and requests route to the shortest hosting
//!   queue under weighted-fair tenant admission;
//! * **dedicated fabrics** — the old one-model-per-engine layout: model
//!   *m*'s requests can only ever use model *m*'s fabric, however skewed
//!   the mix is.
//!
//! The headline numbers come from the **deterministic virtual clock**
//! (`fpsa_workload::simulate_fleet` vs per-model `simulate`), so the CI
//! pin in `BENCH_fleet.json` is scheduling arithmetic, not wall-clock
//! noise. The real [`FleetEngine`] replays the same trace too: its outputs
//! are asserted bit-identical to direct `Executor::run` per request, and
//! its wall-clock throughput is recorded as advisory context.

use std::time::Instant;

use fpsa_arch::{ArchitectureConfig, FabricCapacity};
use fpsa_core::compiler::PLACE_AND_ROUTE_BLOCK_LIMIT;
use fpsa_core::Compiler;
use fpsa_nn::{zoo, ComputationalGraph, GraphParameters};
use fpsa_serve::{ServeConfig, ServeEngine};
use fpsa_sim::Precision;
use fpsa_workload::{
    simulate, simulate_fleet, FleetPolicy, Scenario, Trace, TraceRecorder, TraceReplayer,
};
use serde::{Deserialize, Serialize};

use crate::{FleetConfig, FleetEngine, FleetPlacement, ModelRegistry};

/// One scenario's fleet-vs-dedicated comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetComparison {
    /// Scenario name.
    pub scenario: String,
    /// Requests in the trace.
    pub requests: usize,
    /// Trace identity (determinism pin).
    pub fingerprint: u64,
    /// Fabrics both layouts spend.
    pub fabrics: usize,
    /// Models in the zoo.
    pub models: Vec<String>,
    /// Tenants in the mix.
    pub tenants: usize,
    /// Model placements across the fleet (primaries + replicas).
    pub placements: usize,
    /// Aggregate virtual-clock throughput of the co-located fleet, rps.
    pub fleet_virtual_rps: f64,
    /// Aggregate virtual-clock throughput of dedicated fabrics, rps.
    pub dedicated_virtual_rps: f64,
    /// `fleet_virtual_rps / dedicated_virtual_rps` — the headline pin.
    pub virtual_speedup: f64,
    /// Fleet virtual makespan, first arrival to last completion, µs.
    pub fleet_makespan_us: u64,
    /// Dedicated virtual makespan over the same absolute time axis, µs.
    pub dedicated_makespan_us: u64,
    /// Per-tenant virtual p99 latency under the fleet, µs, dense by tenant.
    pub tenant_virtual_p99_us: Vec<u64>,
    /// Measured wall-clock throughput of the real fleet engine (advisory).
    pub fleet_measured_rps: f64,
    /// Whether every fleet output matched direct execution bit for bit.
    pub bit_identical: bool,
    /// Bind-handle cache hits over the measured replay.
    pub bind_hits: u64,
    /// Bind-handle cache misses (cold binds) over the measured replay.
    pub bind_misses: u64,
    /// Requests shed by SLO admission control (0 in the default config).
    pub sheds: u64,
}

/// The checked-in mixed-zoo scenario (`scenarios/fleet/fleet-zoo.scenario`
/// at the workspace root). It lives under `scenarios/fleet/` — not
/// `scenarios/` — because its arrival rate deliberately saturates a
/// dedicated single-model engine, which the workload phase-sampling bench
/// pins against for its own (unsaturated) scenarios.
///
/// # Panics
///
/// When the file is missing or fails to parse — both repo-integrity bugs.
pub fn checked_in_zoo() -> Scenario {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../scenarios/fleet/fleet-zoo.scenario"
    );
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    Scenario::parse(&text).unwrap_or_else(|e| panic!("{path} does not parse: {e}"))
}

/// The zoo graph a scenario model name refers to.
pub fn zoo_graph(name: &str) -> Option<ComputationalGraph> {
    match name {
        "tiny_mlp" => Some(zoo::tiny_mlp()),
        "tiny_wide_mlp" => Some(zoo::tiny_wide_mlp()),
        "tiny_cnn" => Some(zoo::tiny_cnn()),
        "tiny_avgpool_cnn" => Some(zoo::tiny_avgpool_cnn()),
        "tiny_resnet" => Some(zoo::tiny_resnet()),
        "tiny_concat" => Some(zoo::tiny_concat()),
        _ => None,
    }
}

/// Build the registry for a scenario's model mix: one registration per mix
/// entry, weights seeded from the scenario seed plus the mix position so
/// two entries of the same graph still carry distinct parameters.
///
/// # Panics
///
/// When a mix entry names no known tiny-zoo model, or a model fails to
/// compile — both harness bugs, not serving conditions.
pub fn registry_for(scenario: &Scenario) -> ModelRegistry {
    let mut registry = ModelRegistry::new(Compiler::fpsa());
    for (index, entry) in scenario.models.iter().enumerate() {
        let graph = zoo_graph(&entry.name)
            .unwrap_or_else(|| panic!("scenario model {:?} is not a tiny zoo model", entry.name));
        let params = GraphParameters::seeded(&graph, scenario.seed + index as u64);
        registry
            .register(&entry.name, graph, params, Precision::Float)
            .expect("tiny zoo models compile");
    }
    registry
}

/// The per-fabric capacity both layouts budget against: what one fabric at
/// the physical-design block limit offers.
pub fn fabric_capacity() -> FabricCapacity {
    FabricCapacity::within_block_budget(&ArchitectureConfig::fpsa(), PLACE_AND_ROUTE_BLOCK_LIMIT)
}

/// Weighted-fair tenant shares derived from the scenario's tenant mix
/// weights (rounded, clamped ≥ 1).
pub fn tenant_weights(scenario: &Scenario) -> Vec<(u16, u64)> {
    scenario
        .tenants
        .iter()
        .enumerate()
        .map(|(tenant, entry)| (tenant as u16, (entry.weight.round() as u64).max(1)))
        .collect()
}

/// Model `model`'s sub-trace with the original arrival times preserved —
/// the dedicated-fabric view of the shared stream. Not rebased: the
/// makespan fix in `simulate` measures from the first arrival, so the
/// absolute time axis stays comparable across sub-traces.
fn sub_trace(trace: &Trace, model: u16) -> Trace {
    Trace {
        scenario: trace.scenario.clone(),
        seed: trace.seed,
        events: trace
            .events
            .iter()
            .filter(|e| e.model == model)
            .copied()
            .collect(),
    }
}

/// Run the comparison for `scenario` on `fabrics` fabrics (see the module
/// docs). `fabrics` is typically the model count, so both layouts spend
/// the same silicon.
pub fn run(scenario: &Scenario, fabrics: usize) -> FleetComparison {
    let trace = TraceRecorder::new(scenario)
        .record()
        .expect("scenario is valid");
    let registry = registry_for(scenario);
    let placement = FleetPlacement::pack(&registry, fabrics, fabric_capacity())
        .expect("the tiny zoo fits the fleet");
    let weights = tenant_weights(scenario);

    // --- Virtual clock: the deterministic, CI-pinnable half. ---
    let fleet_policy = FleetPolicy {
        per_fabric: scenario.policy,
        hosted: placement.hosted.clone(),
        tenant_weights: weights.clone(),
    };
    let fleet_virtual = simulate_fleet(&trace, &fleet_policy, scenario.service);

    // Dedicated baseline: model m's requests on model m's fabric only,
    // same per-fabric policy, combined over the shared absolute time axis.
    let mut dedicated_first = u64::MAX;
    let mut dedicated_last = 0u64;
    for model in 0..registry.len() as u16 {
        let sub = sub_trace(&trace, model);
        if sub.is_empty() {
            continue;
        }
        let first_at = sub.events[0].at_us;
        let replay = simulate(&sub, scenario.policy, scenario.service);
        dedicated_first = dedicated_first.min(first_at);
        dedicated_last = dedicated_last.max(first_at + replay.makespan_us);
    }
    let dedicated_makespan_us = dedicated_last.saturating_sub(dedicated_first.min(dedicated_last));
    let dedicated_virtual_rps =
        trace.len() as f64 / (dedicated_makespan_us.max(1) as f64 / 1_000_000.0);

    // --- Real engine: bit-identity and advisory wall-clock throughput. ---
    let input_lens: Vec<usize> = registry
        .models()
        .iter()
        .map(|m| m.input_len().expect("zoo models have input nodes"))
        .collect();
    let direct: Vec<Vec<f32>> = trace
        .events
        .iter()
        .enumerate()
        .map(|(index, event)| {
            let spec = registry.get(event.model).expect("trace model registered");
            let exec = spec
                .compiled
                .executor(&spec.graph, &spec.params, &spec.precision)
                .expect("registered models bind");
            exec.run(&trace.input_for(index, input_lens[usize::from(event.model)]))
                .expect("direct execution succeeds")
        })
        .collect();

    let mut config = FleetConfig::default()
        .with_replicas(scenario.policy.replicas)
        .with_batching(scenario.policy.max_batch, scenario.policy.window_us);
    for &(tenant, weight) in &weights {
        config = config.with_tenant_weight(tenant, weight);
    }
    let engine = FleetEngine::start(registry, placement.clone(), config);
    let outcome = TraceReplayer::new(&trace, 0).replay_routed(&engine, &input_lens);
    let bit_identical = outcome.outputs == direct;
    let stats = engine.shutdown();

    FleetComparison {
        scenario: scenario.name.clone(),
        requests: trace.len(),
        fingerprint: trace.fingerprint(),
        fabrics: placement.fabrics(),
        models: scenario.models.iter().map(|m| m.name.clone()).collect(),
        tenants: scenario.tenants.len().max(1),
        placements: placement.replicas(),
        fleet_virtual_rps: fleet_virtual.aggregate.throughput_rps,
        dedicated_virtual_rps,
        virtual_speedup: fleet_virtual.aggregate.throughput_rps / dedicated_virtual_rps.max(1e-9),
        fleet_makespan_us: fleet_virtual.aggregate.makespan_us,
        dedicated_makespan_us,
        tenant_virtual_p99_us: fleet_virtual
            .per_tenant
            .iter()
            .map(|t| t.p99_latency_us())
            .collect(),
        fleet_measured_rps: outcome.throughput_rps(),
        bit_identical,
        bind_hits: stats.bind_cache.hits,
        bind_misses: stats.bind_cache.misses,
        sheds: stats.sheds.iter().sum(),
    }
}

/// Measure the dedicated real-engine baseline for context: one
/// [`ServeEngine`] per model, each replaying its sub-trace concurrently.
/// Returns aggregate wall-clock throughput in requests/s (advisory — wall
/// clock on a shared host, never pinned).
pub fn measure_dedicated(scenario: &Scenario) -> f64 {
    let trace = TraceRecorder::new(scenario)
        .record()
        .expect("scenario is valid");
    let registry = registry_for(scenario);
    let engines: Vec<(Trace, usize, ServeEngine)> = (0..registry.len() as u16)
        .map(|model| {
            let spec = registry.get(model).expect("model registered");
            let exec = spec
                .compiled
                .executor(&spec.graph, &spec.params, &spec.precision)
                .expect("registered models bind");
            let engine = ServeEngine::start(
                exec,
                ServeConfig {
                    replicas: scenario.policy.replicas,
                    max_batch: scenario.policy.max_batch,
                    batch_window_us: scenario.policy.window_us,
                },
            );
            let len = spec.input_len().expect("zoo models have input nodes");
            (sub_trace(&trace, model), len, engine)
        })
        .collect();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for (sub, input_len, engine) in &engines {
            scope.spawn(move || {
                if !sub.is_empty() {
                    TraceReplayer::new(sub, *input_len).replay(engine);
                }
            });
        }
    });
    let wall_us = start.elapsed().as_micros().max(1) as f64;
    trace.len() as f64 / (wall_us / 1_000_000.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpsa_workload::MixEntry;

    fn small_zoo() -> Scenario {
        let mut scenario = Scenario::steady("fleet-exp", "tiny_mlp", 0xF1EE7, 48);
        scenario.models = vec![
            MixEntry {
                name: "tiny_mlp".into(),
                weight: 4.0,
            },
            MixEntry {
                name: "tiny_cnn".into(),
                weight: 1.0,
            },
        ];
        scenario.tenants = vec![
            MixEntry {
                name: "free".into(),
                weight: 1.0,
            },
            MixEntry {
                name: "pro".into(),
                weight: 3.0,
            },
        ];
        scenario
    }

    #[test]
    fn the_comparison_is_bit_identical_and_virtual_numbers_are_deterministic() {
        let scenario = small_zoo();
        let a = run(&scenario, 2);
        assert!(a.bit_identical, "fleet outputs diverged from direct runs");
        assert_eq!(a.requests, 48);
        assert_eq!(a.models, vec!["tiny_mlp".to_string(), "tiny_cnn".into()]);
        let b = run(&scenario, 2);
        // Virtual numbers are clock arithmetic: identical across runs.
        assert_eq!(a.fleet_virtual_rps, b.fleet_virtual_rps);
        assert_eq!(a.dedicated_virtual_rps, b.dedicated_virtual_rps);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.tenant_virtual_p99_us, b.tenant_virtual_p99_us);
        assert_eq!(a.sheds, 0, "no SLO budgets configured, nothing sheds");
    }

    #[test]
    fn unknown_models_panic_with_a_named_culprit() {
        let mut scenario = small_zoo();
        scenario.models[0].name = "vgg1000".into();
        let err = std::panic::catch_unwind(|| registry_for(&scenario)).unwrap_err();
        let message = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            message.contains("vgg1000"),
            "panic names the model: {message}"
        );
    }
}
