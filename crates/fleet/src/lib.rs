//! `fpsa_fleet` — multi-tenant model-fleet serving.
//!
//! One FPSA fabric comfortably holds many small models at once: a
//! `tiny_mlp`'s netlist uses a fraction of the block budget a chip offers,
//! so dedicating a fabric (and an `fpsa_serve::ServeEngine`) to every model
//! strands most of the fleet's capacity. This crate serves a whole model
//! *zoo* through one front door instead:
//!
//! * [`ModelRegistry`] — every served model, compiled once through the
//!   shared `fpsa_core::CompileCache` and keyed by its content-addressed
//!   `CompileKey`, with its block demand measured off the mapped netlist;
//! * [`FleetPlacement`] — a deterministic capacity packer that co-locates
//!   models onto fabrics first-fit-decreasing and replicates them into the
//!   leftover room, failing with the compiler's own typed
//!   `CompileError::CapacityExceeded` when a model fits nowhere;
//! * [`FleetEngine`] — per-fabric worker pools behind weighted-fair
//!   (deficit-round-robin) tenant queues, shortest-queue routing across
//!   the fabrics hosting a model, an LRU bind-handle cache so cold models
//!   pay one bind, and per-tenant latency histograms with SLO budgets that
//!   shed (typed `ServeError::Shed`) once a tenant's p99 blows through its
//!   budget with a backlog behind it.
//!
//! Fleet outputs are **bit-identical** to direct `Executor::run` for every
//! model, tenant, precision and interleaving (`tests/fleet_determinism.rs`)
//! — co-location changes where and when a request runs, never what it
//! computes. The virtual-clock twin of this engine lives in
//! `fpsa_workload::simulate_fleet`, and `experiments::fleet` compares the
//! two placements (co-located fleet vs dedicated single-model engines) on
//! that deterministic clock for the CI-pinned `BENCH_fleet.json`.
//!
//! # Quick start
//!
//! ```
//! use fpsa_arch::FabricCapacity;
//! use fpsa_core::Compiler;
//! use fpsa_fleet::{FleetConfig, FleetEngine, FleetPlacement, ModelRegistry};
//! use fpsa_nn::{zoo, GraphParameters};
//! use fpsa_sim::Precision;
//!
//! let mut registry = ModelRegistry::new(Compiler::fpsa());
//! let graph = zoo::tiny_mlp();
//! let params = GraphParameters::seeded(&graph, 7);
//! let mlp = registry.register("tiny_mlp", graph, params, Precision::Float)?;
//!
//! let capacity = FabricCapacity::new(100_000, 20_000, 20_000);
//! let placement = FleetPlacement::pack(&registry, 2, capacity)?;
//! let engine = FleetEngine::start(registry, placement, FleetConfig::default());
//! let logits = engine.infer(0, mlp, vec![0.5; 16]).expect("request is served");
//! assert_eq!(logits.len(), 4);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod engine;
pub mod experiments;
pub mod packer;
pub mod registry;

pub use engine::{
    BindCacheStats, FleetConfig, FleetEngine, FleetStats, SloBudget, TenantSloStatus,
};
pub use packer::FleetPlacement;
pub use registry::{FleetModel, ModelId, ModelRegistry};
