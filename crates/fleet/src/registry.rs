//! The model registry: every model a fleet serves, compiled once through
//! the shared [`CompileCache`] and annotated with its fabric footprint.
//!
//! A fleet serves a *zoo* — many small models with independent weights and
//! precisions — so the registry is the single place where a model's
//! identity is pinned down: its [`CompileKey`] (content hash of graph +
//! compiler configuration, the same key the compile cache dedupes on), its
//! compiled artifacts, and its [`FabricCapacity`] demand that the packer
//! budgets against. Registering the same graph twice costs one compile:
//! the second registration is a cache hit on the identical key.

use std::fmt;
use std::sync::Arc;

use fpsa_arch::FabricCapacity;
use fpsa_core::{CompileCache, CompileError, CompileKey, CompiledModel, Compiler};
use fpsa_nn::{ComputationalGraph, GraphParameters, Operator};
use fpsa_sim::{CacheOutcome, Precision};

/// Dense registry index of a model, matching `TraceEvent::model`.
pub type ModelId = u16;

/// One registered model: everything needed to bind an executor on any
/// fabric that hosts it, plus the footprint the packer budgets with.
#[derive(Clone)]
pub struct FleetModel {
    /// Human-readable name (unique within the registry).
    pub name: String,
    /// The model graph (bind-time input).
    pub graph: ComputationalGraph,
    /// The model's weights.
    pub params: GraphParameters,
    /// Arithmetic mode requests for this model run under.
    pub precision: Precision,
    /// Compiled artifacts, shared with the compile cache.
    pub compiled: Arc<CompiledModel>,
    /// Content key the compile cache filed the artifacts under.
    pub key: CompileKey,
    /// Function-block demand of the mapped netlist — what one placement of
    /// this model consumes on a fabric.
    pub demand: FabricCapacity,
    /// How the compile cache satisfied this model's registration.
    pub cache_outcome: CacheOutcome,
}

impl FleetModel {
    /// Elements the model's input vector must have (the graph's input
    /// node's element count, the same width `Executor::input_len` reports
    /// after binding).
    pub fn input_len(&self) -> Option<usize> {
        self.graph.nodes().iter().find_map(|n| match &n.op {
            Operator::Input { shape } => Some(shape.elements()),
            _ => None,
        })
    }
}

impl fmt::Debug for FleetModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FleetModel")
            .field("name", &self.name)
            .field("key", &self.key.hex())
            .field("demand", &self.demand)
            .finish_non_exhaustive()
    }
}

/// The fleet's model zoo: compile-once storage for every served model,
/// keyed by dense [`ModelId`] for the hot path and by [`CompileKey`] for
/// artifact identity.
#[derive(Clone)]
pub struct ModelRegistry {
    compiler: Compiler,
    cache: Arc<CompileCache>,
    models: Vec<FleetModel>,
}

impl ModelRegistry {
    /// An empty registry compiling through the process-wide
    /// [`CompileCache::global`].
    pub fn new(compiler: Compiler) -> Self {
        ModelRegistry::with_cache(compiler, CompileCache::global())
    }

    /// An empty registry compiling through a caller-owned cache (tests use
    /// this to observe hit/miss behaviour in isolation).
    pub fn with_cache(compiler: Compiler, cache: Arc<CompileCache>) -> Self {
        ModelRegistry {
            compiler,
            cache,
            models: Vec::new(),
        }
    }

    /// The compiler configuration every registered model shares.
    pub fn compiler(&self) -> &Compiler {
        &self.compiler
    }

    /// Compile `graph` (through the shared cache) and add it to the zoo.
    /// Returns the new model's dense id.
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] from the compile pipeline — notably
    /// [`CompileError::CapacityExceeded`] when the model alone outgrows a
    /// fabric.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        graph: ComputationalGraph,
        params: GraphParameters,
        precision: Precision,
    ) -> Result<ModelId, CompileError> {
        let (compiled, info) = self.cache.compile_with_info(&self.compiler, &graph)?;
        let key = CompileKey::for_compile(&self.compiler, &graph);
        let (pes, smbs, clbs) = compiled.mapping.block_demand();
        let id = self.models.len() as ModelId;
        self.models.push(FleetModel {
            name: name.into(),
            graph,
            params,
            precision,
            compiled,
            key,
            demand: FabricCapacity::new(pes, smbs, clbs),
            cache_outcome: info.outcome,
        });
        Ok(id)
    }

    /// The model filed under `id`, if registered.
    pub fn get(&self, id: ModelId) -> Option<&FleetModel> {
        self.models.get(usize::from(id))
    }

    /// All registered models in id order.
    pub fn models(&self) -> &[FleetModel] {
        &self.models
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the zoo is empty.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Look a model up by name.
    pub fn id_of(&self, name: &str) -> Option<ModelId> {
        self.models
            .iter()
            .position(|m| m.name == name)
            .map(|i| i as ModelId)
    }
}

impl fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ModelRegistry")
            .field("models", &self.models)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpsa_nn::zoo;

    #[test]
    fn registering_the_same_graph_twice_hits_the_cache() {
        let cache = Arc::new(CompileCache::new(8));
        let mut registry = ModelRegistry::with_cache(Compiler::fpsa(), cache.clone());
        let graph = zoo::tiny_mlp();
        let a = registry
            .register(
                "mlp-a",
                graph.clone(),
                GraphParameters::seeded(&graph, 1),
                Precision::Float,
            )
            .unwrap();
        let b = registry
            .register(
                "mlp-b",
                graph.clone(),
                GraphParameters::seeded(&graph, 2),
                Precision::Float,
            )
            .unwrap();
        assert_ne!(a, b, "distinct weights are distinct models");
        assert_eq!(
            registry.get(a).unwrap().key,
            registry.get(b).unwrap().key,
            "same graph, same compile key"
        );
        assert_eq!(cache.stats().compiles_executed(), 1);
        assert_eq!(registry.get(b).unwrap().cache_outcome, CacheOutcome::Hit);
    }

    #[test]
    fn demand_reflects_the_mapped_netlist() {
        let mut registry = ModelRegistry::new(Compiler::fpsa());
        let graph = zoo::tiny_mlp();
        let params = GraphParameters::seeded(&graph, 7);
        let id = registry
            .register("mlp", graph, params, Precision::Float)
            .unwrap();
        let model = registry.get(id).unwrap();
        let (pes, smbs, clbs) = model.compiled.mapping.block_demand();
        assert_eq!(model.demand, FabricCapacity::new(pes, smbs, clbs));
        assert!(model.demand.total_blocks() > 0);
        assert_eq!(model.input_len(), Some(16));
        assert_eq!(registry.id_of("mlp"), Some(id));
    }
}
