//! Co-location packing: assign every registered model to one or more
//! fabrics under a per-fabric [`FabricCapacity`] budget.
//!
//! Small models leave most of a fabric idle, so the fleet packs several
//! onto each chip. The packer runs in two deterministic passes:
//!
//! 1. **Primary placement** (first-fit-decreasing): models sorted by PE
//!    demand, largest first, each landing on the first fabric with room.
//!    A model that fits on *no* fabric raises the compiler's own typed
//!    [`CompileError::CapacityExceeded`] — the same error a single-fabric
//!    compile reports, with `available` describing the packer's budget.
//! 2. **Replication**: leftover capacity is filled by replicating models
//!    round-robin (largest first) onto every fabric that still has room
//!    and does not host them yet, so any fabric can absorb any model's
//!    load and the router can steer around hot spots.
//!
//! Both passes are pure arithmetic over block counts — no randomness, no
//! clocks — so the same registry and budget always produce the same
//! placement.

use fpsa_arch::FabricCapacity;
use fpsa_core::CompileError;

use crate::registry::{ModelId, ModelRegistry};

/// Where every model lives: the output of [`FleetPlacement::pack`], the
/// input to `FleetEngine::start`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetPlacement {
    /// Per-fabric budget the packing was computed against.
    pub capacity: FabricCapacity,
    /// Models hosted on each fabric, in ascending id order.
    pub hosted: Vec<Vec<ModelId>>,
    /// Capacity left on each fabric after packing.
    pub residual: Vec<FabricCapacity>,
}

impl FleetPlacement {
    /// Pack every model in `registry` onto `fabrics` chips of `capacity`
    /// each (see the module docs for the algorithm).
    ///
    /// # Errors
    ///
    /// [`CompileError::CapacityExceeded`] when some model's demand fits on
    /// no fabric even empty — co-location cannot help a model that is too
    /// big for one chip (that is `fpsa_shard`'s job).
    pub fn pack(
        registry: &ModelRegistry,
        fabrics: usize,
        capacity: FabricCapacity,
    ) -> Result<FleetPlacement, CompileError> {
        let fabrics = fabrics.max(1);
        let mut order: Vec<ModelId> = (0..registry.len() as ModelId).collect();
        // Largest PE demand first; ties broken by id for determinism.
        order.sort_by_key(|&id| {
            let demand = registry.get(id).expect("id in range").demand;
            (std::cmp::Reverse(demand.pes), id)
        });

        let mut hosted: Vec<Vec<ModelId>> = vec![Vec::new(); fabrics];
        let mut residual = vec![capacity; fabrics];

        // Pass 1: first-fit-decreasing — every model gets a primary home.
        for &id in &order {
            let demand = registry.get(id).expect("id in range").demand;
            let Some(fabric) = residual.iter().position(|left| left.fits(&demand)) else {
                return Err(CompileError::CapacityExceeded {
                    required: demand,
                    available: capacity,
                    blocks: demand.total_blocks(),
                    block_limit: capacity.total_blocks(),
                });
            };
            hosted[fabric].push(id);
            residual[fabric] = subtract(residual[fabric], demand);
        }

        // Pass 2: replicate round-robin into leftover capacity so load can
        // spread — each sweep adds at most one replica per model, and the
        // loop stops once a full sweep places nothing.
        loop {
            let mut placed = false;
            for &id in &order {
                let demand = registry.get(id).expect("id in range").demand;
                let slot =
                    (0..fabrics).find(|&f| !hosted[f].contains(&id) && residual[f].fits(&demand));
                if let Some(fabric) = slot {
                    hosted[fabric].push(id);
                    residual[fabric] = subtract(residual[fabric], demand);
                    placed = true;
                }
            }
            if !placed {
                break;
            }
        }

        for models in &mut hosted {
            models.sort_unstable();
        }
        Ok(FleetPlacement {
            capacity,
            hosted,
            residual,
        })
    }

    /// Number of fabrics in the placement.
    pub fn fabrics(&self) -> usize {
        self.hosted.len()
    }

    /// The fabrics hosting `model`, in ascending index order.
    pub fn hosts_of(&self, model: ModelId) -> Vec<usize> {
        (0..self.hosted.len())
            .filter(|&f| self.hosted[f].contains(&model))
            .collect()
    }

    /// Total placements (primaries plus replicas) across the fleet.
    pub fn replicas(&self) -> usize {
        self.hosted.iter().map(Vec::len).sum()
    }
}

/// Kind-wise saturating capacity subtraction.
fn subtract(left: FabricCapacity, demand: FabricCapacity) -> FabricCapacity {
    FabricCapacity::new(
        left.pes.saturating_sub(demand.pes),
        left.smbs.saturating_sub(demand.smbs),
        left.clbs.saturating_sub(demand.clbs),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpsa_core::Compiler;
    use fpsa_nn::{zoo, GraphParameters};
    use fpsa_sim::Precision;
    use std::sync::Arc;

    fn zoo_registry() -> ModelRegistry {
        let cache = Arc::new(fpsa_core::CompileCache::new(8));
        let mut registry = ModelRegistry::with_cache(Compiler::fpsa(), cache);
        for (name, graph) in [("mlp", zoo::tiny_mlp()), ("cnn", zoo::tiny_cnn())] {
            let params = GraphParameters::seeded(&graph, 11);
            registry
                .register(name, graph, params, Precision::Float)
                .unwrap();
        }
        registry
    }

    #[test]
    fn every_model_gets_a_home_and_replicas_fill_leftover_room() {
        let registry = zoo_registry();
        let ample = FabricCapacity::new(100_000, 20_000, 20_000);
        let placement = FleetPlacement::pack(&registry, 2, ample).unwrap();
        assert_eq!(placement.fabrics(), 2);
        for model in 0..registry.len() as ModelId {
            assert_eq!(
                placement.hosts_of(model),
                vec![0, 1],
                "with ample capacity every fabric hosts every model"
            );
        }
        for (fabric, left) in placement.residual.iter().enumerate() {
            assert!(
                left.total_blocks() < placement.capacity.total_blocks(),
                "fabric {fabric} consumed nothing"
            );
        }
    }

    #[test]
    fn an_oversized_model_is_a_typed_capacity_error() {
        let registry = zoo_registry();
        let tiny = FabricCapacity::new(1, 1, 1);
        let err = FleetPlacement::pack(&registry, 4, tiny).unwrap_err();
        match err {
            CompileError::CapacityExceeded {
                required,
                available,
                ..
            } => {
                assert_eq!(available, tiny);
                assert!(required.total_blocks() > tiny.total_blocks());
            }
            other => panic!("expected CapacityExceeded, got {other:?}"),
        }
    }

    #[test]
    fn packing_is_deterministic() {
        let registry = zoo_registry();
        let cap = FabricCapacity::new(4_000, 1_000, 1_000);
        let a = FleetPlacement::pack(&registry, 3, cap).unwrap();
        let b = FleetPlacement::pack(&registry, 3, cap).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn tight_capacity_splits_models_across_fabrics() {
        let registry = zoo_registry();
        // Budget big enough for the larger model alone but not both.
        let biggest = registry
            .models()
            .iter()
            .map(|m| m.demand)
            .max_by_key(|d| d.pes)
            .unwrap();
        let both: usize = registry.models().iter().map(|m| m.demand.pes).sum();
        if both <= biggest.pes {
            return; // degenerate zoo; nothing to split
        }
        let cap = FabricCapacity::new(
            biggest.pes,
            registry.models().iter().map(|m| m.demand.smbs).sum(),
            registry.models().iter().map(|m| m.demand.clbs).sum(),
        );
        let placement = FleetPlacement::pack(&registry, 2, cap).unwrap();
        // No fabric can hold both models' PEs, so each hosts exactly one.
        assert!(placement.hosted.iter().all(|h| h.len() == 1));
        assert_eq!(placement.replicas(), 2);
    }
}
