//! S3 pin: the flight-recorder ring under concurrent writers.
//!
//! Many engine threads record into the same fixed-capacity ring while it
//! wraps; a reader snapshotting mid-flight must never observe a torn
//! event — every event is either fully one writer's record or fully
//! another's. Events are plain `Copy` data behind the buffer mutex, so
//! this holds by construction; the test pins it against a future "make
//! the ring lock-free" refactor done carelessly.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use fpsa_obs::{Mode, Phase, Tracer};

/// Every recorded event carries two args that must stay mutually
/// consistent: `("lo", v)` and `("hi", v + 1)` where `v` encodes the
/// writer and its sequence number. A torn event would pair a `lo` from
/// one record with a `hi` from another.
fn assert_untorn(events: &[fpsa_obs::Event]) {
    for event in events {
        assert_eq!(event.phase, Phase::Instant);
        assert_eq!(event.name, "tick");
        let args = event.args();
        assert_eq!(args.len(), 2, "every writer records two args");
        assert_eq!(args[0].0, "lo");
        assert_eq!(args[1].0, "hi");
        assert_eq!(
            args[1].1,
            args[0].1 + 1,
            "torn event: lo and hi come from different records"
        );
    }
}

#[test]
fn concurrent_writers_never_tear_ring_events() {
    const WRITERS: i64 = 4;
    const EVENTS_PER_WRITER: i64 = 5_000;
    // Small ring: it wraps hundreds of times under the writers.
    let tracer = Arc::new(Tracer::with_flight_capacity(64));
    tracer.set_mode(Mode::FlightRecorder);

    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let tracer = Arc::clone(&tracer);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut snapshots = 0u64;
            while !stop.load(Ordering::Relaxed) {
                assert_untorn(&tracer.flight_events());
                snapshots += 1;
            }
            snapshots
        })
    };

    std::thread::scope(|scope| {
        for writer in 0..WRITERS {
            let tracer = Arc::clone(&tracer);
            scope.spawn(move || {
                for seq in 0..EVENTS_PER_WRITER {
                    let v = writer * EVENTS_PER_WRITER + seq;
                    tracer.instant("tick", "test", seq as u64, &[("lo", v), ("hi", v + 1)]);
                }
            });
        }
    });
    stop.store(true, Ordering::Relaxed);
    let snapshots = reader.join().expect("reader thread");
    assert!(snapshots > 0, "the reader observed the ring mid-flight");

    // Final state: the ring saw every record and retains the newest 64,
    // all untorn.
    let finale = tracer.flight_events();
    assert_eq!(finale.len(), 64);
    assert_untorn(&finale);
    assert_eq!(tracer.flight_total(), (WRITERS * EVENTS_PER_WRITER) as u64);
}

#[test]
fn a_dump_under_concurrent_writers_is_internally_consistent() {
    let tracer = Arc::new(Tracer::with_flight_capacity(32));
    tracer.set_mode(Mode::FlightRecorder);

    std::thread::scope(|scope| {
        for writer in 0..3i64 {
            let tracer = Arc::clone(&tracer);
            scope.spawn(move || {
                for seq in 0..2_000i64 {
                    let v = writer * 2_000 + seq;
                    tracer.instant("tick", "test", seq as u64, &[("lo", v), ("hi", v + 1)]);
                }
            });
        }
        // Dump repeatedly while the writers hammer the ring.
        let tracer = Arc::clone(&tracer);
        scope.spawn(move || {
            for i in 0..200i64 {
                if let Some(dump) = tracer.dump_flight("test.trigger", &[("round", i)]) {
                    assert_eq!(dump.reason, "test.trigger");
                    assert_eq!(dump.args, vec![("round", i)]);
                    assert_untorn(&dump.events);
                    assert!(dump.total_recorded >= dump.events.len() as u64);
                }
            }
        });
    });
}
