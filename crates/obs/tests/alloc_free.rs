//! The hot-path contract, pinned literally: with tracing [`Mode::Off`],
//! every recording call is allocation-free. A counting global allocator
//! wraps the system one; the single test in this binary (it must stay
//! alone — a second parallel test would pollute the counter) drives the
//! whole recording surface against a disabled tracer and demands zero
//! allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use fpsa_obs::{Mode, Span, SpanId, Tracer};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn disabled_recording_calls_never_allocate() {
    let tracer = Tracer::new();
    assert_eq!(tracer.mode(), Mode::Off);
    // Warm anything lazy (the monotonic clock needs no warmup, but a
    // first call is free insurance) before the counter window opens.
    let _ = tracer.now_us();
    // The allocator counter is process-wide, and libtest's main thread
    // lazily allocates its completion-channel context the first time it
    // blocks in recv — a sleep here hands it the CPU so that one-time
    // init lands before the window opens instead of racing into it.
    std::thread::sleep(std::time::Duration::from_millis(50));

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut sink = 0u64;
    for i in 0..10_000u64 {
        let span = tracer.enter("span", "test", i, SpanId::NONE);
        let child = tracer.enter_with("child", "test", i, span.id, &[("i", i as i64)]);
        tracer.record(&span, "mark", i as i64, i);
        tracer.instant("instant", "test", i, &[("i", i as i64)]);
        tracer.counter("depth", "test", i, i as i64);
        tracer.exit(&child, i);
        tracer.exit(&span, i);
        // Keep the disabled handles observable so the loop can't be
        // optimized into nothing.
        sink = sink.wrapping_add(span.id.0).wrapping_add(child.id.0);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(sink, 0, "disabled spans are all Span::DISABLED");
    assert_eq!(
        after - before,
        0,
        "Mode::Off recording calls must not allocate"
    );

    // The disabled handles themselves are inert everywhere.
    let disabled = Span::DISABLED;
    assert!(disabled.id.is_none());
    tracer.exit(&disabled, 0);
    assert!(tracer.events().is_empty());
}
