//! `fpsa_obs`: the unified telemetry subsystem (ROADMAP measurement
//! substrate; re-exported as `fpsa::obs`).
//!
//! Every layer of the stack — compile pipeline, bytecode executor, serving
//! engines, shard pipeline, fleet tier, virtual-time replay — records into
//! the same three primitives:
//!
//! * **Spans** ([`Tracer`], [`Span`], [`SpanId`]): interval events with
//!   explicit parent handles and caller-provided integer-µs timestamps, so
//!   the same API records wall-clock traces from live engines and
//!   bit-identical virtual-clock traces from the deterministic replay.
//! * **Metrics** ([`Registry`], [`Histogram`]): process-wide named
//!   counters, gauges, and power-of-two histograms with lock-free sharded
//!   recording. The [`Histogram`] type is the one bucketing contract the
//!   whole stack shares (`fpsa_serve::ServeStats` and the fleet per-tenant
//!   stats are built on it).
//! * **Exporters** ([`export`]): Chrome trace-event JSON under
//!   `target/experiment-data/traces/`, per-run markdown summaries, and the
//!   flight-recorder postmortems dumped when a typed error is constructed.
//!
//! The contract that makes this safe to leave compiled into every engine:
//! with tracing [`Mode::Off`] (the default) a recording call is one relaxed
//! atomic load plus a branch — allocation-free, clock-free, pinned ≤2%
//! on the exec bench by CI — and enabling tracing only *observes* the
//! engines, so determinism suites pass with tracing on.

mod histogram;
mod registry;
mod trace;

pub mod export;

pub use histogram::{bucket_of, bucket_upper, Histogram, HIST_BUCKETS};
pub use registry::{
    Counter, Gauge, HistogramId, MetricsSnapshot, Registry, MAX_COUNTERS, MAX_GAUGES,
    MAX_HISTOGRAMS, NUM_SHARDS,
};
pub use trace::{Event, FlightDump, Mode, Phase, Span, SpanId, Tracer, DEFAULT_FLIGHT_CAPACITY};

/// The typed-error hook: capture and persist a flight-recorder postmortem
/// from the global tracer. Called where `ServeError::Shed` and
/// `CompileError::CapacityExceeded` are constructed; a no-op (returning
/// `None`) when the global tracer is off or has recorded nothing, so error
/// paths stay cheap in untraced runs. Returns the dump also retained in
/// [`Tracer::last_dump`]; the on-disk write is best-effort.
pub fn flight_dump_on_error(
    reason: &'static str,
    args: &[(&'static str, i64)],
) -> Option<FlightDump> {
    let dump = Tracer::global().dump_flight(reason, args)?;
    let _ = export::write_flight_dump(&dump);
    Some(dump)
}
