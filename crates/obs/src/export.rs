//! Exporters: Chrome trace-event JSON (Perfetto-loadable), per-run
//! markdown summaries, and flight-recorder dump files.
//!
//! The vendored serde facade renders any value as a quoted `Debug` string
//! (see `vendor/serde_json`), so real structured JSON — which Perfetto and
//! the CI well-formedness checks require — is hand-rendered here. Rendering
//! is deterministic: events are emitted in buffer order with no clocks,
//! hashes, or map iteration involved, so a trace recorded against the
//! virtual clock serializes to byte-identical JSON on every run (pinned in
//! `fpsa_workload`'s tests).

use crate::trace::{Event, FlightDump, Phase};
use crate::MetricsSnapshot;
use std::fs;
use std::io;
use std::path::PathBuf;

/// Escape a string into a JSON literal's interior.
fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render one event as a Chrome trace-event object.
fn render_event(event: &Event, out: &mut String) {
    let ph = match event.phase {
        Phase::SpanBegin => "b",
        Phase::SpanEnd => "e",
        Phase::Instant => "i",
        Phase::Counter => "C",
    };
    out.push_str(&format!(
        "{{\"ph\":\"{ph}\",\"name\":\"{}\",\"cat\":\"{}\",\"pid\":1,\"tid\":1,\"ts\":{}",
        escape(event.name),
        escape(event.cat),
        event.ts_us
    ));
    match event.phase {
        // Async begin/end pairs correlate by id; Perfetto nests same-id
        // spans by timestamp containment, which is how a request's
        // queue → execute → respond chain renders as a nested track.
        Phase::SpanBegin | Phase::SpanEnd => {
            out.push_str(&format!(",\"id\":\"0x{:x}\"", event.id));
        }
        Phase::Instant => {
            out.push_str(",\"s\":\"p\"");
        }
        Phase::Counter => {}
    }
    let mut args: Vec<(&'static str, i64)> = Vec::with_capacity(3);
    if event.phase == Phase::Instant && event.id != 0 {
        args.push(("span", event.id as i64));
    }
    args.extend_from_slice(event.args());
    if !args.is_empty() {
        out.push_str(",\"args\":{");
        for (i, (key, value)) in args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", escape(key), value));
        }
        out.push('}');
    }
    out.push('}');
}

/// Render events as a complete Chrome trace-event JSON document
/// (`{"traceEvents": [...]}`), loadable in Perfetto / `chrome://tracing`.
pub fn chrome_trace_json(events: &[Event]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (i, event) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        render_event(event, &mut out);
    }
    out.push_str("\n]}\n");
    out
}

/// Render a flight dump: the trigger context as metadata instants followed
/// by the ring contents.
pub fn flight_dump_json(dump: &FlightDump) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(&format!(
        "{{\"ph\":\"i\",\"name\":\"flight-dump:{}\",\"cat\":\"flight\",\"pid\":1,\"tid\":1,\"ts\":{},\"s\":\"g\"",
        escape(dump.reason),
        dump.events.last().map_or(0, |e| e.ts_us)
    ));
    if !dump.args.is_empty() {
        out.push_str(",\"args\":{");
        for (i, (key, value)) in dump.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", escape(key), value));
        }
        out.push('}');
    }
    out.push('}');
    for event in &dump.events {
        out.push_str(",\n");
        render_event(event, &mut out);
    }
    out.push_str("\n]}\n");
    out
}

/// Walk up from the current directory to the workspace root (the directory
/// holding `Cargo.lock`), mirroring `fpsa_bench::workspace_root` — the obs
/// crate stays dependency-free, so the four-line walk is duplicated rather
/// than imported.
fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    for _ in 0..4 {
        if dir.join("Cargo.lock").exists() {
            return dir;
        }
        if !dir.pop() {
            break;
        }
    }
    std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."))
}

/// `<workspace>/target/experiment-data/traces/`, created on demand: where
/// every exported trace and flight dump lands.
pub fn traces_dir() -> PathBuf {
    let dir = workspace_root()
        .join("target")
        .join("experiment-data")
        .join("traces");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Write `events` as Chrome-trace JSON to `traces/<name>.json`, returning
/// the path.
pub fn write_chrome_trace(name: &str, events: &[Event]) -> io::Result<PathBuf> {
    let path = traces_dir().join(format!("{name}.json"));
    fs::write(&path, chrome_trace_json(events))?;
    Ok(path)
}

/// Write a flight dump to `traces/flight-<reason>-<seq>.json`, returning
/// the path. The sequence number is a process-wide monotone counter, so
/// repeated errors keep distinct postmortems.
pub fn write_flight_dump(dump: &FlightDump) -> io::Result<PathBuf> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let reason = dump.reason.replace(['.', '/'], "-");
    let path = traces_dir().join(format!("flight-{reason}-{seq}.json"));
    fs::write(&path, flight_dump_json(dump))?;
    Ok(path)
}

/// Render a per-run markdown summary of a metrics snapshot.
pub fn markdown_summary(title: &str, snapshot: &MetricsSnapshot) -> String {
    let mut out = format!("# {title}\n\n");
    if !snapshot.counters.is_empty() {
        out.push_str("## Counters\n\n| counter | total |\n|---|---:|\n");
        for (name, value) in &snapshot.counters {
            out.push_str(&format!("| {name} | {value} |\n"));
        }
        out.push('\n');
    }
    if !snapshot.gauges.is_empty() {
        out.push_str("## Gauges\n\n| gauge | value |\n|---|---:|\n");
        for (name, value) in &snapshot.gauges {
            out.push_str(&format!("| {name} | {value} |\n"));
        }
        out.push('\n');
    }
    if !snapshot.histograms.is_empty() {
        out.push_str(
            "## Histograms\n\n| histogram | count | p50 | p99 | max |\n|---|---:|---:|---:|---:|\n",
        );
        for (name, hist) in &snapshot.histograms {
            out.push_str(&format!(
                "| {name} | {} | {} | {} | {} |\n",
                hist.count(),
                hist.percentile(0.50),
                hist.percentile(0.99),
                hist.max()
            ));
        }
        out.push('\n');
    }
    if snapshot.counters.is_empty() && snapshot.gauges.is_empty() && snapshot.histograms.is_empty()
    {
        out.push_str("No metrics recorded.\n");
    }
    out
}

/// Write a markdown summary to `traces/<name>.md`, returning the path.
pub fn write_markdown_summary(
    name: &str,
    title: &str,
    snapshot: &MetricsSnapshot,
) -> io::Result<PathBuf> {
    let path = traces_dir().join(format!("{name}.md"));
    fs::write(&path, markdown_summary(title, snapshot))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Mode, SpanId, Tracer};

    fn sample_events() -> Vec<Event> {
        let tracer = Tracer::new();
        tracer.set_mode(Mode::Full);
        let req = tracer.enter("request", "serve", 10, SpanId::NONE);
        let queue = tracer.enter("queue", "serve", 10, req.id);
        tracer.exit(&queue, 25);
        let exec = tracer.enter("execute", "serve", 25, req.id);
        tracer.record(&exec, "batch", 4, 26);
        tracer.exit(&exec, 80);
        tracer.counter("queue_depth", "serve", 81, 3);
        tracer.exit(&req, 90);
        tracer.events()
    }

    #[test]
    fn chrome_trace_is_deterministic_and_structurally_sound() {
        let events = sample_events();
        let a = chrome_trace_json(&events);
        let b = chrome_trace_json(&events);
        assert_eq!(a, b, "rendering is a pure function of the events");
        assert!(a.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"));
        assert!(a.trim_end().ends_with("]}"));
        assert_eq!(a.matches("\"ph\":\"b\"").count(), 3);
        assert_eq!(a.matches("\"ph\":\"e\"").count(), 3);
        assert_eq!(a.matches("\"ph\":\"C\"").count(), 1);
        assert!(a.contains("\"name\":\"queue\""));
        assert!(a.contains("\"args\":{\"span\":1,\"batch\":4}"));
        // Balanced braces/brackets — cheap well-formedness proxy; CI runs a
        // real JSON parser over the exported file.
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert_eq!(a.matches('[').count(), a.matches(']').count());
    }

    #[test]
    fn flight_dump_renders_trigger_context_first() {
        let tracer = Tracer::with_flight_capacity(8);
        tracer.set_mode(Mode::FlightRecorder);
        tracer.counter("queue_depth", "serve", 5, 7);
        let dump = tracer.dump_flight("serve.shed", &[("tenant", 3)]).unwrap();
        let json = flight_dump_json(&dump);
        assert!(json.contains("flight-dump:serve.shed"));
        assert!(json.contains("\"args\":{\"tenant\":3}"));
        assert!(json.contains("\"name\":\"queue_depth\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn markdown_summary_tabulates_all_three_kinds() {
        let reg = crate::Registry::new();
        reg.inc(reg.counter("requests"));
        reg.set_gauge(reg.gauge("hosts"), 4);
        let h = reg.histogram("latency_us");
        reg.observe(h, 100);
        reg.observe(h, 900);
        let md = markdown_summary("Run", &reg.snapshot());
        assert!(md.contains("# Run"));
        assert!(md.contains("| requests | 1 |"));
        assert!(md.contains("| hosts | 4 |"));
        assert!(md.contains("| latency_us | 2 |"));
        assert!(markdown_summary("Empty", &Default::default()).contains("No metrics recorded."));
    }
}
