//! The shared power-of-two-bucketed histogram.
//!
//! Lifted out of `fpsa_serve::ServeStats`, which grew the original
//! `hist_percentile` machinery, so every layer (serve, fleet per-tenant
//! stats, the metrics registry) shares one bucketing contract instead of
//! hand-rolled `[u64; 32]` fields: bucket 0 holds zeros, bucket `i ≥ 1`
//! holds values in `[2^(i-1), 2^i)`, and the histogram tracks its true
//! maximum so percentile reads in the saturated overflow bucket stay
//! honest. Recording is O(1) (a leading-zeros count and one increment)
//! and the type is plain `Copy` data — snapshots are assignments.

use serde::{Deserialize, Serialize};

/// Number of power-of-two buckets in a [`Histogram`].
pub const HIST_BUCKETS: usize = 32;

/// The bucket a value lands in: bucket 0 holds zeros, bucket `i` (`i ≥ 1`)
/// holds values in `[2^(i-1), 2^i)`. Log-spaced buckets keep recording O(1)
/// per sample while spanning nanosecond batches to multi-second tails.
pub fn bucket_of(value: u64) -> usize {
    ((u64::BITS - value.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

/// The inclusive upper bound of a histogram bucket (`2^i - 1`), used as the
/// conservative representative when reading percentiles back out.
pub fn bucket_upper(bucket: usize) -> u64 {
    if bucket >= 63 {
        u64::MAX
    } else {
        (1u64 << bucket) - 1
    }
}

/// A power-of-two-bucketed histogram with an exact tracked maximum.
///
/// Percentiles are exact up to bucket granularity — an answer is never
/// *under*-reported by more than one bucket (2×), at any magnitude: reads
/// are capped at the tracked maximum, and the saturated overflow bucket
/// (which spans `2^30` to `u64::MAX`) reports the maximum outright instead
/// of its power-of-two upper bound.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    buckets: [u64; HIST_BUCKETS],
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Count one sample.
    pub fn record(&mut self, value: u64) {
        self.max = self.max.max(value);
        self.buckets[bucket_of(value)] += 1;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Whether nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|&c| c == 0)
    }

    /// The largest value ever recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The raw bucket counts (bucket `i ≥ 1` covers `[2^(i-1), 2^i)`).
    pub fn buckets(&self) -> &[u64; HIST_BUCKETS] {
        &self.buckets
    }

    /// Direct bucket access for the registry's shard fold, which
    /// materializes counts loaded from atomics. Crate-internal so the
    /// bucketing invariant stays private elsewhere.
    pub(crate) fn bucket_mut(&mut self, bucket: usize) -> &mut u64 {
        &mut self.buckets[bucket]
    }

    /// Companion to [`Histogram::bucket_mut`] for the tracked maximum.
    pub(crate) fn set_max(&mut self, max: u64) {
        self.max = max;
    }

    /// Fold another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.max = self.max.max(other.max);
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
    }

    /// Nearest-rank percentile: the upper bound of the first bucket whose
    /// cumulative count reaches rank `q`, capped at the tracked maximum.
    /// The cap is what keeps the accuracy contract honest in the saturated
    /// overflow bucket: bucket `HIST_BUCKETS - 1` holds every value from
    /// `2^30` µs (~18 min) to `u64::MAX`, so its power-of-two upper bound
    /// (`2^31 − 1` µs, ~36 min) would silently under-report a multi-hour
    /// outlier; reporting the tracked maximum instead is exact for the
    /// largest value and still an upper bound for everything else in the
    /// bucket. Zero when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64 * q).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &count) in self.buckets.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return if i + 1 == HIST_BUCKETS {
                    self.max
                } else {
                    bucket_upper(i).min(self.max)
                };
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_value_space() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
        for value in [0u64, 1, 5, 1023, 1024, 1 << 29] {
            let b = bucket_of(value);
            assert!(value <= bucket_upper(b), "{value} above bucket {b} upper");
            if b >= 1 && b + 1 < HIST_BUCKETS {
                assert!(value > bucket_upper(b - 1));
            }
        }
    }

    #[test]
    fn percentiles_use_bucket_upper_bounds_capped_at_the_maximum() {
        // 99 fast samples at 3 (bucket [2,3]), one straggler at 1000.
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(3);
        }
        h.record(1_000);
        assert_eq!(h.percentile(0.50), 3);
        assert_eq!(h.percentile(0.99), 3);
        // The top non-empty bucket's upper bound (1023) is capped at the
        // tracked maximum: the p100 answer is exact.
        assert_eq!(h.percentile(1.0), 1_000);
        assert_eq!(h.max(), 1_000);
        assert_eq!(Histogram::new().percentile(0.99), 0);
        let mut zeros = Histogram::new();
        zeros.record(0);
        assert_eq!(zeros.percentile(0.5), 0);
    }

    #[test]
    fn overflow_bucket_reports_the_tracked_maximum() {
        let four_hours_us: u64 = 4 * 3_600 * 1_000_000;
        assert!(four_hours_us > (1u64 << 31) - 1);
        let mut h = Histogram::new();
        h.record(four_hours_us);
        assert_eq!(h.buckets()[HIST_BUCKETS - 1], 1);
        assert_eq!(h.percentile(0.50), four_hours_us);
        assert_eq!(h.percentile(0.99), four_hours_us);

        let mut mixed = Histogram::new();
        for _ in 0..9 {
            mixed.record(100);
        }
        mixed.record(four_hours_us);
        assert_eq!(mixed.percentile(0.50), 127);
        assert_eq!(mixed.percentile(0.95), four_hours_us);
    }

    #[test]
    fn merge_is_equivalent_to_recording_both_streams() {
        let mut left = Histogram::new();
        let mut right = Histogram::new();
        let mut both = Histogram::new();
        for v in [0u64, 1, 7, 900, 1 << 20] {
            left.record(v);
            both.record(v);
        }
        for v in [3u64, 3, 1 << 33] {
            right.record(v);
            both.record(v);
        }
        left.merge(&right);
        assert_eq!(left, both);
        assert_eq!(left.count(), 8);
    }
}
