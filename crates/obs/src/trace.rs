//! Span-based structured tracing with caller-provided integer-µs clocks.
//!
//! # Span model
//!
//! A [`Span`] is an interval on a trace timeline, opened by
//! [`Tracer::enter`] and closed by [`Tracer::exit`]. Parenthood is
//! **explicit**: `enter` takes the parent's [`SpanId`] (or
//! [`SpanId::NONE`] for a root span), and a child shares its root's
//! correlation id, which is exactly what makes the Chrome-trace exporter
//! render a request's `queue → execute → respond` chain as nested async
//! slices on one track. There is no thread-local "current span" — handles
//! travel with the work (a queued request carries its `SpanId` through the
//! batcher and across worker threads), which is also why the model works
//! unchanged inside the single-threaded virtual-clock replay.
//!
//! # Clocks
//!
//! The tracer never reads a clock on the record path: every event carries
//! a caller-provided timestamp in integer microseconds. Real engines pass
//! wall-clock stamps ([`Tracer::now_us`], µs since tracer creation); the
//! workload subsystem's virtual-time replay passes its simulated clock, so
//! a simulated trace is a pure function of the scenario and **bit-identical
//! across runs** — CI pins the exported JSON bytes.
//!
//! # Hot-path discipline
//!
//! With the tracer [`Mode::Off`] (the default), every recording call is one
//! relaxed atomic load and a branch: no lock, no allocation, no clock read.
//! The overhead pin in CI holds the exec bench within 2% of a no-obs
//! baseline. Enabled recording appends fixed-size [`Event`] PODs (two
//! inline key/value args, `&'static str` names) under a mutex — still
//! allocation-free per event except for buffer growth.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// How much the tracer retains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Record nothing; every call is one relaxed load and a branch.
    Off,
    /// Record only into the fixed-capacity flight-recorder ring (postmortem
    /// context for typed errors; steady-state memory is bounded).
    FlightRecorder,
    /// Record into the unbounded trace buffer *and* the flight ring.
    Full,
}

/// What kind of timeline mark an [`Event`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// An async span opens (`ph: "b"` in Chrome trace terms).
    SpanBegin,
    /// An async span closes (`ph: "e"`).
    SpanEnd,
    /// A point-in-time mark (`ph: "i"`).
    Instant,
    /// A sampled counter value (`ph: "C"`).
    Counter,
}

/// Correlation id tying a span's begin/end (and a request's child spans)
/// together. `NONE` (0) means "tracing disabled / no parent" and is never
/// allocated to a live span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The null id: no parent / tracing disabled.
    pub const NONE: SpanId = SpanId(0);

    /// Whether this is the null id.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// One fixed-size trace event. Plain `Copy` data — `&'static str` names,
/// at most two inline integer args — so recording never allocates and the
/// flight-recorder ring can overwrite slots without tearing concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Mark kind.
    pub phase: Phase,
    /// Event name (span name, instant name, or counter name).
    pub name: &'static str,
    /// Category, rendered as the Chrome-trace `cat` field.
    pub cat: &'static str,
    /// Caller-provided timestamp in integer microseconds.
    pub ts_us: u64,
    /// Correlation id (0 for free-standing instants/counters).
    pub id: u64,
    /// Up to two key/value args; `nargs` says how many are live.
    pub args: [(&'static str, i64); 2],
    /// Live entries in `args`.
    pub nargs: u8,
}

impl Event {
    fn new(phase: Phase, name: &'static str, cat: &'static str, ts_us: u64, id: u64) -> Event {
        Event {
            phase,
            name,
            cat,
            ts_us,
            id,
            args: [("", 0); 2],
            nargs: 0,
        }
    }

    fn with_args(mut self, args: &[(&'static str, i64)]) -> Event {
        for &arg in args.iter().take(2) {
            self.args[usize::from(self.nargs)] = arg;
            self.nargs += 1;
        }
        self
    }

    /// The live args as a slice.
    pub fn args(&self) -> &[(&'static str, i64)] {
        &self.args[..usize::from(self.nargs)]
    }
}

/// An open span handle: plain `Copy` data that can ride inside queued
/// requests across threads. Close it with [`Tracer::exit`]; attach
/// key/value marks with [`Tracer::record`]. A handle with
/// `id == SpanId::NONE` (from a disabled tracer) makes every subsequent
/// call a no-op.
#[derive(Debug, Clone, Copy)]
pub struct Span {
    /// Correlation id shared with the root of this span's chain.
    pub id: SpanId,
    /// The parent passed to [`Tracer::enter`] (`NONE` for roots).
    pub parent: SpanId,
    name: &'static str,
    cat: &'static str,
}

impl Span {
    /// The inert handle a disabled tracer hands out.
    pub const DISABLED: Span = Span {
        id: SpanId::NONE,
        parent: SpanId::NONE,
        name: "",
        cat: "",
    };

    /// The span's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The span's category.
    pub fn cat(&self) -> &'static str {
        self.cat
    }
}

/// The flight-recorder ring: a preallocated, fixed-capacity circular buffer
/// of the most recent events. All access goes through one mutex, so a
/// reader can never observe a half-written event no matter how many
/// threads record concurrently (pinned by `tests/flight_recorder.rs`).
#[derive(Debug)]
struct Ring {
    slots: Vec<Event>,
    capacity: usize,
    /// Next slot to overwrite.
    head: usize,
    /// Lifetime events pushed (≥ `slots.len()`).
    total: u64,
}

impl Ring {
    fn new(capacity: usize) -> Ring {
        Ring {
            slots: Vec::with_capacity(capacity),
            capacity: capacity.max(1),
            head: 0,
            total: 0,
        }
    }

    fn push(&mut self, event: Event) {
        if self.slots.len() < self.capacity {
            self.slots.push(event);
        } else {
            self.slots[self.head] = event;
        }
        self.head = (self.head + 1) % self.capacity;
        self.total += 1;
    }

    /// Events oldest-first.
    fn snapshot(&self) -> Vec<Event> {
        if self.slots.len() < self.capacity {
            self.slots.clone()
        } else {
            let mut out = Vec::with_capacity(self.slots.len());
            out.extend_from_slice(&self.slots[self.head..]);
            out.extend_from_slice(&self.slots[..self.head]);
            out
        }
    }
}

/// A postmortem snapshot taken when a typed error was constructed: the
/// flight ring's contents at that moment plus the trigger's context.
#[derive(Debug, Clone)]
pub struct FlightDump {
    /// What triggered the dump (e.g. `"serve.shed"`).
    pub reason: &'static str,
    /// Trigger context (e.g. the shedding tenant).
    pub args: Vec<(&'static str, i64)>,
    /// Ring contents, oldest-first.
    pub events: Vec<Event>,
    /// Lifetime events the ring had seen (wraparound diagnostic).
    pub total_recorded: u64,
}

/// Everything behind the tracer's mutex.
#[derive(Debug)]
struct Buffers {
    events: Vec<Event>,
    ring: Ring,
    last_dump: Option<FlightDump>,
}

/// Default flight-recorder capacity, in events.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 4096;

/// The tracing sink (see the module docs). Engines use the process-wide
/// [`Tracer::global`]; deterministic replays construct their own so the
/// exported trace is a pure function of the scenario.
#[derive(Debug)]
pub struct Tracer {
    mode: AtomicU8,
    next_id: AtomicU64,
    buffers: Mutex<Buffers>,
    started: Instant,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// A fresh tracer in [`Mode::Off`].
    pub fn new() -> Tracer {
        Tracer::with_flight_capacity(DEFAULT_FLIGHT_CAPACITY)
    }

    /// A fresh tracer whose flight ring holds `capacity` events.
    pub fn with_flight_capacity(capacity: usize) -> Tracer {
        Tracer {
            mode: AtomicU8::new(0),
            next_id: AtomicU64::new(1),
            buffers: Mutex::new(Buffers {
                events: Vec::new(),
                ring: Ring::new(capacity),
                last_dump: None,
            }),
            started: Instant::now(),
        }
    }

    /// The process-wide tracer every engine records into.
    pub fn global() -> &'static Tracer {
        static GLOBAL: OnceLock<Tracer> = OnceLock::new();
        GLOBAL.get_or_init(Tracer::new)
    }

    /// Switch recording mode (takes effect on the next recording call).
    pub fn set_mode(&self, mode: Mode) {
        let raw = match mode {
            Mode::Off => 0,
            Mode::FlightRecorder => 1,
            Mode::Full => 2,
        };
        self.mode.store(raw, Ordering::Relaxed);
    }

    /// Current recording mode.
    pub fn mode(&self) -> Mode {
        match self.mode.load(Ordering::Relaxed) {
            0 => Mode::Off,
            1 => Mode::FlightRecorder,
            _ => Mode::Full,
        }
    }

    /// Whether any recording is on — the one relaxed load every disabled
    /// call boils down to.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.mode.load(Ordering::Relaxed) != 0
    }

    /// Microseconds since this tracer was created: the wall-clock timestamp
    /// source for real (non-virtual) engines.
    pub fn now_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    fn push(&self, event: Event) {
        let mode = self.mode.load(Ordering::Relaxed);
        if mode == 0 {
            return;
        }
        let mut buffers = self.buffers.lock().expect("tracer lock");
        buffers.ring.push(event);
        if mode >= 2 {
            buffers.events.push(event);
        }
    }

    /// Open a span at `ts_us`. A root span (`parent == SpanId::NONE`) gets
    /// a fresh correlation id; a child shares its parent's, which is what
    /// nests the chain in the Chrome-trace export. Returns
    /// [`Span::DISABLED`] (and records nothing) when the tracer is off.
    pub fn enter(&self, name: &'static str, cat: &'static str, ts_us: u64, parent: SpanId) -> Span {
        if !self.enabled() {
            return Span::DISABLED;
        }
        let id = if parent.is_none() {
            SpanId(self.next_id.fetch_add(1, Ordering::Relaxed))
        } else {
            parent
        };
        self.push(Event::new(Phase::SpanBegin, name, cat, ts_us, id.0));
        Span {
            id,
            parent,
            name,
            cat,
        }
    }

    /// Open a span with inline args on its begin event.
    pub fn enter_with(
        &self,
        name: &'static str,
        cat: &'static str,
        ts_us: u64,
        parent: SpanId,
        args: &[(&'static str, i64)],
    ) -> Span {
        if !self.enabled() {
            return Span::DISABLED;
        }
        let id = if parent.is_none() {
            SpanId(self.next_id.fetch_add(1, Ordering::Relaxed))
        } else {
            parent
        };
        self.push(Event::new(Phase::SpanBegin, name, cat, ts_us, id.0).with_args(args));
        Span {
            id,
            parent,
            name,
            cat,
        }
    }

    /// Close a span at `ts_us`. No-op for [`Span::DISABLED`].
    pub fn exit(&self, span: &Span, ts_us: u64) {
        if span.id.is_none() || !self.enabled() {
            return;
        }
        self.push(Event::new(
            Phase::SpanEnd,
            span.name,
            span.cat,
            ts_us,
            span.id.0,
        ));
    }

    /// Attach a key/value mark to an open span (an instant on the span's
    /// correlation id). No-op for [`Span::DISABLED`].
    pub fn record(&self, span: &Span, key: &'static str, value: i64, ts_us: u64) {
        if span.id.is_none() || !self.enabled() {
            return;
        }
        self.push(
            Event::new(Phase::Instant, span.name, span.cat, ts_us, span.id.0)
                .with_args(&[(key, value)]),
        );
    }

    /// A free-standing point-in-time mark.
    pub fn instant(
        &self,
        name: &'static str,
        cat: &'static str,
        ts_us: u64,
        args: &[(&'static str, i64)],
    ) {
        if !self.enabled() {
            return;
        }
        self.push(Event::new(Phase::Instant, name, cat, ts_us, 0).with_args(args));
    }

    /// A sampled counter value (rendered as a Chrome-trace counter track).
    pub fn counter(&self, name: &'static str, cat: &'static str, ts_us: u64, value: i64) {
        if !self.enabled() {
            return;
        }
        self.push(Event::new(Phase::Counter, name, cat, ts_us, 0).with_args(&[("value", value)]));
    }

    /// Snapshot of the full-mode trace buffer (empty unless [`Mode::Full`]).
    pub fn events(&self) -> Vec<Event> {
        self.buffers.lock().expect("tracer lock").events.clone()
    }

    /// Snapshot of the flight ring, oldest-first.
    pub fn flight_events(&self) -> Vec<Event> {
        self.buffers.lock().expect("tracer lock").ring.snapshot()
    }

    /// Lifetime events the flight ring has seen (wraparound diagnostic).
    pub fn flight_total(&self) -> u64 {
        self.buffers.lock().expect("tracer lock").ring.total
    }

    /// Drop all buffered events (mode is unchanged).
    pub fn clear(&self) {
        let mut buffers = self.buffers.lock().expect("tracer lock");
        buffers.events.clear();
        let capacity = buffers.ring.capacity;
        buffers.ring = Ring::new(capacity);
        buffers.last_dump = None;
    }

    /// Capture a postmortem [`FlightDump`] — called from typed-error
    /// construction sites (`ServeError::Shed`,
    /// `CompileError::CapacityExceeded`) so the last moments before a
    /// failure come for free. Returns `None` (and retains nothing) when the
    /// tracer is off or the ring is empty. The dump is also retained as
    /// [`Tracer::last_dump`] for tests and exporters.
    pub fn dump_flight(
        &self,
        reason: &'static str,
        args: &[(&'static str, i64)],
    ) -> Option<FlightDump> {
        if !self.enabled() {
            return None;
        }
        let mut buffers = self.buffers.lock().expect("tracer lock");
        if buffers.ring.total == 0 {
            return None;
        }
        let dump = FlightDump {
            reason,
            args: args.to_vec(),
            events: buffers.ring.snapshot(),
            total_recorded: buffers.ring.total,
        };
        buffers.last_dump = Some(dump.clone());
        Some(dump)
    }

    /// The most recent [`FlightDump`], if any error triggered one.
    pub fn last_dump(&self) -> Option<FlightDump> {
        self.buffers.lock().expect("tracer lock").last_dump.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing_and_hands_out_inert_spans() {
        let tracer = Tracer::new();
        assert!(!tracer.enabled());
        let span = tracer.enter("request", "serve", 10, SpanId::NONE);
        assert!(span.id.is_none());
        tracer.record(&span, "batch", 4, 11);
        tracer.exit(&span, 12);
        tracer.instant("route", "fleet", 13, &[("host", 2)]);
        tracer.counter("depth", "serve", 14, 9);
        assert!(tracer.events().is_empty());
        assert!(tracer.flight_events().is_empty());
        assert_eq!(tracer.flight_total(), 0);
        assert!(tracer.dump_flight("test", &[]).is_none());
    }

    #[test]
    fn children_share_their_roots_correlation_id() {
        let tracer = Tracer::new();
        tracer.set_mode(Mode::Full);
        let root = tracer.enter("request", "serve", 0, SpanId::NONE);
        let child = tracer.enter("queue", "serve", 1, root.id);
        assert!(!root.id.is_none());
        assert_eq!(child.id, root.id);
        assert_eq!(child.parent, root.id);
        tracer.exit(&child, 2);
        tracer.exit(&root, 3);
        let events = tracer.events();
        assert_eq!(events.len(), 4);
        assert!(events.iter().all(|e| e.id == root.id.0));
        assert_eq!(events[0].phase, Phase::SpanBegin);
        assert_eq!(events[3].phase, Phase::SpanEnd);
        // A second root gets a distinct id.
        let other = tracer.enter("request", "serve", 4, SpanId::NONE);
        assert_ne!(other.id, root.id);
    }

    #[test]
    fn flight_ring_wraps_around_keeping_the_newest_events() {
        let tracer = Tracer::with_flight_capacity(4);
        tracer.set_mode(Mode::FlightRecorder);
        for i in 0..10u64 {
            tracer.instant("tick", "test", i, &[("i", i as i64)]);
        }
        let ring = tracer.flight_events();
        assert_eq!(ring.len(), 4);
        let stamps: Vec<u64> = ring.iter().map(|e| e.ts_us).collect();
        assert_eq!(stamps, vec![6, 7, 8, 9], "oldest-first, newest retained");
        assert_eq!(tracer.flight_total(), 10);
        // FlightRecorder mode keeps the unbounded buffer empty.
        assert!(tracer.events().is_empty());
    }

    #[test]
    fn dump_captures_ring_contents_and_trigger_context() {
        let tracer = Tracer::with_flight_capacity(8);
        tracer.set_mode(Mode::FlightRecorder);
        for depth in [3i64, 5, 9] {
            tracer.counter("queue_depth", "serve", depth as u64, depth);
        }
        let dump = tracer
            .dump_flight("serve.shed", &[("tenant", 2), ("p99_us", 900)])
            .expect("ring is non-empty");
        assert_eq!(dump.reason, "serve.shed");
        assert_eq!(dump.args, vec![("tenant", 2), ("p99_us", 900)]);
        assert_eq!(dump.events.len(), 3);
        assert_eq!(dump.events[2].args(), &[("value", 9)]);
        assert_eq!(tracer.last_dump().unwrap().reason, "serve.shed");
    }
}
