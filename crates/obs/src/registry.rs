//! The process-wide metrics registry: named counters, gauges, and
//! power-of-two histograms with lock-free recording.
//!
//! # Sharding
//!
//! Recording must never serialize the engines' worker threads, so every
//! metric's storage is split across [`NUM_SHARDS`] preallocated banks of
//! atomics; a thread picks its bank once (by hashing its `ThreadId`) and
//! then records with single relaxed atomic RMWs — no lock, no allocation,
//! no cross-core cacheline ping-pong between workers that hash apart.
//! [`Registry::snapshot`] folds the banks back together; registration
//! (naming a metric) is the only locking operation and happens once per
//! metric per process.
//!
//! Gauges are last-writer-wins and therefore live in a single bank —
//! summing per-shard "current values" would be meaningless.
//!
//! # Capacity
//!
//! Banks are preallocated so recording never reallocates under a running
//! engine: [`MAX_COUNTERS`] counters, [`MAX_GAUGES`] gauges,
//! [`MAX_HISTOGRAMS`] histograms. Registrations beyond a capacity all
//! alias the final "overflow" slot (and the snapshot labels it
//! `_overflow`), trading per-name fidelity for never blocking the hot
//! path; the limits are far above what the stack registers.

use crate::histogram::{Histogram, HIST_BUCKETS};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Atomic banks per metric kind (see the module docs).
pub const NUM_SHARDS: usize = 8;
/// Counter slots per bank.
pub const MAX_COUNTERS: usize = 128;
/// Gauge slots.
pub const MAX_GAUGES: usize = 64;
/// Histogram slots per bank.
pub const MAX_HISTOGRAMS: usize = 64;

/// Handle to a registered monotone counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Counter(u32);

/// Handle to a registered last-writer-wins gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gauge(u32);

/// Handle to a registered power-of-two histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(u32);

/// One bank of counter and histogram slots.
struct Shard {
    counters: Vec<AtomicU64>,
    /// `MAX_HISTOGRAMS` histograms, each `HIST_BUCKETS` buckets.
    hist_buckets: Vec<AtomicU64>,
    hist_max: Vec<AtomicU64>,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            counters: (0..MAX_COUNTERS).map(|_| AtomicU64::new(0)).collect(),
            hist_buckets: (0..MAX_HISTOGRAMS * HIST_BUCKETS)
                .map(|_| AtomicU64::new(0))
                .collect(),
            hist_max: (0..MAX_HISTOGRAMS).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// Name tables, behind the registry's only mutex.
#[derive(Default)]
struct Names {
    counters: Vec<String>,
    gauges: Vec<String>,
    histograms: Vec<String>,
}

/// A fold of every registered metric at one moment, sorted by name so the
/// rendering (and any test pinning it) is deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotone counters: `(name, total)`.
    pub counters: Vec<(String, u64)>,
    /// Gauges: `(name, last value)`.
    pub gauges: Vec<(String, i64)>,
    /// Histograms: `(name, merged histogram)`.
    pub histograms: Vec<(String, Histogram)>,
}

/// The metrics registry (see the module docs). Engines use
/// [`Registry::global`]; tests construct their own.
pub struct Registry {
    shards: Vec<Shard>,
    gauges: Vec<AtomicI64>,
    names: Mutex<Names>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").finish_non_exhaustive()
    }
}

/// This thread's bank index, hashed once from its `ThreadId` and cached.
fn shard_index() -> usize {
    thread_local! {
        static SHARD: usize = {
            let mut hasher = DefaultHasher::new();
            std::thread::current().id().hash(&mut hasher);
            (hasher.finish() as usize) % NUM_SHARDS
        };
    }
    SHARD.with(|s| *s)
}

/// Register `name` in `table`, reusing an existing slot (registration is
/// idempotent by name) and aliasing the last slot once `capacity` is hit.
fn register(table: &mut Vec<String>, name: &str, capacity: usize) -> u32 {
    if let Some(index) = table.iter().position(|n| n == name) {
        return index as u32;
    }
    if table.len() + 1 >= capacity {
        if table.len() + 1 == capacity {
            table.push("_overflow".to_string());
        }
        return (capacity - 1) as u32;
    }
    table.push(name.to_string());
    (table.len() - 1) as u32
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Registry {
        Registry {
            shards: (0..NUM_SHARDS).map(|_| Shard::new()).collect(),
            gauges: (0..MAX_GAUGES).map(|_| AtomicI64::new(0)).collect(),
            names: Mutex::new(Names::default()),
        }
    }

    /// The process-wide registry every engine records into.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Register (or look up) a monotone counter.
    pub fn counter(&self, name: &str) -> Counter {
        let mut names = self.names.lock().expect("registry lock");
        Counter(register(&mut names.counters, name, MAX_COUNTERS))
    }

    /// Register (or look up) a gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut names = self.names.lock().expect("registry lock");
        Gauge(register(&mut names.gauges, name, MAX_GAUGES))
    }

    /// Register (or look up) a histogram.
    pub fn histogram(&self, name: &str) -> HistogramId {
        let mut names = self.names.lock().expect("registry lock");
        HistogramId(register(&mut names.histograms, name, MAX_HISTOGRAMS))
    }

    /// Add `delta` to a counter: one relaxed RMW on this thread's bank.
    #[inline]
    pub fn add(&self, counter: Counter, delta: u64) {
        self.shards[shard_index()].counters[counter.0 as usize].fetch_add(delta, Ordering::Relaxed);
    }

    /// Increment a counter by one.
    #[inline]
    pub fn inc(&self, counter: Counter) {
        self.add(counter, 1);
    }

    /// Set a gauge (last writer wins).
    #[inline]
    pub fn set_gauge(&self, gauge: Gauge, value: i64) {
        self.gauges[gauge.0 as usize].store(value, Ordering::Relaxed);
    }

    /// Record one sample into a histogram: two relaxed RMWs on this
    /// thread's bank (bucket increment + running max).
    #[inline]
    pub fn observe(&self, hist: HistogramId, value: u64) {
        let shard = &self.shards[shard_index()];
        let base = hist.0 as usize * HIST_BUCKETS;
        shard.hist_buckets[base + crate::histogram::bucket_of(value)]
            .fetch_add(1, Ordering::Relaxed);
        shard.hist_max[hist.0 as usize].fetch_max(value, Ordering::Relaxed);
    }

    /// Fold every bank into plain values, sorted by metric name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let names = self.names.lock().expect("registry lock");
        let mut counters: Vec<(String, u64)> = names
            .counters
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let total = self
                    .shards
                    .iter()
                    .map(|s| s.counters[i].load(Ordering::Relaxed))
                    .sum();
                (name.clone(), total)
            })
            .collect();
        let mut gauges: Vec<(String, i64)> = names
            .gauges
            .iter()
            .enumerate()
            .map(|(i, name)| (name.clone(), self.gauges[i].load(Ordering::Relaxed)))
            .collect();
        let mut histograms: Vec<(String, Histogram)> = names
            .histograms
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let mut merged = Histogram::new();
                for shard in &self.shards {
                    let mut part = Histogram::new();
                    for b in 0..HIST_BUCKETS {
                        *part.bucket_mut(b) =
                            shard.hist_buckets[i * HIST_BUCKETS + b].load(Ordering::Relaxed);
                    }
                    part.set_max(shard.hist_max[i].load(Ordering::Relaxed));
                    merged.merge(&part);
                }
                (name.clone(), merged)
            })
            .collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn registration_is_idempotent_by_name() {
        let reg = Registry::new();
        let a = reg.counter("serve.requests");
        let b = reg.counter("serve.requests");
        assert_eq!(a, b);
        let g = reg.gauge("fleet.hosts");
        assert_eq!(g, reg.gauge("fleet.hosts"));
    }

    #[test]
    fn counters_sum_across_threads() {
        let reg = Arc::new(Registry::new());
        let counter = reg.counter("work.items");
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        reg.inc(counter);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counters, vec![("work.items".to_string(), 8000)]);
    }

    #[test]
    fn histograms_merge_shards_with_an_exact_maximum() {
        let reg = Arc::new(Registry::new());
        let hist = reg.histogram("latency_us");
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        reg.observe(hist, i + t * 1000);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = reg.snapshot();
        let (name, merged) = &snap.histograms[0];
        assert_eq!(name, "latency_us");
        assert_eq!(merged.count(), 400);
        assert_eq!(merged.max(), 3099);
    }

    #[test]
    fn gauges_report_the_last_written_value() {
        let reg = Registry::new();
        let g = reg.gauge("queue.depth");
        reg.set_gauge(g, 5);
        reg.set_gauge(g, 2);
        assert_eq!(reg.snapshot().gauges, vec![("queue.depth".to_string(), 2)]);
    }

    #[test]
    fn overflowing_the_name_table_aliases_the_overflow_slot() {
        let reg = Registry::new();
        let mut last = None;
        for i in 0..(MAX_GAUGES + 10) {
            last = Some(reg.gauge(&format!("g{i}")));
        }
        reg.set_gauge(last.unwrap(), 7);
        let snap = reg.snapshot();
        assert_eq!(snap.gauges.len(), MAX_GAUGES);
        assert!(snap.gauges.iter().any(|(n, v)| n == "_overflow" && *v == 7));
    }
}
