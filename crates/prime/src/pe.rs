//! The PRIME processing element.
//!
//! PRIME keeps the conventional mixed-signal peripherals: per-row DACs drive
//! analog input voltages, and the column currents are digitized by ADCs that
//! are *shared* across columns (the paper's Section 4.2 notes that such
//! sharing is what inflates latency — e.g. ISAAC shares one ADC across 128
//! columns). Weights are 8-bit values spliced across two 4-bit cells, and two
//! crossbars hold the positive/negative parts.

use fpsa_device::reram::CrossbarSpec;
use fpsa_device::variation::WeightScheme;
use serde::{Deserialize, Serialize};

/// Published Table 2 values for the PRIME PE, for regression tests.
pub mod published {
    /// PRIME PE area in µm².
    pub const AREA_UM2: f64 = 34_802.204;
    /// PRIME PE latency for a 256x256, 8-bit-weight, 6-bit-I/O VMM in ns.
    pub const LATENCY_NS: f64 = 3_064.7;
    /// PRIME computational density in TOPS/mm².
    pub const DENSITY_TOPS_MM2: f64 = 1.229;
}

/// Component-level specification of a PRIME PE.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrimePeSpec {
    /// The crossbar geometry (per polarity).
    pub crossbar: CrossbarSpec,
    /// Cells spliced per weight.
    pub cells_per_weight: usize,
    /// Area of one DAC (per row) in µm².
    pub dac_area_um2: f64,
    /// Area of one ADC in µm².
    pub adc_area_um2: f64,
    /// Number of ADCs shared by all columns.
    pub adc_count: usize,
    /// Conversion latency of one ADC sample in ns.
    pub adc_conversion_ns: f64,
    /// Area of the shift-and-add, subtraction and activation logic in µm².
    pub digital_logic_area_um2: f64,
    /// Latency of the digital post-processing per column in ns.
    pub digital_latency_ns: f64,
    /// I/O precision in bits (inputs are applied bit-serially).
    pub io_bits: u32,
}

impl PrimePeSpec {
    /// The PRIME configuration used in the paper's comparison: a 256x256
    /// logical array (two 256x512-cell crossbars for splicing and polarity),
    /// per-row DACs, 8 shared ADCs and bit-serial 6-bit inputs. Component
    /// values are calibrated so the composition reproduces Table 2.
    pub fn prime_default() -> Self {
        PrimePeSpec {
            crossbar: CrossbarSpec::fpsa_256x512(),
            cells_per_weight: 2,
            dac_area_um2: 25.0,
            adc_area_um2: 1500.0,
            adc_count: 8,
            adc_conversion_ns: 7.0,
            digital_logic_area_um2: 14_279.0,
            digital_latency_ns: 0.98,
            io_bits: 6,
        }
    }

    /// The weight representation PRIME uses (two spliced 4-bit cells).
    pub fn weight_scheme(&self) -> WeightScheme {
        WeightScheme::Splice {
            cells: self.cells_per_weight,
            bits_per_cell: 4,
        }
    }

    /// Logical rows.
    pub fn logical_rows(&self) -> usize {
        self.crossbar.rows
    }

    /// Logical columns.
    pub fn logical_cols(&self) -> usize {
        self.crossbar.cols / 2
    }

    /// Total PE area in µm²: crossbars, per-row DACs, shared ADCs and the
    /// digital logic.
    pub fn area_um2(&self) -> f64 {
        let crossbars = self.crossbar.area_um2() * self.cells_per_weight as f64;
        let dacs = self.dac_area_um2 * self.crossbar.rows as f64;
        let adcs = self.adc_area_um2 * self.adc_count as f64;
        crossbars + dacs + adcs + self.digital_logic_area_um2
    }

    /// Latency of one full vector-matrix multiplication in ns.
    ///
    /// Inputs are applied bit-serially (`io_bits` phases); within each phase
    /// every column must be digitized through the shared ADCs, so the phase
    /// time is `columns / adc_count` conversions plus the digital
    /// post-processing.
    pub fn vmm_latency_ns(&self) -> f64 {
        let conversions_per_phase = self.crossbar.cols as f64 / self.adc_count as f64;
        let phase_ns = conversions_per_phase * self.adc_conversion_ns
            + self.digital_latency_ns * conversions_per_phase
            + self.crossbar.rc_delay_ns();
        self.io_bits as f64 * phase_ns
    }

    /// Operations per VMM.
    pub fn ops_per_vmm(&self) -> f64 {
        2.0 * self.logical_rows() as f64 * self.logical_cols() as f64
    }

    /// Computational density in TOPS/mm².
    pub fn density_tops_mm2(&self) -> f64 {
        let ops_per_s = self.ops_per_vmm() / (self.vmm_latency_ns() * 1e-9);
        ops_per_s * 1e-12 / (self.area_um2() * 1e-6)
    }
}

impl Default for PrimePeSpec {
    fn default() -> Self {
        Self::prime_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_matches_table2() {
        let pe = PrimePeSpec::prime_default();
        let err = (pe.area_um2() - published::AREA_UM2).abs() / published::AREA_UM2;
        assert!(
            err < 0.02,
            "area {} vs published {}",
            pe.area_um2(),
            published::AREA_UM2
        );
    }

    #[test]
    fn latency_matches_table2() {
        let pe = PrimePeSpec::prime_default();
        let err = (pe.vmm_latency_ns() - published::LATENCY_NS).abs() / published::LATENCY_NS;
        assert!(
            err < 0.05,
            "latency {} vs published {}",
            pe.vmm_latency_ns(),
            published::LATENCY_NS
        );
    }

    #[test]
    fn density_matches_table2() {
        let pe = PrimePeSpec::prime_default();
        let err = (pe.density_tops_mm2() - published::DENSITY_TOPS_MM2).abs()
            / published::DENSITY_TOPS_MM2;
        assert!(err < 0.06, "density {}", pe.density_tops_mm2());
    }

    #[test]
    fn fpsa_pe_improves_density_by_about_31x() {
        let prime = PrimePeSpec::prime_default();
        let fpsa = fpsa_device::pe::ProcessingElementSpec::fpsa_default();
        let improvement = fpsa.computational_density_tops_per_mm2() / prime.density_tops_mm2();
        assert!(
            improvement > 27.0 && improvement < 36.0,
            "improvement {improvement}"
        );
    }

    #[test]
    fn sharing_fewer_adcs_increases_latency() {
        let mut pe = PrimePeSpec::prime_default();
        let base = pe.vmm_latency_ns();
        pe.adc_count = 4;
        assert!(pe.vmm_latency_ns() > base);
    }

    #[test]
    fn prime_uses_the_splice_scheme() {
        let pe = PrimePeSpec::prime_default();
        assert_eq!(
            pe.weight_scheme(),
            WeightScheme::Splice {
                cells: 2,
                bits_per_cell: 4
            }
        );
        assert_eq!(pe.logical_rows(), 256);
        assert_eq!(pe.logical_cols(), 256);
    }
}
