//! The PRIME baseline and the analytic performance-bound model.
//!
//! PRIME is the state-of-the-art ReRAM accelerator the paper compares
//! against: its PEs keep conventional DAC/ADC peripherals (shared across rows
//! and columns, which serializes the conversion), represent 8-bit weights by
//! splicing two 4-bit cells, and communicate over the memory chip's shared
//! bus. This crate models:
//!
//! * [`pe`] — the PRIME processing element, composed from its peripheral
//!   circuits and calibrated against the published Table 2 figures
//!   (34 802 µm², 3 064.7 ns, 1.229 TOPS/mm²);
//! * [`bus`] — the shared memory bus and its per-sample transfer time;
//! * [`bounds`] — the peak / utilization / communication performance bounds
//!   of Section 3 (Figure 2), formulated generically so the same machinery
//!   also produces the FPSA and FP-PRIME curves of Figure 6.

pub mod bounds;
pub mod bus;
pub mod pe;

pub use bounds::{BoundsPoint, CommunicationModel, PeParameters, PerformanceBounds};
pub use bus::MemoryBus;
pub use pe::PrimePeSpec;
