//! Peak / utilization / communication performance bounds (Section 3).
//!
//! Figure 2 of the paper plots three curves for PRIME running VGG16 against
//! chip area: the *peak* performance (every PE busy every cycle), the *ideal*
//! performance (infinite communication bandwidth, limited only by how well
//! layer duplication can balance the pipeline) and the *real* performance
//! (additionally limited by the communication subsystem). The same machinery
//! with different PE and communication parameters produces the FP-PRIME and
//! FPSA curves of Figure 6.
//!
//! The model works at layer granularity from [`fpsa_nn::WorkloadStats`]: each
//! weight-bearing layer needs `ceil(weights / PE capacity)` PEs to exist at
//! all, and executes `reuse` core-ops per duplicate; extra PEs are granted to
//! the layer with the most iterations, one full duplicate at a time, exactly
//! like the mapper's allocation policy.

use crate::bus::MemoryBus;
use fpsa_nn::WorkloadStats;
use serde::{Deserialize, Serialize};

/// The PE parameters the bound model needs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeParameters {
    /// PE area including its share of buffers/control/drivers, in µm².
    pub area_um2: f64,
    /// Latency of one vector-matrix multiplication in ns.
    pub vmm_latency_ns: f64,
    /// Weights stored per PE.
    pub capacity_weights: u64,
    /// Operations performed per VMM.
    pub ops_per_vmm: f64,
    /// Output values produced per VMM.
    pub values_per_vmm: u64,
}

impl PeParameters {
    /// Build from an architecture configuration's PE model, adding the
    /// per-PE share of support blocks.
    pub fn from_arch(config: &fpsa_arch::ArchitectureConfig) -> Self {
        PeParameters {
            area_um2: config.area_per_pe_um2(),
            vmm_latency_ns: config.pe.vmm_latency_ns,
            capacity_weights: (config.pe.rows * config.pe.cols) as u64,
            ops_per_vmm: config.pe.ops_per_vmm(),
            values_per_vmm: config.pe.cols as u64,
        }
    }
}

/// The communication subsystem the bound model assumes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CommunicationModel {
    /// Infinite bandwidth (the "ideal" curve).
    Ideal,
    /// A shared memory bus (PRIME).
    Bus(MemoryBus),
    /// Dedicated routed paths; each transferred value costs this many ns
    /// (critical path x serialized bits), paid once per VMM because all of a
    /// PE's outputs travel on parallel wires.
    Routed {
        /// Per-value transfer latency in ns.
        per_value_ns: f64,
    },
}

/// One point of a bounds sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundsPoint {
    /// Chip area in mm².
    pub area_mm2: f64,
    /// Number of PEs that fit.
    pub pe_count: usize,
    /// Peak performance in OPS.
    pub peak_ops: f64,
    /// Ideal (infinite-bandwidth) performance in OPS.
    pub ideal_ops: f64,
    /// Real performance in OPS.
    pub real_ops: f64,
    /// Whether the model's weights fit at this area at all.
    pub feasible: bool,
    /// The realized model-level duplication degree.
    pub duplication_degree: u64,
}

/// The bound model for one (architecture, workload) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct PerformanceBounds {
    pe: PeParameters,
    comm: CommunicationModel,
    io_bits: u32,
    layers: Vec<LayerModel>,
    total_ops: f64,
    total_activations: f64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct LayerModel {
    min_pes: u64,
    reuse: u64,
}

impl PerformanceBounds {
    /// Build the model from workload statistics.
    pub fn new(
        pe: PeParameters,
        comm: CommunicationModel,
        io_bits: u32,
        stats: &WorkloadStats,
    ) -> Self {
        let layers = stats
            .layers
            .iter()
            .filter(|l| l.weights > 0)
            .map(|l| LayerModel {
                min_pes: l.weights.div_ceil(pe.capacity_weights).max(1),
                reuse: l.reuse_degree.max(1),
            })
            .collect();
        PerformanceBounds {
            pe,
            comm,
            io_bits,
            layers,
            total_ops: stats.total_ops as f64,
            total_activations: stats.total_activations as f64,
        }
    }

    /// The minimum number of PEs needed to hold every weight once.
    pub fn minimum_pe_count(&self) -> u64 {
        self.layers.iter().map(|l| l.min_pes).sum()
    }

    /// The smallest chip area (mm²) at which the model fits.
    pub fn minimum_area_mm2(&self) -> f64 {
        self.minimum_pe_count() as f64 * self.pe.area_um2 * 1e-6
    }

    /// Evaluate the bounds at one chip area.
    pub fn at_area(&self, area_mm2: f64) -> BoundsPoint {
        let pe_count = ((area_mm2 * 1e6 / self.pe.area_um2).floor() as u64).max(1);
        self.at_pe_count(pe_count, area_mm2)
    }

    /// Evaluate the bounds for an explicit PE budget.
    pub fn at_pe_count(&self, pe_count: u64, area_mm2: f64) -> BoundsPoint {
        let peak_ops = pe_count as f64 * self.pe.ops_per_vmm / (self.pe.vmm_latency_ns * 1e-9);
        let minimum = self.minimum_pe_count();
        if pe_count < minimum || self.layers.is_empty() {
            return BoundsPoint {
                area_mm2,
                pe_count: pe_count as usize,
                peak_ops,
                ideal_ops: 0.0,
                real_ops: 0.0,
                feasible: false,
                duplication_degree: 0,
            };
        }

        // Greedy duplication: repeatedly grant one full duplicate to the
        // layer with the largest iteration count.
        let mut duplicates: Vec<u64> = vec![1; self.layers.len()];
        let mut spare = pe_count - minimum;
        loop {
            let (bottleneck, iterations) = self.bottleneck(&duplicates);
            if iterations <= 1 {
                break;
            }
            let cost = self.layers[bottleneck].min_pes;
            if cost > spare {
                break;
            }
            duplicates[bottleneck] += 1;
            spare -= cost;
        }

        let (_, bottleneck_iterations) = self.bottleneck(&duplicates);
        let max_reuse_layer = self
            .layers
            .iter()
            .enumerate()
            .max_by_key(|(_, l)| l.reuse)
            .map(|(i, _)| i)
            .unwrap_or(0);
        let duplication_degree = duplicates[max_reuse_layer];

        // Ideal: only the compute pipeline limits throughput.
        let compute_period_ns = bottleneck_iterations as f64 * self.pe.vmm_latency_ns;
        let ideal_ops = self.total_ops / (compute_period_ns * 1e-9);

        // Real: add the communication term.
        let real_period_ns = match self.comm {
            CommunicationModel::Ideal => compute_period_ns,
            CommunicationModel::Routed { per_value_ns } => {
                bottleneck_iterations as f64 * (self.pe.vmm_latency_ns + per_value_ns)
            }
            CommunicationModel::Bus(bus) => {
                let comm_ns = bus.sample_transfer_ns(self.total_activations, self.io_bits);
                compute_period_ns.max(comm_ns)
            }
        };
        let real_ops = self.total_ops / (real_period_ns * 1e-9);

        BoundsPoint {
            area_mm2,
            pe_count: pe_count as usize,
            peak_ops,
            ideal_ops,
            real_ops,
            feasible: true,
            duplication_degree,
        }
    }

    fn bottleneck(&self, duplicates: &[u64]) -> (usize, u64) {
        self.layers
            .iter()
            .zip(duplicates)
            .map(|(l, &d)| l.reuse.div_ceil(d))
            .enumerate()
            .max_by_key(|&(_, iters)| iters)
            .unwrap_or((0, 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpsa_arch::ArchitectureConfig;
    use fpsa_nn::zoo;

    fn prime_bounds(stats: &WorkloadStats) -> PerformanceBounds {
        PerformanceBounds::new(
            PeParameters::from_arch(&ArchitectureConfig::prime()),
            CommunicationModel::Bus(MemoryBus::prime_default()),
            6,
            stats,
        )
    }

    #[test]
    fn peak_exceeds_ideal_exceeds_real() {
        let stats = zoo::vgg16().statistics();
        let bounds = prime_bounds(&stats);
        let point = bounds.at_area(bounds.minimum_area_mm2() * 4.0);
        assert!(point.feasible);
        assert!(point.peak_ops >= point.ideal_ops);
        assert!(point.ideal_ops >= point.real_ops);
    }

    #[test]
    fn too_small_chips_are_infeasible() {
        let stats = zoo::vgg16().statistics();
        let bounds = prime_bounds(&stats);
        let point = bounds.at_area(bounds.minimum_area_mm2() * 0.5);
        assert!(!point.feasible);
        assert_eq!(point.ideal_ops, 0.0);
    }

    #[test]
    fn prime_real_performance_is_communication_bound_at_scale() {
        // Figure 2: with ample area, PRIME's real curve sits roughly two
        // orders of magnitude below the ideal curve.
        let stats = zoo::vgg16().statistics();
        let bounds = prime_bounds(&stats);
        let point = bounds.at_area(1000.0);
        assert!(point.feasible);
        let gap = point.ideal_ops / point.real_ops;
        assert!(gap > 10.0, "ideal/real gap {gap} should be large");
    }

    #[test]
    fn ideal_curve_scales_superlinearly_then_saturates() {
        let stats = zoo::vgg16().statistics();
        let bounds = PerformanceBounds::new(
            PeParameters::from_arch(&ArchitectureConfig::prime()),
            CommunicationModel::Ideal,
            6,
            &stats,
        );
        let a0 = bounds.minimum_area_mm2();
        let small = bounds.at_area(a0 * 1.2);
        let medium = bounds.at_area(a0 * 2.4);
        // Doubling the area more than doubles the ideal performance in the
        // unbalanced region (super-linear scaling).
        assert!(medium.ideal_ops / small.ideal_ops > 2.0);
        // And the ideal curve can never exceed peak.
        let huge = bounds.at_area(a0 * 200.0);
        assert!(huge.ideal_ops <= huge.peak_ops * 1.000001);
    }

    #[test]
    fn fpsa_routed_bounds_beat_prime_bus_bounds() {
        let stats = zoo::vgg16().statistics();
        let prime = prime_bounds(&stats);
        let fpsa = PerformanceBounds::new(
            PeParameters::from_arch(&ArchitectureConfig::fpsa()),
            CommunicationModel::Routed {
                per_value_ns: 640.0,
            },
            6,
            &stats,
        );
        let area = prime.minimum_area_mm2().max(fpsa.minimum_area_mm2()) * 8.0;
        let p = prime.at_area(area);
        let f = fpsa.at_area(area);
        assert!(
            f.real_ops > p.real_ops * 50.0,
            "FPSA should be far ahead at {area} mm^2"
        );
    }

    #[test]
    fn sweep_is_monotone_in_area_for_the_peak_curve() {
        // Figures 2 and 6 sweep a log-spaced area axis through `at_area`
        // (via the sweep engine in fpsa-core); the peak curve must be
        // monotone along any increasing axis.
        let stats = zoo::alexnet().statistics();
        let bounds = prime_bounds(&stats);
        let sweep: Vec<BoundsPoint> = [10.0, 31.6, 100.0, 316.0, 1_000.0, 3_160.0, 10_000.0]
            .iter()
            .map(|&area| bounds.at_area(area))
            .collect();
        for pair in sweep.windows(2) {
            assert!(pair[1].peak_ops >= pair[0].peak_ops);
        }
    }

    #[test]
    fn duplication_degree_grows_with_area() {
        let stats = zoo::vgg16().statistics();
        let bounds = PerformanceBounds::new(
            PeParameters::from_arch(&ArchitectureConfig::fpsa()),
            CommunicationModel::Ideal,
            6,
            &stats,
        );
        let a0 = bounds.minimum_area_mm2();
        let d1 = bounds.at_area(a0 * 1.05).duplication_degree;
        let d2 = bounds.at_area(a0 * 3.0).duplication_degree;
        assert!(d2 >= d1);
        assert!(d1 >= 1);
    }
}
