//! The shared memory bus of PRIME.
//!
//! PRIME's PEs live inside a ReRAM main-memory chip and exchange activations
//! over the chip's hierarchical memory bus. All PEs share its bandwidth, so
//! once the per-PE compute time has been slashed by the crossbars, the bus
//! becomes the system bottleneck (Section 3 of the paper).

use serde::{Deserialize, Serialize};

/// A shared memory bus.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryBus {
    /// Aggregate bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// Arbitration / protocol overhead per transfer in ns.
    pub arbitration_ns: f64,
}

impl MemoryBus {
    /// PRIME's internal memory bus as configured for the comparison.
    pub fn prime_default() -> Self {
        MemoryBus {
            bandwidth_gbps: 32.0,
            arbitration_ns: 10.0,
        }
    }

    /// Time to move `bytes` bytes across the bus, in ns, ignoring contention.
    pub fn transfer_ns(&self, bytes: f64) -> f64 {
        self.arbitration_ns + bytes / self.bandwidth_gbps
    }

    /// Time for the bus to carry one inference worth of activation traffic,
    /// in ns: `values` activations of `bits` bits each, written once and read
    /// once (producer to buffer, buffer to consumer).
    pub fn sample_transfer_ns(&self, values: f64, bits: u32) -> f64 {
        let bytes = values * bits as f64 / 8.0 * 2.0;
        self.transfer_ns(bytes)
    }

    /// Effective per-PE bandwidth when `pe_count` PEs contend, in GB/s.
    pub fn per_pe_bandwidth_gbps(&self, pe_count: usize) -> f64 {
        self.bandwidth_gbps / pe_count.max(1) as f64
    }
}

impl Default for MemoryBus {
    fn default() -> Self {
        Self::prime_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_linearly_with_bytes() {
        let bus = MemoryBus::prime_default();
        let t1 = bus.transfer_ns(32.0);
        let t2 = bus.transfer_ns(64.0);
        assert!(t2 > t1);
        assert!((t2 - bus.arbitration_ns) / (t1 - bus.arbitration_ns) - 2.0 < 1e-9);
    }

    #[test]
    fn sample_transfer_counts_write_and_read() {
        let bus = MemoryBus {
            bandwidth_gbps: 1.0,
            arbitration_ns: 0.0,
        };
        // 1000 values x 8 bits = 1000 bytes, doubled = 2000 bytes at 1 GB/s.
        assert!((bus.sample_transfer_ns(1000.0, 8) - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn contention_divides_bandwidth() {
        let bus = MemoryBus::prime_default();
        assert!((bus.per_pe_bandwidth_gbps(32) - bus.bandwidth_gbps / 32.0).abs() < 1e-12);
        assert_eq!(bus.per_pe_bandwidth_gbps(0), bus.bandwidth_gbps);
    }
}
