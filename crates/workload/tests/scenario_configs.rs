//! Every checked-in `scenarios/*.scenario` file must parse, validate and
//! round-trip through the canonical renderer — the CI `workload` job runs
//! this suite so a config typo is caught at review time, not when a bench
//! run silently skips the file.

use fpsa_workload::{Scenario, TraceRecorder};
use std::path::PathBuf;

fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

fn checked_in_scenarios() -> Vec<(String, Scenario)> {
    let mut found = Vec::new();
    for entry in std::fs::read_dir(scenarios_dir()).expect("scenarios/ exists at the repo root") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("scenario") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("scenario file reads");
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let scenario =
            Scenario::parse(&text).unwrap_or_else(|e| panic!("{name} does not parse: {e}"));
        found.push((name, scenario));
    }
    found
}

#[test]
fn every_checked_in_scenario_parses_and_round_trips() {
    let scenarios = checked_in_scenarios();
    assert!(
        scenarios.len() >= 4,
        "expected the four stock scenarios, found {}",
        scenarios.len()
    );
    for (name, scenario) in &scenarios {
        scenario
            .validate()
            .unwrap_or_else(|e| panic!("{name} does not validate: {e}"));
        // Canonical render → parse reproduces the scenario exactly.
        let rendered = scenario.to_config_string();
        let reparsed = Scenario::parse(&rendered)
            .unwrap_or_else(|e| panic!("{name} canonical form does not re-parse: {e}"));
        assert_eq!(&reparsed, scenario, "{name} does not round-trip");
        // File stem and scenario name agree, so reports land predictably.
        assert_eq!(
            name.trim_end_matches(".scenario"),
            scenario.name,
            "{name}: file stem and scenario name differ"
        );
    }
}

#[test]
fn every_checked_in_scenario_records_a_well_formed_trace() {
    for (name, scenario) in checked_in_scenarios() {
        // Recording the full 30k–120k request trace per file is bench work;
        // a 2k-request prefix exercises the same arrival machinery.
        let mut small = scenario.clone();
        small.requests = small.requests.min(2_000);
        let trace = TraceRecorder::new(&small).record();
        assert_eq!(trace.len(), small.requests, "{name}");
        assert!(
            trace.events.windows(2).all(|p| p[0].at_us <= p[1].at_us),
            "{name}: arrivals not monotone"
        );
        let tenants = scenario.tenants.len() as u16;
        let models = scenario.models.len() as u16;
        assert!(
            trace
                .events
                .iter()
                .all(|e| e.tenant < tenants && e.model < models),
            "{name}: mix index out of range"
        );
    }
}
