//! Every checked-in `scenarios/*.scenario` file must parse, validate and
//! round-trip through the canonical renderer — the CI `workload` job runs
//! this suite so a config typo is caught at review time, not when a bench
//! run silently skips the file.

use fpsa_workload::{MixEntry, Scenario, TraceRecorder};
use proptest::prelude::*;
use std::path::PathBuf;

fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

fn checked_in_scenarios() -> Vec<(String, Scenario)> {
    let mut found = Vec::new();
    for entry in std::fs::read_dir(scenarios_dir()).expect("scenarios/ exists at the repo root") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("scenario") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("scenario file reads");
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let scenario =
            Scenario::parse(&text).unwrap_or_else(|e| panic!("{name} does not parse: {e}"));
        found.push((name, scenario));
    }
    found
}

#[test]
fn every_checked_in_scenario_parses_and_round_trips() {
    let scenarios = checked_in_scenarios();
    assert!(
        scenarios.len() >= 4,
        "expected the four stock scenarios, found {}",
        scenarios.len()
    );
    for (name, scenario) in &scenarios {
        scenario
            .validate()
            .unwrap_or_else(|e| panic!("{name} does not validate: {e}"));
        // Canonical render → parse reproduces the scenario exactly.
        let rendered = scenario.to_config_string();
        let reparsed = Scenario::parse(&rendered)
            .unwrap_or_else(|e| panic!("{name} canonical form does not re-parse: {e}"));
        assert_eq!(&reparsed, scenario, "{name} does not round-trip");
        // File stem and scenario name agree, so reports land predictably.
        assert_eq!(
            name.trim_end_matches(".scenario"),
            scenario.name,
            "{name}: file stem and scenario name differ"
        );
    }
}

/// The config format's safe alphabet (no `#`, no whitespace) — anything
/// validation accepts must round-trip exactly. `:` is deliberately in the
/// pool: `rsplit_once` keeps colon-bearing names parseable.
const SAFE_ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.:-";

fn safe_name(indices: &[usize]) -> String {
    indices
        .iter()
        .map(|&i| SAFE_ALPHABET[i % SAFE_ALPHABET.len()] as char)
        .collect()
}

/// A positive decimal weight; Rust's shortest-round-trip float formatting
/// guarantees render → parse reproduces the exact bits.
fn weight(mantissa: u64, shift: u32) -> f64 {
    mantissa as f64 / 10f64.powi(shift as i32)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn safe_names_round_trip_exactly(
        names in collection::vec(collection::vec(0usize..66, 1..13), 5),
        mantissas in collection::vec(1u64..1_000_000_000, 4),
        shifts in collection::vec(0u32..6, 4),
        split in 1usize..4,
        seed in 0u64..1_000_000_000,
    ) {
        let entries: Vec<MixEntry> = names[1..]
            .iter()
            .zip(mantissas.iter().zip(&shifts))
            .map(|(idx, (&m, &s))| MixEntry {
                name: safe_name(idx),
                weight: weight(m, s),
            })
            .collect();
        let mut scenario = Scenario::steady(safe_name(&names[0]), "placeholder", seed, 128);
        scenario.models = entries[..split].to_vec();
        scenario.tenants = entries[split..].to_vec();
        prop_assert!(scenario.validate().is_ok());
        let reparsed = Scenario::parse(&scenario.to_config_string())
            .expect("validated scenarios re-parse");
        prop_assert_eq!(reparsed, scenario);
    }

    #[test]
    fn hostile_names_fail_validation_before_they_can_corrupt_a_config(
        prefix in collection::vec(0usize..66, 0..7),
        suffix in collection::vec(0usize..66, 0..7),
        hostile in 0usize..5,
        slot in 0usize..3,
    ) {
        let poison = ["#", " ", "\t", "a#b", "a b"][hostile];
        let name = format!("{}{poison}{}", safe_name(&prefix), safe_name(&suffix));
        let mut scenario = Scenario::steady("hostile", "m", 1, 16);
        match slot {
            0 => scenario.models[0].name = name,
            1 => scenario.tenants[0].name = name,
            // The scenario name tolerates interior whitespace (it is the
            // whole rest of the line) but never `#`.
            _ => scenario.name = format!("{}#{}", safe_name(&prefix), safe_name(&suffix)),
        }
        prop_assert!(scenario.validate().is_err());
        // And recording refuses too — the typed error, not a panic or a
        // silently truncated mix.
        prop_assert!(TraceRecorder::new(&scenario).record().is_err());
    }
}

#[test]
fn every_checked_in_scenario_records_a_well_formed_trace() {
    for (name, scenario) in checked_in_scenarios() {
        // Recording the full 30k–120k request trace per file is bench work;
        // a 2k-request prefix exercises the same arrival machinery.
        let mut small = scenario.clone();
        small.requests = small.requests.min(2_000);
        let trace = TraceRecorder::new(&small).record().unwrap();
        assert_eq!(trace.len(), small.requests, "{name}");
        assert!(
            trace.events.windows(2).all(|p| p[0].at_us <= p[1].at_us),
            "{name}: arrivals not monotone"
        );
        let tenants = scenario.tenants.len() as u16;
        let models = scenario.models.len() as u16;
        assert!(
            trace
                .events
                .iter()
                .all(|e| e.tenant < tenants && e.model < models),
            "{name}: mix index out of range"
        );
    }
}
