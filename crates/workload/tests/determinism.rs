//! The workload replay determinism suite.
//!
//! Mirrors `crates/serve/tests/determinism.rs`, one level up the stack: the
//! contract here is that replaying the *same seeded scenario* — not merely
//! the same input list — yields bit-identical results everywhere it can.
//!
//! * Recording a scenario twice yields the identical trace (fingerprint and
//!   all).
//! * Replaying a trace against the real engine yields outputs bit-identical
//!   to direct execution and to every other replay — across runs, replica
//!   counts and concurrent client streams — in all three numeric regimes.
//! * The virtual-clock replay yields an *identical* `ServeStats` on every
//!   run: the statistics half of determinism, which wall-clock engines
//!   cannot promise (thread scheduling decides batch boundaries) and the
//!   virtual domain must.

use fpsa_core::Compiler;
use fpsa_device::variation::{CellVariation, WeightScheme};
use fpsa_nn::reference::QuantizationPlan;
use fpsa_nn::{zoo, ComputationalGraph, GraphParameters};
use fpsa_serve::{ServeConfig, ServeEngine};
use fpsa_sim::{Executor, Precision};
use fpsa_workload::{simulate, Scenario, TraceRecorder, TraceReplayer};

const REQUESTS: usize = 24;

fn scenario(model: &str) -> Scenario {
    Scenario::steady(format!("determinism-{model}"), model, 0xD0_0D, REQUESTS)
}

/// The three numeric regimes, calibrated on the trace's own inputs.
fn precisions(
    graph: &ComputationalGraph,
    params: &GraphParameters,
    inputs: &[Vec<f32>],
) -> Vec<Precision> {
    let plan = QuantizationPlan::calibrate(graph, params, inputs).expect("calibration succeeds");
    vec![
        Precision::Float,
        Precision::Integer(plan),
        Precision::Noisy {
            scheme: WeightScheme::fpsa_add(),
            variation: CellVariation::measured(),
            seed: 0xD07,
        },
    ]
}

fn bind(
    compiled: &fpsa_core::CompiledModel,
    graph: &ComputationalGraph,
    params: &GraphParameters,
    precision: &Precision,
) -> Executor {
    compiled
        .executor(graph, params, precision)
        .expect("compiled zoo models bind")
}

#[test]
fn recording_the_same_scenario_twice_yields_the_identical_trace() {
    let a = TraceRecorder::new(&scenario("tiny_cnn")).record().unwrap();
    let b = TraceRecorder::new(&scenario("tiny_cnn")).record().unwrap();
    assert_eq!(a, b);
    assert_eq!(a.fingerprint(), b.fingerprint());
    // And the inputs regenerate identically per index.
    for i in 0..a.len() {
        assert_eq!(a.input_for(i, 12), b.input_for(i, 12));
    }
}

#[test]
fn replayed_outputs_are_bit_identical_across_runs_replicas_and_client_streams() {
    let graph = zoo::tiny_cnn();
    let params = GraphParameters::seeded(&graph, 0x5EED);
    let compiled = Compiler::fpsa().compile(&graph).expect("tiny CNN compiles");
    let scenario = scenario("tiny_cnn");
    let trace = TraceRecorder::new(&scenario).record().unwrap();
    let input_len = graph.input_elements();
    let replayer = TraceReplayer::new(&trace, input_len);
    let calibration: Vec<Vec<f32>> = (0..trace.len())
        .map(|i| trace.input_for(i, input_len))
        .collect();

    for precision in precisions(&graph, &params, &calibration) {
        // Ground truth: direct single-threaded execution on the trace's
        // regenerated inputs.
        let direct_exec = bind(&compiled, &graph, &params, &precision);
        let direct: Vec<Vec<f32>> = calibration
            .iter()
            .map(|x| direct_exec.run(x).expect("direct run succeeds"))
            .collect();

        for replicas in [1, 2, 4] {
            let engine = ServeEngine::start(
                bind(&compiled, &graph, &params, &precision),
                ServeConfig {
                    replicas,
                    max_batch: 4,
                    batch_window_us: 300,
                },
            );
            // Run 1: single client. Run 2: same engine, same trace. Run 3:
            // three concurrent client streams. All bit-identical to direct.
            let first = replayer.replay(&engine);
            let second = replayer.replay(&engine);
            let concurrent = replayer.replay_concurrent(&engine, 3);
            assert_eq!(
                first.outputs, direct,
                "replay diverged from direct ({precision:?}, {replicas} replicas)"
            );
            assert_eq!(first.outputs, second.outputs);
            assert_eq!(first.outputs, concurrent.outputs);

            let stats = engine.shutdown();
            assert_eq!(stats.submitted, 3 * REQUESTS as u64);
            assert_eq!(stats.completed, 3 * REQUESTS as u64);
            assert_eq!(stats.failed + stats.rejected, 0);
        }
    }
}

#[test]
fn virtual_stats_are_identical_across_runs_and_host_thread_counts() {
    let scenario = scenario("tiny_cnn");
    let trace = TraceRecorder::new(&scenario).record().unwrap();
    let baseline = simulate(&trace, scenario.policy, scenario.service);
    assert_eq!(baseline.stats.completed, REQUESTS as u64);

    // Re-running in this thread and in a pile of fresh threads must all
    // produce the identical ServeStats — the virtual clock owes its
    // determinism to nothing about the host.
    assert_eq!(
        baseline,
        simulate(&trace, scenario.policy, scenario.service)
    );
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let trace = &trace;
                let s = &scenario;
                scope.spawn(move || simulate(trace, s.policy, s.service))
            })
            .collect();
        for handle in handles {
            assert_eq!(baseline, handle.join().expect("sim thread"));
        }
    });
}

#[test]
fn virtual_stats_do_not_depend_on_real_engine_replica_count() {
    // The virtual replay is a function of (trace, policy, service) only —
    // replaying the same trace against real engines of different replica
    // counts must not perturb it (they are separate domains by design).
    let scenario = scenario("tiny_mlp");
    let trace = TraceRecorder::new(&scenario).record().unwrap();
    let before = simulate(&trace, scenario.policy, scenario.service);

    let graph = zoo::tiny_mlp();
    let params = GraphParameters::seeded(&graph, 0xC11E);
    let compiled = Compiler::fpsa().compile(&graph).expect("tiny MLP compiles");
    let replayer = TraceReplayer::new(&trace, graph.input_elements());
    let mut engine_outputs = Vec::new();
    for replicas in [1, 3] {
        let engine = ServeEngine::start(
            bind(&compiled, &graph, &params, &Precision::Float),
            ServeConfig {
                replicas,
                max_batch: 4,
                batch_window_us: 200,
            },
        );
        engine_outputs.push(replayer.replay(&engine).outputs);
        engine.shutdown();
    }
    assert_eq!(engine_outputs[0], engine_outputs[1]);
    assert_eq!(before, simulate(&trace, scenario.policy, scenario.service));
}
