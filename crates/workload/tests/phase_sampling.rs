//! The phase-sampling accuracy and speedup pins.
//!
//! SimPoint-style sampling is only worth having if the sampled estimate
//! tracks the full replay. The always-on tests hold moderate traces to the
//! stated tolerances; the release-gated pin is the PR's acceptance
//! criterion — a ≥100k-request scenario whose phase-sampled stats reproduce
//! the full-trace throughput and p50/p99 within tolerance at ≤ 1/10 the
//! replay wall-clock (and ≤ 1/10 the simulated events, the machine-load-
//! independent form of the same claim).

use fpsa_workload::{
    check_tolerance, plan, simulate, simulate_phased, ArrivalProcess, PhaseConfig, Scenario,
    TraceRecorder,
};

fn diurnal(requests: usize) -> Scenario {
    Scenario::steady("phase-pin", "MLP-500-100", 0x9A5E, requests)
        .with_arrival(ArrivalProcess::Diurnal {
            base_rate_per_s: 600.0,
            peak_rate_per_s: 8_000.0,
            period_us: 2_000_000,
        })
        .with_batch_mix(vec![(1, 0.6), (4, 0.3), (8, 0.1)])
}

#[test]
fn phase_sampling_tracks_the_full_replay_on_every_arrival_process() {
    for (name, arrival) in [
        (
            "poisson",
            ArrivalProcess::Poisson {
                rate_per_s: 2_500.0,
            },
        ),
        (
            "bursty",
            ArrivalProcess::Bursty {
                period_us: 800,
                burst: 16,
            },
        ),
        (
            "diurnal",
            ArrivalProcess::Diurnal {
                base_rate_per_s: 600.0,
                peak_rate_per_s: 8_000.0,
                period_us: 1_000_000,
            },
        ),
        (
            "adversarial",
            ArrivalProcess::AdversarialClosedLoop {
                clients: 32,
                think_us: 80,
                barrier_us: 500,
            },
        ),
    ] {
        let scenario =
            Scenario::steady(format!("phase-{name}"), "m", 0xFA5E, 16_000).with_arrival(arrival);
        let trace = TraceRecorder::new(&scenario).record().unwrap();
        let full = simulate(&trace, scenario.policy, scenario.service);
        let p = plan(&trace, PhaseConfig::default());
        let phased = simulate_phased(&trace, &p, scenario.policy, scenario.service);
        check_tolerance(&full, &phased)
            .unwrap_or_else(|e| panic!("{name}: phase sampling out of tolerance: {e}"));
    }
}

#[test]
fn phased_estimates_are_deterministic() {
    let scenario = diurnal(12_000);
    let trace = TraceRecorder::new(&scenario).record().unwrap();
    let a = plan(&trace, PhaseConfig::default());
    let b = plan(&trace, PhaseConfig::default());
    assert_eq!(a, b);
    assert_eq!(
        simulate_phased(&trace, &a, scenario.policy, scenario.service),
        simulate_phased(&trace, &b, scenario.policy, scenario.service),
    );
}

/// The PR's acceptance criterion. Release-only: the wall-clock half of the
/// pin measures the simulator, and debug-build timings measure the
/// optimizer instead.
#[cfg(not(debug_assertions))]
#[test]
fn phase_sampled_replay_of_100k_requests_is_within_tolerance_at_a_tenth_the_cost() {
    use std::time::Instant;

    let scenario = diurnal(120_000);
    let trace = TraceRecorder::new(&scenario).record().unwrap();
    assert!(trace.len() >= 100_000);

    let full_start = Instant::now();
    let full = simulate(&trace, scenario.policy, scenario.service);
    let full_wall = full_start.elapsed();

    let phased_start = Instant::now();
    let p = plan(&trace, PhaseConfig::default());
    let phased = simulate_phased(&trace, &p, scenario.policy, scenario.service);
    let phased_sim_wall = phased_start.elapsed();

    // Accuracy: throughput and p50/p99 within the pinned tolerances.
    check_tolerance(&full, &phased).expect("phase sampling within tolerance");

    // Cost, machine-independent form: ≤ 1/10 of the events simulated.
    assert!(
        p.sampled_fraction() <= 0.10,
        "sampled fraction {:.3} > 0.10 ({} of {} events)",
        p.sampled_fraction(),
        p.sampled_events,
        p.total_events
    );

    // Cost, wall-clock form: the phased *simulation* (representatives only)
    // must replay in ≤ 1/10 the full-trace replay time. Clustering cost is
    // excluded — a plan is computed once and amortized over every policy /
    // service sweep replayed against it — but report it for context.
    let resim_start = Instant::now();
    let again = simulate_phased(&trace, &p, scenario.policy, scenario.service);
    let resim_wall = resim_start.elapsed();
    assert_eq!(again, phased, "phased replay must be deterministic");
    assert!(
        resim_wall <= full_wall / 10,
        "phased replay {resim_wall:?} > 1/10 of full replay {full_wall:?} \
         (plan+sim was {phased_sim_wall:?})"
    );
}
