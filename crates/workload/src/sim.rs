//! The deterministic virtual-time replay clock.
//!
//! Wall-clock serving measurements depend on thread scheduling, CPU load
//! and timer resolution — none of which belongs in a CI pin. Following the
//! record → simulate → report methodology (measure against a model you can
//! hold fixed, not an ad-hoc probe), [`simulate`] replays a recorded
//! [`Trace`] through the *real* [`DynamicBatcher`] state machine — the same
//! pure, clock-free admission discipline the serving engines run — under a
//! discrete-event virtual clock: arrivals land at their trace timestamps,
//! ready batches are claimed by the earliest-free of `replicas` virtual
//! workers, and each batch occupies its worker for the scenario's
//! [`ServiceModel`] cost. Everything is integer microseconds, the
//! simulation is single-threaded, and ties break by index — so the
//! resulting [`ServeStats`] (built through the engine's own recording
//! methods, bucket for bucket) is **identical across runs, host thread
//! counts and real-engine replica configurations**, which is exactly the
//! property the phase-sampling tolerance pin and the determinism suite
//! stand on.

use crate::scenario::{ReplayPolicy, ServiceModel};
use crate::trace::{Trace, TraceEvent};
use fpsa_obs::{Span, SpanId, Tracer};
use fpsa_serve::{BatchPolicy, DynamicBatcher, ServeStats, WeightedFairBatcher};
use serde::{Deserialize, Serialize};

/// The result of one virtual-time replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VirtualReplay {
    /// Engine-contract statistics accumulated under the virtual clock
    /// (deterministic: identical across runs and thread counts).
    pub stats: ServeStats,
    /// Virtual time from the first arrival to the last batch completion.
    /// Measured from the first event's `at_us`, not virtual t=0, so a
    /// non-rebased slice reports the same makespan as its rebased twin.
    pub makespan_us: u64,
    /// Requests per *virtual* second: `requests / makespan`.
    pub throughput_rps: f64,
}

impl VirtualReplay {
    fn empty() -> VirtualReplay {
        VirtualReplay {
            stats: ServeStats::default(),
            makespan_us: 0,
            throughput_rps: 0.0,
        }
    }
}

/// Replay `trace` under the virtual clock (see the module docs).
pub fn simulate(trace: &Trace, policy: ReplayPolicy, service: ServiceModel) -> VirtualReplay {
    simulate_inner(trace, policy, service, None)
}

/// [`simulate`], recording every request's `request → queue → execute →
/// respond` span chain into `tracer` — with **virtual** timestamps.
///
/// The replay is single-threaded and deterministic, and the tracer never
/// reads a clock, so on a *fresh* [`Tracer`] (sequential span ids) the
/// recorded event stream — and therefore the exported Chrome-trace JSON —
/// is a pure function of `(trace, policy, service)`: bit-identical across
/// runs, which is what lets CI pin the exported bytes. Pass a tracer in
/// [`fpsa_obs::Mode::Full`]; tracing only observes the replay, so the
/// returned [`VirtualReplay`] is identical to the untraced one.
pub fn simulate_traced(
    trace: &Trace,
    policy: ReplayPolicy,
    service: ServiceModel,
    tracer: &Tracer,
) -> VirtualReplay {
    simulate_inner(trace, policy, service, Some(tracer))
}

fn simulate_inner(
    trace: &Trace,
    policy: ReplayPolicy,
    service: ServiceModel,
    tracer: Option<&Tracer>,
) -> VirtualReplay {
    if trace.is_empty() {
        return VirtualReplay::empty();
    }
    // Request/queue span handles, indexed by trace-event index (admissions
    // happen strictly in index order).
    let mut spans: Vec<(Span, Span)> = Vec::new();
    let mut batcher: DynamicBatcher<usize> =
        DynamicBatcher::new(BatchPolicy::new(policy.max_batch, policy.window_us));
    let mut stats = ServeStats::default();
    let mut free = vec![0u64; policy.replicas.max(1)];
    let events = &trace.events;
    let mut next = 0usize;
    let mut last_finish = 0u64;
    // The global simulation clock: monotone, so a replica that frees up
    // early can never claim a batch "before" arrivals the simulation has
    // already admitted (which would send a latency negative).
    let mut clock = 0u64;

    while next < events.len() || !batcher.is_empty() {
        // The earliest-free virtual worker claims the next batch (ties by
        // worker index) — the deterministic mirror of "whichever replica
        // frees up first".
        let (worker, worker_free) = free
            .iter()
            .copied()
            .enumerate()
            .min_by_key(|&(i, t)| (t, i))
            .expect("replicas >= 1");
        let mut now = worker_free.max(clock);
        loop {
            // Arrivals up to the candidate instant join the queue first, so
            // simultaneity resolves identically on every run.
            while next < events.len() && events[next].at_us <= now {
                let at = events[next].at_us;
                stats.submitted += 1;
                batcher.push(next, at);
                stats.record_queue_depth(batcher.len());
                if let Some(t) = tracer {
                    let root = t.enter_with(
                        "request",
                        "replay",
                        at,
                        SpanId::NONE,
                        &[
                            ("tenant", i64::from(events[next].tenant)),
                            ("model", i64::from(events[next].model)),
                        ],
                    );
                    let queue = t.enter("queue", "replay", at, root.id);
                    spans.push((root, queue));
                    t.counter("replay.queue_depth", "replay", at, batcher.len() as i64);
                }
                next += 1;
            }
            if batcher.ready(now) {
                break;
            }
            // Advance to the next interesting instant: the oldest entry's
            // deadline or the next arrival. Both are > now (arrivals <= now
            // are already pushed; an expired deadline implies ready).
            now = match (batcher.next_deadline_us(), events.get(next)) {
                (Some(deadline), Some(event)) => deadline.min(event.at_us),
                (Some(deadline), None) => deadline,
                (None, Some(event)) => event.at_us,
                (None, None) => return finishize(stats, events, last_finish),
            }
            .max(now);
        }
        let batch = batcher.pop_ready(now).expect("checked ready");
        clock = now;
        let blen = batch.len();
        let finish = now + service.batch_us(blen);
        free[worker] = finish;
        last_finish = last_finish.max(finish);
        stats.record_batch(blen, true);
        for index in batch {
            let latency = finish - events[index].at_us;
            stats.record_latency(latency);
            if let Some(t) = tracer {
                let (root, queue) = spans[index];
                t.exit(&queue, now);
                let exec =
                    t.enter_with("execute", "replay", now, root.id, &[("batch", blen as i64)]);
                t.exit(&exec, finish);
                let respond = t.enter("respond", "replay", finish, root.id);
                t.exit(&respond, finish);
                t.record(&root, "latency_us", latency as i64, finish);
                t.exit(&root, finish);
            }
        }
    }
    finishize(stats, events, last_finish)
}

/// How a virtual *fleet* replays a trace: several fabrics, each running a
/// per-fabric [`ReplayPolicy`] over a weighted-fair multi-tenant queue,
/// with models pinned to the fabrics that host them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetPolicy {
    /// Replicas and batching, per fabric.
    pub per_fabric: ReplayPolicy,
    /// Models hosted on each fabric (a `FleetPlacement::hosted` mirror).
    pub hosted: Vec<Vec<u16>>,
    /// Weighted-fair shares: `(tenant, weight)`; unlisted tenants weigh 1.
    pub tenant_weights: Vec<(u16, u64)>,
}

/// The result of one virtual fleet replay: the aggregate [`VirtualReplay`]
/// plus each tenant's own engine-contract counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetVirtualReplay {
    /// All tenants together.
    pub aggregate: VirtualReplay,
    /// Per-tenant counters, dense by tenant id.
    pub per_tenant: Vec<ServeStats>,
}

/// Replay `trace` through a virtual fleet (see [`FleetPolicy`]): arrivals
/// route to the hosting fabric with the shortest queue (ties to the lowest
/// index — the deterministic mirror of `FleetEngine`'s router), each
/// fabric's earliest-free replica claims batches under weighted-fair
/// order, and every batch costs the scenario's [`ServiceModel`] time.
/// Single-threaded, integer microseconds, bit-deterministic. A model
/// hosted nowhere falls back to routing across every fabric, so a stale
/// placement degrades to a shared queue instead of dropping work.
pub fn simulate_fleet(
    trace: &Trace,
    policy: &FleetPolicy,
    service: ServiceModel,
) -> FleetVirtualReplay {
    simulate_fleet_inner(trace, policy, service, None)
}

/// [`simulate_fleet`] with the same per-request span recording contract as
/// [`simulate_traced`]: virtual timestamps, bit-identical exports on a
/// fresh [`Tracer`], identical replay results.
pub fn simulate_fleet_traced(
    trace: &Trace,
    policy: &FleetPolicy,
    service: ServiceModel,
    tracer: &Tracer,
) -> FleetVirtualReplay {
    simulate_fleet_inner(trace, policy, service, Some(tracer))
}

fn simulate_fleet_inner(
    trace: &Trace,
    policy: &FleetPolicy,
    service: ServiceModel,
    tracer: Option<&Tracer>,
) -> FleetVirtualReplay {
    if trace.is_empty() {
        return FleetVirtualReplay {
            aggregate: VirtualReplay::empty(),
            per_tenant: Vec::new(),
        };
    }
    let fabrics = policy.hosted.len().max(1);
    let per_fabric = BatchPolicy::new(policy.per_fabric.max_batch, policy.per_fabric.window_us);
    let mut queues: Vec<WeightedFairBatcher<usize>> = (0..fabrics)
        .map(|_| {
            let mut queue = WeightedFairBatcher::new(per_fabric);
            for &(tenant, weight) in &policy.tenant_weights {
                queue.set_weight(tenant, weight);
            }
            queue
        })
        .collect();
    let mut free = vec![vec![0u64; policy.per_fabric.replicas.max(1)]; fabrics];
    let mut stats = ServeStats::default();
    let mut per_tenant: Vec<ServeStats> = Vec::new();
    // Request/queue span handles, indexed by trace-event index (admissions
    // happen strictly in index order).
    let mut spans: Vec<(Span, Span)> = Vec::new();
    let events = &trace.events;
    let mut next = 0usize;
    let mut last_finish = 0u64;
    // Global monotone clock, exactly as in [`simulate`].
    let mut clock = 0u64;

    fn tenant_mut(per_tenant: &mut Vec<ServeStats>, tenant: u16) -> &mut ServeStats {
        let index = usize::from(tenant);
        while per_tenant.len() <= index {
            per_tenant.push(ServeStats::default());
        }
        &mut per_tenant[index]
    }

    loop {
        // The earliest instant any fabric could pop a batch: its earliest
        // free worker's time (clamped to the global clock), or the oldest
        // lane's deadline if nothing is ready yet. Ties go to the lowest
        // fabric index.
        let mut action: Option<(u64, usize)> = None;
        for (fabric, queue) in queues.iter().enumerate() {
            let worker_free = *free[fabric].iter().min().expect("replicas >= 1");
            let base = worker_free.max(clock);
            let at = if queue.ready(base) {
                Some(base)
            } else {
                queue.next_deadline_us().map(|d| d.max(base))
            };
            if let Some(at) = at {
                if action.is_none_or(|(best, _)| at < best) {
                    action = Some((at, fabric));
                }
            }
        }

        // Arrivals up to the action instant are admitted first (and one at
        // a time, because each admission can enable an earlier action), so
        // simultaneity resolves identically on every run.
        let horizon = action.map_or(u64::MAX, |(at, _)| at);
        if next < events.len() && events[next].at_us <= horizon {
            let event = &events[next];
            let fabric = (0..fabrics)
                .filter(|&f| policy.hosted[f].contains(&event.model))
                .min_by_key(|&f| (queues[f].len(), f))
                .unwrap_or_else(|| {
                    (0..fabrics)
                        .min_by_key(|&f| (queues[f].len(), f))
                        .expect("fabrics >= 1")
                });
            queues[fabric].push(event.tenant, next, event.at_us);
            // Admission advances the global clock to the arrival instant
            // (the fleet mirror of `simulate`'s `.max(now)` on event
            // times). Without this, a count-full queue is "ready" at the
            // stale clock and a batch can be popped *before* its items
            // arrived, underflowing `finish - at_us`. Safe to advance:
            // `at_us <= horizon` means no fabric had an earlier action.
            clock = clock.max(event.at_us);
            let depth = queues[fabric].len();
            stats.submitted += 1;
            stats.record_queue_depth(depth);
            let tenant = tenant_mut(&mut per_tenant, event.tenant);
            tenant.submitted += 1;
            tenant.record_queue_depth(depth);
            if let Some(t) = tracer {
                let root = t.enter_with(
                    "request",
                    "replay",
                    event.at_us,
                    SpanId::NONE,
                    &[
                        ("tenant", i64::from(event.tenant)),
                        ("model", i64::from(event.model)),
                    ],
                );
                let queue = t.enter_with(
                    "queue",
                    "replay",
                    event.at_us,
                    root.id,
                    &[("fabric", fabric as i64)],
                );
                spans.push((root, queue));
                t.counter("replay.queue_depth", "replay", event.at_us, depth as i64);
            }
            next += 1;
            continue;
        }

        let Some((now, fabric)) = action else {
            break; // no queued work and no arrivals left
        };
        let (worker, _) = free[fabric]
            .iter()
            .copied()
            .enumerate()
            .min_by_key(|&(i, t)| (t, i))
            .expect("replicas >= 1");
        let (tenant_id, batch) = queues[fabric]
            .pop_ready(now)
            .expect("a fabric's action instant has a ready batch");
        clock = now;
        let blen = batch.len();
        let finish = now + service.batch_us(blen);
        free[fabric][worker] = finish;
        last_finish = last_finish.max(finish);
        stats.record_batch(blen, true);
        let tenant = tenant_mut(&mut per_tenant, tenant_id);
        tenant.record_batch(blen, true);
        for index in batch {
            let latency = finish - events[index].at_us;
            stats.record_latency(latency);
            tenant_mut(&mut per_tenant, tenant_id).record_latency(latency);
            if let Some(t) = tracer {
                let (root, queue) = spans[index];
                t.exit(&queue, now);
                let exec = t.enter_with(
                    "execute",
                    "replay",
                    now,
                    root.id,
                    &[("fabric", fabric as i64), ("batch", blen as i64)],
                );
                t.exit(&exec, finish);
                let respond = t.enter("respond", "replay", finish, root.id);
                t.exit(&respond, finish);
                t.record(&root, "latency_us", latency as i64, finish);
                t.exit(&root, finish);
            }
        }
    }

    FleetVirtualReplay {
        aggregate: finishize(stats, events, last_finish),
        per_tenant,
    }
}

fn finishize(stats: ServeStats, events: &[TraceEvent], last_finish: u64) -> VirtualReplay {
    // Makespan runs from the first *arrival*, not virtual t=0: a trace
    // slice that was not rebased starts deep into virtual time, and
    // counting that dead lead-in would deflate throughput_rps.
    let first_at = events.first().map_or(0, |e| e.at_us);
    let makespan_us = last_finish.saturating_sub(first_at);
    VirtualReplay {
        stats,
        makespan_us,
        throughput_rps: events.len() as f64 / (makespan_us.max(1) as f64 / 1_000_000.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ArrivalProcess, Scenario};
    use crate::trace::TraceRecorder;

    fn replay(scenario: &Scenario) -> VirtualReplay {
        let trace = TraceRecorder::new(scenario).record().unwrap();
        simulate(&trace, scenario.policy, scenario.service)
    }

    #[test]
    fn every_request_completes_exactly_once() {
        let scenario =
            Scenario::steady("sim", "m", 3, 777).with_batch_mix(vec![(1, 1.0), (3, 1.0)]);
        let result = replay(&scenario);
        assert_eq!(result.stats.submitted, 777);
        assert_eq!(result.stats.completed, 777);
        assert_eq!(result.stats.failed + result.stats.rejected, 0);
        assert_eq!(
            result.stats.latency_us.count(),
            777,
            "one latency sample per request"
        );
        assert!(result.makespan_us > 0);
        assert!(result.throughput_rps > 0.0);
    }

    #[test]
    fn simulation_is_bit_deterministic() {
        for arrival in [
            ArrivalProcess::Poisson {
                rate_per_s: 3_000.0,
            },
            ArrivalProcess::AdversarialClosedLoop {
                clients: 8,
                think_us: 25,
                barrier_us: 400,
            },
        ] {
            let scenario = Scenario::steady("det", "m", 5, 600).with_arrival(arrival);
            assert_eq!(replay(&scenario), replay(&scenario));
        }
    }

    #[test]
    fn batches_respect_the_policy_and_windows_bound_latency() {
        let mut scenario = Scenario::steady("bound", "m", 9, 400);
        scenario.policy.max_batch = 4;
        scenario.policy.window_us = 300;
        let result = replay(&scenario);
        assert!(result.stats.largest_batch() <= 4);
        // Under an uncongested open-loop load, no request waits much past
        // its window plus one service round.
        let worst =
            scenario.policy.window_us + 4 * scenario.service.batch_us(scenario.policy.max_batch);
        assert!(
            result.stats.max_latency_us() <= worst,
            "max latency {} > bound {worst}",
            result.stats.max_latency_us()
        );
    }

    #[test]
    fn more_replicas_never_hurt_virtual_throughput() {
        let mut slow = Scenario::steady("one", "m", 21, 800);
        slow.service = crate::scenario::ServiceModel {
            base_us: 200,
            per_request_us: 50,
        };
        slow.policy.replicas = 1;
        let mut fast = slow.clone();
        fast.policy.replicas = 4;
        let one = replay(&slow);
        let four = replay(&fast);
        assert!(
            four.makespan_us <= one.makespan_us,
            "4 replicas {} > 1 replica {}",
            four.makespan_us,
            one.makespan_us
        );
    }

    #[test]
    fn makespan_is_measured_from_the_first_arrival() {
        let scenario = Scenario::steady("rebase", "m", 7, 300);
        let trace = TraceRecorder::new(&scenario).record().unwrap();
        let mid = trace.len() / 2;
        // A non-rebased tail slice starts deep into virtual time; its
        // rebased twin is the same workload shifted to t=0. Both must
        // report the same makespan (and therefore the same throughput).
        let tail = Trace {
            scenario: trace.scenario.clone(),
            seed: trace.seed,
            events: trace.events[mid..].to_vec(),
        };
        assert!(tail.events[0].at_us > 0, "tail must not start at t=0");
        let raw = simulate(&tail, scenario.policy, scenario.service);
        let rebased = simulate(
            &trace.slice_rebased(mid..trace.len()),
            scenario.policy,
            scenario.service,
        );
        assert_eq!(raw.makespan_us, rebased.makespan_us);
        assert_eq!(raw.throughput_rps, rebased.throughput_rps);
    }

    fn zoo_scenario(requests: usize) -> Scenario {
        let mut scenario = Scenario::steady("fleet-sim", "mlp", 9, requests);
        scenario.models = vec![
            crate::scenario::MixEntry {
                name: "mlp".into(),
                weight: 4.0,
            },
            crate::scenario::MixEntry {
                name: "cnn".into(),
                weight: 1.0,
            },
        ];
        scenario.tenants = vec![
            crate::scenario::MixEntry {
                name: "free".into(),
                weight: 1.0,
            },
            crate::scenario::MixEntry {
                name: "pro".into(),
                weight: 3.0,
            },
        ];
        scenario
    }

    #[test]
    fn fleet_replay_completes_every_request_exactly_once() {
        let scenario = zoo_scenario(500);
        let trace = TraceRecorder::new(&scenario).record().unwrap();
        let policy = FleetPolicy {
            per_fabric: scenario.policy,
            hosted: vec![vec![0, 1], vec![0, 1]],
            tenant_weights: vec![(1, 3)],
        };
        let replay = simulate_fleet(&trace, &policy, scenario.service);
        assert_eq!(replay.aggregate.stats.submitted, 500);
        assert_eq!(replay.aggregate.stats.completed, 500);
        assert_eq!(
            replay.per_tenant.iter().map(|t| t.completed).sum::<u64>(),
            500,
            "per-tenant counters partition the aggregate"
        );
        assert_eq!(replay.per_tenant.len(), 2);
        assert!(replay.per_tenant.iter().all(|t| t.submitted > 0));
        // Bit-deterministic, like the single-engine clock.
        assert_eq!(replay, simulate_fleet(&trace, &policy, scenario.service));
    }

    #[test]
    fn colocation_beats_dedicated_fabrics_on_a_skewed_mix() {
        // Model 0 carries 4x model 1's load. Dedicated fabrics bottleneck
        // on model 0's chip while model 1's sits mostly idle; a co-located
        // fleet (every fabric serves every model, shortest-queue routing)
        // spreads the hot model across both.
        let mut scenario = zoo_scenario(800).with_arrival(ArrivalProcess::Poisson {
            rate_per_s: 50_000.0,
        });
        scenario.service = crate::scenario::ServiceModel {
            base_us: 150,
            per_request_us: 40,
        };
        let trace = TraceRecorder::new(&scenario).record().unwrap();
        let colocated = FleetPolicy {
            per_fabric: scenario.policy,
            hosted: vec![vec![0, 1], vec![0, 1]],
            tenant_weights: Vec::new(),
        };
        let dedicated = FleetPolicy {
            per_fabric: scenario.policy,
            hosted: vec![vec![0], vec![1]],
            tenant_weights: Vec::new(),
        };
        let fleet = simulate_fleet(&trace, &colocated, scenario.service);
        let split = simulate_fleet(&trace, &dedicated, scenario.service);
        assert!(
            fleet.aggregate.makespan_us < split.aggregate.makespan_us,
            "co-located {} >= dedicated {}",
            fleet.aggregate.makespan_us,
            split.aggregate.makespan_us
        );
    }

    #[test]
    fn sparse_arrivals_never_start_service_before_they_arrive() {
        // max_batch = 1 makes a single queued request count-full, so a
        // fabric is "ready" at any instant once something is admitted.
        // Sparse arrivals leave the workers free long before each event:
        // before admission advanced the global clock, the pop happened at
        // the stale clock, service started before the arrival, and
        // `finish - at_us` underflowed (a debug panic; wrapped, huge
        // latencies in release).
        let trace = Trace {
            scenario: "sparse".into(),
            seed: 0,
            events: (0..10u64)
                .map(|i| TraceEvent {
                    at_us: 10_000 * (i + 1),
                    tenant: (i % 2) as u16,
                    model: 0,
                    group: i as u32,
                })
                .collect(),
        };
        let mut per_fabric = Scenario::steady("sparse", "m", 1, 1).policy;
        per_fabric.max_batch = 1;
        let policy = FleetPolicy {
            per_fabric,
            hosted: vec![vec![0]],
            tenant_weights: Vec::new(),
        };
        let service = crate::scenario::ServiceModel {
            base_us: 50,
            per_request_us: 10,
        };
        let replay = simulate_fleet(&trace, &policy, service);
        assert_eq!(replay.aggregate.stats.completed, 10);
        // Each request is served alone the moment it arrives, so every
        // latency is exactly one single-request service time — nothing
        // negative, nothing wrapped.
        assert_eq!(replay.aggregate.stats.max_latency_us(), service.batch_us(1));
        // Makespan runs from the first arrival (10ms) to the last finish
        // (100ms + one service), never from the stale virtual t=0.
        assert_eq!(
            replay.aggregate.makespan_us,
            90_000 + service.batch_us(1),
            "service must not start before the arrival clock"
        );
    }

    #[test]
    fn unhosted_models_degrade_to_shared_routing_instead_of_dropping() {
        let scenario = zoo_scenario(120);
        let trace = TraceRecorder::new(&scenario).record().unwrap();
        // Model 1 is hosted nowhere: it still routes (across all fabrics).
        let policy = FleetPolicy {
            per_fabric: scenario.policy,
            hosted: vec![vec![0]],
            tenant_weights: Vec::new(),
        };
        let replay = simulate_fleet(&trace, &policy, scenario.service);
        assert_eq!(replay.aggregate.stats.completed, 120);
    }

    #[test]
    fn traced_replay_exports_are_byte_identical_and_results_unperturbed() {
        let scenario = Scenario::steady("traced", "m", 11, 300).with_batch_mix(vec![(2, 1.0)]);
        let trace = TraceRecorder::new(&scenario).record().unwrap();

        let run = || {
            let tracer = fpsa_obs::Tracer::new();
            tracer.set_mode(fpsa_obs::Mode::Full);
            let replay = simulate_traced(&trace, scenario.policy, scenario.service, &tracer);
            (
                replay,
                fpsa_obs::export::chrome_trace_json(&tracer.events()),
            )
        };
        let (first, json_a) = run();
        let (second, json_b) = run();
        // Tracing only observes: the replay matches the untraced run.
        assert_eq!(first, simulate(&trace, scenario.policy, scenario.service));
        assert_eq!(first, second);
        // Virtual clock + fresh tracer → the export is a pure function of
        // the trace: identical bytes on every run.
        assert_eq!(json_a, json_b);
        assert!(json_a.contains("\"name\":\"execute\""));
        assert!(json_a.contains("\"name\":\"respond\""));
        // Every request opens and closes: begins balance ends.
        assert_eq!(
            json_a.matches("\"ph\":\"b\"").count(),
            json_a.matches("\"ph\":\"e\"").count()
        );
    }

    #[test]
    fn traced_fleet_replay_exports_are_byte_identical() {
        let scenario = zoo_scenario(200);
        let trace = TraceRecorder::new(&scenario).record().unwrap();
        let policy = FleetPolicy {
            per_fabric: scenario.policy,
            hosted: vec![vec![0, 1], vec![0, 1]],
            tenant_weights: vec![(1, 3)],
        };
        let run = || {
            let tracer = fpsa_obs::Tracer::new();
            tracer.set_mode(fpsa_obs::Mode::Full);
            let replay = simulate_fleet_traced(&trace, &policy, scenario.service, &tracer);
            (
                replay,
                fpsa_obs::export::chrome_trace_json(&tracer.events()),
            )
        };
        let (first, json_a) = run();
        let (second, json_b) = run();
        assert_eq!(first, simulate_fleet(&trace, &policy, scenario.service));
        assert_eq!(first, second);
        assert_eq!(json_a, json_b);
        assert!(json_a.contains("\"fabric\""));
    }

    #[test]
    fn empty_traces_short_circuit() {
        let trace = Trace {
            scenario: "empty".into(),
            seed: 0,
            events: Vec::new(),
        };
        let scenario = Scenario::steady("empty", "m", 1, 1);
        let result = simulate(&trace, scenario.policy, scenario.service);
        assert_eq!(result, VirtualReplay::empty());
    }
}
