//! The deterministic virtual-time replay clock.
//!
//! Wall-clock serving measurements depend on thread scheduling, CPU load
//! and timer resolution — none of which belongs in a CI pin. Following the
//! record → simulate → report methodology (measure against a model you can
//! hold fixed, not an ad-hoc probe), [`simulate`] replays a recorded
//! [`Trace`] through the *real* [`DynamicBatcher`] state machine — the same
//! pure, clock-free admission discipline the serving engines run — under a
//! discrete-event virtual clock: arrivals land at their trace timestamps,
//! ready batches are claimed by the earliest-free of `replicas` virtual
//! workers, and each batch occupies its worker for the scenario's
//! [`ServiceModel`] cost. Everything is integer microseconds, the
//! simulation is single-threaded, and ties break by index — so the
//! resulting [`ServeStats`] (built through the engine's own recording
//! methods, bucket for bucket) is **identical across runs, host thread
//! counts and real-engine replica configurations**, which is exactly the
//! property the phase-sampling tolerance pin and the determinism suite
//! stand on.

use crate::scenario::{ReplayPolicy, ServiceModel};
use crate::trace::Trace;
use fpsa_serve::{BatchPolicy, DynamicBatcher, ServeStats};
use serde::{Deserialize, Serialize};

/// The result of one virtual-time replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VirtualReplay {
    /// Engine-contract statistics accumulated under the virtual clock
    /// (deterministic: identical across runs and thread counts).
    pub stats: ServeStats,
    /// Virtual time from the first arrival to the last batch completion.
    pub makespan_us: u64,
    /// Requests per *virtual* second: `requests / makespan`.
    pub throughput_rps: f64,
}

impl VirtualReplay {
    fn empty() -> VirtualReplay {
        VirtualReplay {
            stats: ServeStats::default(),
            makespan_us: 0,
            throughput_rps: 0.0,
        }
    }
}

/// Replay `trace` under the virtual clock (see the module docs).
pub fn simulate(trace: &Trace, policy: ReplayPolicy, service: ServiceModel) -> VirtualReplay {
    if trace.is_empty() {
        return VirtualReplay::empty();
    }
    let mut batcher: DynamicBatcher<usize> =
        DynamicBatcher::new(BatchPolicy::new(policy.max_batch, policy.window_us));
    let mut stats = ServeStats::default();
    let mut free = vec![0u64; policy.replicas.max(1)];
    let events = &trace.events;
    let mut next = 0usize;
    let mut last_finish = 0u64;
    // The global simulation clock: monotone, so a replica that frees up
    // early can never claim a batch "before" arrivals the simulation has
    // already admitted (which would send a latency negative).
    let mut clock = 0u64;

    while next < events.len() || !batcher.is_empty() {
        // The earliest-free virtual worker claims the next batch (ties by
        // worker index) — the deterministic mirror of "whichever replica
        // frees up first".
        let (worker, worker_free) = free
            .iter()
            .copied()
            .enumerate()
            .min_by_key(|&(i, t)| (t, i))
            .expect("replicas >= 1");
        let mut now = worker_free.max(clock);
        loop {
            // Arrivals up to the candidate instant join the queue first, so
            // simultaneity resolves identically on every run.
            while next < events.len() && events[next].at_us <= now {
                stats.submitted += 1;
                batcher.push(next, events[next].at_us);
                stats.record_queue_depth(batcher.len());
                next += 1;
            }
            if batcher.ready(now) {
                break;
            }
            // Advance to the next interesting instant: the oldest entry's
            // deadline or the next arrival. Both are > now (arrivals <= now
            // are already pushed; an expired deadline implies ready).
            now = match (batcher.next_deadline_us(), events.get(next)) {
                (Some(deadline), Some(event)) => deadline.min(event.at_us),
                (Some(deadline), None) => deadline,
                (None, Some(event)) => event.at_us,
                (None, None) => return finishize(stats, events.len(), last_finish),
            }
            .max(now);
        }
        let batch = batcher.pop_ready(now).expect("checked ready");
        clock = now;
        let finish = now + service.batch_us(batch.len());
        free[worker] = finish;
        last_finish = last_finish.max(finish);
        stats.record_batch(batch.len(), true);
        for index in batch {
            stats.record_latency(finish - events[index].at_us);
        }
    }
    finishize(stats, events.len(), last_finish)
}

fn finishize(stats: ServeStats, requests: usize, last_finish: u64) -> VirtualReplay {
    let makespan_us = last_finish;
    VirtualReplay {
        stats,
        makespan_us,
        throughput_rps: requests as f64 / (makespan_us.max(1) as f64 / 1_000_000.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ArrivalProcess, Scenario};
    use crate::trace::TraceRecorder;

    fn replay(scenario: &Scenario) -> VirtualReplay {
        let trace = TraceRecorder::new(scenario).record();
        simulate(&trace, scenario.policy, scenario.service)
    }

    #[test]
    fn every_request_completes_exactly_once() {
        let scenario =
            Scenario::steady("sim", "m", 3, 777).with_batch_mix(vec![(1, 1.0), (3, 1.0)]);
        let result = replay(&scenario);
        assert_eq!(result.stats.submitted, 777);
        assert_eq!(result.stats.completed, 777);
        assert_eq!(result.stats.failed + result.stats.rejected, 0);
        assert_eq!(
            result.stats.latency_hist.iter().sum::<u64>(),
            777,
            "one latency sample per request"
        );
        assert!(result.makespan_us > 0);
        assert!(result.throughput_rps > 0.0);
    }

    #[test]
    fn simulation_is_bit_deterministic() {
        for arrival in [
            ArrivalProcess::Poisson {
                rate_per_s: 3_000.0,
            },
            ArrivalProcess::AdversarialClosedLoop {
                clients: 8,
                think_us: 25,
                barrier_us: 400,
            },
        ] {
            let scenario = Scenario::steady("det", "m", 5, 600).with_arrival(arrival);
            assert_eq!(replay(&scenario), replay(&scenario));
        }
    }

    #[test]
    fn batches_respect_the_policy_and_windows_bound_latency() {
        let mut scenario = Scenario::steady("bound", "m", 9, 400);
        scenario.policy.max_batch = 4;
        scenario.policy.window_us = 300;
        let result = replay(&scenario);
        assert!(result.stats.largest_batch <= 4);
        // Under an uncongested open-loop load, no request waits much past
        // its window plus one service round.
        let worst =
            scenario.policy.window_us + 4 * scenario.service.batch_us(scenario.policy.max_batch);
        assert!(
            result.stats.max_latency_us <= worst,
            "max latency {} > bound {worst}",
            result.stats.max_latency_us
        );
    }

    #[test]
    fn more_replicas_never_hurt_virtual_throughput() {
        let mut slow = Scenario::steady("one", "m", 21, 800);
        slow.service = crate::scenario::ServiceModel {
            base_us: 200,
            per_request_us: 50,
        };
        slow.policy.replicas = 1;
        let mut fast = slow.clone();
        fast.policy.replicas = 4;
        let one = replay(&slow);
        let four = replay(&fast);
        assert!(
            four.makespan_us <= one.makespan_us,
            "4 replicas {} > 1 replica {}",
            four.makespan_us,
            one.makespan_us
        );
    }

    #[test]
    fn empty_traces_short_circuit() {
        let trace = Trace {
            scenario: "empty".into(),
            seed: 0,
            events: Vec::new(),
        };
        let scenario = Scenario::steady("empty", "m", 1, 1);
        let result = simulate(&trace, scenario.policy, scenario.service);
        assert_eq!(result, VirtualReplay::empty());
    }
}
