//! Materializing scenarios into explicit, replayable event traces.
//!
//! A [`TraceRecorder`] turns a [`Scenario`] into a [`Trace`]: one
//! [`TraceEvent`] per request, each stamped with its virtual arrival time,
//! tenant, model and arrival group (requests of one group are a client batch
//! submitted back-to-back at the same instant). Every stochastic draw is
//! seeded through `fpsa_nn::seeds::derive`, each consumer on its own stream
//! (`STREAM_ARRIVAL` for the arrival process, `STREAM_MIX` for
//! tenant/model/batch-size selection, `STREAM_REQUEST` for per-request input
//! features), so recording the same scenario twice yields the identical
//! trace, and any request's input vector can be regenerated from its trace
//! index alone — no stream scanning, no cross-contamination when one
//! component adds draws.

use crate::scenario::{ArrivalProcess, Scenario, ScenarioParseError};
use fpsa_nn::seeds;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One request arrival in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Virtual arrival time, microseconds from trace start.
    pub at_us: u64,
    /// Index into the scenario's tenant mix.
    pub tenant: u16,
    /// Index into the scenario's model mix.
    pub model: u16,
    /// Arrival-group id: requests sharing a group are one client batch.
    pub group: u32,
}

/// An explicit event trace: the materialized form of a scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Name of the scenario this trace was recorded from.
    pub scenario: String,
    /// The base seed the trace (and its request inputs) derive from.
    pub seed: u64,
    /// Arrival events in non-decreasing `at_us` order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Number of requests.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace holds no requests.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Virtual time spanned by the arrivals (last minus first), µs.
    pub fn duration_us(&self) -> u64 {
        match (self.events.first(), self.events.last()) {
            (Some(first), Some(last)) => last.at_us - first.at_us,
            _ => 0,
        }
    }

    /// The input vector for the request at trace position `index`: uniform
    /// `[0, 1)` features from `StdRng(derive(seed, STREAM_REQUEST, index))`
    /// — regenerable without scanning the stream, identical on every
    /// replay.
    pub fn input_for(&self, index: usize, input_len: usize) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seeds::derive(
            self.seed,
            seeds::STREAM_REQUEST,
            index as u64,
        ));
        (0..input_len).map(|_| rng.gen_range(0.0f32..1.0)).collect()
    }

    /// A 64-bit FNV-1a digest over every event field — a cheap identity for
    /// determinism pins and reports.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        eat(self.seed);
        eat(self.events.len() as u64);
        for e in &self.events {
            eat(e.at_us);
            eat(u64::from(e.tenant));
            eat(u64::from(e.model));
            eat(u64::from(e.group));
        }
        h
    }

    /// Clone the events in `range` rebased so the slice's first arrival is
    /// at virtual time 0 — the unit the phase clusterer replays. An empty
    /// range yields an empty trace (same scenario and seed, no events).
    pub fn slice_rebased(&self, range: std::ops::Range<usize>) -> Trace {
        if range.is_empty() {
            return Trace {
                scenario: self.scenario.clone(),
                seed: self.seed,
                events: Vec::new(),
            };
        }
        let base = self.events[range.start].at_us;
        Trace {
            scenario: self.scenario.clone(),
            seed: self.seed,
            events: self.events[range]
                .iter()
                .map(|e| TraceEvent {
                    at_us: e.at_us - base,
                    ..*e
                })
                .collect(),
        }
    }
}

/// Draw an index from a cumulative-weight table.
fn draw_weighted(rng: &mut StdRng, cumulative: &[f64]) -> usize {
    let total = *cumulative.last().expect("non-empty mix");
    let x = rng.gen_range(0.0f64..total);
    cumulative
        .iter()
        .position(|&c| x < c)
        .unwrap_or(cumulative.len() - 1)
}

fn cumulative(weights: impl Iterator<Item = f64>) -> Vec<f64> {
    let mut acc = 0.0;
    weights
        .map(|w| {
            acc += w;
            acc
        })
        .collect()
}

/// Materializes scenarios into traces (see the module docs).
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    scenario: Scenario,
}

impl TraceRecorder {
    /// A recorder for `scenario`.
    pub fn new(scenario: &Scenario) -> TraceRecorder {
        TraceRecorder {
            scenario: scenario.clone(),
        }
    }

    /// Record the scenario into an explicit trace of exactly
    /// `scenario.requests` events. Deterministic: same scenario + seed,
    /// same trace, bit for bit.
    ///
    /// # Errors
    ///
    /// [`Scenario::validate`]'s error when the scenario is degenerate.
    /// Builder-constructed scenarios never went through the `parse` path,
    /// so this is where e.g. an all-zero mix weight surfaces as a typed
    /// error instead of a `gen_range(0.0..0.0)` panic deep in the sampler.
    pub fn record(&self) -> Result<Trace, ScenarioParseError> {
        self.scenario.validate()?;
        let s = &self.scenario;
        let mut mix_rng = [
            StdRng::seed_from_u64(seeds::derive(s.seed, seeds::STREAM_MIX, 0)),
            StdRng::seed_from_u64(seeds::derive(s.seed, seeds::STREAM_MIX, 1)),
            StdRng::seed_from_u64(seeds::derive(s.seed, seeds::STREAM_MIX, 2)),
        ];
        let tenant_cum = cumulative(s.tenants.iter().map(|e| e.weight));
        let model_cum = cumulative(s.models.iter().map(|e| e.weight));
        let batch_cum = cumulative(s.batch_mix.iter().map(|&(_, w)| w));

        let mut events = Vec::with_capacity(s.requests);
        for (group, at_us) in self.arrival_times().enumerate() {
            if events.len() >= s.requests {
                break;
            }
            let tenant = draw_weighted(&mut mix_rng[0], &tenant_cum) as u16;
            let model = draw_weighted(&mut mix_rng[1], &model_cum) as u16;
            let size = s.batch_mix[draw_weighted(&mut mix_rng[2], &batch_cum)].0;
            for _ in 0..size.min(s.requests - events.len()) {
                events.push(TraceEvent {
                    at_us,
                    tenant,
                    model,
                    group: group as u32,
                });
            }
        }
        Ok(Trace {
            scenario: s.name.clone(),
            seed: s.seed,
            events,
        })
    }

    /// The (unbounded) arrival-time stream for the scenario's process, in
    /// virtual microseconds. One yielded instant is one arrival *group*.
    fn arrival_times(&self) -> Box<dyn Iterator<Item = u64> + '_> {
        let s = &self.scenario;
        let mut rng = StdRng::seed_from_u64(seeds::derive(s.seed, seeds::STREAM_ARRIVAL, 0));
        match s.arrival {
            ArrivalProcess::Poisson { rate_per_s } => {
                let mut t = 0.0f64;
                Box::new(std::iter::repeat_with(move || {
                    t += exponential_gap_us(&mut rng, rate_per_s);
                    t as u64
                }))
            }
            ArrivalProcess::Bursty { period_us, burst } => {
                Box::new((0u64..).flat_map(move |k| std::iter::repeat_n(k * period_us, burst)))
            }
            ArrivalProcess::Diurnal {
                base_rate_per_s,
                peak_rate_per_s,
                period_us,
            } => {
                // Thinning: candidates at the peak rate, accepted with
                // probability λ(t)/λ_peak where λ swings sinusoidally.
                let mut accept =
                    StdRng::seed_from_u64(seeds::derive(s.seed, seeds::STREAM_ARRIVAL, 1));
                let mut t = 0.0f64;
                Box::new(std::iter::from_fn(move || loop {
                    t += exponential_gap_us(&mut rng, peak_rate_per_s);
                    let phase = (t / period_us as f64) * std::f64::consts::TAU;
                    let lambda = base_rate_per_s
                        + (peak_rate_per_s - base_rate_per_s) * 0.5 * (1.0 - phase.cos());
                    if accept.gen_range(0.0f64..1.0) < lambda / peak_rate_per_s {
                        return Some(t as u64);
                    }
                }))
            }
            ArrivalProcess::AdversarialClosedLoop {
                clients,
                think_us,
                barrier_us,
            } => {
                // Each client submits, waits for its (approximated, FIFO
                // single-server) completion plus think time, then holds
                // until the next barrier — the herd re-synchronizes into
                // simultaneous bursts. Fully deterministic.
                let service = s.service;
                let mut next: Vec<u64> = (0..clients).map(|_| 0).collect();
                let mut server_free = 0u64;
                Box::new(std::iter::from_fn(move || {
                    let (client, &at) = next
                        .iter()
                        .enumerate()
                        .min_by_key(|&(i, &t)| (t, i))
                        .expect("clients >= 1 validated");
                    let done = server_free.max(at) + service.batch_us(1);
                    server_free = done;
                    let ready = done + think_us;
                    next[client] = ready.div_ceil(barrier_us) * barrier_us;
                    Some(at)
                }))
            }
        }
    }
}

/// One exponential inter-arrival gap at `rate_per_s`, in microseconds.
fn exponential_gap_us(rng: &mut StdRng, rate_per_s: f64) -> f64 {
    let u: f64 = rng.gen_range(0.0f64..1.0);
    -(1.0 - u).ln() / rate_per_s * 1_000_000.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::MixEntry;

    fn scenario() -> Scenario {
        Scenario::steady("trace-test", "m", 11, 500)
            .with_batch_mix(vec![(1, 0.5), (4, 0.5)])
            .with_tenants(vec![
                MixEntry {
                    name: "a".into(),
                    weight: 1.0,
                },
                MixEntry {
                    name: "b".into(),
                    weight: 2.0,
                },
            ])
    }

    #[test]
    fn recording_is_deterministic_and_exactly_sized() {
        let a = TraceRecorder::new(&scenario()).record().unwrap();
        let b = TraceRecorder::new(&scenario()).record().unwrap();
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.len(), 500);
        let mut reseeded = scenario();
        reseeded.seed = 12;
        let c = TraceRecorder::new(&reseeded).record().unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn arrivals_are_monotone_and_groups_cohere() {
        for arrival in [
            ArrivalProcess::Poisson {
                rate_per_s: 5_000.0,
            },
            ArrivalProcess::Bursty {
                period_us: 300,
                burst: 4,
            },
            ArrivalProcess::Diurnal {
                base_rate_per_s: 500.0,
                peak_rate_per_s: 8_000.0,
                period_us: 20_000,
            },
            ArrivalProcess::AdversarialClosedLoop {
                clients: 6,
                think_us: 40,
                barrier_us: 250,
            },
        ] {
            let trace = TraceRecorder::new(&scenario().with_arrival(arrival.clone()))
                .record()
                .unwrap();
            assert_eq!(trace.len(), 500, "{arrival:?}");
            for pair in trace.events.windows(2) {
                assert!(pair[0].at_us <= pair[1].at_us, "{arrival:?} not monotone");
                if pair[0].group == pair[1].group {
                    assert_eq!(pair[0].at_us, pair[1].at_us);
                    assert_eq!(pair[0].tenant, pair[1].tenant);
                    assert_eq!(pair[0].model, pair[1].model);
                }
            }
        }
    }

    #[test]
    fn tenant_mix_weights_are_respected() {
        let trace = TraceRecorder::new(&scenario()).record().unwrap();
        let b_share =
            trace.events.iter().filter(|e| e.tenant == 1).count() as f64 / trace.len() as f64;
        assert!(
            (b_share - 2.0 / 3.0).abs() < 0.15,
            "tenant b share {b_share} far from 2/3"
        );
    }

    #[test]
    fn inputs_are_regenerable_per_index() {
        let trace = TraceRecorder::new(&scenario()).record().unwrap();
        let x = trace.input_for(42, 16);
        assert_eq!(x.len(), 16);
        assert_eq!(x, trace.input_for(42, 16));
        assert_ne!(x, trace.input_for(43, 16));
        assert!(x.iter().all(|v| (0.0..1.0).contains(v)));
    }

    #[test]
    fn rebased_slices_start_at_zero_and_preserve_gaps() {
        let trace = TraceRecorder::new(&scenario()).record().unwrap();
        let slice = trace.slice_rebased(100..200);
        assert_eq!(slice.len(), 100);
        assert_eq!(slice.events[0].at_us, 0);
        for (a, b) in trace.events[100..200]
            .windows(2)
            .zip(slice.events.windows(2))
        {
            assert_eq!(a[1].at_us - a[0].at_us, b[1].at_us - b[0].at_us);
        }
    }

    #[test]
    fn empty_slices_rebase_to_empty_traces() {
        let trace = TraceRecorder::new(&scenario()).record().unwrap();
        for range in [0..0, 250..250, trace.len()..trace.len()] {
            let empty = trace.slice_rebased(range);
            assert!(empty.is_empty());
            assert_eq!(empty.scenario, trace.scenario);
            assert_eq!(empty.seed, trace.seed);
        }
    }

    #[test]
    fn zero_weight_mixes_are_a_typed_error_not_a_panic() {
        let mut degenerate = scenario();
        for entry in &mut degenerate.tenants {
            entry.weight = 0.0;
        }
        let err = TraceRecorder::new(&degenerate).record().unwrap_err();
        assert!(err.message.contains("weights must be > 0"), "{err}");
        assert_eq!(err.line, 0);
    }

    #[test]
    fn adversarial_closed_loop_resynchronizes_on_the_barrier() {
        let trace = TraceRecorder::new(&scenario().with_arrival(
            ArrivalProcess::AdversarialClosedLoop {
                clients: 4,
                think_us: 30,
                barrier_us: 500,
            },
        ))
        .record()
        .unwrap();
        // After the initial herd at t=0, every arrival lands on a barrier
        // multiple — the re-synchronized thundering pattern.
        assert!(trace.events.iter().all(|e| e.at_us % 500 == 0));
    }
}
