//! Per-scenario report rendering.
//!
//! The workload bench writes one markdown and one JSON report per checked-in
//! scenario; this module renders the *strings* and leaves filesystem
//! placement to the caller (the bench harness knows where artifacts live,
//! the library should not). The JSON is hand-rendered — the vendored serde
//! facade pretty-prints Rust debug structs, which is fine for inspection but
//! not for the CI job that parses `BENCH_workload.json` with a real JSON
//! parser — so every emitter here produces strict JSON by construction.

use crate::phases::{PhasePlan, PhasedReplay, THROUGHPUT_TOLERANCE};
use crate::scenario::Scenario;
use crate::sim::VirtualReplay;
use crate::trace::Trace;

/// One scenario's rendered artifacts.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Human-readable summary table (`target/experiment-data/workload/<name>.md`).
    pub markdown: String,
    /// Strict JSON record (`target/experiment-data/workload/<name>.json`).
    pub json: String,
}

/// Format an `f64` as a strict-JSON number (no `inf`/`NaN` leakage: the
/// replay pipeline produces finite values by construction, but clamp anyway
/// so a report can never poison the CI parser).
pub fn json_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.6}")
    } else {
        "0.0".to_string()
    }
}

/// Escape a string for a JSON literal (names come from scenario files).
pub fn json_str(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render one scenario's full-trace vs phase-sampled comparison.
pub fn scenario_report(
    scenario: &Scenario,
    trace: &Trace,
    full: &VirtualReplay,
    plan: &PhasePlan,
    phased: &PhasedReplay,
) -> ScenarioReport {
    let full_p50 = full.stats.latency_percentile_us(0.5);
    let full_p99 = full.stats.latency_percentile_us(0.99);
    let phased_p50 = phased.latency_percentile_us(0.5);
    let phased_p99 = phased.latency_percentile_us(0.99);
    let rel_err =
        (phased.throughput_rps - full.throughput_rps).abs() / full.throughput_rps.max(1e-9);

    let mut markdown = String::new();
    markdown.push_str(&format!("# Workload scenario `{}`\n\n", scenario.name));
    markdown.push_str(&format!(
        "{} requests, seed {}, arrival `{:?}`, trace fingerprint `{:016x}`.\n\n",
        trace.len(),
        scenario.seed,
        scenario.arrival,
        trace.fingerprint()
    ));
    markdown.push_str("| metric | full replay | phase-sampled | note |\n");
    markdown.push_str("|---|---:|---:|---|\n");
    markdown.push_str(&format!(
        "| throughput (req/s) | {:.0} | {:.0} | rel err {:.1}% (tol {:.0}%) |\n",
        full.throughput_rps,
        phased.throughput_rps,
        rel_err * 100.0,
        THROUGHPUT_TOLERANCE * 100.0
    ));
    markdown.push_str(&format!(
        "| p50 latency (µs) | {full_p50} | {phased_p50} | within one bucket |\n"
    ));
    markdown.push_str(&format!(
        "| p99 latency (µs) | {full_p99} | {phased_p99} | within one bucket |\n"
    ));
    markdown.push_str(&format!(
        "| events simulated | {} | {} | {:.1}% of trace |\n",
        plan.total_events,
        plan.sampled_events,
        plan.sampled_fraction() * 100.0
    ));
    markdown.push_str(&format!(
        "\n{} phases over {} windows of {} events:\n\n",
        plan.phases.len(),
        plan.windows,
        plan.window_events
    ));
    markdown.push_str("| phase | representative events | windows | events covered | weight |\n");
    markdown.push_str("|---:|---|---:|---:|---:|\n");
    for (i, phase) in plan.phases.iter().enumerate() {
        markdown.push_str(&format!(
            "| {} | {}..{} | {} | {} | {:.2} |\n",
            i,
            phase.representative.start,
            phase.representative.end,
            phase.windows,
            phase.events,
            phase.weight
        ));
    }

    let phases_json: Vec<String> = plan
        .phases
        .iter()
        .map(|p| {
            format!(
                "{{\"representative_start\": {}, \"representative_end\": {}, \"windows\": {}, \"events\": {}, \"weight\": {}}}",
                p.representative.start,
                p.representative.end,
                p.windows,
                p.events,
                json_f64(p.weight)
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"scenario\": {},\n  \"seed\": {},\n  \"requests\": {},\n  \"trace_fingerprint\": {},\n  \"trace_duration_us\": {},\n  \"full\": {{\"throughput_rps\": {}, \"p50_us\": {full_p50}, \"p99_us\": {full_p99}, \"max_latency_us\": {}, \"makespan_us\": {}, \"batches\": {}, \"largest_batch\": {}}},\n  \"phased\": {{\"throughput_rps\": {}, \"p50_us\": {phased_p50}, \"p99_us\": {phased_p99}, \"sampled_events\": {}, \"sampled_fraction\": {}, \"throughput_rel_err\": {}}},\n  \"phases\": [{}]\n}}\n",
        json_str(&scenario.name),
        scenario.seed,
        trace.len(),
        trace.fingerprint(),
        trace.duration_us(),
        json_f64(full.throughput_rps),
        full.stats.max_latency_us(),
        full.makespan_us,
        full.stats.batches,
        full.stats.largest_batch(),
        json_f64(phased.throughput_rps),
        phased.sampled_events,
        json_f64(plan.sampled_fraction()),
        json_f64(rel_err),
        phases_json.join(", ")
    );
    ScenarioReport { markdown, json }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phases::{plan, simulate_phased, PhaseConfig};
    use crate::sim::simulate;
    use crate::trace::TraceRecorder;

    fn report() -> ScenarioReport {
        let scenario = Scenario::steady("report \"quoted\"", "m", 17, 3_000);
        let trace = TraceRecorder::new(&scenario).record().unwrap();
        let full = simulate(&trace, scenario.policy, scenario.service);
        let p = plan(
            &trace,
            PhaseConfig {
                window_events: 512,
                ..PhaseConfig::default()
            },
        );
        let phased = simulate_phased(&trace, &p, scenario.policy, scenario.service);
        scenario_report(&scenario, &trace, &full, &p, &phased)
    }

    #[test]
    fn json_is_strictly_balanced_and_escaped() {
        let r = report();
        let mut depth: i64 = 0;
        let mut in_string = false;
        let mut escaped = false;
        for c in r.json.chars() {
            if in_string {
                match (escaped, c) {
                    (true, _) => escaped = false,
                    (false, '\\') => escaped = true,
                    (false, '"') => in_string = false,
                    _ => {}
                }
                continue;
            }
            match c {
                '"' => in_string = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced json:\n{}", r.json);
        }
        assert_eq!(depth, 0, "unbalanced json:\n{}", r.json);
        assert!(r.json.contains("\"report \\\"quoted\\\"\""));
        assert!(r.json.contains("\"throughput_rps\""));
        assert!(!r.json.contains("inf") && !r.json.contains("NaN"));
    }

    #[test]
    fn markdown_carries_the_headline_numbers() {
        let r = report();
        assert!(r.markdown.contains("# Workload scenario"));
        assert!(r.markdown.contains("| throughput (req/s) |"));
        assert!(r.markdown.contains("| p99 latency (µs) |"));
        assert!(r.markdown.contains("phases over"));
    }

    #[test]
    fn json_f64_never_emits_non_finite_literals() {
        assert_eq!(json_f64(f64::INFINITY), "0.0");
        assert_eq!(json_f64(f64::NAN), "0.0");
        assert_eq!(json_f64(1.5), "1.500000");
    }
}
