//! SimPoint-style phase sampling for long traces.
//!
//! Long serving traces are repetitive: a diurnal day is mostly "trough",
//! "climb" and "peak" repeated, and simulating every window of a 100k-request
//! trace re-measures the same behavior hundreds of times. Borrowing the
//! SimPoint playbook from architecture simulation, [`plan`] slices a trace
//! into fixed-event-count windows, fingerprints each window by a small
//! feature vector (arrival rate, mean client-batch size, tenant mix, model
//! mix), clusters the windows with deterministic seeded k-means, and picks
//! one *representative* window per cluster weighted by how many events its
//! cluster covers. [`simulate_phased`] then replays only the representatives
//! under the virtual clock and merges their histograms by weight —
//! reproducing full-trace throughput and latency percentiles within
//! [`THROUGHPUT_TOLERANCE`] / [`PERCENTILE_TOLERANCE_FACTOR`] at a fraction
//! of the events simulated. Every draw is seeded through
//! `seeds::derive(seed, STREAM_PHASE, _)`, so the plan is a pure function of
//! the trace.

use crate::scenario::{ReplayPolicy, ServiceModel};
use crate::sim::{simulate, VirtualReplay};
use crate::trace::Trace;
use fpsa_nn::seeds;
use fpsa_serve::STATS_BUCKETS;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Maximum relative error phase-sampled throughput may show against the
/// full-trace replay (pinned in CI by the phase-sampling release test).
pub const THROUGHPUT_TOLERANCE: f64 = 0.15;

/// Phase-sampled p50/p99 must agree with the full replay within one
/// histogram bucket — a factor of this, either direction.
pub const PERCENTILE_TOLERANCE_FACTOR: f64 = 2.0;

/// Knobs for the phase clusterer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseConfig {
    /// Events per window (the slicing granularity).
    pub window_events: usize,
    /// Target number of phases (clamped to the window count).
    pub clusters: usize,
    /// Lloyd iterations after k-means++ seeding.
    pub iterations: usize,
}

impl Default for PhaseConfig {
    fn default() -> PhaseConfig {
        PhaseConfig {
            window_events: 1024,
            clusters: 4,
            iterations: 25,
        }
    }
}

/// One phase: a representative window standing in for its whole cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Event range of the representative window within the source trace.
    pub representative: Range<usize>,
    /// Windows this phase covers.
    pub windows: usize,
    /// Events this phase covers across all its windows.
    pub events: u64,
    /// Merge weight: cluster events over representative events.
    pub weight: f64,
}

/// The clusterer's output: which slices to replay, at what weight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhasePlan {
    /// Events in the source trace.
    pub total_events: u64,
    /// Events actually replayed (sum of representative window sizes).
    pub sampled_events: u64,
    /// Number of windows the trace was sliced into.
    pub windows: usize,
    /// The slicing granularity used.
    pub window_events: usize,
    /// One entry per non-empty cluster.
    pub phases: Vec<Phase>,
}

impl PhasePlan {
    /// Fraction of trace events the plan replays (the speedup lever: the
    /// phase-sampling pin requires this ≤ 1/10 on long traces).
    pub fn sampled_fraction(&self) -> f64 {
        self.sampled_events as f64 / (self.total_events as f64).max(1.0)
    }
}

/// Slice, fingerprint and cluster `trace` (see the module docs).
/// Deterministic: a pure function of the trace and config.
pub fn plan(trace: &Trace, config: PhaseConfig) -> PhasePlan {
    let window_events = config.window_events.max(1);
    let ranges: Vec<Range<usize>> = (0..trace.len())
        .step_by(window_events)
        .map(|start| start..(start + window_events).min(trace.len()))
        .collect();
    if ranges.is_empty() {
        return PhasePlan {
            total_events: 0,
            sampled_events: 0,
            windows: 0,
            window_events,
            phases: Vec::new(),
        };
    }
    let features = normalize(ranges.iter().map(|r| window_features(trace, r)).collect());
    let k = config.clusters.clamp(1, ranges.len());
    let assignment = kmeans(&features, k, config.iterations, trace.seed);

    let mut phases = Vec::with_capacity(k);
    let mut sampled_events = 0u64;
    for cluster in 0..k {
        let members: Vec<usize> = (0..ranges.len())
            .filter(|&w| assignment.labels[w] == cluster)
            .collect();
        if members.is_empty() {
            continue;
        }
        // Representative: the member window nearest the centroid (ties by
        // window index, so the plan never depends on float reduction order).
        let representative = *members
            .iter()
            .min_by(|&&a, &&b| {
                let da = distance_sq(&features[a], &assignment.centroids[cluster]);
                let db = distance_sq(&features[b], &assignment.centroids[cluster]);
                da.partial_cmp(&db).unwrap().then(a.cmp(&b))
            })
            .expect("non-empty cluster");
        let events: u64 = members.iter().map(|&w| ranges[w].len() as u64).sum();
        let rep_events = ranges[representative].len() as u64;
        sampled_events += rep_events;
        phases.push(Phase {
            representative: ranges[representative].clone(),
            windows: members.len(),
            events,
            weight: events as f64 / rep_events as f64,
        });
    }
    PhasePlan {
        total_events: trace.len() as u64,
        sampled_events,
        windows: ranges.len(),
        window_events,
        phases,
    }
}

/// Per-window feature vector: [arrival rate (req/s), mean client-batch
/// size, tenant fractions.., model fractions..]. Tenant/model dimensionality
/// comes from the trace's largest index so every window agrees.
fn window_features(trace: &Trace, range: &Range<usize>) -> Vec<f64> {
    let events = &trace.events[range.clone()];
    let n = events.len() as f64;
    let tenants = 1 + usize::from(trace.events.iter().map(|e| e.tenant).max().unwrap_or(0));
    let models = 1 + usize::from(trace.events.iter().map(|e| e.model).max().unwrap_or(0));

    let span_us = (events.last().unwrap().at_us - events.first().unwrap().at_us).max(1);
    let rate_per_s = n / (span_us as f64 / 1_000_000.0);
    let groups = events
        .windows(2)
        .filter(|p| p[0].group != p[1].group)
        .count()
        + 1;
    let mean_group = n / groups as f64;

    let mut features = vec![rate_per_s, mean_group];
    features.resize(2 + tenants + models, 0.0);
    for event in events {
        features[2 + usize::from(event.tenant)] += 1.0 / n;
        features[2 + tenants + usize::from(event.model)] += 1.0 / n;
    }
    features
}

/// Number of leading feature dimensions with unbounded natural scale
/// (arrival rate, mean group size) that min-max normalization rescales.
const UNBOUNDED_DIMS: usize = 2;

/// Min-max normalize the unbounded leading dimensions (rate in the
/// thousands, group size in the tens) into [0, 1] so they cannot drown the
/// mix fractions. The fraction dimensions are left at their natural [0, 1]
/// amplitude on purpose: under a stationary mix they vary only by sampling
/// noise, and min-maxing would stretch that noise to full scale — five
/// noise dimensions then swamp the one real rate signal and the clusters
/// stop tracking the load curve (observed as a ~38% throughput error on
/// the multi-tenant diurnal scenario).
fn normalize(mut features: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
    let dims = features.first().map_or(0, Vec::len).min(UNBOUNDED_DIMS);
    for d in 0..dims {
        let lo = features.iter().map(|f| f[d]).fold(f64::INFINITY, f64::min);
        let hi = features
            .iter()
            .map(|f| f[d])
            .fold(f64::NEG_INFINITY, f64::max);
        let scale = if hi > lo { hi - lo } else { 1.0 };
        for f in &mut features {
            f[d] = (f[d] - lo) / scale;
        }
    }
    features
}

fn distance_sq(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

struct Clustering {
    labels: Vec<usize>,
    centroids: Vec<Vec<f64>>,
}

/// Seeded k-means: k-means++ initialization from `STREAM_PHASE`, then Lloyd
/// iterations with index tie-breaks. Single restart — determinism over
/// squeeze-the-last-drop quality.
fn kmeans(features: &[Vec<f64>], k: usize, iterations: usize, seed: u64) -> Clustering {
    let mut rng = StdRng::seed_from_u64(seeds::derive(seed, seeds::STREAM_PHASE, 0));
    let mut centroids: Vec<Vec<f64>> = vec![features[rng.gen_range(0..features.len())].clone()];
    while centroids.len() < k {
        // k-means++: pick the next seed with probability ∝ D²(window).
        let d2: Vec<f64> = features
            .iter()
            .map(|f| {
                centroids
                    .iter()
                    .map(|c| distance_sq(f, c))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = d2.iter().sum();
        let pick = if total > 0.0 {
            let x = rng.gen_range(0.0..total);
            let mut acc = 0.0;
            d2.iter()
                .position(|&d| {
                    acc += d;
                    x < acc
                })
                .unwrap_or(features.len() - 1)
        } else {
            // All windows coincide with a centroid already; any index works.
            rng.gen_range(0..features.len())
        };
        centroids.push(features[pick].clone());
    }

    let mut labels = vec![0usize; features.len()];
    for _ in 0..iterations.max(1) {
        let mut moved = false;
        for (w, f) in features.iter().enumerate() {
            let nearest = (0..k)
                .min_by(|&a, &b| {
                    distance_sq(f, &centroids[a])
                        .partial_cmp(&distance_sq(f, &centroids[b]))
                        .unwrap()
                        .then(a.cmp(&b))
                })
                .expect("k >= 1");
            moved |= labels[w] != nearest;
            labels[w] = nearest;
        }
        for (c, centroid) in centroids.iter_mut().enumerate() {
            let members: Vec<&Vec<f64>> = features
                .iter()
                .zip(&labels)
                .filter(|&(_, &l)| l == c)
                .map(|(f, _)| f)
                .collect();
            if members.is_empty() {
                continue; // empty cluster keeps its centroid
            }
            for (d, slot) in centroid.iter_mut().enumerate() {
                *slot = members.iter().map(|f| f[d]).sum::<f64>() / members.len() as f64;
            }
        }
        if !moved {
            break;
        }
    }
    Clustering { labels, centroids }
}

/// Phase-sampled statistics: the representatives' histograms merged at
/// fractional cluster weights. Deliberately *not* a [`fpsa_serve::ServeStats`]
/// — weighted counts are estimates, and the type keeps them from being
/// confused with exact engine counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhasedReplay {
    /// Estimated requests per virtual second across the whole trace.
    pub throughput_rps: f64,
    /// Weighted latency histogram (same buckets as `ServeStats`).
    pub latency_hist: [f64; STATS_BUCKETS],
    /// Largest latency any representative produced.
    pub max_latency_us: u64,
    /// Events actually simulated.
    pub sampled_events: u64,
    /// Events the estimate stands for.
    pub total_events: u64,
}

impl PhasedReplay {
    /// Nearest-rank percentile over the weighted histogram, capped at the
    /// observed maximum — the same read-out contract as `ServeStats`.
    pub fn latency_percentile_us(&self, q: f64) -> u64 {
        let total: f64 = self.latency_hist.iter().sum();
        if total <= 0.0 {
            return 0;
        }
        let rank = (total * q.clamp(0.0, 1.0)).max(f64::MIN_POSITIVE);
        let mut seen = 0.0;
        for (i, &count) in self.latency_hist.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return if i + 1 == STATS_BUCKETS {
                    self.max_latency_us
                } else {
                    bucket_upper(i).min(self.max_latency_us)
                };
            }
        }
        self.max_latency_us
    }
}

/// Inclusive bucket upper bound, mirroring the `ServeStats` histogram
/// layout (bucket 0 holds zeros, bucket `i` holds `[2^(i-1), 2^i)`).
fn bucket_upper(bucket: usize) -> u64 {
    if bucket >= 63 {
        u64::MAX
    } else {
        (1u64 << bucket) - 1
    }
}

/// Replay only the plan's representative slices under the virtual clock and
/// merge their results by cluster weight.
pub fn simulate_phased(
    trace: &Trace,
    plan: &PhasePlan,
    policy: ReplayPolicy,
    service: ServiceModel,
) -> PhasedReplay {
    let mut latency_hist = [0.0f64; STATS_BUCKETS];
    let mut weighted_makespan_us = 0.0f64;
    let mut max_latency_us = 0u64;
    for phase in &plan.phases {
        let slice = trace.slice_rebased(phase.representative.clone());
        let replay = simulate(&slice, policy, service);
        for (slot, &count) in latency_hist
            .iter_mut()
            .zip(replay.stats.latency_us.buckets())
        {
            *slot += phase.weight * count as f64;
        }
        weighted_makespan_us += phase.weight * replay.makespan_us as f64;
        max_latency_us = max_latency_us.max(replay.stats.max_latency_us());
    }
    PhasedReplay {
        throughput_rps: plan.total_events as f64 / (weighted_makespan_us.max(1.0) / 1_000_000.0),
        latency_hist,
        max_latency_us,
        sampled_events: plan.sampled_events,
        total_events: plan.total_events,
    }
}

/// Check the phase-sampled estimate against the full-trace replay:
/// throughput within [`THROUGHPUT_TOLERANCE`] relative error, p50 and p99
/// within [`PERCENTILE_TOLERANCE_FACTOR`] either direction. `Err` carries a
/// human-readable account of the first violated bound.
pub fn check_tolerance(full: &VirtualReplay, phased: &PhasedReplay) -> Result<(), String> {
    let rel = (phased.throughput_rps - full.throughput_rps).abs() / full.throughput_rps.max(1e-9);
    if rel > THROUGHPUT_TOLERANCE {
        return Err(format!(
            "throughput off by {:.1}% (phased {:.0} vs full {:.0} rps, tolerance {:.0}%)",
            rel * 100.0,
            phased.throughput_rps,
            full.throughput_rps,
            THROUGHPUT_TOLERANCE * 100.0
        ));
    }
    for q in [0.5, 0.99] {
        let full_q = full.stats.latency_percentile_us(q).max(1) as f64;
        let phased_q = phased.latency_percentile_us(q).max(1) as f64;
        let ratio = (phased_q / full_q).max(full_q / phased_q);
        if ratio > PERCENTILE_TOLERANCE_FACTOR {
            return Err(format!(
                "p{} off by {ratio:.2}x (phased {phased_q} vs full {full_q} µs, tolerance {PERCENTILE_TOLERANCE_FACTOR}x)",
                (q * 100.0) as u32
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ArrivalProcess, Scenario};
    use crate::trace::TraceRecorder;

    fn diurnal(requests: usize) -> Scenario {
        Scenario::steady("phase-test", "m", 29, requests).with_arrival(ArrivalProcess::Diurnal {
            base_rate_per_s: 800.0,
            peak_rate_per_s: 9_000.0,
            period_us: 2_000_000,
        })
    }

    #[test]
    fn plans_are_deterministic_and_cover_every_window() {
        let trace = TraceRecorder::new(&diurnal(8_000)).record().unwrap();
        let config = PhaseConfig {
            window_events: 512,
            ..PhaseConfig::default()
        };
        let a = plan(&trace, config);
        assert_eq!(a, plan(&trace, config));
        assert_eq!(a.total_events, 8_000);
        assert_eq!(a.windows, 8_000usize.div_ceil(512));
        assert_eq!(a.phases.iter().map(|p| p.windows).sum::<usize>(), a.windows);
        assert_eq!(a.phases.iter().map(|p| p.events).sum::<u64>(), 8_000);
        assert!(a.sampled_fraction() < 0.5, "{}", a.sampled_fraction());
    }

    #[test]
    fn phased_stats_track_the_full_replay_within_tolerance() {
        let scenario = diurnal(20_000);
        let trace = TraceRecorder::new(&scenario).record().unwrap();
        let full = simulate(&trace, scenario.policy, scenario.service);
        let p = plan(&trace, PhaseConfig::default());
        let phased = simulate_phased(&trace, &p, scenario.policy, scenario.service);
        assert!(
            p.sampled_fraction() <= 0.25,
            "sampling too dense: {}",
            p.sampled_fraction()
        );
        check_tolerance(&full, &phased).expect("phase sampling within tolerance");
    }

    /// Regression: with multi-entry tenant/model mixes the fraction
    /// dimensions carry only sampling noise; min-maxing them used to
    /// amplify that noise until it drowned the rate signal and the phased
    /// throughput estimate drifted ~38% off the full replay.
    #[test]
    fn multi_tenant_mixes_do_not_drown_the_rate_signal() {
        use crate::scenario::MixEntry;
        let mut scenario = diurnal(20_000).with_tenants(vec![
            MixEntry {
                name: "free".into(),
                weight: 5.0,
            },
            MixEntry {
                name: "pro".into(),
                weight: 3.0,
            },
            MixEntry {
                name: "enterprise".into(),
                weight: 1.0,
            },
        ]);
        scenario.models = vec![
            MixEntry {
                name: "MLP-500-100".into(),
                weight: 3.0,
            },
            MixEntry {
                name: "LeNet".into(),
                weight: 1.0,
            },
        ];
        let trace = TraceRecorder::new(&scenario).record().unwrap();
        let full = simulate(&trace, scenario.policy, scenario.service);
        let p = plan(&trace, PhaseConfig::default());
        let phased = simulate_phased(&trace, &p, scenario.policy, scenario.service);
        check_tolerance(&full, &phased).expect("mix noise must not break phase sampling");
    }

    #[test]
    fn degenerate_traces_cluster_into_one_phase() {
        let trace = TraceRecorder::new(&Scenario::steady("tiny", "m", 1, 64))
            .record()
            .unwrap();
        let p = plan(
            &trace,
            PhaseConfig {
                window_events: 1024,
                ..PhaseConfig::default()
            },
        );
        assert_eq!(p.windows, 1);
        assert_eq!(p.phases.len(), 1);
        assert_eq!(p.phases[0].weight, 1.0);
        assert_eq!(p.sampled_events, 64);
    }

    #[test]
    fn weighted_percentiles_cap_at_the_observed_maximum() {
        let mut replay = PhasedReplay {
            throughput_rps: 0.0,
            latency_hist: [0.0; STATS_BUCKETS],
            max_latency_us: 900,
            sampled_events: 0,
            total_events: 0,
        };
        replay.latency_hist[10] = 2.5; // bucket [512, 1023]
        assert_eq!(replay.latency_percentile_us(0.5), 900);
        assert_eq!(replay.latency_percentile_us(1.0), 900);
        replay.latency_hist[STATS_BUCKETS - 1] = 50.0;
        replay.max_latency_us = 10_000_000_000;
        assert_eq!(replay.latency_percentile_us(0.99), 10_000_000_000);
    }
}
