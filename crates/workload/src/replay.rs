//! Replaying a recorded trace against the *real* serving engines.
//!
//! This is the measured half of the workload story: the virtual clock in
//! [`crate::sim`] answers "what do these arrivals deserve" deterministically,
//! while [`TraceReplayer`] pushes the very same events through a live
//! [`ServeEngine`]/[`ShardedEngine`] worker pool and reports what actually
//! happened on the wall clock. Outputs are **bit-identical** across replays,
//! replica counts and client thread counts — every request's input vector is
//! regenerated from the trace seed by index ([`Trace::input_for`]) and the
//! executors themselves are deterministic — so acceptance tests can pin
//! `f32`-exact agreement while timing stays advisory.

use crate::trace::Trace;
use fpsa_serve::{ServeEngine, ServeStats, ShardedEngine, Ticket};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Anything a recorded trace can be replayed against: the two serving
/// engines today, test doubles tomorrow. One request in, one ticket out,
/// engine-contract counters on demand.
pub trait ReplayTarget {
    /// Enqueue one request; the ticket resolves when a worker finishes it.
    fn submit(&self, input: Vec<f32>) -> Ticket;
    /// A snapshot of the target's lifetime counters.
    fn stats(&self) -> ServeStats;
}

impl ReplayTarget for ServeEngine {
    fn submit(&self, input: Vec<f32>) -> Ticket {
        ServeEngine::submit(self, input)
    }
    fn stats(&self) -> ServeStats {
        ServeEngine::stats(self)
    }
}

impl ReplayTarget for ShardedEngine {
    fn submit(&self, input: Vec<f32>) -> Ticket {
        ShardedEngine::submit(self, input)
    }
    fn stats(&self) -> ServeStats {
        ShardedEngine::stats(self)
    }
}

/// A replay target that routes by the trace's tenant and model columns —
/// the fleet tier, where one front door serves a whole model zoo and
/// requests carry their tenant for weighted-fair admission. Single-model
/// targets are the degenerate case (`ReplayTarget` ignores both columns).
pub trait RoutedReplayTarget {
    /// Enqueue one request for `model` on behalf of `tenant`.
    fn submit_routed(&self, tenant: u16, model: u16, input: Vec<f32>) -> Ticket;
    /// A snapshot of the target's aggregate lifetime counters.
    fn stats(&self) -> ServeStats;
}

/// How the replayer spaces submissions on the wall clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pacing {
    /// Submit every event back-to-back: the throughput shape. This is the
    /// old drivers' "burst" loop.
    Burst,
    /// Sleep until each event's recorded offset before submitting: the
    /// latency shape. Generalises the old drivers' fixed-gap "dribble"
    /// loop — the gaps now come from the scenario's arrival process.
    Trace,
}

/// What one real-engine replay produced.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Every request's logits, in trace order. Bit-identical across
    /// replays of the same trace whatever the replica or client count.
    pub outputs: Vec<Vec<f32>>,
    /// Worker-stamped queue-to-completion latency per request, trace
    /// order. Wall-clock: advisory, never pinned.
    pub latencies_us: Vec<u64>,
    /// Wall time from first submission to last completion, microseconds.
    pub wall_us: u64,
    /// The target's counters after the replay (includes any earlier use).
    pub stats: ServeStats,
}

impl ReplayOutcome {
    /// Requests per wall-clock second over the whole replay.
    pub fn throughput_rps(&self) -> f64 {
        self.outputs.len() as f64 / (self.wall_us.max(1) as f64 / 1_000_000.0)
    }
}

/// Drives a recorded [`Trace`] through a [`ReplayTarget`], regenerating
/// each request's input from the trace seed.
pub struct TraceReplayer<'a> {
    trace: &'a Trace,
    input_len: usize,
    pacing: Pacing,
}

impl<'a> TraceReplayer<'a> {
    /// A replayer for `trace` whose requests carry `input_len` features
    /// (pass the executor's bound input width). Defaults to [`Pacing::Burst`].
    pub fn new(trace: &'a Trace, input_len: usize) -> TraceReplayer<'a> {
        TraceReplayer {
            trace,
            input_len,
            pacing: Pacing::Burst,
        }
    }

    /// Select how submissions are spaced on the wall clock.
    pub fn with_pacing(mut self, pacing: Pacing) -> TraceReplayer<'a> {
        self.pacing = pacing;
        self
    }

    /// Replay every event from one client thread, in trace order.
    pub fn replay<T: ReplayTarget>(&self, target: &T) -> ReplayOutcome {
        let start = Instant::now();
        let mut tickets = Vec::with_capacity(self.trace.len());
        let first_at = self.trace.events.first().map_or(0, |e| e.at_us);
        for (index, event) in self.trace.events.iter().enumerate() {
            if self.pacing == Pacing::Trace {
                let offset_us = event.at_us - first_at;
                let elapsed_us = start.elapsed().as_micros() as u64;
                if offset_us > elapsed_us {
                    std::thread::sleep(std::time::Duration::from_micros(offset_us - elapsed_us));
                }
            }
            tickets.push(target.submit(self.trace.input_for(index, self.input_len)));
        }
        let mut outputs = Vec::with_capacity(tickets.len());
        let mut latencies_us = Vec::with_capacity(tickets.len());
        for (index, ticket) in tickets.into_iter().enumerate() {
            let (logits, latency_us) = ticket
                .wait_timed()
                .unwrap_or_else(|e| panic!("replay request {index} failed: {e}"));
            outputs.push(logits);
            latencies_us.push(latency_us);
        }
        ReplayOutcome {
            outputs,
            latencies_us,
            wall_us: start.elapsed().as_micros() as u64,
            stats: target.stats(),
        }
    }

    /// Replay through `clients` concurrent submitter threads (events dealt
    /// round-robin, each client submitting its share in trace order), then
    /// reassemble outputs back into trace order. Exercises the engines'
    /// cross-thread admission path; outputs still match [`Self::replay`]
    /// bit for bit. Burst-paced regardless of the configured pacing.
    pub fn replay_concurrent<T: ReplayTarget + Sync>(
        &self,
        target: &T,
        clients: usize,
    ) -> ReplayOutcome {
        let clients = clients.max(1);
        let start = Instant::now();
        let mut slots: Vec<Option<(Vec<f32>, u64)>> = vec![None; self.trace.len()];
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(clients);
            for client in 0..clients {
                handles.push(scope.spawn(move || {
                    let mut resolved = Vec::new();
                    let owned: Vec<usize> = (client..self.trace.len()).step_by(clients).collect();
                    let tickets: Vec<Ticket> = owned
                        .iter()
                        .map(|&i| target.submit(self.trace.input_for(i, self.input_len)))
                        .collect();
                    for (&index, ticket) in owned.iter().zip(tickets) {
                        let timed = ticket
                            .wait_timed()
                            .unwrap_or_else(|e| panic!("replay request {index} failed: {e}"));
                        resolved.push((index, timed));
                    }
                    resolved
                }));
            }
            for handle in handles {
                for (index, timed) in handle.join().expect("replay client panicked") {
                    slots[index] = Some(timed);
                }
            }
        });
        let mut outputs = Vec::with_capacity(slots.len());
        let mut latencies_us = Vec::with_capacity(slots.len());
        for slot in slots {
            let (logits, latency_us) = slot.expect("every trace event replayed");
            outputs.push(logits);
            latencies_us.push(latency_us);
        }
        ReplayOutcome {
            outputs,
            latencies_us,
            wall_us: start.elapsed().as_micros() as u64,
            stats: target.stats(),
        }
    }

    /// Replay every event through a routed target, honouring each event's
    /// tenant and model columns. `input_lens[model]` gives each model's
    /// input width (models index the trace's mix order, same as the
    /// registry's dense ids). One client thread, trace order, paced like
    /// [`Self::replay`].
    ///
    /// # Panics
    ///
    /// When an event's model has no entry in `input_lens` — the trace and
    /// the fleet registry disagree, which is a harness bug, not a serving
    /// condition.
    pub fn replay_routed<T: RoutedReplayTarget>(
        &self,
        target: &T,
        input_lens: &[usize],
    ) -> ReplayOutcome {
        let start = Instant::now();
        let mut tickets = Vec::with_capacity(self.trace.len());
        let first_at = self.trace.events.first().map_or(0, |e| e.at_us);
        for (index, event) in self.trace.events.iter().enumerate() {
            if self.pacing == Pacing::Trace {
                let offset_us = event.at_us - first_at;
                let elapsed_us = start.elapsed().as_micros() as u64;
                if offset_us > elapsed_us {
                    std::thread::sleep(std::time::Duration::from_micros(offset_us - elapsed_us));
                }
            }
            let len = input_lens[usize::from(event.model)];
            tickets.push(target.submit_routed(
                event.tenant,
                event.model,
                self.trace.input_for(index, len),
            ));
        }
        let mut outputs = Vec::with_capacity(tickets.len());
        let mut latencies_us = Vec::with_capacity(tickets.len());
        for (index, ticket) in tickets.into_iter().enumerate() {
            let (logits, latency_us) = ticket
                .wait_timed()
                .unwrap_or_else(|e| panic!("routed replay request {index} failed: {e}"));
            outputs.push(logits);
            latencies_us.push(latency_us);
        }
        ReplayOutcome {
            outputs,
            latencies_us,
            wall_us: start.elapsed().as_micros() as u64,
            stats: target.stats(),
        }
    }

    /// [`Self::replay_routed`] through `clients` concurrent submitter
    /// threads (events dealt round-robin, reassembled into trace order),
    /// exercising the routed target's cross-thread admission path. Outputs
    /// still match the single-client replay bit for bit. Burst-paced
    /// regardless of the configured pacing.
    ///
    /// # Panics
    ///
    /// As [`Self::replay_routed`], when a model is missing an input width.
    pub fn replay_routed_concurrent<T: RoutedReplayTarget + Sync>(
        &self,
        target: &T,
        input_lens: &[usize],
        clients: usize,
    ) -> ReplayOutcome {
        let clients = clients.max(1);
        let start = Instant::now();
        let mut slots: Vec<Option<(Vec<f32>, u64)>> = vec![None; self.trace.len()];
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(clients);
            for client in 0..clients {
                handles.push(scope.spawn(move || {
                    let mut resolved = Vec::new();
                    let owned: Vec<usize> = (client..self.trace.len()).step_by(clients).collect();
                    let tickets: Vec<Ticket> = owned
                        .iter()
                        .map(|&i| {
                            let event = &self.trace.events[i];
                            let len = input_lens[usize::from(event.model)];
                            target.submit_routed(
                                event.tenant,
                                event.model,
                                self.trace.input_for(i, len),
                            )
                        })
                        .collect();
                    for (&index, ticket) in owned.iter().zip(tickets) {
                        let timed = ticket.wait_timed().unwrap_or_else(|e| {
                            panic!("routed replay request {index} failed: {e}")
                        });
                        resolved.push((index, timed));
                    }
                    resolved
                }));
            }
            for handle in handles {
                for (index, timed) in handle.join().expect("replay client panicked") {
                    slots[index] = Some(timed);
                }
            }
        });
        let mut outputs = Vec::with_capacity(slots.len());
        let mut latencies_us = Vec::with_capacity(slots.len());
        for slot in slots {
            let (logits, latency_us) = slot.expect("every trace event replayed");
            outputs.push(logits);
            latencies_us.push(latency_us);
        }
        ReplayOutcome {
            outputs,
            latencies_us,
            wall_us: start.elapsed().as_micros() as u64,
            stats: target.stats(),
        }
    }
}
