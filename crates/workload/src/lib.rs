//! `fpsa_workload` — trace-driven workload replay and phase-sampled
//! benchmarking for the serving engines.
//!
//! The serving experiments used to hard-code their own arrival loops (a
//! burst here, a fixed-gap dribble there), which made workloads impossible
//! to share, vary or replay exactly. This crate replaces those loops with a
//! record → replay pipeline:
//!
//! 1. **Describe** the workload as a declarative [`Scenario`]: arrival
//!    process (Poisson, bursty, diurnal, adversarial closed-loop), model /
//!    tenant / client-batch mixes, a linear [`ServiceModel`] and a
//!    [`ReplayPolicy`]. Scenarios round-trip through a line-based config
//!    format ([`Scenario::parse`] / [`Scenario::to_config_string`]) so they
//!    can be checked in under `scenarios/`.
//! 2. **Record** it into an explicit [`Trace`] with [`TraceRecorder`]: one
//!    timestamped event per request, every stochastic draw seeded through
//!    `fpsa_nn::seeds::derive` on its own stream — the same scenario and
//!    seed always produce the identical trace, and any request's input
//!    vector regenerates from its index alone.
//! 3. **Replay** it two ways. [`TraceReplayer`] drives the *real*
//!    [`fpsa_serve::ServeEngine`] / [`fpsa_serve::ShardedEngine`] through
//!    their public submit/ticket APIs — outputs are bit-identical across
//!    replays, replica counts and client thread counts, wall-clock numbers
//!    are advisory. [`simulate`] replays the trace under a deterministic
//!    virtual clock over the engines' own [`fpsa_serve::DynamicBatcher`] —
//!    its [`fpsa_serve::ServeStats`] is identical on every run and so safe
//!    to pin in CI.
//! 4. **Sample** long traces SimPoint-style: [`phases::plan`] clusters
//!    fixed-size windows by workload features and [`phases::simulate_phased`]
//!    replays one weighted representative per cluster, reproducing
//!    full-trace throughput and tail percentiles within
//!    [`phases::THROUGHPUT_TOLERANCE`] at a fraction of the events.
//! 5. **Report**: [`report::scenario_report`] renders per-scenario markdown
//!    and strict JSON for the bench harness to write under
//!    `target/experiment-data/workload/`.
//!
//! # Quick start
//!
//! ```
//! use fpsa_workload::{simulate, Scenario, TraceRecorder};
//!
//! let scenario = Scenario::steady("quickstart", "tiny_mlp", 7, 2_000);
//! let trace = TraceRecorder::new(&scenario).record().expect("scenario is valid");
//! let replay = simulate(&trace, scenario.policy, scenario.service);
//! assert_eq!(replay.stats.completed, 2_000);
//! // Same scenario, same seed: the virtual-clock stats are bit-identical.
//! let again = simulate(&trace, scenario.policy, scenario.service);
//! assert_eq!(replay, again);
//! ```

pub mod phases;
pub mod replay;
pub mod report;
pub mod scenario;
pub mod sim;
pub mod trace;

pub use phases::{
    check_tolerance, plan, simulate_phased, Phase, PhaseConfig, PhasePlan, PhasedReplay,
    PERCENTILE_TOLERANCE_FACTOR, THROUGHPUT_TOLERANCE,
};
pub use replay::{Pacing, ReplayOutcome, ReplayTarget, RoutedReplayTarget, TraceReplayer};
pub use report::{scenario_report, ScenarioReport};
pub use scenario::{
    ArrivalProcess, MixEntry, ReplayPolicy, Scenario, ScenarioParseError, ServiceModel,
};
pub use sim::{
    simulate, simulate_fleet, simulate_fleet_traced, simulate_traced, FleetPolicy,
    FleetVirtualReplay, VirtualReplay,
};
pub use trace::{Trace, TraceEvent, TraceRecorder};
