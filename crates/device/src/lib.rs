//! Device- and circuit-level models for the FPSA ReRAM neural-network accelerator.
//!
//! This crate is the bottom layer of the FPSA reproduction stack. It models the
//! 45 nm technology parameters, the ReRAM crossbar, the simplified spiking
//! peripheral circuits of the FPSA processing element (charging unit,
//! integrate-and-fire neuron unit, spike subtracter), the SRAM-based spiking
//! memory block (SMB) and configurable logic block (CLB), and the ReRAM
//! conductance-variation weight representation schemes (*splice* vs *add*).
//!
//! The headline numbers of Table 1 and Table 2 of the paper are reproduced by
//! composing the component models defined here, not by hard-coding the totals;
//! the published values are kept as constants only for regression testing.
//!
//! # Example
//!
//! ```
//! use fpsa_device::pe::ProcessingElementSpec;
//!
//! let pe = ProcessingElementSpec::fpsa_default();
//! // The FPSA PE completes a 256x256 vector-matrix multiplication in about
//! // 156 ns and reaches ~38 TOPS/mm^2 of computational density.
//! assert!(pe.vmm_latency_ns() > 150.0 && pe.vmm_latency_ns() < 165.0);
//! assert!(pe.computational_density_tops_per_mm2() > 30.0);
//! ```

pub mod circuits;
pub mod clb;
pub mod energy;
pub mod error;
pub mod pe;
pub mod reram;
pub mod smb;
pub mod spiking;
pub mod sram;
pub mod tech;
pub mod variation;

pub use error::DeviceError;
pub use pe::ProcessingElementSpec;
pub use tech::TechnologyNode;
