//! Peripheral circuit component models of the FPSA processing element.
//!
//! The FPSA PE replaces the DAC/ADC peripherals of prior ReRAM accelerators
//! with three much simpler circuits (Figure 4 of the paper):
//!
//! * a [`ChargingUnit`] per crossbar row — a single transistor that applies
//!   the charging voltage when the 1-bit input spike is high,
//! * a [`NeuronUnit`] per crossbar column — an analog integrate-and-fire
//!   neuron (capacitor, comparator, S-R latch and discharging path),
//! * a [`SpikeSubtracter`] per logical output — subtracts the spike train of
//!   the negative column from the positive column.
//!
//! Every component exposes its area (µm²), per-cycle dynamic energy (pJ) and
//! its contribution to the PE's pipeline clock period (ns). The aggregates of
//! Table 1 are recovered by composing these models in [`crate::pe`].

use serde::{Deserialize, Serialize};

/// Area/energy/latency triple reported by every circuit component.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CircuitCost {
    /// Silicon area in square micrometres.
    pub area_um2: f64,
    /// Dynamic energy per activation in picojoules.
    pub energy_pj: f64,
    /// Latency contribution in nanoseconds.
    pub latency_ns: f64,
}

impl CircuitCost {
    /// Create a new cost triple.
    pub fn new(area_um2: f64, energy_pj: f64, latency_ns: f64) -> Self {
        CircuitCost {
            area_um2,
            energy_pj,
            latency_ns,
        }
    }

    /// Replicate this component `n` times (areas and energies add, the
    /// latency stays that of a single instance because replicas operate in
    /// parallel).
    pub fn replicated(&self, n: usize) -> CircuitCost {
        CircuitCost {
            area_um2: self.area_um2 * n as f64,
            energy_pj: self.energy_pj * n as f64,
            latency_ns: self.latency_ns,
        }
    }

    /// Compose two components that operate in series within one clock cycle:
    /// areas and energies add and latencies add.
    pub fn in_series(&self, other: &CircuitCost) -> CircuitCost {
        CircuitCost {
            area_um2: self.area_um2 + other.area_um2,
            energy_pj: self.energy_pj + other.energy_pj,
            latency_ns: self.latency_ns + other.latency_ns,
        }
    }
}

/// The single-transistor row driver of the FPSA PE.
///
/// Because the input spike is a 1-bit digital signal, the conventional DAC is
/// reduced to one pass transistor per row that connects the charging voltage
/// to the row wire while the spike is high.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChargingUnit {
    /// Area in µm² (Synopsys DC characterization at 45 nm).
    pub area_um2: f64,
    /// Energy per charging pulse in pJ.
    pub energy_pj: f64,
    /// Switching latency contribution in ns.
    pub latency_ns: f64,
}

impl ChargingUnit {
    /// Per-unit parameters calibrated so that 256 charging units reproduce
    /// the Table 1 aggregate (600.704 µm², 0.229 pJ).
    pub fn n45() -> Self {
        ChargingUnit {
            area_um2: 600.704 / 256.0,
            energy_pj: 0.229 / 256.0,
            latency_ns: 0.070,
        }
    }

    /// Cost triple of one charging unit.
    pub fn cost(&self) -> CircuitCost {
        CircuitCost::new(self.area_um2, self.energy_pj, self.latency_ns)
    }
}

impl Default for ChargingUnit {
    fn default() -> Self {
        Self::n45()
    }
}

/// The analog integrate-and-fire neuron attached to each crossbar column.
///
/// It integrates the column current on a capacitor, fires a digital spike
/// (stored in an S-R latch) when the threshold voltage is reached and then
/// discharges back to the reset voltage. A reset signal clears the internal
/// state at the start of every sampling window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NeuronUnit {
    /// Area in µm².
    pub area_um2: f64,
    /// Energy per integrate-and-fire cycle in pJ.
    pub energy_pj: f64,
    /// Integrate + fire latency contribution in ns.
    pub latency_ns: f64,
    /// Threshold voltage in volts.
    pub v_threshold: f64,
    /// Reset voltage in volts.
    pub v_reset: f64,
    /// Membrane capacitance in femtofarads.
    pub capacitance_ff: f64,
}

impl NeuronUnit {
    /// Per-unit parameters from Table 1 (19.247 µm², 0.039 pJ, 1.463 ns).
    pub fn n45() -> Self {
        NeuronUnit {
            area_um2: 9854.342 / 512.0,
            energy_pj: 19.861 / 512.0,
            latency_ns: 1.463,
            v_threshold: 0.5,
            v_reset: 0.0,
            capacitance_ff: 20.0,
        }
    }

    /// Cost triple of one neuron unit.
    pub fn cost(&self) -> CircuitCost {
        CircuitCost::new(self.area_um2, self.energy_pj, self.latency_ns)
    }

    /// The constant η of Equation 2: the total conductance-time product that
    /// must be accumulated for the membrane to travel from the reset voltage
    /// to the threshold voltage, given charging voltage `vdd` and per-cycle
    /// charging time `tau_ns`.
    ///
    /// # Panics
    ///
    /// Panics if `vdd <= v_threshold`, which would make the neuron unable to
    /// ever reach its threshold.
    pub fn eta(&self, vdd: f64, tau_ns: f64) -> f64 {
        assert!(
            vdd > self.v_threshold,
            "charging voltage must exceed the neuron threshold"
        );
        let c = self.capacitance_ff * 1e-15;
        let tau = tau_ns * 1e-9;
        (c / tau) * ((vdd - self.v_reset) / (vdd - self.v_threshold)).ln()
    }
}

impl Default for NeuronUnit {
    fn default() -> Self {
        Self::n45()
    }
}

/// The spike subtracter that merges a positive and a negative column.
///
/// Spikes arriving from the negative neuron block the next spike of the
/// positive neuron, so the output spike count is `max(Y+ - Y-, 0)` — exactly
/// the ReLU of the signed dot product (Equation 6).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpikeSubtracter {
    /// Area in µm².
    pub area_um2: f64,
    /// Energy per subtraction event in pJ.
    pub energy_pj: f64,
    /// Latency contribution in ns.
    pub latency_ns: f64,
}

impl SpikeSubtracter {
    /// Per-unit parameters from Table 1 (12.121 µm², 0.031 pJ, 0.910 ns).
    pub fn n45() -> Self {
        SpikeSubtracter {
            area_um2: 3102.902 / 256.0,
            energy_pj: 8.945 / 256.0,
            latency_ns: 0.910,
        }
    }

    /// Cost triple of one subtracter.
    pub fn cost(&self) -> CircuitCost {
        CircuitCost::new(self.area_um2, self.energy_pj, self.latency_ns)
    }

    /// Functional model: output spike count for positive/negative input
    /// counts (saturating subtraction, i.e. ReLU on spike counts).
    pub fn subtract(&self, positive: u32, negative: u32) -> u32 {
        positive.saturating_sub(negative)
    }
}

impl Default for SpikeSubtracter {
    fn default() -> Self {
        Self::n45()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicated_scales_area_and_energy_only() {
        let c = CircuitCost::new(2.0, 0.5, 1.0).replicated(4);
        assert!((c.area_um2 - 8.0).abs() < 1e-12);
        assert!((c.energy_pj - 2.0).abs() < 1e-12);
        assert!((c.latency_ns - 1.0).abs() < 1e-12);
    }

    #[test]
    fn in_series_adds_everything() {
        let a = CircuitCost::new(1.0, 2.0, 3.0);
        let b = CircuitCost::new(10.0, 20.0, 30.0);
        let c = a.in_series(&b);
        assert_eq!(c, CircuitCost::new(11.0, 22.0, 33.0));
    }

    #[test]
    fn charging_units_aggregate_matches_table1() {
        let agg = ChargingUnit::n45().cost().replicated(256);
        assert!((agg.area_um2 - 600.704).abs() < 1e-6);
        assert!((agg.energy_pj - 0.229).abs() < 1e-6);
    }

    #[test]
    fn neuron_units_aggregate_matches_table1() {
        let agg = NeuronUnit::n45().cost().replicated(512);
        assert!((agg.area_um2 - 9854.342).abs() < 1e-6);
        assert!((agg.energy_pj - 19.861).abs() < 1e-6);
    }

    #[test]
    fn subtracters_aggregate_matches_table1() {
        let agg = SpikeSubtracter::n45().cost().replicated(256);
        assert!((agg.area_um2 - 3102.902).abs() < 1e-6);
        assert!((agg.energy_pj - 8.945).abs() < 1e-6);
    }

    #[test]
    fn pipeline_clock_components_sum_to_2_443ns() {
        let clock = ChargingUnit::n45().latency_ns
            + NeuronUnit::n45().latency_ns
            + SpikeSubtracter::n45().latency_ns;
        assert!((clock - 2.443).abs() < 1e-9);
    }

    #[test]
    fn neuron_eta_is_positive_and_monotone_in_capacitance() {
        let mut n = NeuronUnit::n45();
        let eta1 = n.eta(1.0, 2.443);
        n.capacitance_ff *= 2.0;
        let eta2 = n.eta(1.0, 2.443);
        assert!(eta1 > 0.0);
        assert!(eta2 > eta1);
    }

    #[test]
    #[should_panic(expected = "charging voltage must exceed")]
    fn neuron_eta_panics_for_unreachable_threshold() {
        let n = NeuronUnit::n45();
        let _ = n.eta(0.1, 2.443);
    }

    #[test]
    fn subtracter_is_relu_on_counts() {
        let s = SpikeSubtracter::n45();
        assert_eq!(s.subtract(10, 3), 7);
        assert_eq!(s.subtract(3, 10), 0);
        assert_eq!(s.subtract(0, 0), 0);
    }
}
