//! SRAM macro model used by the spiking memory block and the CLB LUTs.
//!
//! The paper keeps SRAM (rather than ReRAM) for buffers and LUTs: ReRAM's
//! endurance is too low for frequently written buffers, and for small
//! capacities the sense amplifiers dominate, making ReRAM area efficiency
//! poor (a 64-bit SRAM macro is 35.129 µm² versus 172.229 µm² for ReRAM under
//! 45 nm, per NVSim).

use crate::error::DeviceError;
use crate::tech::TechnologyNode;
use serde::{Deserialize, Serialize};

/// An SRAM macro of a given capacity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SramMacro {
    /// Capacity in bits.
    pub bits: usize,
    /// Technology node.
    pub tech: TechnologyNode,
}

impl SramMacro {
    /// Create a macro of `bits` capacity.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] if `bits` is zero.
    pub fn new(bits: usize, tech: TechnologyNode) -> Result<Self, DeviceError> {
        if bits == 0 {
            return Err(DeviceError::InvalidParameter {
                name: "bits",
                reason: "SRAM macro capacity must be non-zero".into(),
            });
        }
        Ok(SramMacro { bits, tech })
    }

    /// The 64-bit macro that backs one 6-input LUT.
    pub fn lut64() -> Self {
        SramMacro {
            bits: 64,
            tech: TechnologyNode::n45(),
        }
    }

    /// The 16 Kb macro that backs one spiking memory block.
    pub fn kb16() -> Self {
        SramMacro {
            bits: 16 * 1024,
            tech: TechnologyNode::n45(),
        }
    }

    /// Storage array area in µm² (bit cells only).
    pub fn cell_area_um2(&self) -> f64 {
        self.bits as f64 * self.tech.sram_bit_area_um2
    }

    /// Peripheral (decoder, sense amplifier, write driver) area in µm².
    ///
    /// Modelled as proportional to the array's row/column count (√bits) and
    /// calibrated so that a 64-bit macro lands exactly on the 35.129 µm²
    /// NVSim figure quoted in the paper; a 16 Kb macro plus its spike
    /// counters then reproduces the 5421.9 µm² SMB entry of Table 1.
    pub fn peripheral_area_um2(&self) -> f64 {
        let cell64 = 64.0 * self.tech.sram_bit_area_um2;
        let coeff = (35.129 - cell64) / 8.0;
        coeff * (self.bits as f64).sqrt()
    }

    /// Total macro area in µm².
    pub fn area_um2(&self) -> f64 {
        self.cell_area_um2() + self.peripheral_area_um2()
    }

    /// Random access latency in ns. Calibrated so the 16 Kb SMB access stays
    /// within the 0.578 ns figure of Table 1.
    pub fn access_latency_ns(&self) -> f64 {
        0.15 + 0.003 * (self.bits as f64).sqrt()
    }

    /// Per-access dynamic energy in pJ.
    pub fn access_energy_pj(&self) -> f64 {
        0.05 + 0.0002 * self.bits as f64 / 16.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_capacity() {
        assert!(SramMacro::new(0, TechnologyNode::n45()).is_err());
    }

    #[test]
    fn lut64_macro_area_matches_nvsim_quote() {
        let m = SramMacro::lut64();
        assert!((m.area_um2() - 35.129).abs() < 1e-6);
    }

    #[test]
    fn bigger_macros_are_bigger_and_slower() {
        let small = SramMacro::lut64();
        let big = SramMacro::kb16();
        assert!(big.area_um2() > small.area_um2());
        assert!(big.access_latency_ns() > small.access_latency_ns());
        assert!(big.access_energy_pj() > small.access_energy_pj());
    }

    #[test]
    fn kb16_access_latency_below_table1_smb_latency() {
        let m = SramMacro::kb16();
        assert!(m.access_latency_ns() <= 0.578 + 1e-9);
    }

    #[test]
    fn area_is_cells_plus_peripherals() {
        let m = SramMacro::kb16();
        assert!((m.area_um2() - (m.cell_area_um2() + m.peripheral_area_um2())).abs() < 1e-12);
    }
}
