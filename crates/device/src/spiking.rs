//! Functional (cycle-level) model of the spiking computation scheme.
//!
//! The FPSA PE represents a number between 0 and 1 by the number of spikes
//! observed inside a sampling window of Γ = 2^n cycles. This module provides
//! the functional counterparts of the circuits in [`crate::circuits`]:
//! spike-train encoding/decoding, the integrate-and-fire neuron, and a
//! cycle-accurate simulation of a whole PE that demonstrates Equations 1–6 of
//! the paper: the spike counts at the output equal the (quantized) ReLU of
//! the vector-matrix product of the inputs.

use serde::{Deserialize, Serialize};

/// A digital spike train within one sampling window.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SpikeTrain {
    bits: Vec<bool>,
}

impl SpikeTrain {
    /// An empty (all-zero) spike train of length `window`.
    pub fn silent(window: usize) -> Self {
        SpikeTrain {
            bits: vec![false; window],
        }
    }

    /// Encode a value in `[0, 1]` as `round(value * window)` evenly spaced
    /// spikes (rate coding).
    pub fn encode(value: f64, window: usize) -> Self {
        let clamped = value.clamp(0.0, 1.0);
        let count = (clamped * window as f64).round() as usize;
        Self::from_count(count, window)
    }

    /// Build a train holding exactly `count` spikes (clamped to the window),
    /// spread evenly across the window.
    pub fn from_count(count: usize, window: usize) -> Self {
        let count = count.min(window);
        let mut bits = vec![false; window];
        for k in 0..count {
            bits[k * window / count.max(1)] = true;
        }
        SpikeTrain { bits }
    }

    /// Build a train from explicit cycle-by-cycle bits.
    pub fn from_bits(bits: Vec<bool>) -> Self {
        SpikeTrain { bits }
    }

    /// The number of cycles in the window.
    pub fn window(&self) -> usize {
        self.bits.len()
    }

    /// The spike count.
    pub fn count(&self) -> usize {
        self.bits.iter().filter(|b| **b).count()
    }

    /// Decode back to a value in `[0, 1]`.
    pub fn decode(&self) -> f64 {
        if self.bits.is_empty() {
            return 0.0;
        }
        self.count() as f64 / self.bits.len() as f64
    }

    /// The spike bit at cycle `t` (false outside the window).
    pub fn spike_at(&self, t: usize) -> bool {
        self.bits.get(t).copied().unwrap_or(false)
    }

    /// Iterate over the cycle-by-cycle bits.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        self.bits.iter().copied()
    }
}

/// A functional integrate-and-fire neuron (Figure 4D).
///
/// Each cycle the neuron accumulates the incoming charge; when the
/// accumulated charge reaches the threshold η it emits one spike and
/// subtracts η (the capacitor discharges back to the reset level).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IfNeuron {
    /// Firing threshold (the constant η of Equation 2).
    pub threshold: f64,
    accumulator: f64,
}

impl IfNeuron {
    /// Create a neuron with the given threshold.
    ///
    /// # Panics
    ///
    /// Panics if the threshold is not strictly positive.
    pub fn new(threshold: f64) -> Self {
        assert!(threshold > 0.0, "IF threshold must be positive");
        IfNeuron {
            threshold,
            accumulator: 0.0,
        }
    }

    /// Reset the internal accumulator (the per-window reset signal).
    pub fn reset(&mut self) {
        self.accumulator = 0.0;
    }

    /// Integrate `charge` for one cycle; returns `true` if the neuron fires.
    pub fn step(&mut self, charge: f64) -> bool {
        self.accumulator += charge.max(0.0);
        if self.accumulator >= self.threshold {
            self.accumulator -= self.threshold;
            true
        } else {
            false
        }
    }

    /// Current accumulated charge (for inspection in tests).
    pub fn accumulator(&self) -> f64 {
        self.accumulator
    }
}

/// Cycle-accurate functional model of one FPSA PE.
///
/// Weights are real numbers in `[-1, 1]`; each logical column is realized by
/// a positive and a negative physical column whose conductances are
/// proportional to the positive and negative parts of the weight
/// (`g = |w| * η`, so that Equation 5 yields `Y_j = Σ_i w_ji X_i`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpikingPe {
    /// Weight matrix, `weights[j][i]` is the weight from input `i` to output `j`.
    weights: Vec<Vec<f64>>,
    /// Sampling window in cycles.
    window: usize,
}

impl SpikingPe {
    /// Create a PE holding `weights` (row-major by output) with a sampling
    /// window of `window` cycles.
    ///
    /// # Panics
    ///
    /// Panics if the weight matrix is ragged.
    pub fn new(weights: Vec<Vec<f64>>, window: usize) -> Self {
        if let Some(first) = weights.first() {
            let len = first.len();
            assert!(
                weights.iter().all(|row| row.len() == len),
                "weight matrix must be rectangular"
            );
        }
        SpikingPe { weights, window }
    }

    /// Number of logical inputs.
    pub fn inputs(&self) -> usize {
        self.weights.first().map_or(0, Vec::len)
    }

    /// Number of logical outputs.
    pub fn outputs(&self) -> usize {
        self.weights.len()
    }

    /// The sampling window in cycles.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Run the cycle-accurate spiking simulation for one sampling window.
    ///
    /// Every output is produced by two IF neurons (positive and negative
    /// column) followed by a spike subtracter; the returned trains are the
    /// subtracter outputs.
    ///
    /// # Panics
    ///
    /// Panics if the number of input trains does not match the weight matrix
    /// or if any train has a different window length.
    pub fn run(&self, inputs: &[SpikeTrain]) -> Vec<SpikeTrain> {
        assert_eq!(inputs.len(), self.inputs(), "input count mismatch");
        for train in inputs {
            assert_eq!(train.window(), self.window, "input window mismatch");
        }
        let eta = 1.0;
        let mut outputs = Vec::with_capacity(self.outputs());
        for row in &self.weights {
            let mut pos = IfNeuron::new(eta);
            let mut neg = IfNeuron::new(eta);
            let mut pos_count: u32 = 0;
            let mut neg_count: u32 = 0;
            let mut bits = vec![false; self.window];
            for (t, bit) in bits.iter_mut().enumerate() {
                let mut pos_charge = 0.0;
                let mut neg_charge = 0.0;
                for (i, train) in inputs.iter().enumerate() {
                    if train.spike_at(t) {
                        let w = row[i];
                        if w >= 0.0 {
                            pos_charge += w * eta;
                        } else {
                            neg_charge += -w * eta;
                        }
                    }
                }
                let p = pos.step(pos_charge);
                let n = neg.step(neg_charge);
                if p {
                    pos_count += 1;
                }
                if n {
                    neg_count += 1;
                }
                // The subtracter lets a positive spike through only if the
                // cumulative positive count still exceeds the cumulative
                // negative count.
                if p && pos_count > neg_count {
                    *bit = true;
                } else if p && n {
                    // Simultaneous spikes cancel.
                    *bit = false;
                }
            }
            // Enforce the exact subtracter semantics on the counts: the
            // output count is max(Y+ - Y-, 0). Rebuild the train if blocking
            // removed too few or too many spikes.
            let want = pos_count.saturating_sub(neg_count) as usize;
            let got = bits.iter().filter(|b| **b).count();
            let train = if got == want {
                SpikeTrain::from_bits(bits)
            } else {
                SpikeTrain::from_count(want, self.window)
            };
            outputs.push(train);
        }
        outputs
    }

    /// The ideal (non-spiking) reference: `ReLU(W x)` where inputs and
    /// outputs are values in `[0, 1]`, quantized to the sampling window.
    pub fn ideal_reference(&self, input_values: &[f64]) -> Vec<f64> {
        self.weights
            .iter()
            .map(|row| {
                let acc: f64 = row.iter().zip(input_values).map(|(w, x)| w * x).sum();
                acc.clamp(0.0, 1.0)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        for &v in &[0.0, 0.25, 0.5, 0.75, 1.0] {
            let t = SpikeTrain::encode(v, 64);
            assert!((t.decode() - v).abs() < 1.0 / 64.0 + 1e-12);
        }
    }

    #[test]
    fn encode_clamps_out_of_range_values() {
        assert_eq!(SpikeTrain::encode(-1.0, 64).count(), 0);
        assert_eq!(SpikeTrain::encode(2.0, 64).count(), 64);
    }

    #[test]
    fn from_count_clamps_to_window() {
        let t = SpikeTrain::from_count(100, 16);
        assert_eq!(t.count(), 16);
    }

    #[test]
    fn silent_train_has_zero_count() {
        let t = SpikeTrain::silent(32);
        assert_eq!(t.count(), 0);
        assert_eq!(t.decode(), 0.0);
    }

    #[test]
    fn if_neuron_fires_at_expected_rate() {
        let mut n = IfNeuron::new(1.0);
        let mut fires = 0;
        for _ in 0..10 {
            if n.step(0.5) {
                fires += 1;
            }
        }
        // 0.5 charge per cycle -> fires every other cycle.
        assert_eq!(fires, 5);
    }

    #[test]
    fn if_neuron_ignores_negative_charge() {
        let mut n = IfNeuron::new(1.0);
        assert!(!n.step(-5.0));
        assert_eq!(n.accumulator(), 0.0);
    }

    #[test]
    #[should_panic(expected = "IF threshold must be positive")]
    fn if_neuron_rejects_non_positive_threshold() {
        let _ = IfNeuron::new(0.0);
    }

    #[test]
    fn if_neuron_reset_clears_state() {
        let mut n = IfNeuron::new(1.0);
        n.step(0.9);
        n.reset();
        assert_eq!(n.accumulator(), 0.0);
    }

    #[test]
    fn spiking_pe_identity_matrix_passes_values_through() {
        let n = 4;
        let mut w = vec![vec![0.0; n]; n];
        for (i, row) in w.iter_mut().enumerate() {
            row[i] = 1.0;
        }
        let pe = SpikingPe::new(w, 64);
        let values = [0.25, 0.5, 0.75, 1.0];
        let inputs: Vec<SpikeTrain> = values.iter().map(|v| SpikeTrain::encode(*v, 64)).collect();
        let outputs = pe.run(&inputs);
        for (out, v) in outputs.iter().zip(values.iter()) {
            assert!(
                (out.decode() - v).abs() <= 2.0 / 64.0,
                "expected ~{v}, got {}",
                out.decode()
            );
        }
    }

    #[test]
    fn spiking_pe_computes_relu_of_negative_sums() {
        // One output with weights [0.5, -1.0]: for x = [0.5, 1.0] the ideal
        // result is ReLU(0.25 - 1.0) = 0.
        let pe = SpikingPe::new(vec![vec![0.5, -1.0]], 64);
        let inputs = vec![SpikeTrain::encode(0.5, 64), SpikeTrain::encode(1.0, 64)];
        let outputs = pe.run(&inputs);
        assert_eq!(outputs[0].count(), 0);
    }

    #[test]
    fn spiking_pe_matches_ideal_reference_on_random_matrix() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let rows = 6;
        let cols = 8;
        let weights: Vec<Vec<f64>> = (0..rows)
            .map(|_| (0..cols).map(|_| rng.gen_range(-0.3..0.3)).collect())
            .collect();
        let pe = SpikingPe::new(weights, 64);
        let values: Vec<f64> = (0..cols).map(|_| rng.gen_range(0.0..1.0)).collect();
        let inputs: Vec<SpikeTrain> = values.iter().map(|v| SpikeTrain::encode(*v, 64)).collect();
        let ideal = pe.ideal_reference(&values);
        let outputs = pe.run(&inputs);
        for (out, expect) in outputs.iter().zip(ideal.iter()) {
            assert!(
                (out.decode() - expect).abs() <= 4.0 / 64.0,
                "spiking output {} too far from ideal {}",
                out.decode(),
                expect
            );
        }
    }

    #[test]
    #[should_panic(expected = "input count mismatch")]
    fn spiking_pe_rejects_wrong_input_count() {
        let pe = SpikingPe::new(vec![vec![1.0, 1.0]], 16);
        let _ = pe.run(&[SpikeTrain::silent(16)]);
    }

    #[test]
    #[should_panic(expected = "weight matrix must be rectangular")]
    fn spiking_pe_rejects_ragged_weights() {
        let _ = SpikingPe::new(vec![vec![1.0, 2.0], vec![3.0]], 16);
    }
}
