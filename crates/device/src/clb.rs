//! The configurable logic block (CLB).
//!
//! CLBs provide the programmable control logic of the FPSA fabric: they
//! generate the reset/select/enable signals that sequence PEs and SMBs
//! through the schedule produced by the spatial-to-temporal mapper. Each CLB
//! bundles SRAM-based 6-input LUTs with flip-flops and multiplexers; the
//! paper integrates 128 LUTs per CLB so that a CLB's area and pin count are
//! comparable to one PE.

use crate::error::DeviceError;
use crate::sram::SramMacro;
use serde::{Deserialize, Serialize};

/// Specification of one configurable logic block.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfigurableLogicBlockSpec {
    /// Number of 6-input LUTs in the block (128 in the paper's configuration).
    pub lut_count: usize,
    /// The SRAM macro backing each LUT (64 bits for a 6-input LUT).
    pub lut_sram: SramMacro,
    /// Area of the flip-flop + multiplexer logic attached to each LUT, in µm².
    pub per_lut_logic_area_um2: f64,
    /// LUT evaluation latency in ns.
    pub lut_latency_ns: f64,
    /// Dynamic energy per active cycle in pJ.
    pub cycle_energy_pj: f64,
}

impl ConfigurableLogicBlockSpec {
    /// The paper's 128-LUT CLB, calibrated to Table 1
    /// (5998.272 µm², 0.229 ns, 3.106 pJ).
    pub fn fpsa_128lut() -> Self {
        let lut_sram = SramMacro::lut64();
        let lut_count = 128;
        let per_lut_logic = (5998.272 - lut_count as f64 * lut_sram.area_um2()) / lut_count as f64;
        ConfigurableLogicBlockSpec {
            lut_count,
            lut_sram,
            per_lut_logic_area_um2: per_lut_logic,
            lut_latency_ns: 0.229,
            cycle_energy_pj: 3.106,
        }
    }

    /// Total CLB area in µm².
    pub fn area_um2(&self) -> f64 {
        self.lut_count as f64 * (self.lut_sram.area_um2() + self.per_lut_logic_area_um2)
    }

    /// Evaluation latency in ns.
    pub fn latency_ns(&self) -> f64 {
        self.lut_latency_ns
    }

    /// Total configuration bits held by the block (LUT contents only).
    pub fn configuration_bits(&self) -> usize {
        self.lut_count * self.lut_sram.bits
    }

    /// Number of routing pins: each LUT has 6 inputs and 1 output, but pins
    /// are shared at the block boundary; the paper sizes the CLB so its pin
    /// count is similar to a PE's (512). We expose 4 pins per LUT
    /// (3 block-level inputs + 1 output after internal sharing).
    pub fn pin_count(&self) -> usize {
        self.lut_count * 4
    }
}

impl Default for ConfigurableLogicBlockSpec {
    fn default() -> Self {
        Self::fpsa_128lut()
    }
}

/// A programmed lookup table: 6 inputs, 64 configuration bits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LookupTable {
    inputs: u32,
    truth_table: Vec<bool>,
}

impl LookupTable {
    /// Create a LUT with `inputs` inputs, initialised to constant-zero.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] if `inputs` is zero or
    /// larger than 20 (which would need a >1 Mbit truth table).
    pub fn new(inputs: u32) -> Result<Self, DeviceError> {
        if inputs == 0 || inputs > 20 {
            return Err(DeviceError::InvalidParameter {
                name: "inputs",
                reason: format!("LUT input count {inputs} must be in 1..=20"),
            });
        }
        Ok(LookupTable {
            inputs,
            truth_table: vec![false; 1usize << inputs],
        })
    }

    /// A standard 6-input LUT.
    pub fn six_input() -> Self {
        Self::new(6).expect("6 is a valid LUT size")
    }

    /// Number of inputs.
    pub fn inputs(&self) -> u32 {
        self.inputs
    }

    /// Program the full truth table.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] if `bits` has the wrong length.
    pub fn program(&mut self, bits: &[bool]) -> Result<(), DeviceError> {
        if bits.len() != self.truth_table.len() {
            return Err(DeviceError::InvalidParameter {
                name: "bits",
                reason: format!(
                    "expected {} truth-table bits, got {}",
                    self.truth_table.len(),
                    bits.len()
                ),
            });
        }
        self.truth_table.copy_from_slice(bits);
        Ok(())
    }

    /// Program the LUT from a boolean function of its input index.
    pub fn program_fn<F: Fn(usize) -> bool>(&mut self, f: F) {
        for (i, bit) in self.truth_table.iter_mut().enumerate() {
            *bit = f(i);
        }
    }

    /// Evaluate the LUT for a packed input vector (bit i of `input` is LUT
    /// input i). Bits above `self.inputs` are ignored.
    pub fn evaluate(&self, input: usize) -> bool {
        let mask = (1usize << self.inputs) - 1;
        self.truth_table[input & mask]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clb_area_matches_table1() {
        let clb = ConfigurableLogicBlockSpec::fpsa_128lut();
        assert!((clb.area_um2() - 5998.272).abs() < 1e-6);
    }

    #[test]
    fn clb_latency_and_energy_match_table1() {
        let clb = ConfigurableLogicBlockSpec::fpsa_128lut();
        assert!((clb.latency_ns() - 0.229).abs() < 1e-12);
        assert!((clb.cycle_energy_pj - 3.106).abs() < 1e-12);
    }

    #[test]
    fn clb_pin_count_is_comparable_to_a_pe() {
        let clb = ConfigurableLogicBlockSpec::fpsa_128lut();
        // The paper sizes the CLB so its pin count is similar to one PE (512).
        assert_eq!(clb.pin_count(), 512);
    }

    #[test]
    fn configuration_bits_are_lut_count_times_64() {
        let clb = ConfigurableLogicBlockSpec::fpsa_128lut();
        assert_eq!(clb.configuration_bits(), 128 * 64);
    }

    #[test]
    fn lut_rejects_degenerate_sizes() {
        assert!(LookupTable::new(0).is_err());
        assert!(LookupTable::new(21).is_err());
    }

    #[test]
    fn lut_program_and_evaluate_xor() {
        let mut lut = LookupTable::new(2).unwrap();
        lut.program(&[false, true, true, false]).unwrap();
        assert!(!lut.evaluate(0b00));
        assert!(lut.evaluate(0b01));
        assert!(lut.evaluate(0b10));
        assert!(!lut.evaluate(0b11));
    }

    #[test]
    fn lut_program_rejects_wrong_length() {
        let mut lut = LookupTable::six_input();
        assert!(lut.program(&[true; 32]).is_err());
    }

    #[test]
    fn lut_program_fn_implements_majority() {
        let mut lut = LookupTable::new(3).unwrap();
        lut.program_fn(|i| i.count_ones() >= 2);
        assert!(!lut.evaluate(0b001));
        assert!(lut.evaluate(0b011));
        assert!(lut.evaluate(0b111));
    }

    #[test]
    fn lut_evaluate_masks_high_bits() {
        let mut lut = LookupTable::new(2).unwrap();
        lut.program(&[true, false, false, false]).unwrap();
        assert!(lut.evaluate(0b100)); // bit 2 ignored -> index 0
    }
}
