//! Technology node parameters.
//!
//! The FPSA paper evaluates everything under a 45 nm process and takes its
//! circuit characterization from NVSim (for ReRAM, SRAM, SMB and CLB) and
//! Synopsys Design Compiler (for the remaining peripheral circuits). This
//! module captures the per-node constants those tools would report so that the
//! rest of the stack can scale area/latency/energy consistently.

use serde::{Deserialize, Serialize};

/// The feature size and derived constants of an integrated-circuit process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TechnologyNode {
    /// Feature size in nanometres (e.g. 45.0 for the paper's process).
    pub feature_nm: f64,
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Area of a 6T SRAM bit cell in square micrometres.
    pub sram_bit_area_um2: f64,
    /// Area of a 1T1R ReRAM cell in square micrometres (4F^2 device plus
    /// access transistor overhead).
    pub reram_cell_area_um2: f64,
    /// Per-millimetre wire delay in nanoseconds (repeated metal wire).
    pub wire_delay_ns_per_mm: f64,
    /// Per-millimetre, per-bit wire energy in picojoules.
    pub wire_energy_pj_per_mm_bit: f64,
}

impl TechnologyNode {
    /// The 45 nm node used throughout the paper's evaluation.
    ///
    /// The SRAM bit cell is the canonical 146 F² 6T cell; together with the
    /// sense-amplifier/decoder overhead modelled in `crate::sram` a 64-bit
    /// macro lands on the 35.129 µm² NVSim figure quoted in the paper. The
    /// ReRAM cell is a 4 F² cross-point device.
    pub fn n45() -> Self {
        TechnologyNode {
            feature_nm: 45.0,
            vdd: 1.0,
            sram_bit_area_um2: 146.0 * 0.045 * 0.045,
            reram_cell_area_um2: 4.0 * 0.045 * 0.045,
            wire_delay_ns_per_mm: 0.131,
            wire_energy_pj_per_mm_bit: 0.064,
        }
    }

    /// Scale a quantity that shrinks quadratically with feature size
    /// (areas) from this node to `target`.
    pub fn scale_area_to(&self, target: &TechnologyNode, area: f64) -> f64 {
        let ratio = target.feature_nm / self.feature_nm;
        area * ratio * ratio
    }

    /// Scale a quantity that shrinks linearly with feature size (delays,
    /// to first order) from this node to `target`.
    pub fn scale_delay_to(&self, target: &TechnologyNode, delay: f64) -> f64 {
        delay * target.feature_nm / self.feature_nm
    }

    /// Feature size in micrometres.
    pub fn feature_um(&self) -> f64 {
        self.feature_nm * 1e-3
    }
}

impl Default for TechnologyNode {
    fn default() -> Self {
        Self::n45()
    }
}

/// Unit helpers used across the crate.
pub mod units {
    /// Convert square micrometres to square millimetres.
    pub fn um2_to_mm2(um2: f64) -> f64 {
        um2 * 1e-6
    }

    /// Convert square millimetres to square micrometres.
    pub fn mm2_to_um2(mm2: f64) -> f64 {
        mm2 * 1e6
    }

    /// Convert nanoseconds to seconds.
    pub fn ns_to_s(ns: f64) -> f64 {
        ns * 1e-9
    }

    /// Convert operations-per-second to tera-operations-per-second.
    pub fn ops_to_tops(ops: f64) -> f64 {
        ops * 1e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn n45_cell_areas_are_physically_sensible() {
        let t = TechnologyNode::n45();
        // 146 F^2 SRAM bit cell and 4 F^2 ReRAM cell at 45 nm.
        assert!((t.sram_bit_area_um2 - 0.295_65).abs() < 1e-3);
        assert!((t.reram_cell_area_um2 - 0.0081).abs() < 1e-6);
        // An SRAM bit is more than an order of magnitude larger than ReRAM.
        assert!(t.sram_bit_area_um2 / t.reram_cell_area_um2 > 10.0);
    }

    #[test]
    fn area_scaling_is_quadratic() {
        let n45 = TechnologyNode::n45();
        let mut n22 = TechnologyNode::n45();
        n22.feature_nm = 22.5;
        let scaled = n45.scale_area_to(&n22, 100.0);
        assert!((scaled - 25.0).abs() < 1e-9);
    }

    #[test]
    fn delay_scaling_is_linear() {
        let n45 = TechnologyNode::n45();
        let mut n90 = TechnologyNode::n45();
        n90.feature_nm = 90.0;
        let scaled = n45.scale_delay_to(&n90, 1.0);
        assert!((scaled - 2.0).abs() < 1e-9);
    }

    #[test]
    fn default_is_45nm() {
        assert_eq!(TechnologyNode::default(), TechnologyNode::n45());
    }

    #[test]
    fn unit_conversions_round_trip() {
        use units::*;
        assert!((mm2_to_um2(um2_to_mm2(123.0)) - 123.0).abs() < 1e-9);
        assert!((ns_to_s(1.0) - 1e-9).abs() < 1e-20);
        assert!((ops_to_tops(1e12) - 1.0).abs() < 1e-12);
    }
}
