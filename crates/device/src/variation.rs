//! ReRAM conductance variation and weight representation schemes.
//!
//! ReRAM cells cannot be programmed to an exact conductance: the programmed
//! value behaves like a Gaussian random variable centred on the target level
//! (cycle-to-cycle and device-to-device variation, measured on fabricated
//! arrays in the paper's reference \[49\]). Because the crossbar accumulates
//! raw analog currents, this variation leaks directly into the computation.
//!
//! The paper compares two ways of composing multiple physical cells into one
//! higher-precision weight:
//!
//! * the conventional **splice** method — cells hold different bit slices of
//!   the number (`value = Σ 2^(b·i) · c_i`), so the most significant cell's
//!   variation dominates and adding cells barely helps;
//! * the proposed **add** method — cells are summed with equal coefficients
//!   (`value = Σ c_i`), so the normalized deviation shrinks with `√k`.
//!
//! This module provides the analytic normalized-deviation formulas of §7.2
//! and a Monte-Carlo encoder/decoder used by the Figure 9 accuracy
//! experiment.

use rand::Rng;
use rand_distr_normal::Normal;
use serde::{Deserialize, Serialize};

/// A tiny Box–Muller normal sampler so we do not need `rand_distr`.
mod rand_distr_normal {
    use rand::Rng;

    /// Normal distribution with the given mean and standard deviation.
    #[derive(Debug, Clone, Copy)]
    pub struct Normal {
        mean: f64,
        std_dev: f64,
    }

    impl Normal {
        /// Create a normal distribution. The standard deviation must be
        /// non-negative.
        pub fn new(mean: f64, std_dev: f64) -> Self {
            assert!(std_dev >= 0.0, "standard deviation must be non-negative");
            Normal { mean, std_dev }
        }

        /// Draw one sample using the Box–Muller transform.
        pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            if self.std_dev == 0.0 {
                return self.mean;
            }
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            self.mean + self.std_dev * z
        }
    }
}

/// Per-cell programming variation, expressed in conductance-level units.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellVariation {
    /// Standard deviation of the programmed level, in units of one level of
    /// a 4-bit cell. The default 0.8 reproduces the accuracy collapse of the
    /// 2-cell splice configuration reported in Figure 9 (derived from the
    /// fabricated-array measurements of reference \[49\]).
    pub sigma_levels: f64,
}

impl CellVariation {
    /// The measured variation used throughout the paper's Figure 9.
    pub fn measured() -> Self {
        CellVariation { sigma_levels: 0.8 }
    }

    /// An ideal device with no variation.
    pub fn ideal() -> Self {
        CellVariation { sigma_levels: 0.0 }
    }
}

impl Default for CellVariation {
    fn default() -> Self {
        Self::measured()
    }
}

/// How multiple physical cells are composed into one weight value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WeightScheme {
    /// Bit-sliced composition: cell `i` carries bits `[b·i, b·(i+1))`.
    Splice {
        /// Number of cells per weight.
        cells: usize,
        /// Bits per cell.
        bits_per_cell: u32,
    },
    /// Equal-coefficient summation (the paper's proposal).
    Add {
        /// Number of cells per weight.
        cells: usize,
        /// Bits per cell.
        bits_per_cell: u32,
    },
}

impl WeightScheme {
    /// The PRIME configuration: two spliced 4-bit cells form an 8-bit weight.
    pub fn prime_splice() -> Self {
        WeightScheme::Splice {
            cells: 2,
            bits_per_cell: 4,
        }
    }

    /// The FPSA configuration: eight added 4-bit cells (per polarity) form an
    /// 8-bit weight.
    pub fn fpsa_add() -> Self {
        WeightScheme::Add {
            cells: 8,
            bits_per_cell: 4,
        }
    }

    /// Number of physical cells per weight.
    pub fn cells(&self) -> usize {
        match *self {
            WeightScheme::Splice { cells, .. } | WeightScheme::Add { cells, .. } => cells,
        }
    }

    /// Bits per cell.
    pub fn bits_per_cell(&self) -> u32 {
        match *self {
            WeightScheme::Splice { bits_per_cell, .. }
            | WeightScheme::Add { bits_per_cell, .. } => bits_per_cell,
        }
    }

    /// The largest integer representable by the composition.
    pub fn max_value(&self) -> u64 {
        let per_cell = (1u64 << self.bits_per_cell()) - 1;
        match *self {
            WeightScheme::Splice {
                cells,
                bits_per_cell,
            } => {
                let mut v = 0u64;
                for i in 0..cells {
                    v += per_cell << (bits_per_cell as usize * i);
                }
                v
            }
            WeightScheme::Add { cells, .. } => per_cell * cells as u64,
        }
    }

    /// Effective precision of the composition in bits.
    pub fn effective_bits(&self) -> f64 {
        ((self.max_value() + 1) as f64).log2()
    }

    /// The normalized deviation (standard deviation of the represented value
    /// divided by the representable range) for a per-cell standard deviation
    /// of `variation.sigma_levels` levels — Equation block of §7.2.
    pub fn normalized_deviation(&self, variation: CellVariation) -> f64 {
        let sigma = variation.sigma_levels;
        let range = self.max_value() as f64;
        if range == 0.0 {
            return 0.0;
        }
        match *self {
            WeightScheme::Splice {
                cells,
                bits_per_cell,
            } => {
                // value = Σ 2^(b i) X_i  =>  var = Σ 4^(b i) σ².
                let mut var = 0.0;
                for i in 0..cells {
                    let coeff = (1u64 << (bits_per_cell as usize * i)) as f64;
                    var += coeff * coeff * sigma * sigma;
                }
                var.sqrt() / range
            }
            WeightScheme::Add { cells, .. } => {
                // value = Σ X_i  =>  var = k σ²; range = k (2^b - 1).
                (cells as f64).sqrt() * sigma / range
            }
        }
    }

    /// Encode a normalized magnitude in `[0, 1]` into per-cell levels.
    pub fn encode(&self, magnitude: f64) -> Vec<u32> {
        let clamped = magnitude.clamp(0.0, 1.0);
        let target = (clamped * self.max_value() as f64).round() as u64;
        let per_cell = (1u64 << self.bits_per_cell()) - 1;
        match *self {
            WeightScheme::Splice {
                cells,
                bits_per_cell,
            } => (0..cells)
                .map(|i| ((target >> (bits_per_cell as usize * i)) & per_cell) as u32)
                .collect(),
            WeightScheme::Add { cells, .. } => {
                // Distribute the target evenly over the cells.
                let mut remaining = target;
                let mut out = Vec::with_capacity(cells);
                for i in 0..cells {
                    let cells_left = (cells - i) as u64;
                    let share = remaining.div_ceil(cells_left);
                    let level = share.min(per_cell);
                    out.push(level as u32);
                    remaining -= level;
                }
                out
            }
        }
    }

    /// Decode per-cell levels back into a normalized magnitude, without
    /// variation.
    pub fn decode(&self, levels: &[u32]) -> f64 {
        let value = match *self {
            WeightScheme::Splice { bits_per_cell, .. } => levels
                .iter()
                .enumerate()
                .map(|(i, &l)| (l as u64) << (bits_per_cell as usize * i))
                .sum::<u64>(),
            WeightScheme::Add { .. } => levels.iter().map(|&l| l as u64).sum::<u64>(),
        };
        value as f64 / self.max_value() as f64
    }

    /// Simulate programming the encoded levels onto real cells with Gaussian
    /// variation, and read back the effective normalized magnitude seen by
    /// the crossbar computation.
    pub fn decode_with_variation<R: Rng + ?Sized>(
        &self,
        levels: &[u32],
        variation: CellVariation,
        rng: &mut R,
    ) -> f64 {
        let per_cell = ((1u64 << self.bits_per_cell()) - 1) as f64;
        let noisy: Vec<f64> = levels
            .iter()
            .map(|&l| {
                let dist = Normal::new(l as f64, variation.sigma_levels);
                dist.sample(rng).clamp(0.0, per_cell)
            })
            .collect();
        let value = match *self {
            WeightScheme::Splice { bits_per_cell, .. } => noisy
                .iter()
                .enumerate()
                .map(|(i, v)| v * (1u64 << (bits_per_cell as usize * i)) as f64)
                .sum::<f64>(),
            WeightScheme::Add { .. } => noisy.iter().sum::<f64>(),
        };
        (value / self.max_value() as f64).clamp(0.0, 1.0)
    }

    /// Convenience: program a signed weight in `[-1, 1]` (two polarities, as
    /// in the PE's positive/negative column pair) and read back its noisy
    /// realization.
    pub fn realize_signed_weight<R: Rng + ?Sized>(
        &self,
        weight: f64,
        variation: CellVariation,
        rng: &mut R,
    ) -> f64 {
        let magnitude = weight.abs().min(1.0);
        let levels = self.encode(magnitude);
        let noisy = self.decode_with_variation(&levels, variation, rng);
        if weight >= 0.0 {
            noisy
        } else {
            -noisy
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn prime_and_fpsa_configurations_have_8_effective_bits() {
        assert!((WeightScheme::prime_splice().effective_bits() - 8.0).abs() < 0.01);
        // 8 added 4-bit cells span 0..=120, slightly below 7 bits of unique
        // levels but the paper pairs 8 positive + 8 negative cells for an
        // 8-bit signed weight.
        assert!(WeightScheme::fpsa_add().max_value() == 120);
    }

    #[test]
    fn splice_max_value_is_all_ones() {
        let s = WeightScheme::Splice {
            cells: 2,
            bits_per_cell: 4,
        };
        assert_eq!(s.max_value(), 255);
    }

    #[test]
    fn encode_decode_round_trip_without_variation() {
        for scheme in [WeightScheme::prime_splice(), WeightScheme::fpsa_add()] {
            for &m in &[0.0, 0.1, 0.5, 0.73, 1.0] {
                let levels = scheme.encode(m);
                assert_eq!(levels.len(), scheme.cells());
                let back = scheme.decode(&levels);
                assert!(
                    (back - m).abs() <= 1.0 / scheme.max_value() as f64 + 1e-12,
                    "{scheme:?}: {m} -> {back}"
                );
            }
        }
    }

    #[test]
    fn add_encoding_distributes_levels_evenly() {
        let scheme = WeightScheme::fpsa_add();
        let levels = scheme.encode(0.5);
        let max = *levels.iter().max().unwrap();
        let min = *levels.iter().min().unwrap();
        assert!(max - min <= 1, "levels should be balanced: {levels:?}");
    }

    #[test]
    fn splice_deviation_barely_improves_with_more_cells() {
        let v = CellVariation::measured();
        let one = WeightScheme::Splice {
            cells: 1,
            bits_per_cell: 4,
        }
        .normalized_deviation(v);
        let two = WeightScheme::Splice {
            cells: 2,
            bits_per_cell: 4,
        }
        .normalized_deviation(v);
        let four = WeightScheme::Splice {
            cells: 4,
            bits_per_cell: 4,
        }
        .normalized_deviation(v);
        // §7.2: the spliced deviation is almost equal to the single-cell one.
        assert!((two - one).abs() / one < 0.10);
        assert!((four - one).abs() / one < 0.10);
    }

    #[test]
    fn add_deviation_improves_with_sqrt_of_cells() {
        let v = CellVariation::measured();
        let one = WeightScheme::Add {
            cells: 1,
            bits_per_cell: 4,
        }
        .normalized_deviation(v);
        let four = WeightScheme::Add {
            cells: 4,
            bits_per_cell: 4,
        }
        .normalized_deviation(v);
        let sixteen = WeightScheme::Add {
            cells: 16,
            bits_per_cell: 4,
        }
        .normalized_deviation(v);
        assert!((one / four - 2.0).abs() < 1e-9);
        assert!((one / sixteen - 4.0).abs() < 1e-9);
    }

    #[test]
    fn add_beats_splice_for_same_cell_count() {
        let v = CellVariation::measured();
        for cells in [2usize, 4, 8, 16] {
            let splice = WeightScheme::Splice {
                cells,
                bits_per_cell: 4,
            }
            .normalized_deviation(v);
            let add = WeightScheme::Add {
                cells,
                bits_per_cell: 4,
            }
            .normalized_deviation(v);
            assert!(add < splice, "add should beat splice at {cells} cells");
        }
    }

    #[test]
    fn ideal_variation_has_zero_deviation() {
        assert_eq!(
            WeightScheme::fpsa_add().normalized_deviation(CellVariation::ideal()),
            0.0
        );
    }

    #[test]
    fn decode_with_variation_is_unbiased_on_average() {
        let mut rng = StdRng::seed_from_u64(42);
        let scheme = WeightScheme::fpsa_add();
        let levels = scheme.encode(0.5);
        let n = 2000;
        let mean: f64 = (0..n)
            .map(|_| scheme.decode_with_variation(&levels, CellVariation::measured(), &mut rng))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} should be near 0.5");
    }

    #[test]
    fn realize_signed_weight_preserves_sign() {
        let mut rng = StdRng::seed_from_u64(1);
        let scheme = WeightScheme::fpsa_add();
        let pos = scheme.realize_signed_weight(0.7, CellVariation::measured(), &mut rng);
        let neg = scheme.realize_signed_weight(-0.7, CellVariation::measured(), &mut rng);
        assert!(pos > 0.0);
        assert!(neg < 0.0);
    }

    #[test]
    fn monte_carlo_deviation_matches_analytic_formula() {
        let mut rng = StdRng::seed_from_u64(9);
        let variation = CellVariation::measured();
        for scheme in [WeightScheme::prime_splice(), WeightScheme::fpsa_add()] {
            let levels = scheme.encode(0.5);
            let n = 4000;
            let samples: Vec<f64> = (0..n)
                .map(|_| scheme.decode_with_variation(&levels, variation, &mut rng))
                .collect();
            let mean = samples.iter().sum::<f64>() / n as f64;
            let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
            let measured = var.sqrt();
            let analytic = scheme.normalized_deviation(variation);
            assert!(
                (measured - analytic).abs() / analytic < 0.15,
                "{scheme:?}: measured {measured}, analytic {analytic}"
            );
        }
    }
}
