//! The spiking memory block (SMB).
//!
//! SMBs are the on-chip buffers of the FPSA fabric. To keep the buffer area
//! small they store only spike *counts*; spike counters at the inputs and
//! spike generators at the outputs convert between spike trains on the
//! routing fabric and counts in the SRAM array. The internal memory is
//! bit-indexed so that any sampling-window size 2^n can be packed as n-bit
//! entries. SRAM (not ReRAM) is used because buffer traffic would exhaust
//! ReRAM's ~1e12 write endurance.

use crate::error::DeviceError;
use crate::sram::SramMacro;
use serde::{Deserialize, Serialize};

/// Specification of one spiking memory block.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpikingMemoryBlockSpec {
    /// The backing SRAM macro.
    pub sram: SramMacro,
    /// Number of spike-counter / spike-generator port pairs.
    pub ports: usize,
    /// Area of one counter + generator pair in µm².
    pub port_circuit_area_um2: f64,
    /// Extra latency of the count/generate conversion in ns.
    pub port_latency_ns: f64,
    /// Energy of one buffered value (count write + spike regeneration) in pJ.
    pub access_energy_pj: f64,
}

impl SpikingMemoryBlockSpec {
    /// The paper's 16 Kb SMB. The port circuitry is calibrated so the block
    /// totals the Table 1 figures (5421.9 µm², 0.578 ns, 1.150 pJ).
    pub fn fpsa_16kb() -> Self {
        let sram = SramMacro::kb16();
        let ports = 4;
        let remaining_area = 5421.900 - sram.area_um2();
        SpikingMemoryBlockSpec {
            sram,
            ports,
            port_circuit_area_um2: remaining_area / ports as f64,
            port_latency_ns: 0.578 - sram.access_latency_ns(),
            access_energy_pj: 1.150,
        }
    }

    /// Total block area in µm².
    pub fn area_um2(&self) -> f64 {
        self.sram.area_um2() + self.ports as f64 * self.port_circuit_area_um2
    }

    /// Access latency in ns (SRAM access plus count/spike conversion).
    pub fn access_latency_ns(&self) -> f64 {
        self.sram.access_latency_ns() + self.port_latency_ns
    }

    /// Capacity in bits.
    pub fn capacity_bits(&self) -> usize {
        self.sram.bits
    }

    /// How many values of `value_bits` precision the block can hold.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] if `value_bits` is zero.
    pub fn capacity_values(&self, value_bits: u32) -> Result<usize, DeviceError> {
        if value_bits == 0 {
            return Err(DeviceError::InvalidParameter {
                name: "value_bits",
                reason: "stored values must have at least one bit".into(),
            });
        }
        Ok(self.capacity_bits() / value_bits as usize)
    }

    /// Number of routing pins (spike inputs plus spike outputs).
    pub fn pin_count(&self) -> usize {
        2 * self.ports
    }
}

impl Default for SpikingMemoryBlockSpec {
    fn default() -> Self {
        Self::fpsa_16kb()
    }
}

/// Functional model of an SMB: stores spike counts per logical entry and
/// regenerates spike trains on demand.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpikingMemoryBlock {
    spec: SpikingMemoryBlockSpec,
    value_bits: u32,
    entries: Vec<u32>,
}

impl SpikingMemoryBlock {
    /// Create a block that stores values of `value_bits` precision.
    ///
    /// # Errors
    ///
    /// Propagates capacity errors from [`SpikingMemoryBlockSpec::capacity_values`].
    pub fn new(spec: SpikingMemoryBlockSpec, value_bits: u32) -> Result<Self, DeviceError> {
        let capacity = spec.capacity_values(value_bits)?;
        Ok(SpikingMemoryBlock {
            spec,
            value_bits,
            entries: vec![0; capacity],
        })
    }

    /// The specification this block was built from.
    pub fn spec(&self) -> &SpikingMemoryBlockSpec {
        &self.spec
    }

    /// Number of addressable entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the block has zero capacity (only possible for degenerate
    /// configurations where a value does not fit at all).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Count the spikes of `train` and store the count at `index`,
    /// saturating at the maximum representable count.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] for an out-of-range index.
    pub fn store_spike_train(&mut self, index: usize, train: &[bool]) -> Result<(), DeviceError> {
        let count = train.iter().filter(|s| **s).count() as u32;
        self.store_count(index, count)
    }

    /// Store a raw spike count at `index`, saturating at `2^value_bits - 1`.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] for an out-of-range index.
    pub fn store_count(&mut self, index: usize, count: u32) -> Result<(), DeviceError> {
        let max = ((1u64 << self.value_bits) - 1) as u32;
        let slot = self
            .entries
            .get_mut(index)
            .ok_or(DeviceError::InvalidParameter {
                name: "index",
                reason: format!("index {index} out of range"),
            })?;
        *slot = count.min(max);
        Ok(())
    }

    /// Read back a stored count.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] for an out-of-range index.
    pub fn load_count(&self, index: usize) -> Result<u32, DeviceError> {
        self.entries
            .get(index)
            .copied()
            .ok_or(DeviceError::InvalidParameter {
                name: "index",
                reason: format!("index {index} out of range"),
            })
    }

    /// Regenerate a spike train of length `window` with the stored count of
    /// spikes spread evenly across the window.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] for an out-of-range index.
    pub fn generate_spike_train(
        &self,
        index: usize,
        window: usize,
    ) -> Result<Vec<bool>, DeviceError> {
        let count = self.load_count(index)? as usize;
        let count = count.min(window);
        let mut train = vec![false; window];
        if count > 0 {
            // Evenly spaced spike placement (rate coding).
            for k in 0..count {
                let pos = k * window / count;
                train[pos] = true;
            }
        }
        Ok(train)
    }
}

/// Convenience constructor for the default 16 Kb SMB with 6-bit entries.
pub fn default_smb() -> SpikingMemoryBlock {
    SpikingMemoryBlock::new(SpikingMemoryBlockSpec::fpsa_16kb(), 6)
        .expect("default SMB configuration is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::TechnologyNode;

    #[test]
    fn smb_area_matches_table1() {
        let smb = SpikingMemoryBlockSpec::fpsa_16kb();
        assert!((smb.area_um2() - 5421.900).abs() < 1e-6);
    }

    #[test]
    fn smb_latency_matches_table1() {
        let smb = SpikingMemoryBlockSpec::fpsa_16kb();
        assert!((smb.access_latency_ns() - 0.578).abs() < 1e-9);
    }

    #[test]
    fn capacity_depends_on_value_bits() {
        let smb = SpikingMemoryBlockSpec::fpsa_16kb();
        assert_eq!(smb.capacity_values(8).unwrap(), 2048);
        assert_eq!(smb.capacity_values(6).unwrap(), 2730);
        assert!(smb.capacity_values(0).is_err());
    }

    #[test]
    fn store_and_load_round_trip() {
        let mut smb = default_smb();
        smb.store_count(10, 42).unwrap();
        assert_eq!(smb.load_count(10).unwrap(), 42);
    }

    #[test]
    fn store_saturates_at_value_bits() {
        let mut smb = default_smb();
        smb.store_count(0, 1000).unwrap();
        assert_eq!(smb.load_count(0).unwrap(), 63);
    }

    #[test]
    fn out_of_range_accesses_error() {
        let mut smb = default_smb();
        let n = smb.len();
        assert!(smb.store_count(n, 1).is_err());
        assert!(smb.load_count(n).is_err());
        assert!(smb.generate_spike_train(n, 64).is_err());
    }

    #[test]
    fn spike_train_round_trip_preserves_count() {
        let mut smb = default_smb();
        let train: Vec<bool> = (0..64).map(|i| i % 3 == 0).collect();
        let expected = train.iter().filter(|s| **s).count() as u32;
        smb.store_spike_train(5, &train).unwrap();
        let regenerated = smb.generate_spike_train(5, 64).unwrap();
        assert_eq!(regenerated.iter().filter(|s| **s).count() as u32, expected);
    }

    #[test]
    fn generated_train_never_exceeds_window() {
        let mut smb = default_smb();
        smb.store_count(1, 63).unwrap();
        let t = smb.generate_spike_train(1, 16).unwrap();
        assert_eq!(t.len(), 16);
        assert_eq!(t.iter().filter(|s| **s).count(), 16);
    }

    #[test]
    fn sram_macro_endurance_motivation_holds() {
        // ReRAM endurance is finite; SRAM is effectively unlimited for buffer
        // purposes — the block must therefore be SRAM-backed and its area
        // model must come from the SRAM macro model.
        let smb = SpikingMemoryBlockSpec::fpsa_16kb();
        let standalone = SramMacro::new(16 * 1024, TechnologyNode::n45()).unwrap();
        assert!(smb.area_um2() > standalone.area_um2());
    }
}
