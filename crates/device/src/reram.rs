//! ReRAM cell and crossbar models.
//!
//! A ReRAM (resistive RAM) cell stores information in its conductance. A
//! crossbar of such cells computes an analog vector-matrix multiplication in
//! place: an input voltage vector applied to the rows produces, on each
//! column, a current equal to the dot product of the inputs with that
//! column's conductances (`I = G V`, Figure 1 of the paper).
//!
//! The FPSA PE uses a 256x512 physical crossbar (two physical columns per
//! logical column for the positive/negative weight split) and stacks eight
//! 4-bit cells per weight, summed in parallel (the *add* method), to realise
//! an 8-bit weight with low effective variation.

use crate::error::DeviceError;
use crate::tech::TechnologyNode;
use serde::{Deserialize, Serialize};

/// A multi-level ReRAM cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReramCell {
    /// Number of programmable conductance levels (16 for the paper's 4-bit cell).
    pub levels: u32,
    /// Minimum (off-state) conductance in siemens.
    pub g_min: f64,
    /// Maximum (on-state) conductance in siemens.
    pub g_max: f64,
    /// Write endurance in programming cycles (~1e12 for ReRAM, the reason the
    /// paper keeps SRAM for buffers).
    pub endurance_writes: f64,
}

impl ReramCell {
    /// The 4-bit (16 level) cell used by the FPSA configuration.
    pub fn four_bit() -> Self {
        ReramCell {
            levels: 16,
            g_min: 1.0 / 1_000_000.0,
            g_max: 1.0 / 10_000.0,
            endurance_writes: 1e12,
        }
    }

    /// Number of bits a single cell stores.
    pub fn bits(&self) -> u32 {
        assert!(self.levels >= 2, "a cell needs at least two levels");
        (self.levels as f64).log2().round() as u32
    }

    /// Conductance corresponding to a given level.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] if `level` is not smaller
    /// than `self.levels`.
    pub fn conductance_for_level(&self, level: u32) -> Result<f64, DeviceError> {
        if level >= self.levels {
            return Err(DeviceError::InvalidParameter {
                name: "level",
                reason: format!("level {level} exceeds cell levels {}", self.levels),
            });
        }
        let step = (self.g_max - self.g_min) / (self.levels - 1) as f64;
        Ok(self.g_min + step * level as f64)
    }

    /// The conductance step between adjacent levels.
    pub fn level_step(&self) -> f64 {
        (self.g_max - self.g_min) / (self.levels - 1) as f64
    }

    /// Quantize an unsigned normalized value in `[0, 1]` to the nearest level.
    pub fn quantize(&self, normalized: f64) -> u32 {
        let clamped = normalized.clamp(0.0, 1.0);
        (clamped * (self.levels - 1) as f64).round() as u32
    }
}

impl Default for ReramCell {
    fn default() -> Self {
        Self::four_bit()
    }
}

/// Geometry and cost model of an ReRAM crossbar array.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrossbarSpec {
    /// Number of rows (inputs).
    pub rows: usize,
    /// Number of physical columns (outputs).
    pub cols: usize,
    /// The cell technology used at every cross point.
    pub cell: ReramCell,
    /// Technology node for area scaling.
    pub tech: TechnologyNode,
}

impl CrossbarSpec {
    /// The paper's 256x512 physical crossbar at 45 nm with 4-bit cells.
    pub fn fpsa_256x512() -> Self {
        CrossbarSpec {
            rows: 256,
            cols: 512,
            cell: ReramCell::four_bit(),
            tech: TechnologyNode::n45(),
        }
    }

    /// Create a crossbar specification with explicit dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] if either dimension is zero.
    pub fn new(
        rows: usize,
        cols: usize,
        cell: ReramCell,
        tech: TechnologyNode,
    ) -> Result<Self, DeviceError> {
        if rows == 0 {
            return Err(DeviceError::InvalidParameter {
                name: "rows",
                reason: "must be non-zero".into(),
            });
        }
        if cols == 0 {
            return Err(DeviceError::InvalidParameter {
                name: "cols",
                reason: "must be non-zero".into(),
            });
        }
        Ok(CrossbarSpec {
            rows,
            cols,
            cell,
            tech,
        })
    }

    /// Number of cells in the array.
    pub fn cell_count(&self) -> usize {
        self.rows * self.cols
    }

    /// Array area in µm² (cell-dominated; the peripherals are modelled
    /// separately in [`crate::circuits`]).
    pub fn area_um2(&self) -> f64 {
        self.cell_count() as f64 * self.tech.reram_cell_area_um2
    }

    /// Dynamic energy of one charging cycle over the whole array, in pJ.
    ///
    /// Calibrated so that the paper's 256x512 array dissipates 0.131 pJ per
    /// cycle (Table 1).
    pub fn cycle_energy_pj(&self) -> f64 {
        0.131 * self.cell_count() as f64 / (256.0 * 512.0)
    }

    /// The resistive-capacitive settling delay of the array in ns. The paper
    /// treats it as negligible (~10 ps for a 100x100 array); we scale it with
    /// the larger array dimension but it stays well below the neuron latency.
    pub fn rc_delay_ns(&self) -> f64 {
        0.01 * (self.rows.max(self.cols) as f64 / 100.0)
    }

    /// Analog dot-product computed by the array for a dense input vector, as
    /// a functional reference: `I_j = sum_i G[j][i] * V[i]`.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] when the dimensions of
    /// `conductance` or `voltages` do not match the array.
    pub fn dot_product(
        &self,
        conductance: &[Vec<f64>],
        voltages: &[f64],
    ) -> Result<Vec<f64>, DeviceError> {
        if voltages.len() != self.rows {
            return Err(DeviceError::InvalidParameter {
                name: "voltages",
                reason: format!("expected {} rows, got {}", self.rows, voltages.len()),
            });
        }
        if conductance.len() != self.cols {
            return Err(DeviceError::InvalidParameter {
                name: "conductance",
                reason: format!("expected {} columns, got {}", self.cols, conductance.len()),
            });
        }
        let mut currents = Vec::with_capacity(self.cols);
        for column in conductance {
            if column.len() != self.rows {
                return Err(DeviceError::InvalidParameter {
                    name: "conductance",
                    reason: format!(
                        "expected {} rows per column, got {}",
                        self.rows,
                        column.len()
                    ),
                });
            }
            let i: f64 = column.iter().zip(voltages).map(|(g, v)| g * v).sum();
            currents.push(i);
        }
        Ok(currents)
    }
}

impl Default for CrossbarSpec {
    fn default() -> Self {
        Self::fpsa_256x512()
    }
}

/// A programmed crossbar: a [`CrossbarSpec`] plus a conductance matrix,
/// stored column-major (one vector of row conductances per physical column).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgrammedCrossbar {
    spec: CrossbarSpec,
    conductance: Vec<Vec<f64>>,
}

impl ProgrammedCrossbar {
    /// Create a crossbar with all cells at the minimum conductance.
    pub fn new(spec: CrossbarSpec) -> Self {
        let conductance = vec![vec![spec.cell.g_min; spec.rows]; spec.cols];
        ProgrammedCrossbar { spec, conductance }
    }

    /// The geometry of this crossbar.
    pub fn spec(&self) -> &CrossbarSpec {
        &self.spec
    }

    /// Program one cell to a given level.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::IndexOutOfBounds`] for out-of-range indices and
    /// propagates level errors from [`ReramCell::conductance_for_level`].
    pub fn program_level(&mut self, row: usize, col: usize, level: u32) -> Result<(), DeviceError> {
        if row >= self.spec.rows || col >= self.spec.cols {
            return Err(DeviceError::IndexOutOfBounds {
                row,
                col,
                dims: (self.spec.rows, self.spec.cols),
            });
        }
        let g = self.spec.cell.conductance_for_level(level)?;
        self.conductance[col][row] = g;
        Ok(())
    }

    /// Read back the programmed conductance of a cell.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::IndexOutOfBounds`] for out-of-range indices.
    pub fn conductance(&self, row: usize, col: usize) -> Result<f64, DeviceError> {
        if row >= self.spec.rows || col >= self.spec.cols {
            return Err(DeviceError::IndexOutOfBounds {
                row,
                col,
                dims: (self.spec.rows, self.spec.cols),
            });
        }
        Ok(self.conductance[col][row])
    }

    /// The full conductance matrix (column-major).
    pub fn conductance_matrix(&self) -> &[Vec<f64>] {
        &self.conductance
    }

    /// Analog column currents for a row-voltage vector.
    ///
    /// # Errors
    ///
    /// See [`CrossbarSpec::dot_product`].
    pub fn column_currents(&self, voltages: &[f64]) -> Result<Vec<f64>, DeviceError> {
        self.spec.dot_product(&self.conductance, voltages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_bit_cell_has_16_levels_and_4_bits() {
        let c = ReramCell::four_bit();
        assert_eq!(c.levels, 16);
        assert_eq!(c.bits(), 4);
    }

    #[test]
    fn conductance_levels_are_monotone() {
        let c = ReramCell::four_bit();
        let mut last = -1.0;
        for level in 0..c.levels {
            let g = c.conductance_for_level(level).unwrap();
            assert!(g > last);
            last = g;
        }
    }

    #[test]
    fn conductance_rejects_out_of_range_level() {
        let c = ReramCell::four_bit();
        assert!(c.conductance_for_level(16).is_err());
    }

    #[test]
    fn quantize_clamps_and_rounds() {
        let c = ReramCell::four_bit();
        assert_eq!(c.quantize(-0.3), 0);
        assert_eq!(c.quantize(0.0), 0);
        assert_eq!(c.quantize(1.0), 15);
        assert_eq!(c.quantize(2.0), 15);
        assert_eq!(c.quantize(0.5), 8);
    }

    #[test]
    fn fpsa_crossbar_area_matches_table1() {
        let xb = CrossbarSpec::fpsa_256x512();
        // Table 1: 1061.683 um^2 for a 256x512 array of 4F^2 cells.
        assert!((xb.area_um2() - 1061.683).abs() < 1.0);
    }

    #[test]
    fn crossbar_cycle_energy_matches_table1() {
        let xb = CrossbarSpec::fpsa_256x512();
        assert!((xb.cycle_energy_pj() - 0.131).abs() < 1e-9);
    }

    #[test]
    fn crossbar_rc_delay_is_negligible() {
        let xb = CrossbarSpec::fpsa_256x512();
        assert!(xb.rc_delay_ns() < 0.1);
    }

    #[test]
    fn crossbar_rejects_zero_dimensions() {
        assert!(CrossbarSpec::new(0, 4, ReramCell::four_bit(), TechnologyNode::n45()).is_err());
        assert!(CrossbarSpec::new(4, 0, ReramCell::four_bit(), TechnologyNode::n45()).is_err());
    }

    #[test]
    fn dot_product_matches_manual_computation() {
        let spec = CrossbarSpec::new(2, 2, ReramCell::four_bit(), TechnologyNode::n45()).unwrap();
        let g = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let v = vec![0.5, 0.25];
        let i = spec.dot_product(&g, &v).unwrap();
        assert!((i[0] - (1.0 * 0.5 + 2.0 * 0.25)).abs() < 1e-12);
        assert!((i[1] - (3.0 * 0.5 + 4.0 * 0.25)).abs() < 1e-12);
    }

    #[test]
    fn dot_product_validates_dimensions() {
        let spec = CrossbarSpec::new(2, 2, ReramCell::four_bit(), TechnologyNode::n45()).unwrap();
        assert!(spec.dot_product(&[vec![1.0, 2.0]], &[0.5, 0.5]).is_err());
        assert!(spec
            .dot_product(&[vec![1.0, 2.0], vec![3.0, 4.0]], &[0.5])
            .is_err());
    }

    #[test]
    fn programmed_crossbar_program_and_read_back() {
        let spec = CrossbarSpec::new(4, 4, ReramCell::four_bit(), TechnologyNode::n45()).unwrap();
        let mut xb = ProgrammedCrossbar::new(spec);
        xb.program_level(1, 2, 15).unwrap();
        let g = xb.conductance(1, 2).unwrap();
        assert!((g - ReramCell::four_bit().g_max).abs() < 1e-15);
        assert!(xb.program_level(4, 0, 1).is_err());
        assert!(xb.conductance(0, 4).is_err());
    }

    #[test]
    fn programmed_crossbar_currents_scale_with_levels() {
        let spec = CrossbarSpec::new(2, 1, ReramCell::four_bit(), TechnologyNode::n45()).unwrap();
        let mut xb = ProgrammedCrossbar::new(spec);
        let v = vec![1.0, 1.0];
        let before = xb.column_currents(&v).unwrap()[0];
        xb.program_level(0, 0, 15).unwrap();
        xb.program_level(1, 0, 15).unwrap();
        let after = xb.column_currents(&v).unwrap()[0];
        assert!(after > before);
    }
}
