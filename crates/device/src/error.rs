//! Error type shared by the device-level models.

use std::error::Error;
use std::fmt;

/// Errors produced by device-level model construction and evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceError {
    /// A parameter was outside its physically meaningful range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human readable description of the constraint that was violated.
        reason: String,
    },
    /// A weight value cannot be represented by the requested cell configuration.
    UnrepresentableWeight {
        /// The weight that was requested.
        value: f64,
        /// The representable range.
        range: (f64, f64),
    },
    /// A crossbar index was out of bounds.
    IndexOutOfBounds {
        /// The offending row index.
        row: usize,
        /// The offending column index.
        col: usize,
        /// Crossbar dimensions (rows, cols).
        dims: (usize, usize),
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            DeviceError::UnrepresentableWeight { value, range } => write!(
                f,
                "weight {value} cannot be represented in range [{}, {}]",
                range.0, range.1
            ),
            DeviceError::IndexOutOfBounds { row, col, dims } => write!(
                f,
                "crossbar index ({row}, {col}) out of bounds for {}x{} array",
                dims.0, dims.1
            ),
        }
    }
}

impl Error for DeviceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_invalid_parameter() {
        let e = DeviceError::InvalidParameter {
            name: "rows",
            reason: "must be non-zero".into(),
        };
        assert!(e.to_string().contains("rows"));
        assert!(e.to_string().contains("non-zero"));
    }

    #[test]
    fn display_unrepresentable_weight() {
        let e = DeviceError::UnrepresentableWeight {
            value: 2.0,
            range: (-1.0, 1.0),
        };
        assert!(e.to_string().contains("2"));
    }

    #[test]
    fn display_index_out_of_bounds() {
        let e = DeviceError::IndexOutOfBounds {
            row: 300,
            col: 10,
            dims: (256, 256),
        };
        assert!(e.to_string().contains("300"));
        assert!(e.to_string().contains("256"));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DeviceError>();
    }
}
