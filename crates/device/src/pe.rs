//! The FPSA processing element (PE): composition and cost model.
//!
//! A PE is an ReRAM crossbar surrounded by the simplified spiking peripherals
//! of [`crate::circuits`]. Its logical function is a low-precision
//! vector-matrix multiplication followed by ReLU (Equation 6 of the paper):
//! the input spike counts are multiplied by the stored weight matrix, and the
//! spike subtracters clamp negative results to zero.
//!
//! The cost model composes per-component figures into the Table 1 PE row and
//! the Table 2 comparison against PRIME.

use crate::circuits::{ChargingUnit, CircuitCost, NeuronUnit, SpikeSubtracter};
use crate::reram::CrossbarSpec;
use crate::tech::units;
use serde::{Deserialize, Serialize};

/// Published Table 2 values, kept only for regression tests and reporting.
pub mod published {
    /// FPSA PE area in µm² (Table 2).
    pub const FPSA_PE_AREA_UM2: f64 = 22051.414;
    /// FPSA PE latency for an 8-bit-weight, 6-bit-I/O 256x256 VMM in ns.
    pub const FPSA_PE_LATENCY_NS: f64 = 156.4;
    /// FPSA computational density in TOPS/mm².
    pub const FPSA_DENSITY_TOPS_MM2: f64 = 38.004;
    /// PRIME PE area in µm² (Table 2).
    pub const PRIME_PE_AREA_UM2: f64 = 34802.204;
    /// PRIME PE latency in ns (Table 2).
    pub const PRIME_PE_LATENCY_NS: f64 = 3064.7;
    /// PRIME computational density in TOPS/mm².
    pub const PRIME_DENSITY_TOPS_MM2: f64 = 1.229;
}

/// Full specification of an FPSA processing element.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcessingElementSpec {
    /// The physical crossbar geometry (rows x physical columns).
    pub crossbar: CrossbarSpec,
    /// Number of parallel crossbar slices stacked per weight (the *add*
    /// method uses 8 four-bit cells per 8-bit weight).
    pub cells_per_weight: usize,
    /// Row driver model.
    pub charging_unit: ChargingUnit,
    /// Column neuron model.
    pub neuron_unit: NeuronUnit,
    /// Output subtracter model.
    pub subtracter: SpikeSubtracter,
    /// Bits of I/O precision; the sampling window is `2^io_bits` cycles.
    pub io_bits: u32,
    /// Bits of weight precision.
    pub weight_bits: u32,
}

impl ProcessingElementSpec {
    /// The paper's default FPSA PE: 256x512 physical crossbar (256x256
    /// logical), 8 parallel 4-bit cells per weight, 6-bit I/O, 8-bit weights.
    pub fn fpsa_default() -> Self {
        ProcessingElementSpec {
            crossbar: CrossbarSpec::fpsa_256x512(),
            cells_per_weight: 8,
            charging_unit: ChargingUnit::n45(),
            neuron_unit: NeuronUnit::n45(),
            subtracter: SpikeSubtracter::n45(),
            io_bits: 6,
            weight_bits: 8,
        }
    }

    /// Logical rows (inputs) of the PE.
    pub fn logical_rows(&self) -> usize {
        self.crossbar.rows
    }

    /// Logical columns (outputs): two physical columns (positive/negative)
    /// form one logical column.
    pub fn logical_cols(&self) -> usize {
        self.crossbar.cols / 2
    }

    /// The sampling window Γ in cycles (`2^io_bits`).
    pub fn sampling_window(&self) -> u64 {
        1u64 << self.io_bits
    }

    /// The pipeline clock period in ns: the serial path through charging
    /// unit, crossbar RC settling, neuron integration and spike subtraction.
    pub fn clock_period_ns(&self) -> f64 {
        self.charging_unit.latency_ns
            + self.crossbar.rc_delay_ns().min(0.0) // RC delay is treated as negligible (paper §1)
            + self.neuron_unit.latency_ns
            + self.subtracter.latency_ns
    }

    /// Latency of one full vector-matrix multiplication in ns
    /// (sampling window x clock period).
    pub fn vmm_latency_ns(&self) -> f64 {
        self.sampling_window() as f64 * self.clock_period_ns()
    }

    /// Area breakdown of the PE, mirroring Table 1's rows.
    pub fn cost_breakdown(&self) -> PeCostBreakdown {
        let charging = self.charging_unit.cost().replicated(self.crossbar.rows);
        let crossbars = CircuitCost::new(
            self.crossbar.area_um2() * self.cells_per_weight as f64,
            self.crossbar.cycle_energy_pj() * self.cells_per_weight as f64,
            self.crossbar.rc_delay_ns(),
        );
        let neurons = self.neuron_unit.cost().replicated(self.crossbar.cols);
        let subtracters = self.subtracter.cost().replicated(self.crossbar.cols / 2);
        PeCostBreakdown {
            charging_units: charging,
            crossbars,
            neuron_units: neurons,
            subtracters,
        }
    }

    /// Total PE area in µm².
    pub fn area_um2(&self) -> f64 {
        self.cost_breakdown().total().area_um2
    }

    /// Total PE area in mm².
    pub fn area_mm2(&self) -> f64 {
        units::um2_to_mm2(self.area_um2())
    }

    /// Per-cycle dynamic energy in pJ.
    pub fn cycle_energy_pj(&self) -> f64 {
        self.cost_breakdown().total().energy_pj
    }

    /// Energy of one full VMM in pJ.
    pub fn vmm_energy_pj(&self) -> f64 {
        self.cycle_energy_pj() * self.sampling_window() as f64
    }

    /// Number of arithmetic operations performed by one VMM
    /// (a multiply and an add per logical cross point).
    pub fn ops_per_vmm(&self) -> f64 {
        2.0 * self.logical_rows() as f64 * self.logical_cols() as f64
    }

    /// Peak throughput of one PE in operations per second.
    pub fn peak_ops_per_second(&self) -> f64 {
        self.ops_per_vmm() / units::ns_to_s(self.vmm_latency_ns())
    }

    /// Computational density in TOPS per mm² — the headline Table 2 metric.
    pub fn computational_density_tops_per_mm2(&self) -> f64 {
        units::ops_to_tops(self.peak_ops_per_second()) / self.area_mm2()
    }

    /// Weight storage capacity of the PE in 8-bit weights (one logical
    /// cross point stores one weight, regardless of how many physical cells
    /// implement it).
    pub fn weight_capacity(&self) -> usize {
        self.logical_rows() * self.logical_cols()
    }

    /// Number of routing pins the PE exposes (one per logical input plus one
    /// per logical output spike signal). Used by the routing architecture to
    /// size connection boxes.
    pub fn pin_count(&self) -> usize {
        self.logical_rows() + self.logical_cols()
    }
}

impl Default for ProcessingElementSpec {
    fn default() -> Self {
        Self::fpsa_default()
    }
}

/// The Table 1 style per-component breakdown of one PE.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeCostBreakdown {
    /// All charging units (one per row).
    pub charging_units: CircuitCost,
    /// All crossbar slices (one per cell of the add method).
    pub crossbars: CircuitCost,
    /// All neuron units (one per physical column).
    pub neuron_units: CircuitCost,
    /// All spike subtracters (one per logical column).
    pub subtracters: CircuitCost,
}

impl PeCostBreakdown {
    /// Aggregate cost of the whole PE. Areas and energies add; the latency is
    /// the serial path through one representative of each component.
    pub fn total(&self) -> CircuitCost {
        CircuitCost {
            area_um2: self.charging_units.area_um2
                + self.crossbars.area_um2
                + self.neuron_units.area_um2
                + self.subtracters.area_um2,
            energy_pj: self.charging_units.energy_pj
                + self.crossbars.energy_pj
                + self.neuron_units.energy_pj
                + self.subtracters.energy_pj,
            latency_ns: self.charging_units.latency_ns
                + self.neuron_units.latency_ns
                + self.subtracters.latency_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_pe_geometry() {
        let pe = ProcessingElementSpec::fpsa_default();
        assert_eq!(pe.logical_rows(), 256);
        assert_eq!(pe.logical_cols(), 256);
        assert_eq!(pe.sampling_window(), 64);
        assert_eq!(pe.weight_capacity(), 256 * 256);
        assert_eq!(pe.pin_count(), 512);
    }

    #[test]
    fn clock_period_matches_table1() {
        let pe = ProcessingElementSpec::fpsa_default();
        assert!((pe.clock_period_ns() - 2.443).abs() < 1e-9);
    }

    #[test]
    fn vmm_latency_matches_table2() {
        let pe = ProcessingElementSpec::fpsa_default();
        let latency = pe.vmm_latency_ns();
        // 64 cycles x 2.443 ns = 156.35 ns; published as 156.4 ns.
        assert!((latency - published::FPSA_PE_LATENCY_NS).abs() < 0.5);
    }

    #[test]
    fn area_matches_table1_and_table2() {
        let pe = ProcessingElementSpec::fpsa_default();
        let area = pe.area_um2();
        assert!(
            (area - published::FPSA_PE_AREA_UM2).abs() / published::FPSA_PE_AREA_UM2 < 0.01,
            "area {area} should be within 1% of published {}",
            published::FPSA_PE_AREA_UM2
        );
    }

    #[test]
    fn computational_density_matches_table2() {
        let pe = ProcessingElementSpec::fpsa_default();
        let density = pe.computational_density_tops_per_mm2();
        assert!(
            (density - published::FPSA_DENSITY_TOPS_MM2).abs() / published::FPSA_DENSITY_TOPS_MM2
                < 0.02,
            "density {density} should be within 2% of published {}",
            published::FPSA_DENSITY_TOPS_MM2
        );
    }

    #[test]
    fn density_improvement_over_prime_is_about_31x() {
        let pe = ProcessingElementSpec::fpsa_default();
        let improvement =
            pe.computational_density_tops_per_mm2() / published::PRIME_DENSITY_TOPS_MM2;
        assert!(improvement > 28.0 && improvement < 34.0);
    }

    #[test]
    fn breakdown_totals_are_consistent() {
        let pe = ProcessingElementSpec::fpsa_default();
        let b = pe.cost_breakdown();
        let t = b.total();
        assert!((t.area_um2 - pe.area_um2()).abs() < 1e-9);
        assert!((t.energy_pj - pe.cycle_energy_pj()).abs() < 1e-9);
    }

    #[test]
    fn smaller_io_precision_reduces_latency_exponentially() {
        let mut pe = ProcessingElementSpec::fpsa_default();
        let l6 = pe.vmm_latency_ns();
        pe.io_bits = 4;
        let l4 = pe.vmm_latency_ns();
        assert!((l6 / l4 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn energy_scales_with_sampling_window() {
        let pe = ProcessingElementSpec::fpsa_default();
        assert!((pe.vmm_energy_pj() - pe.cycle_energy_pj() * 64.0).abs() < 1e-9);
    }

    #[test]
    fn ops_per_vmm_counts_macs_as_two_ops() {
        let pe = ProcessingElementSpec::fpsa_default();
        assert!((pe.ops_per_vmm() - 2.0 * 256.0 * 256.0).abs() < 1e-9);
    }
}
