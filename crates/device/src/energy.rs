//! Energy accounting helpers.
//!
//! Energy numbers in this crate are reported in picojoules per event; the
//! [`EnergyLedger`] accumulates events into a chip-level estimate that the
//! performance simulator can convert into power.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An accumulating ledger of energy by category.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyLedger {
    entries: BTreeMap<String, f64>,
}

impl EnergyLedger {
    /// Create an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `energy_pj` picojoules to `category`.
    pub fn add(&mut self, category: &str, energy_pj: f64) {
        *self.entries.entry(category.to_string()).or_insert(0.0) += energy_pj;
    }

    /// Total energy across all categories in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.entries.values().sum()
    }

    /// Total energy in millijoules.
    pub fn total_mj(&self) -> f64 {
        self.total_pj() * 1e-9
    }

    /// Energy recorded for one category, or zero if absent.
    pub fn category_pj(&self, category: &str) -> f64 {
        self.entries.get(category).copied().unwrap_or(0.0)
    }

    /// Iterate over `(category, picojoules)` entries in category order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Average power in watts given a runtime in nanoseconds.
    ///
    /// Returns `None` when the runtime is not positive.
    pub fn average_power_w(&self, runtime_ns: f64) -> Option<f64> {
        if runtime_ns <= 0.0 {
            return None;
        }
        Some(self.total_pj() * 1e-12 / (runtime_ns * 1e-9))
    }

    /// Merge another ledger into this one.
    pub fn merge(&mut self, other: &EnergyLedger) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ledger_is_zero() {
        let l = EnergyLedger::new();
        assert_eq!(l.total_pj(), 0.0);
        assert_eq!(l.category_pj("pe"), 0.0);
    }

    #[test]
    fn add_accumulates_per_category() {
        let mut l = EnergyLedger::new();
        l.add("pe", 10.0);
        l.add("pe", 5.0);
        l.add("routing", 2.0);
        assert_eq!(l.category_pj("pe"), 15.0);
        assert_eq!(l.category_pj("routing"), 2.0);
        assert_eq!(l.total_pj(), 17.0);
    }

    #[test]
    fn average_power_requires_positive_runtime() {
        let mut l = EnergyLedger::new();
        l.add("pe", 1000.0); // 1 nJ
        assert!(l.average_power_w(0.0).is_none());
        // 1 nJ over 1 us = 1 mW.
        let p = l.average_power_w(1000.0).unwrap();
        assert!((p - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn merge_combines_categories() {
        let mut a = EnergyLedger::new();
        a.add("pe", 1.0);
        let mut b = EnergyLedger::new();
        b.add("pe", 2.0);
        b.add("smb", 3.0);
        a.merge(&b);
        assert_eq!(a.category_pj("pe"), 3.0);
        assert_eq!(a.category_pj("smb"), 3.0);
    }

    #[test]
    fn iteration_is_ordered_by_category() {
        let mut l = EnergyLedger::new();
        l.add("z", 1.0);
        l.add("a", 1.0);
        let keys: Vec<&str> = l.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "z"]);
    }
}
