//! Property-based invariants of the PathFinder router: whatever random
//! netlist it gets, a result that claims routability really fits every
//! channel, the reported occupancy matches the trees, and every routing
//! tree actually connects its source to all its sinks.

use fpsa_arch::{ArchitectureConfig, Fabric};
use fpsa_mapper::{Net, Netlist, NetlistBlock};
use fpsa_placeroute::{Placer, PlacerConfig, RouteEdge, Router, RoutingResult};
use proptest::prelude::*;
use std::collections::HashMap;

/// Build a synthetic all-PE netlist from raw proptest draws: every inner
/// vector becomes one net (first element the source, the rest sinks), with
/// indices folded into the block range.
fn netlist_from(blocks: usize, raw_nets: &[Vec<usize>]) -> Netlist {
    let block_list: Vec<NetlistBlock> = (0..blocks)
        .map(|i| NetlistBlock::Pe {
            group: i,
            duplicate: 0,
        })
        .collect();
    let nets: Vec<Net> = raw_nets
        .iter()
        .map(|spec| {
            let source = spec[0] % blocks;
            let mut sinks: Vec<usize> = spec[1..].iter().map(|&s| s % blocks).collect();
            sinks.sort_unstable();
            sinks.dedup();
            Net {
                source,
                sinks,
                values_per_activation: 1,
            }
        })
        .collect();
    Netlist::from_parts("property", block_list, nets)
}

/// Recompute per-channel occupancy from the routing trees themselves.
fn occupancy_from_trees(result: &RoutingResult) -> HashMap<RouteEdge, usize> {
    let mut occupancy: HashMap<RouteEdge, usize> = HashMap::new();
    for tree in &result.trees {
        for &edge in &tree.edges {
            *occupancy.entry(edge).or_default() += 1;
        }
    }
    occupancy
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Routed designs never claim `is_routable()` while any channel exceeds
    /// its capacity, and the reported peak matches the trees exactly.
    #[test]
    fn routability_claims_match_the_trees(
        blocks in 4usize..24,
        raw_nets in collection::vec(collection::vec(0usize..1000, 2..6), 1..12),
        width in 1usize..5,
    ) {
        let netlist = netlist_from(blocks, &raw_nets);
        let config = ArchitectureConfig::fpsa();
        let fabric = Fabric::with_pe_count(config.clone(), netlist.len());
        let placement = Placer::new(PlacerConfig::fast()).place(&netlist, &fabric);
        let mut routing_arch = config.routing;
        routing_arch.channel_width = width;
        let result = Router::new(routing_arch).route(&netlist, &placement);

        let occupancy = occupancy_from_trees(&result);
        let recomputed_peak = occupancy.values().copied().max().unwrap_or(0);
        prop_assert_eq!(
            result.peak_channel_occupancy, recomputed_peak,
            "reported peak must match the trees"
        );
        let recomputed_overused = occupancy.values().filter(|&&o| o > width).count();
        prop_assert_eq!(result.overused_channels, recomputed_overused);
        if result.is_routable() {
            for (edge, occupancy) in &occupancy {
                prop_assert!(
                    *occupancy <= width,
                    "routable result but channel {:?} holds {} > {}",
                    edge, occupancy, width
                );
            }
        }
        let segments: usize = occupancy.values().sum();
        prop_assert_eq!(result.total_channel_segments, segments);
    }

    /// Every routing tree is connected: the source reaches all sinks.
    #[test]
    fn every_tree_connects_source_to_all_sinks(
        blocks in 4usize..24,
        raw_nets in collection::vec(collection::vec(0usize..1000, 2..6), 1..12),
    ) {
        let netlist = netlist_from(blocks, &raw_nets);
        let config = ArchitectureConfig::fpsa();
        let fabric = Fabric::with_pe_count(config.clone(), netlist.len());
        let placement = Placer::new(PlacerConfig::fast()).place(&netlist, &fabric);
        let result = Router::new(config.routing).route(&netlist, &placement);

        prop_assert_eq!(result.trees.len(), netlist.nets().len());
        prop_assert_eq!(result.connection_hops.len(), netlist.connection_count());
        for tree in &result.trees {
            prop_assert!(
                tree.is_connected(),
                "net {} tree with {} edges does not reach all sinks",
                tree.net,
                tree.edges.len()
            );
            // Hop profiles agree with the tree: zero exactly when the sink
            // shares the source tile.
            for (&sink, &hops) in tree.sinks.iter().zip(&tree.sink_hops) {
                prop_assert_eq!(hops == 0, sink == tree.source);
            }
        }
    }
}
