//! Property-based correctness of warm-started placement.
//!
//! Whatever random netlist (and donor) the annealer is seeded from, the
//! warm-started result must be exactly as trustworthy as a cold one:
//!
//! * **legal** — every block sits on a distinct slot of its own kind (PEs on
//!   PE slots), inside the fabric;
//! * **routable input** — the deterministic router accepts the placement and
//!   produces connected trees, exactly as it does for cold placements;
//! * **deterministic** — the same (netlist, donor, seed) warm start
//!   reproduces the identical placement;
//! * **exact seeds** — an exact position seed reproduces the donor with zero
//!   anneal moves (the compile cache's on-disk fast path).

use fpsa_arch::{ArchitectureConfig, BlockKind, Fabric};
use fpsa_mapper::{Net, Netlist, NetlistBlock};
use fpsa_placeroute::{Placer, PlacerConfig, Router, WarmStart};
use proptest::prelude::*;
use std::collections::HashSet;

/// Build a synthetic all-PE netlist from raw proptest draws (the same
/// folding scheme as the router property suite).
fn netlist_from(name: &str, blocks: usize, raw_nets: &[Vec<usize>]) -> Netlist {
    let block_list: Vec<NetlistBlock> = (0..blocks)
        .map(|i| NetlistBlock::Pe {
            group: i,
            duplicate: 0,
        })
        .collect();
    let nets: Vec<Net> = raw_nets
        .iter()
        .map(|spec| {
            let source = spec[0] % blocks;
            let mut sinks: Vec<usize> = spec[1..].iter().map(|&s| s % blocks).collect();
            sinks.sort_unstable();
            sinks.dedup();
            Net {
                source,
                sinks,
                values_per_activation: 1,
            }
        })
        .collect();
    Netlist::from_parts(name, block_list, nets)
}

/// Every block on a distinct PE slot of the fabric.
fn assert_legal(netlist: &Netlist, fabric: &Fabric, positions: &[(usize, usize)]) {
    let pe_slots: HashSet<(usize, usize)> = fabric
        .slots_of(BlockKind::Pe)
        .into_iter()
        .map(|s| fabric.dims.coord(s))
        .collect();
    assert_eq!(positions.len(), netlist.len());
    let mut used = HashSet::new();
    for &pos in positions {
        assert!(pe_slots.contains(&pos), "{pos:?} is not a PE slot");
        assert!(used.insert(pos), "{pos:?} claimed twice");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A warm start from a cold donor of the same netlist is legal, cheaper
    /// than the cold anneal, routable, and deterministic.
    #[test]
    fn warm_starts_are_legal_routable_and_deterministic(
        blocks in 4usize..24,
        raw_nets in proptest::collection::vec(proptest::collection::vec(0usize..1000, 2..6), 1..12),
    ) {
        let netlist = netlist_from("warm-prop", blocks, &raw_nets);
        let config = ArchitectureConfig::fpsa();
        let fabric = Fabric::with_pe_count(config.clone(), netlist.len());
        let placer = Placer::new(PlacerConfig::fast());
        let cold = placer.place(&netlist, &fabric);

        let seed = WarmStart::from_placement(&netlist, &cold);
        let warm = placer.place_seeded(&netlist, &fabric, Some(&seed));
        prop_assert!(warm.quality().warm_started);
        prop_assert_eq!(warm.quality().seeded_blocks, netlist.len());
        prop_assert!(warm.quality().moves_evaluated <= cold.quality().moves_evaluated);
        assert_legal(&netlist, &fabric, warm.positions());

        // The router accepts the warm placement exactly like a cold one.
        let routed = Router::new(config.routing).route(&netlist, &warm);
        prop_assert_eq!(routed.trees.len(), netlist.nets().len());
        for tree in &routed.trees {
            prop_assert!(tree.is_connected());
        }

        // Determinism: the same warm start reproduces the same placement.
        let again = placer.place_seeded(&netlist, &fabric, Some(&seed));
        prop_assert_eq!(warm.positions(), again.positions());
        prop_assert_eq!(warm.wirelength(), again.wirelength());
    }

    /// Exact position seeds (the on-disk fast path) reproduce the donor
    /// bit-for-bit with zero anneal moves.
    #[test]
    fn exact_seeds_reproduce_the_donor_with_zero_moves(
        blocks in 4usize..24,
        raw_nets in proptest::collection::vec(proptest::collection::vec(0usize..1000, 2..6), 1..12),
    ) {
        let netlist = netlist_from("exact-prop", blocks, &raw_nets);
        let config = ArchitectureConfig::fpsa();
        let fabric = Fabric::with_pe_count(config, netlist.len());
        let placer = Placer::new(PlacerConfig::fast());
        let cold = placer.place(&netlist, &fabric);

        let seed = WarmStart::exact_positions(cold.positions().to_vec());
        prop_assert!(seed.is_exact());
        let replayed = placer.place_seeded(&netlist, &fabric, Some(&seed));
        prop_assert_eq!(replayed.positions(), cold.positions());
        prop_assert_eq!(replayed.quality().moves_evaluated, 0);
        prop_assert_eq!(replayed.wirelength(), cold.wirelength());
    }

    /// A donor from an *edited* netlist (some blocks gone) still seeds the
    /// surviving blocks and yields a legal, routable placement.
    #[test]
    fn donors_from_edited_netlists_seed_survivors_legally(
        blocks in 6usize..24,
        raw_nets in proptest::collection::vec(proptest::collection::vec(0usize..1000, 2..6), 1..12),
        dropped in 1usize..4,
    ) {
        let netlist = netlist_from("edited-prop", blocks, &raw_nets);
        let config = ArchitectureConfig::fpsa();
        let fabric = Fabric::with_pe_count(config.clone(), netlist.len());
        let placer = Placer::new(PlacerConfig::fast());
        let cold = placer.place(&netlist, &fabric);
        let seed = WarmStart::from_placement(&netlist, &cold);

        // The edited netlist keeps a prefix of the blocks (groups keep their
        // identity, so the donor's positions still match them).
        let survivors = blocks - dropped.min(blocks - 2);
        let edited = netlist_from("edited-prop", survivors, &raw_nets);
        let warm = placer.place_seeded(&edited, &fabric, Some(&seed));
        prop_assert!(warm.quality().warm_started);
        prop_assert!(warm.quality().seeded_blocks >= survivors.min(blocks));
        assert_legal(&edited, &fabric, warm.positions());
        let routed = Router::new(config.routing).route(&edited, &warm);
        for tree in &routed.trees {
            prop_assert!(tree.is_connected());
        }
    }
}
