//! Congestion-aware routing.
//!
//! Every net receives a dedicated path of channel segments, as in the FPGA
//! routing model the paper adopts. The router first tries the two single-bend
//! (L-shaped) paths between source and sink, picking the one crossing the
//! less congested channels; when both are saturated it falls back to a full
//! Dijkstra search over the channel grid with congestion-dependent edge
//! costs, which is the shortest-path formulation the paper cites.

use crate::place::Placement;
use fpsa_arch::RoutingArchitecture;
use fpsa_mapper::Netlist;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The routed result of one net (to one sink): the sequence of tile
/// coordinates traversed, including the endpoints.
pub type RoutePath = Vec<(usize, usize)>;

/// Routing outcome for a whole netlist.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RoutingResult {
    /// One entry per (net, sink) connection: the number of block hops.
    pub connection_hops: Vec<usize>,
    /// Peak channel occupancy observed (tracks used in the busiest channel).
    pub peak_channel_occupancy: usize,
    /// Channel capacity the router was given.
    pub channel_width: usize,
    /// Number of connections that needed the Dijkstra fallback.
    pub detoured_connections: usize,
    /// Number of nets routed.
    pub nets_routed: usize,
}

impl RoutingResult {
    /// Number of nets routed.
    pub fn routed_nets(&self) -> usize {
        self.nets_routed
    }

    /// The longest connection in block hops (drives the critical path).
    pub fn critical_hops(&self) -> usize {
        self.connection_hops.iter().copied().max().unwrap_or(0)
    }

    /// Average connection length in hops.
    pub fn average_hops(&self) -> f64 {
        if self.connection_hops.is_empty() {
            return 0.0;
        }
        self.connection_hops.iter().sum::<usize>() as f64 / self.connection_hops.len() as f64
    }

    /// Whether every channel stayed within its capacity.
    pub fn is_routable(&self) -> bool {
        self.peak_channel_occupancy <= self.channel_width
    }

    /// The channel width this design actually needs (the paper's mrVPR flow
    /// reports exactly this quantity).
    pub fn required_channel_width(&self) -> usize {
        self.peak_channel_occupancy
    }
}

/// The router.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Router {
    routing: RoutingArchitecture,
}

impl Router {
    /// Create a router for the given routing architecture.
    pub fn new(routing: RoutingArchitecture) -> Self {
        Router { routing }
    }

    /// Route every net of a placed netlist.
    pub fn route(&self, netlist: &Netlist, placement: &Placement) -> RoutingResult {
        let rows = placement.dims.rows.max(1);
        let cols = placement.dims.cols.max(1);
        // Horizontal channel usage per (row, col) tile and vertical likewise.
        let mut horizontal = vec![0usize; rows * cols];
        let mut vertical = vec![0usize; rows * cols];
        let idx = |r: usize, c: usize| r * cols + c;

        let mut connection_hops = Vec::new();
        let mut detoured = 0usize;

        for net in netlist.nets() {
            let src = placement.position(net.source);
            for &sink in &net.sinks {
                let dst = placement.position(sink);
                if src == dst {
                    connection_hops.push(0);
                    continue;
                }
                // Candidate 1: horizontal first, then vertical.
                let cost_hv = l_path_cost(src, dst, true, &horizontal, &vertical, cols);
                // Candidate 2: vertical first, then horizontal.
                let cost_vh = l_path_cost(src, dst, false, &horizontal, &vertical, cols);
                let capacity = self.routing.channel_width;
                let hops = if cost_hv.1 < capacity || cost_vh.1 < capacity {
                    let horizontal_first = cost_hv.1 <= cost_vh.1;
                    apply_l_path(
                        src,
                        dst,
                        horizontal_first,
                        &mut horizontal,
                        &mut vertical,
                        cols,
                    )
                } else {
                    // Dijkstra fallback over the channel grid with
                    // congestion-aware costs.
                    detoured += 1;
                    dijkstra_route(
                        src,
                        dst,
                        rows,
                        cols,
                        capacity,
                        &mut horizontal,
                        &mut vertical,
                    )
                };
                connection_hops.push(hops);
                let _ = idx; // silence unused in some cfgs
            }
        }

        let peak = horizontal
            .iter()
            .chain(vertical.iter())
            .copied()
            .max()
            .unwrap_or(0);
        RoutingResult {
            connection_hops,
            peak_channel_occupancy: peak,
            channel_width: self.routing.channel_width,
            detoured_connections: detoured,
            nets_routed: netlist.nets().len(),
        }
    }
}

/// Cost (hops, max-occupancy-on-path) of an L-shaped path.
fn l_path_cost(
    src: (usize, usize),
    dst: (usize, usize),
    horizontal_first: bool,
    horizontal: &[usize],
    vertical: &[usize],
    cols: usize,
) -> (usize, usize) {
    let mut max_occ = 0usize;
    let mut hops = 0usize;
    let (sr, sc) = src;
    let (dr, dc) = dst;
    if horizontal_first {
        for c in range_between(sc, dc) {
            max_occ = max_occ.max(horizontal[sr * cols + c]);
            hops += 1;
        }
        for r in range_between(sr, dr) {
            max_occ = max_occ.max(vertical[r * cols + dc]);
            hops += 1;
        }
    } else {
        for r in range_between(sr, dr) {
            max_occ = max_occ.max(vertical[r * cols + sc]);
            hops += 1;
        }
        for c in range_between(sc, dc) {
            max_occ = max_occ.max(horizontal[dr * cols + c]);
            hops += 1;
        }
    }
    (hops, max_occ)
}

/// Occupy the channels along an L-shaped path and return its hop count.
fn apply_l_path(
    src: (usize, usize),
    dst: (usize, usize),
    horizontal_first: bool,
    horizontal: &mut [usize],
    vertical: &mut [usize],
    cols: usize,
) -> usize {
    let (sr, sc) = src;
    let (dr, dc) = dst;
    let mut hops = 0usize;
    if horizontal_first {
        for c in range_between(sc, dc) {
            horizontal[sr * cols + c] += 1;
            hops += 1;
        }
        for r in range_between(sr, dr) {
            vertical[r * cols + dc] += 1;
            hops += 1;
        }
    } else {
        for r in range_between(sr, dr) {
            vertical[r * cols + sc] += 1;
            hops += 1;
        }
        for c in range_between(sc, dc) {
            horizontal[dr * cols + c] += 1;
            hops += 1;
        }
    }
    hops
}

/// The half-open range of channel segments crossed when moving between two
/// coordinates along one axis.
fn range_between(a: usize, b: usize) -> std::ops::Range<usize> {
    if a <= b {
        a..b
    } else {
        b..a
    }
}

/// Dijkstra over the tile grid with congestion-aware costs; occupies the
/// channels along the found path and returns its length in hops.
fn dijkstra_route(
    src: (usize, usize),
    dst: (usize, usize),
    rows: usize,
    cols: usize,
    capacity: usize,
    horizontal: &mut [usize],
    vertical: &mut [usize],
) -> usize {
    let n = rows * cols;
    let idx = |r: usize, c: usize| r * cols + c;
    let mut dist = vec![u64::MAX; n];
    let mut prev = vec![usize::MAX; n];
    let mut heap = BinaryHeap::new();
    dist[idx(src.0, src.1)] = 0;
    heap.push(Reverse((0u64, idx(src.0, src.1))));
    while let Some(Reverse((d, node))) = heap.pop() {
        if d > dist[node] {
            continue;
        }
        if node == idx(dst.0, dst.1) {
            break;
        }
        let (r, c) = (node / cols, node % cols);
        let neighbours = [
            (r.wrapping_sub(1), c, false),
            (r + 1, c, false),
            (r, c.wrapping_sub(1), true),
            (r, c + 1, true),
        ];
        for (nr, nc, is_horizontal) in neighbours {
            if nr >= rows || nc >= cols {
                continue;
            }
            let channel = if is_horizontal {
                horizontal[idx(r, c.min(nc))]
            } else {
                vertical[idx(r.min(nr), c)]
            };
            // Congestion penalty: channels past capacity cost 16x.
            let cost = 1 + if channel >= capacity {
                16
            } else {
                channel as u64 / 64
            };
            let nd = d + cost;
            let ni = idx(nr, nc);
            if nd < dist[ni] {
                dist[ni] = nd;
                prev[ni] = node;
                heap.push(Reverse((nd, ni)));
            }
        }
    }
    // Walk back, occupying channels.
    let mut hops = 0usize;
    let mut node = idx(dst.0, dst.1);
    while node != idx(src.0, src.1) && prev[node] != usize::MAX {
        let p = prev[node];
        let (r, c) = (node / cols, node % cols);
        let (pr, pc) = (p / cols, p % cols);
        if r == pr {
            horizontal[idx(r, c.min(pc))] += 1;
        } else {
            vertical[idx(r.min(pr), c)] += 1;
        }
        hops += 1;
        node = p;
    }
    hops
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpsa_arch::{ArchitectureConfig, Fabric};
    use fpsa_mapper::{AllocationPolicy, Mapper};
    use fpsa_nn::zoo;
    use fpsa_synthesis::{NeuralSynthesizer, SynthesisConfig};

    use crate::place::{Placer, PlacerConfig};

    fn routed_lenet() -> (Netlist, RoutingResult) {
        let graph = NeuralSynthesizer::new(SynthesisConfig::fpsa_default())
            .synthesize(&zoo::lenet())
            .unwrap();
        let netlist = Mapper::new(64, AllocationPolicy::DuplicationDegree(1))
            .map(&graph)
            .netlist;
        let config = ArchitectureConfig::fpsa();
        let fabric = Fabric::with_pe_count(config.clone(), netlist.len());
        let placement = Placer::new(PlacerConfig::fast()).place(&netlist, &fabric);
        let result = Router::new(config.routing).route(&netlist, &placement);
        (netlist, result)
    }

    #[test]
    fn every_net_is_routed() {
        let (netlist, result) = routed_lenet();
        assert_eq!(result.routed_nets(), netlist.nets().len());
        let connections: usize = netlist.nets().iter().map(|n| n.sinks.len()).sum();
        assert_eq!(result.connection_hops.len(), connections);
    }

    #[test]
    fn hop_counts_are_bounded_by_the_grid_perimeter() {
        let (_, result) = routed_lenet();
        // LeNet's fabric is small; no route should exceed a few dozen hops.
        assert!(result.critical_hops() < 200);
        assert!(result.average_hops() <= result.critical_hops() as f64);
    }

    #[test]
    fn routing_fits_the_fpsa_channel_width() {
        let (_, result) = routed_lenet();
        assert!(
            result.is_routable(),
            "peak occupancy {} exceeds channel width {}",
            result.peak_channel_occupancy,
            result.channel_width
        );
    }

    #[test]
    fn range_between_is_symmetric_in_length() {
        assert_eq!(range_between(2, 7).len(), 5);
        assert_eq!(range_between(7, 2).len(), 5);
        assert_eq!(range_between(3, 3).len(), 0);
    }

    #[test]
    fn l_paths_have_manhattan_length() {
        let mut h = vec![0usize; 100];
        let mut v = vec![0usize; 100];
        let hops = apply_l_path((1, 1), (4, 7), true, &mut h, &mut v, 10);
        assert_eq!(hops, 3 + 6);
        let occupied: usize = h.iter().sum::<usize>() + v.iter().sum::<usize>();
        assert_eq!(occupied, hops);
    }

    #[test]
    fn dijkstra_fallback_finds_a_path_under_congestion() {
        // Saturate every channel so the direct L-paths are rejected.
        let rows = 4;
        let cols = 4;
        let mut h = vec![10usize; rows * cols];
        let mut v = vec![10usize; rows * cols];
        let hops = dijkstra_route((0, 0), (3, 3), rows, cols, 1, &mut h, &mut v);
        assert!(hops >= 6, "a path must still be found, got {hops} hops");
    }

    #[test]
    fn narrow_channels_force_detours() {
        let graph = NeuralSynthesizer::new(SynthesisConfig::fpsa_default())
            .synthesize(&zoo::lenet())
            .unwrap();
        let netlist = Mapper::new(64, AllocationPolicy::DuplicationDegree(1))
            .map(&graph)
            .netlist;
        let config = ArchitectureConfig::fpsa();
        let fabric = Fabric::with_pe_count(config.clone(), netlist.len());
        let placement = Placer::new(PlacerConfig::fast()).place(&netlist, &fabric);
        let mut narrow = config.routing;
        narrow.channel_width = 1;
        let narrow_result = Router::new(narrow).route(&netlist, &placement);
        let wide_result = Router::new(config.routing).route(&netlist, &placement);
        assert!(narrow_result.detoured_connections >= wide_result.detoured_connections);
    }
}
