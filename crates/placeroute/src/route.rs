//! PathFinder negotiated-congestion routing.
//!
//! Every net is routed as a **routing tree** over the channel grid: one trunk
//! shared by all sinks (real multicast) instead of independent per-sink
//! paths. The router runs the PathFinder negotiation loop: all nets are
//! ripped up and re-routed every iteration under a cost that combines the
//! base segment cost, a *present congestion* penalty that grows each
//! iteration, and a *history* term remembering which segments were fought
//! over in earlier iterations. Congestion is thereby negotiated away — nets
//! that can cheaply detour do, nets that genuinely need a contested segment
//! keep it — which is exactly the router model of the paper's mrVPR flow.
//!
//! Within an iteration nets route in **waves**: the congestion state is
//! frozen once per wave, every net of the wave searches against that frozen
//! snapshot in parallel (rayon), and the resulting trees are committed in
//! net order. Results are therefore bit-identical for any thread count: the
//! snapshot, the wave partition and the commit order are all independent of
//! scheduling.

use crate::place::Placement;
use fpsa_arch::RoutingArchitecture;
use fpsa_mapper::Netlist;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Orientation of a routing channel segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Orientation {
    /// Connects tile `(r, c)` to `(r, c + 1)`.
    Horizontal,
    /// Connects tile `(r, c)` to `(r + 1, c)`.
    Vertical,
}

/// One channel segment used by a routing tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RouteEdge {
    /// Segment orientation.
    pub orientation: Orientation,
    /// Row of the segment's lower-left tile.
    pub row: usize,
    /// Column of the segment's lower-left tile.
    pub col: usize,
}

impl RouteEdge {
    /// The two tiles this segment connects.
    pub fn endpoints(&self) -> ((usize, usize), (usize, usize)) {
        match self.orientation {
            Orientation::Horizontal => ((self.row, self.col), (self.row, self.col + 1)),
            Orientation::Vertical => ((self.row, self.col), (self.row + 1, self.col)),
        }
    }
}

/// The routed tree of one net: a set of channel segments connecting the
/// source tile to every sink tile, with trunk segments shared across sinks.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RoutingTree {
    /// Index of the net in the netlist.
    pub net: usize,
    /// Tile of the driving block.
    pub source: (usize, usize),
    /// Tile of every sink block, in net order.
    pub sinks: Vec<(usize, usize)>,
    /// The channel segments of the tree (each used once, shared by all sinks
    /// downstream of it).
    pub edges: Vec<RouteEdge>,
    /// Hops from the source to each sink along the tree, in `sinks` order.
    pub sink_hops: Vec<usize>,
}

impl RoutingTree {
    /// Number of channel segments the tree occupies.
    pub fn wirelength(&self) -> usize {
        self.edges.len()
    }

    /// Whether the source reaches every sink over the tree's edges.
    pub fn is_connected(&self) -> bool {
        use std::collections::{HashMap, HashSet, VecDeque};
        if self.sinks.iter().all(|&s| s == self.source) {
            return true;
        }
        let mut adjacency: HashMap<(usize, usize), Vec<(usize, usize)>> = HashMap::new();
        for edge in &self.edges {
            let (a, b) = edge.endpoints();
            adjacency.entry(a).or_default().push(b);
            adjacency.entry(b).or_default().push(a);
        }
        let mut reached: HashSet<(usize, usize)> = HashSet::new();
        let mut queue = VecDeque::from([self.source]);
        reached.insert(self.source);
        while let Some(node) = queue.pop_front() {
            for &next in adjacency.get(&node).into_iter().flatten() {
                if reached.insert(next) {
                    queue.push_back(next);
                }
            }
        }
        self.sinks.iter().all(|s| reached.contains(s))
    }
}

/// Routing outcome for a whole netlist.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RoutingResult {
    /// One routing tree per net, in net order.
    pub trees: Vec<RoutingTree>,
    /// One entry per (net, sink) connection: hops from source to sink along
    /// the net's tree, flattened in net order.
    pub connection_hops: Vec<usize>,
    /// Peak channel occupancy observed (tracks used in the busiest channel).
    pub peak_channel_occupancy: usize,
    /// Channel capacity the router was given.
    pub channel_width: usize,
    /// Negotiation iterations until convergence (or the iteration cap).
    pub iterations: usize,
    /// Channels still above capacity when routing stopped.
    pub overused_channels: usize,
    /// Total channel segments occupied across all trees (the routed
    /// wirelength; trunk sharing makes this less than the sum of hops).
    pub total_channel_segments: usize,
    /// Number of nets routed.
    pub nets_routed: usize,
}

impl RoutingResult {
    /// Number of nets routed.
    pub fn routed_nets(&self) -> usize {
        self.nets_routed
    }

    /// The longest connection in block hops (drives the critical path).
    pub fn critical_hops(&self) -> usize {
        self.connection_hops.iter().copied().max().unwrap_or(0)
    }

    /// Average connection length in hops.
    pub fn average_hops(&self) -> f64 {
        if self.connection_hops.is_empty() {
            return 0.0;
        }
        self.connection_hops.iter().sum::<usize>() as f64 / self.connection_hops.len() as f64
    }

    /// Whether every channel stayed within its capacity.
    pub fn is_routable(&self) -> bool {
        self.peak_channel_occupancy <= self.channel_width
    }

    /// The channel width this design actually needs (the paper's mrVPR flow
    /// reports exactly this quantity).
    pub fn required_channel_width(&self) -> usize {
        self.peak_channel_occupancy
    }
}

/// PathFinder negotiation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RouterConfig {
    /// Maximum rip-up-and-reroute iterations.
    pub max_iterations: usize,
    /// Present-congestion factor of the first iteration (0 routes every net
    /// on its unconstrained shortest path, the classic PathFinder opening).
    pub initial_present_factor: f64,
    /// Multiplier on the present-congestion factor per iteration.
    pub present_growth: f64,
    /// Weight of the accumulated history cost.
    pub history_weight: f64,
    /// Nets routed per parallel wave (the congestion snapshot refreshes
    /// between waves; 1 reproduces fully sequential negotiation).
    pub wave_width: usize,
    /// Evaluate waves with rayon (`false` forces sequential evaluation; the
    /// results are bit-identical either way).
    pub parallel: bool,
}

impl RouterConfig {
    /// The full negotiated-congestion configuration.
    pub fn negotiated() -> Self {
        RouterConfig {
            max_iterations: 32,
            initial_present_factor: 0.0,
            present_growth: 1.6,
            history_weight: 0.5,
            wave_width: 32,
            parallel: true,
        }
    }

    /// A single congestion-aware pass with no negotiation: every net routes
    /// once, sequentially, seeing the congestion of the nets before it. This
    /// is the strongest greedy baseline and exists for ablation.
    pub fn single_pass() -> Self {
        RouterConfig {
            max_iterations: 1,
            initial_present_factor: 0.5,
            present_growth: 1.0,
            history_weight: 0.0,
            wave_width: 1,
            parallel: false,
        }
    }
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self::negotiated()
    }
}

/// Congestion state of the channel grid, frozen per wave for the searches.
#[derive(Debug, Clone)]
struct ChannelState {
    rows: usize,
    cols: usize,
    /// Occupancy of horizontal segments, indexed `r * cols + c` for the
    /// segment `(r, c) – (r, c + 1)`.
    occupancy_h: Vec<u32>,
    /// Occupancy of vertical segments, indexed `r * cols + c` for the
    /// segment `(r, c) – (r + 1, c)`.
    occupancy_v: Vec<u32>,
    history_h: Vec<f64>,
    history_v: Vec<f64>,
}

impl ChannelState {
    fn new(rows: usize, cols: usize) -> Self {
        let n = rows * cols;
        ChannelState {
            rows,
            cols,
            occupancy_h: vec![0; n],
            occupancy_v: vec![0; n],
            history_h: vec![0.0; n],
            history_v: vec![0.0; n],
        }
    }

    fn index(&self, edge: RouteEdge) -> usize {
        edge.row * self.cols + edge.col
    }

    fn occupy(&mut self, edge: RouteEdge, delta: i64) {
        let i = self.index(edge);
        let slot = match edge.orientation {
            Orientation::Horizontal => &mut self.occupancy_h[i],
            Orientation::Vertical => &mut self.occupancy_v[i],
        };
        *slot = (*slot as i64 + delta).max(0) as u32;
    }

    /// PathFinder cost of crossing one segment, scaled to an integer so the
    /// Dijkstra heap has a total, platform-independent order.
    fn edge_cost(&self, edge: RouteEdge, capacity: usize, pres_fac: f64, hist_weight: f64) -> u64 {
        let i = self.index(edge);
        let (occupancy, history) = match edge.orientation {
            Orientation::Horizontal => (self.occupancy_h[i], self.history_h[i]),
            Orientation::Vertical => (self.occupancy_v[i], self.history_v[i]),
        };
        let overuse = (occupancy as i64 + 1 - capacity as i64).max(0) as f64;
        let cost = (1.0 + hist_weight * history) * (1.0 + pres_fac * overuse);
        (cost * 1024.0).round().max(1.0) as u64
    }

    /// Accumulate history cost on every currently overused segment and
    /// report (overused segment count, peak occupancy).
    fn accumulate_history(&mut self, capacity: usize) -> (usize, usize) {
        let mut overused = 0usize;
        let mut peak = 0usize;
        for (occ, hist) in self
            .occupancy_h
            .iter()
            .zip(self.history_h.iter_mut())
            .chain(self.occupancy_v.iter().zip(self.history_v.iter_mut()))
        {
            peak = peak.max(*occ as usize);
            if *occ as usize > capacity {
                overused += 1;
                *hist += (*occ as usize - capacity) as f64;
            }
        }
        (overused, peak)
    }
}

/// The router.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Router {
    routing: RoutingArchitecture,
    config: RouterConfig,
}

impl Router {
    /// A negotiated-congestion router for the given routing architecture.
    pub fn new(routing: RoutingArchitecture) -> Self {
        Router {
            routing,
            config: RouterConfig::negotiated(),
        }
    }

    /// A router with explicit negotiation parameters.
    pub fn with_config(routing: RoutingArchitecture, config: RouterConfig) -> Self {
        Router { routing, config }
    }

    /// The negotiation parameters in use.
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// Route every net of a placed netlist with PathFinder negotiation.
    pub fn route(&self, netlist: &Netlist, placement: &Placement) -> RoutingResult {
        self.route_with_width(netlist, placement, self.routing.channel_width)
    }

    /// Route under an explicit channel capacity (the probe primitive of the
    /// minimum-channel-width search).
    pub fn route_with_width(
        &self,
        netlist: &Netlist,
        placement: &Placement,
        channel_width: usize,
    ) -> RoutingResult {
        let rows = placement.dims.rows.max(1);
        let cols = placement.dims.cols.max(1);
        let capacity = channel_width.max(1);
        let mut state = ChannelState::new(rows, cols);

        // The terminals of every net, fixed by the placement.
        type NetTerminals = ((usize, usize), Vec<(usize, usize)>);
        let terminals: Vec<NetTerminals> = netlist
            .nets()
            .iter()
            .map(|net| {
                (
                    placement.position(net.source),
                    net.sinks.iter().map(|&s| placement.position(s)).collect(),
                )
            })
            .collect();

        let mut trees: Vec<RoutingTree> = Vec::new();
        let mut pres_fac = self.config.initial_present_factor;
        let mut iterations = 0usize;
        let mut overused = 0usize;
        let mut peak = 0usize;

        for iteration in 0..self.config.max_iterations.max(1) {
            iterations = iteration + 1;
            let net_order: Vec<usize> = (0..terminals.len()).collect();
            let mut new_trees: Vec<RoutingTree> = Vec::with_capacity(terminals.len());
            for wave in net_order.chunks(self.config.wave_width.max(1)) {
                // Rip up the wave's previous-iteration routes so the frozen
                // snapshot prices only *other* nets' segments.
                if !trees.is_empty() {
                    for &net in wave {
                        for &edge in &trees[net].edges {
                            state.occupy(edge, -1);
                        }
                    }
                }
                let snapshot = &state;
                let route_one = |&net: &usize| {
                    route_net(
                        net,
                        terminals[net].0,
                        &terminals[net].1,
                        snapshot,
                        capacity,
                        pres_fac,
                        self.config.history_weight,
                    )
                };
                let routed: Vec<RoutingTree> = if self.config.parallel {
                    wave.par_iter().map(route_one).collect()
                } else {
                    wave.iter().map(route_one).collect()
                };
                for tree in routed {
                    for &edge in &tree.edges {
                        state.occupy(edge, 1);
                    }
                    new_trees.push(tree);
                }
            }
            trees = new_trees;

            let (over, pk) = state.accumulate_history(capacity);
            overused = over;
            peak = pk;
            if overused == 0 {
                break;
            }
            pres_fac = if pres_fac == 0.0 {
                1.0
            } else {
                pres_fac * self.config.present_growth
            };
        }

        let connection_hops: Vec<usize> = trees
            .iter()
            .flat_map(|t| t.sink_hops.iter().copied())
            .collect();
        let total_channel_segments = trees.iter().map(RoutingTree::wirelength).sum();
        RoutingResult {
            connection_hops,
            peak_channel_occupancy: peak,
            // The clamped capacity the router actually enforced, so the
            // result's routability fields stay self-consistent for width 0.
            channel_width: capacity,
            iterations,
            overused_channels: overused,
            total_channel_segments,
            nets_routed: trees.len(),
            trees,
        }
    }

    /// The minimum channel width the design routes in — the quantity the
    /// paper's mrVPR flow reports. Doubles the width until the design routes,
    /// then binary-searches down; returns the width and the routing at it.
    pub fn minimum_channel_width(
        &self,
        netlist: &Netlist,
        placement: &Placement,
    ) -> (usize, RoutingResult) {
        // Find a routable upper bound.
        let mut width = 1usize;
        let mut best = self.route_with_width(netlist, placement, width);
        while !best.is_routable() {
            // Peak occupancy at the failed width is a sound next probe: the
            // design certainly needs no more tracks than its worst overuse.
            width = best.peak_channel_occupancy.max(width * 2);
            best = self.route_with_width(netlist, placement, width);
            if width >= 1 << 20 {
                return (width, best);
            }
        }
        if width == 1 {
            return (1, best);
        }
        // Binary search for the smallest routable width in [lo, width];
        // width 1 already failed above, so the search floor is 2.
        let mut lo = 2usize;
        let mut hi = width;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let probe = self.route_with_width(netlist, placement, mid);
            if probe.is_routable() {
                hi = mid;
                best = probe;
            } else {
                lo = mid + 1;
            }
        }
        (hi, best)
    }
}

/// Route one net as a tree against a frozen congestion snapshot: sinks join
/// the tree one at a time via a multi-source Dijkstra whose wavefront starts
/// on every tile already in the tree, so later sinks reuse the trunk built
/// for earlier ones.
fn route_net(
    net: usize,
    source: (usize, usize),
    sinks: &[(usize, usize)],
    state: &ChannelState,
    capacity: usize,
    pres_fac: f64,
    hist_weight: f64,
) -> RoutingTree {
    let (rows, cols) = (state.rows, state.cols);
    let n = rows * cols;
    let tile = |r: usize, c: usize| r * cols + c;

    let mut in_tree = vec![false; n];
    in_tree[tile(source.0, source.1)] = true;
    let mut tree_edges: Vec<RouteEdge> = Vec::new();

    // Deterministic sink order: nearest first, ties by net order. Routing
    // close sinks first grows the trunk outward, which later sinks reuse.
    let mut order: Vec<usize> = (0..sinks.len()).collect();
    order.sort_by_key(|&i| {
        let (r, c) = sinks[i];
        (r.abs_diff(source.0) + c.abs_diff(source.1), i)
    });

    let mut dist: Vec<u64> = vec![u64::MAX; n];
    let mut prev: Vec<usize> = vec![usize::MAX; n];
    for &sink_index in &order {
        let (tr, tc) = sinks[sink_index];
        let target = tile(tr, tc);
        if in_tree[target] {
            continue;
        }

        dist.fill(u64::MAX);
        prev.fill(usize::MAX);
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        for (node, _) in in_tree.iter().enumerate().filter(|(_, &t)| t) {
            dist[node] = 0;
            heap.push(Reverse((0, node)));
        }
        while let Some(Reverse((d, node))) = heap.pop() {
            if d > dist[node] {
                continue;
            }
            if node == target {
                break;
            }
            let (r, c) = (node / cols, node % cols);
            let neighbours = [
                (r.wrapping_sub(1), c),
                (r + 1, c),
                (r, c.wrapping_sub(1)),
                (r, c + 1),
            ];
            for (nr, nc) in neighbours {
                if nr >= rows || nc >= cols {
                    continue;
                }
                let edge = edge_between((r, c), (nr, nc));
                let nd = d + state.edge_cost(edge, capacity, pres_fac, hist_weight);
                let ni = tile(nr, nc);
                if nd < dist[ni] {
                    dist[ni] = nd;
                    prev[ni] = node;
                    heap.push(Reverse((nd, ni)));
                }
            }
        }

        // Walk back from the sink until the existing tree, collecting the
        // new branch.
        let mut node = target;
        while !in_tree[node] {
            let p = prev[node];
            debug_assert_ne!(p, usize::MAX, "grid searches always reach the sink");
            tree_edges.push(edge_between(
                (p / cols, p % cols),
                (node / cols, node % cols),
            ));
            in_tree[node] = true;
            node = p;
        }
    }

    let sink_hops = tree_hops(source, sinks, &tree_edges, rows, cols);
    RoutingTree {
        net,
        source,
        sinks: sinks.to_vec(),
        edges: tree_edges,
        sink_hops,
    }
}

/// The channel segment between two adjacent tiles.
fn edge_between(a: (usize, usize), b: (usize, usize)) -> RouteEdge {
    if a.0 == b.0 {
        RouteEdge {
            orientation: Orientation::Horizontal,
            row: a.0,
            col: a.1.min(b.1),
        }
    } else {
        RouteEdge {
            orientation: Orientation::Vertical,
            row: a.0.min(b.0),
            col: a.1,
        }
    }
}

/// Hops from the source to each sink over the tree's edges (BFS, since every
/// tree edge costs one hop).
fn tree_hops(
    source: (usize, usize),
    sinks: &[(usize, usize)],
    edges: &[RouteEdge],
    rows: usize,
    cols: usize,
) -> Vec<usize> {
    let n = rows * cols;
    let tile = |(r, c): (usize, usize)| r * cols + c;
    let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); n];
    for edge in edges {
        let (a, b) = edge.endpoints();
        adjacency[tile(a)].push(tile(b));
        adjacency[tile(b)].push(tile(a));
    }
    let mut hops = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::from([tile(source)]);
    hops[tile(source)] = 0;
    while let Some(node) = queue.pop_front() {
        for &next in &adjacency[node] {
            if hops[next] == usize::MAX {
                hops[next] = hops[node] + 1;
                queue.push_back(next);
            }
        }
    }
    sinks
        .iter()
        .map(|&s| {
            let h = hops[tile(s)];
            debug_assert_ne!(h, usize::MAX, "every sink is connected to its tree");
            h
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::{Placer, PlacerConfig};
    use fpsa_arch::{ArchitectureConfig, Fabric};
    use fpsa_mapper::{AllocationPolicy, Mapper, Net, NetlistBlock};
    use fpsa_nn::zoo;
    use fpsa_synthesis::{NeuralSynthesizer, SynthesisConfig};

    fn lenet_placed() -> (Netlist, Placement, ArchitectureConfig) {
        let graph = NeuralSynthesizer::new(SynthesisConfig::fpsa_default())
            .synthesize(&zoo::lenet())
            .unwrap();
        let netlist = Mapper::new(64, AllocationPolicy::DuplicationDegree(1))
            .map(&graph)
            .netlist;
        let config = ArchitectureConfig::fpsa();
        let fabric = Fabric::with_pe_count(config.clone(), netlist.len());
        let placement = Placer::new(PlacerConfig::fast()).place(&netlist, &fabric);
        (netlist, placement, config)
    }

    fn routed_lenet() -> (Netlist, RoutingResult) {
        let (netlist, placement, config) = lenet_placed();
        let result = Router::new(config.routing).route(&netlist, &placement);
        (netlist, result)
    }

    #[test]
    fn every_net_is_routed() {
        let (netlist, result) = routed_lenet();
        assert_eq!(result.routed_nets(), netlist.nets().len());
        assert_eq!(result.connection_hops.len(), netlist.connection_count());
        assert_eq!(result.trees.len(), netlist.nets().len());
    }

    #[test]
    fn hop_counts_are_bounded_by_the_grid_perimeter() {
        let (_, result) = routed_lenet();
        // LeNet's fabric is small; no route should exceed a few dozen hops.
        assert!(result.critical_hops() < 200);
        assert!(result.average_hops() <= result.critical_hops() as f64);
    }

    #[test]
    fn routing_fits_the_fpsa_channel_width() {
        let (_, result) = routed_lenet();
        assert!(
            result.is_routable(),
            "peak occupancy {} exceeds channel width {}",
            result.peak_channel_occupancy,
            result.channel_width
        );
        assert_eq!(result.overused_channels, 0);
    }

    #[test]
    fn every_tree_is_connected_and_trunks_are_shared() {
        let (netlist, result) = routed_lenet();
        for tree in &result.trees {
            assert!(tree.is_connected(), "net {} tree is disconnected", tree.net);
        }
        // Multicast: the occupied segments are at most (and for high-fanout
        // CLB nets strictly fewer than) the sum of per-sink path lengths.
        let path_hop_sum: usize = result.connection_hops.iter().sum();
        assert!(result.total_channel_segments <= path_hop_sum);
        let high_fanout = netlist
            .nets()
            .iter()
            .position(|n| n.sinks.len() >= 4)
            .expect("LeNet has CLB control nets with fanout >= 4");
        let tree = &result.trees[high_fanout];
        let tree_path_sum: usize = tree.sink_hops.iter().sum();
        assert!(
            tree.wirelength() < tree_path_sum,
            "fanout-{} tree uses {} segments but {} path hops — no trunk sharing",
            tree.sinks.len(),
            tree.wirelength(),
            tree_path_sum
        );
    }

    #[test]
    fn negotiation_matches_or_beats_the_single_pass_width() {
        let (netlist, placement, config) = lenet_placed();
        let negotiated = Router::new(config.routing).route(&netlist, &placement);
        let single = Router::with_config(config.routing, RouterConfig::single_pass())
            .route(&netlist, &placement);
        assert!(
            negotiated.required_channel_width() <= single.required_channel_width(),
            "negotiated needs {} tracks, single pass {}",
            negotiated.required_channel_width(),
            single.required_channel_width()
        );
    }

    #[test]
    fn negotiation_resolves_a_contested_cut() {
        // Four nets crossing the same row on a 2-column grid: with capacity
        // 2 per channel, a one-shot shortest-path router piles them onto the
        // direct column; negotiation must spread them over both columns.
        let blocks: Vec<NetlistBlock> = (0..8)
            .map(|i| NetlistBlock::Pe {
                group: i,
                duplicate: 0,
            })
            .collect();
        let nets: Vec<Net> = (0..4)
            .map(|i| Net {
                source: i,
                sinks: vec![i + 4],
                values_per_activation: 1,
            })
            .collect();
        let netlist = Netlist::from_parts("cut", blocks, nets);
        let config = ArchitectureConfig::fpsa();
        let fabric = Fabric::with_pe_count(config.clone(), netlist.len());
        let placement = Placer::new(PlacerConfig::fast()).place(&netlist, &fabric);
        let mut narrow = config.routing;
        narrow.channel_width = 2;
        let result = Router::new(narrow).route(&netlist, &placement);
        assert!(
            result.is_routable(),
            "peak {} with width 2 after {} iterations",
            result.peak_channel_occupancy,
            result.iterations
        );
    }

    #[test]
    fn routing_is_deterministic() {
        let (netlist, placement, config) = lenet_placed();
        let a = Router::new(config.routing).route(&netlist, &placement);
        let b = Router::new(config.routing).route(&netlist, &placement);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_waves_match_sequential_evaluation() {
        // The wave snapshot makes route computation a pure function of the
        // frozen congestion state, so parallel and sequential evaluation of
        // the same waves must agree bit for bit — which also means any rayon
        // thread count produces this same result.
        let (netlist, placement, config) = lenet_placed();
        let mut sequential_cfg = RouterConfig::negotiated();
        sequential_cfg.parallel = false;
        let parallel = Router::new(config.routing).route(&netlist, &placement);
        let sequential =
            Router::with_config(config.routing, sequential_cfg).route(&netlist, &placement);
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn minimum_channel_width_is_tight() {
        let (netlist, placement, config) = lenet_placed();
        let router = Router::new(config.routing);
        let (width, result) = router.minimum_channel_width(&netlist, &placement);
        assert!(result.is_routable());
        assert_eq!(result.channel_width, width);
        assert!(width <= config.routing.channel_width);
        assert!(width >= 1);
        if width > 1 {
            let below = router.route_with_width(&netlist, &placement, width - 1);
            assert!(
                !below.is_routable(),
                "width {} already routes, {} is not minimal",
                width - 1,
                width
            );
        }
    }

    #[test]
    fn zero_hop_connections_are_free() {
        // A net whose sink is the source block itself costs nothing.
        let blocks = vec![
            NetlistBlock::Pe {
                group: 0,
                duplicate: 0,
            },
            NetlistBlock::Pe {
                group: 1,
                duplicate: 0,
            },
        ];
        let nets = vec![Net {
            source: 0,
            sinks: vec![0],
            values_per_activation: 1,
        }];
        let netlist = Netlist::from_parts("self-loop", blocks, nets);
        let config = ArchitectureConfig::fpsa();
        let fabric = Fabric::with_pe_count(config.clone(), netlist.len());
        let placement = Placer::new(PlacerConfig::fast()).place(&netlist, &fabric);
        let result = Router::new(config.routing).route(&netlist, &placement);
        assert_eq!(result.connection_hops, vec![0]);
        assert_eq!(result.total_channel_segments, 0);
        assert!(result.trees[0].is_connected());
    }
}
